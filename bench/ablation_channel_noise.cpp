// Ablation (extension beyond the paper): channel noise. The paper assumes
// a clean channel; here each tag reply is garbled with probability p and
// the unacknowledged tag stays awake for a later round. Short polling
// vectors amortize retries too, so the paper's ranking is noise-robust.
#include <iostream>

#include "bench_util.hpp"
#include "protocols/registry.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(3);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 10000);
  bench::CsvSink csv("ablation_channel_noise");
  bench::preamble("Ablation (extension): execution time vs reply error rate",
                  trials);

  const std::vector<double> rates = {0.0, 0.05, 0.1, 0.2, 0.3};
  std::vector<std::string> headers{"protocol"};
  for (const double p : rates)
    headers.push_back("p=" + TablePrinter::num(p, 2));
  TablePrinter table(headers);
  csv.row(headers);

  for (const auto kind :
       {protocols::ProtocolKind::kCpp, protocols::ProtocolKind::kHpp,
        protocols::ProtocolKind::kMic, protocols::ProtocolKind::kTpp}) {
    const auto protocol = protocols::make_protocol(kind);
    std::vector<std::string> row{std::string(protocol->name())};
    for (const double p : rates) {
      parallel::TrialPlan plan;
      plan.trials = trials;
      plan.master_seed = 2024;
      plan.session.info_bits = 1;
      plan.session.reply_error_rate = p;
      bench::RunManifest::instance().record(protocol->name(), n, 1, trials,
                                            plan.master_seed);
      const auto series = parallel::run_trials(
          *protocol, parallel::uniform_population(n), plan);
      row.push_back(bench::with_ci(series.time_s()));
    }
    table.add_row(row);
    csv.row(row);
  }
  table.print(std::cout);
  std::cout << "\nShape check (n = " << n
            << "): every column preserves TPP < MIC < HPP < CPP; time grows"
               "\nroughly by 1/(1-p) since each lost reply costs one extra"
               " poll.\n";
  return 0;
}
