// Figure 1: execution time of a single 1-bit poll as a function of the
// polling-vector length. The paper uses this linearity to motivate
// shortening the vector: time = 37.45 (4 + w) + T1 + 25 + T2 microseconds.
#include <iostream>

#include "analysis/timing_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rfid;
  bench::CsvSink csv("fig01_exec_vs_vector");
  std::cout << "=== Fig. 1: execution time vs polling-vector length ===\n"
            << "(time to collect 1 bit from one tag; C1G2 parameters of"
               " Section V-A)\n\n";

  TablePrinter table({"vector bits w", "time per poll (ms)",
                      "time for 10^4 tags (s)"});
  csv.row({"w_bits", "poll_ms", "n1e4_s"});
  const phy::C1G2Timing timing;
  for (std::size_t w = 0; w <= 100; w += 10) {
    const double poll_ms = timing.poll_us(w, 1) * 1e-3;
    const double total_s = analysis::projected_time_s(10000, double(w), 1);
    table.add_row({std::to_string(w), TablePrinter::num(poll_ms, 3),
                   TablePrinter::num(total_s, 2)});
    csv.row({std::to_string(w), TablePrinter::num(poll_ms, 4),
             TablePrinter::num(total_s, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: strictly linear in w (slope 37.45 us/bit);"
               "\nw = 96 (CPP's tag ID) costs ~12x the w = 0 floor.\n";
  return 0;
}
