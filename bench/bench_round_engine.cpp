// Microbench of the shared protocols::RoundEngine hot loop (extension
// beyond the paper: perf baseline, not a paper figure).
//
// Every Monte-Carlo trial of every polling bench is a drain of this loop,
// so two numbers define the simulator's throughput ceiling:
//   * rounds/sec — wall-clock rate of complete engine rounds (init
//     broadcast, tag-side index pick, bucket, dispatch, compact) while a
//     population drains;
//   * allocations/round — heap allocations per round, counted by a global
//     operator-new hook. The engine and both round policies keep all
//     round-scoped state in reusable scratch, so after the first round of
//     a run (which grows the capacity) steady-state rounds must allocate
//     NOTHING; the bench prints a loud verdict if that regresses.
// The second half measures end-to-end trial throughput serially and on a
// worker pool (RFID_THREADS, default 4) — the configuration the
// determinism gate pins byte-identical — so the baseline captures both
// the single-session hot loop and the fan-out the benches actually run.
//
// Output: one table + optional RFID_CSV_DIR CSV with a manifest sidecar
// recording seeds and workloads (the perf-baseline provenance).
#include <algorithm>
#include <chrono>
#include <iostream>

#include "alloc_guard.hpp"
#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/simd.hpp"
#include "fault/recovery.hpp"
#include "obs/stream.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/round_engine.hpp"
#include "protocols/tree_polling.hpp"

// The process-wide operator-new counter lives in tests/alloc_guard.hpp
// (shared with tests/test_alloc_guard.cpp, which gates the same invariant
// in the main suite); this TU is the one inclusion for this binary.

namespace {

using rfid::alloc_guard::allocation_count;

using namespace rfid;

/// One full drain of a population through the engine, driven round by
/// round so allocations can be sampled at round granularity.
struct DrainResult final {
  std::uint64_t rounds = 0;
  std::uint64_t first_round_allocs = 0;
  std::uint64_t steady_allocs = 0;  ///< total over rounds 2..N
  double wall_s = 0.0;
};

template <typename Policy, typename PolicyConfig>
DrainResult drain_once(const PolicyConfig& policy_config, std::size_t n,
                       std::uint64_t seed, bool keep_records,
                       simd::Backend backend,
                       obs::StreamingAggregator* stream = nullptr) {
  Xoshiro256ss pop_rng(seed);
  const tags::TagPopulation population =
      tags::TagPopulation::uniform_random(n, pop_rng);
  sim::SessionConfig config;
  config.seed = seed ^ 0x9E3779B97F4A7C15ull;
  // keep_records=false isolates the round loop itself: storing collected
  // payloads costs one BitVec per *reply* (output data, not round
  // scratch), which the `+records` rows quantify separately.
  config.keep_records = keep_records;
  sim::Session session(population, config);
  tags::TagSoA active = protocols::make_devices(session);
  fault::RecoveryCoordinator recovery(config.recovery);
  protocols::RoundEngine engine(session, recovery);
  engine.set_hash_backend(backend);
  Policy policy(policy_config);

  DrainResult result;
  const auto start = std::chrono::steady_clock::now();
  while (!active.empty()) {
    const std::uint64_t before = allocation_count();
    engine.run_round(active, policy);
    // The live-telemetry hook the simserved daemon runs every round: a
    // Metrics copy into the aggregator under its mutex. The `+stream` rows
    // gate that this stays allocation-free (publish() is the serving
    // layer's job and runs on its own cadence, not per round).
    if (stream != nullptr)
      stream->update_reader(0, session.metrics(),
                            session.downlink().estimated_ber());
    const std::uint64_t delta = allocation_count() - before;
    if (result.rounds == 0)
      result.first_round_allocs = delta;
    else
      result.steady_allocs += delta;
    ++result.rounds;
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(end - start).count();
  return result;
}

struct EngineSeries final {
  RunningStats rounds_per_sec;
  std::uint64_t drains = 0;
  std::uint64_t rounds = 0;
  std::uint64_t first_round_allocs = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_rounds = 0;
};

template <typename Policy, typename PolicyConfig>
EngineSeries measure_engine(const PolicyConfig& policy_config, std::size_t n,
                            std::size_t reps, std::uint64_t master_seed,
                            bool keep_records,
                            simd::Backend backend = simd::best_backend(),
                            obs::StreamingAggregator* stream = nullptr) {
  EngineSeries series;
  // One untimed warm-up drain pages in code and the allocator.
  (void)drain_once<Policy>(policy_config, n, master_seed, keep_records,
                           backend, stream);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // One sample aggregates drains until its timed window reaches ~2 ms: a
    // single fast-path drain is tens of microseconds, far below scheduler
    // jitter on a shared host, so single-drain samples swing wildly while
    // a 2 ms window averages the jitter out. Each drain still gets its
    // own seed.
    double wall = 0.0;
    std::uint64_t rounds = 0;
    for (std::uint64_t drain = 0; wall < 0.002; ++drain) {
      const DrainResult r =
          drain_once<Policy>(policy_config, n,
                             master_seed + rep * 0x10001ULL + drain,
                             keep_records, backend, stream);
      // Publishing between drains mirrors the daemon's snapshot cadence
      // and keeps the (allocating) snapshot build out of the per-round
      // window.
      if (stream != nullptr) (void)stream->publish(r.wall_s);
      wall += r.wall_s;
      rounds += r.rounds;
      series.drains += 1;
      series.rounds += r.rounds;
      series.first_round_allocs += r.first_round_allocs;
      series.steady_allocs += r.steady_allocs;
      series.steady_rounds += r.rounds > 0 ? r.rounds - 1 : 0;
    }
    series.rounds_per_sec.add(static_cast<double>(rounds) / wall);
  }
  return series;
}

/// End-to-end trial throughput through parallel::run_trials — the fan-out
/// every reproduction bench uses. Returns {rounds/sec, total rounds}.
std::pair<double, std::uint64_t> measure_trials(
    const protocols::PollingProtocol& protocol, std::size_t n,
    std::size_t trials, std::uint64_t master_seed,
    parallel::ThreadPool* pool) {
  parallel::TrialPlan plan;
  plan.trials = trials;
  plan.master_seed = master_seed;
  plan.session.info_bits = 1;
  const auto start = std::chrono::steady_clock::now();
  const auto series =
      parallel::run_trials(protocol, parallel::uniform_population(n), plan,
                           pool);
  const auto end = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(end - start).count();
  return {static_cast<double>(series.totals.rounds) / wall_s,
          series.totals.rounds};
}

}  // namespace

int main() {
  const std::size_t reps = bench::runs(5);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 4096);
  const std::size_t trial_n = std::min<std::size_t>(n, 1024);
  const std::size_t trials = 32;
  const std::uint64_t master_seed = 2025;
  bench::CsvSink csv("bench_round_engine");
  bench::preamble("RoundEngine microbench: rounds/sec and allocations/round",
                  reps);

  // The `simd` column records which kernel backend produced each row, so a
  // committed snapshot is unambiguous about the path it measured. Engine
  // rows default to the best backend this build offers; extra `<name>/scalar`
  // rows pin the scalar reference whenever a vector backend exists, making
  // the per-width speedup visible in one table.
  const simd::Backend best = simd::best_backend();
  const std::vector<std::string> headers{
      "mode",   "protocol",   "n",        "simd",
      "rounds", "rounds/sec", "alloc r1", "alloc/steady round"};
  TablePrinter table(headers);
  csv.row(headers);
  bool steady_clean = true;

  // Engine rows report the BEST sample window, with ± showing the
  // max-min spread across windows. On a shared host, scheduler steal only
  // ever slows a window down, never speeds it up, so the fastest window
  // is the least-biased estimate of the machine's true throughput (the
  // same reasoning behind timeit's min-of-repeats guidance); a mean would
  // drift with whatever else the host happened to run.
  const auto best_of = [](const RunningStats& s) {
    std::string out = TablePrinter::num(s.max(), 0);
    if (s.count() > 1)
      out += " \xC2\xB1" + TablePrinter::num(s.max() - s.min(), 0);
    return out;
  };

  const auto engine_row = [&](const std::string& name, simd::Backend backend,
                              const EngineSeries& s, bool gate) {
    const double steady_per_round =
        s.steady_rounds == 0
            ? 0.0
            : static_cast<double>(s.steady_allocs) /
                  static_cast<double>(s.steady_rounds);
    if (gate && s.steady_allocs != 0) steady_clean = false;
    bench::RunManifest::instance().record(name, n, 1, reps, master_seed);
    const std::vector<std::string> row{
        "engine",
        name,
        std::to_string(n),
        std::string(simd::backend_name(backend)),
        std::to_string(s.drains == 0 ? 0 : s.rounds / s.drains),
        best_of(s.rounds_per_sec),
        std::to_string(s.drains == 0 ? 0 : s.first_round_allocs / s.drains),
        TablePrinter::num(steady_per_round, 3)};
    table.add_row(row);
    csv.row(row);
  };

  // The gated rows: the round loop with output storage off, which must be
  // allocation-free in steady state. The `+records` rows show the
  // per-reply BitVec cost of actually keeping collected payloads.
  engine_row("HPP", best,
             measure_engine<protocols::HppRoundPolicy>(
                 protocols::HppRoundConfig{}, n, reps, master_seed,
                 /*keep_records=*/false, best),
             /*gate=*/true);
  engine_row("TPP", best,
             measure_engine<protocols::TppRoundPolicy>(
                 protocols::Tpp::Config{}, n, reps, master_seed,
                 /*keep_records=*/false, best),
             /*gate=*/true);
  // Forced-scalar reference rows: same drains on the scalar kernels, so the
  // per-width speedup is one table away. Only emitted when this build has a
  // vector backend to compare against.
  if (best != simd::Backend::kScalar) {
    engine_row("HPP/scalar", simd::Backend::kScalar,
               measure_engine<protocols::HppRoundPolicy>(
                   protocols::HppRoundConfig{}, n, reps, master_seed,
                   /*keep_records=*/false, simd::Backend::kScalar),
               /*gate=*/true);
    engine_row("TPP/scalar", simd::Backend::kScalar,
               measure_engine<protocols::TppRoundPolicy>(
                   protocols::Tpp::Config{}, n, reps, master_seed,
                   /*keep_records=*/false, simd::Backend::kScalar),
               /*gate=*/true);
  }
  // The aggregator hook rows: identical drains with the simserved
  // per-round telemetry fold attached. Gated like the bare rows — the
  // hook must not reintroduce steady-state allocation — and comparable
  // against them for rounds/sec (BENCH_round_engine.json tracks both).
  {
    obs::StreamingAggregator stream(1);
    engine_row("HPP+stream", best,
               measure_engine<protocols::HppRoundPolicy>(
                   protocols::HppRoundConfig{}, n, reps, master_seed,
                   /*keep_records=*/false, best, &stream),
               /*gate=*/true);
  }
  {
    obs::StreamingAggregator stream(1);
    engine_row("TPP+stream", best,
               measure_engine<protocols::TppRoundPolicy>(
                   protocols::Tpp::Config{}, n, reps, master_seed,
                   /*keep_records=*/false, best, &stream),
               /*gate=*/true);
  }
  engine_row("HPP+records", best,
             measure_engine<protocols::HppRoundPolicy>(
                 protocols::HppRoundConfig{}, n, reps, master_seed,
                 /*keep_records=*/true, best),
             /*gate=*/false);
  engine_row("TPP+records", best,
             measure_engine<protocols::TppRoundPolicy>(
                 protocols::Tpp::Config{}, n, reps, master_seed,
                 /*keep_records=*/true, best),
             /*gate=*/false);

  // --- Trial fan-out: serial vs pool (the determinism-gate pairing) ---------
  const unsigned pool_threads = static_cast<unsigned>(
      std::max<std::uint64_t>(1, env_u64("RFID_THREADS", 4)));
  const auto trial_row = [&](const char* mode,
                             const protocols::PollingProtocol& protocol,
                             parallel::ThreadPool* pool) {
    bench::RunManifest::instance().record(protocol.name(), trial_n, 1, trials,
                                          master_seed);
    const auto [rps, rounds] =
        measure_trials(protocol, trial_n, trials, master_seed, pool);
    const std::vector<std::string> row{
        mode,
        std::string(protocol.name()),
        std::to_string(trial_n),
        std::string(simd::backend_name(best)),
        std::to_string(rounds),
        TablePrinter::num(rps, 0),
        "-",
        "-"};
    table.add_row(row);
    csv.row(row);
  };

  const protocols::Hpp hpp;
  const protocols::Tpp tpp;
  trial_row("serial", hpp, nullptr);
  trial_row("serial", tpp, nullptr);
  {
    parallel::ThreadPool pool(pool_threads);
    const std::string mode = "pool x" + std::to_string(pool.thread_count());
    trial_row(mode.c_str(), hpp, &pool);
    trial_row(mode.c_str(), tpp, &pool);
  }

  table.print(std::cout);
  std::cout << "\nsteady-state allocations/round: "
            << (steady_clean ? "0 (OK — engine and policy scratch reused)"
                             : "NONZERO (REGRESSION: round scratch is "
                               "reallocating; see table)")
            << "\n";
  return steady_clean ? 0 : 1;
}
