// Extension bench: the paper's headline application — missing-tag
// monitoring — compared across approaches on the same scenario:
//   * TRP          — probabilistic yes/no detection (ref [11])
//   * BitmapID     — complete identification via ALOHA presence bitmaps
//                    (in the spirit of ref [12])
//   * TPP / HPP / CPP — polling-based identification (this paper)
#include <iostream>

#include "bench_util.hpp"
#include "core/polling.hpp"
#include "protocols/presence.hpp"

int main() {
  using namespace rfid;
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 20000);
  constexpr std::size_t kMissingEvery = 100;
  bench::CsvSink csv("missing_identification");
  std::cout << "=== Extension: missing-tag monitoring approaches (n = " << n
            << ", 1% missing) ===\n\n";

  Xoshiro256ss rng(2016);
  const auto expected = tags::TagPopulation::uniform_random(n, rng);
  std::unordered_set<TagId, TagIdHash> present;
  std::size_t truly_missing = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % kMissingEvery == 0)
      ++truly_missing;
    else
      present.insert(expected[i].id());
  }

  sim::SessionConfig config;
  config.seed = 31;
  config.present = &present;

  TablePrinter table({"approach", "answer", "time (s)"});
  csv.row({"approach", "answer", "time_s"});
  const auto add = [&](const std::string& name, const std::string& answer,
                       double time_s) {
    table.add_row({name, answer, TablePrinter::num(time_s, 3)});
    csv.row({name, answer, TablePrinter::num(time_s, 4)});
  };

  const auto trp = protocols::TrustedReaderDetection().detect(expected, config);
  add("TRP (detect only, 99%)",
      trp.missing_detected ? "missing detected" : "nothing detected",
      trp.result.exec_time_s());

  const auto bitmap =
      protocols::BitmapMissingIdentification().identify(expected, config);
  add("Bitmap identification",
      std::to_string(bitmap.missing.size()) + " tags identified",
      bitmap.result.exec_time_s());

  const auto assisted =
      protocols::PollingAssistedIdentification().identify(expected, config);
  add("Polling-assisted (96-bit IDs)",
      std::to_string(assisted.missing.size()) + " tags identified",
      assisted.result.exec_time_s());

  for (const auto kind :
       {core::ProtocolKind::kTpp, core::ProtocolKind::kHpp,
        core::ProtocolKind::kCpp}) {
    const auto report = core::find_missing_tags(kind, expected, present,
                                                config);
    add(std::string(protocols::to_string(kind)) + " polling",
        std::to_string(report.missing.size()) + " tags identified" +
            (report.exact ? "" : " (MISMATCH)"),
        report.result.exec_time_s());
  }
  table.print(std::cout);
  std::cout << "\nShape check: detection is cheapest (one yes/no); among"
               " identifiers, TPP\nbeats the ALOHA bitmap (no empty or"
               " collision slots) and CPP by far.\n";
  return 0;
}
