// Figure 4: EHPP's optimal subset size n* against the circle-command length
// l_c, sandwiched by the Theorem-1 interval [l_c ln2, e l_c ln2].
#include <iostream>

#include "analysis/ehpp_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rfid;
  bench::CsvSink csv("fig04_ehpp_subset_size");
  std::cout << "=== Fig. 4: optimal EHPP subset size n* vs circle-command"
               " length l_c ===\n\n";

  TablePrinter table({"l_c (bits)", "lower bound l_c*ln2", "optimal n*",
                      "upper bound e*l_c*ln2", "cost at n* (bits/tag)"});
  csv.row({"lc", "lower", "n_star", "upper", "cost"});
  for (std::size_t lc = 50; lc <= 500; lc += 50) {
    const auto l = double(lc);
    const std::size_t star = analysis::ehpp_optimal_subset_size(l);
    const double cost = analysis::ehpp_circle_cost(star, l);
    table.add_row({std::to_string(lc),
                   TablePrinter::num(analysis::ehpp_subset_lower_bound(l), 1),
                   std::to_string(star),
                   TablePrinter::num(analysis::ehpp_subset_upper_bound(l), 1),
                   TablePrinter::num(cost, 2)});
    csv.row({std::to_string(lc),
             TablePrinter::num(analysis::ehpp_subset_lower_bound(l), 2),
             std::to_string(star),
             TablePrinter::num(analysis::ehpp_subset_upper_bound(l), 2),
             TablePrinter::num(cost, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: n* grows with l_c and tracks the Theorem-1"
               " interval\n(the exact Eq.-4 recursion sits at or slightly"
               " below l_c*ln2 because the\nfirst HPP round is cheaper than"
               " the mu*log2 approximation).\n";
  return 0;
}
