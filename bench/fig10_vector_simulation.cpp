// Figure 10: simulated average polling-vector length of HPP, EHPP and TPP
// against the number of tags (the paper's main simulation figure).
// Paper shape: HPP grows ~9.5 -> 16 bits; EHPP flat at ~9.0 bits
// (l_c = 128, 32-bit round init counted into w); TPP flat at ~3.06 bits.
#include <iostream>

#include "bench_util.hpp"
#include "protocols/enhanced_hash_polling.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/tree_polling.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(5);
  const std::size_t cap = bench::max_n(100000);
  bench::CsvSink csv("fig10_vector_simulation");
  bench::preamble("Fig. 10: simulated average vector length w vs n", trials);

  const protocols::Hpp hpp;
  const protocols::Ehpp ehpp;  // l_c = 128, init 32 (paper's Section V-B)
  const protocols::Tpp tpp;

  TablePrinter table({"tags n", "HPP w", "EHPP w", "TPP w"});
  csv.row({"n", "hpp_w", "ehpp_w", "tpp_w"});
  std::vector<std::size_t> ns;
  for (const std::size_t n : {10000u, 20000u, 40000u, 70000u, 100000u})
    if (n <= cap) ns.push_back(n);
  for (const std::size_t n : ns) {
    const auto h = bench::measure(hpp, n, 1, trials, 101);
    const auto e = bench::measure(ehpp, n, 1, trials, 102);
    const auto t = bench::measure(tpp, n, 1, trials, 103);
    table.add_row({std::to_string(n), bench::with_ci(h.w),
                   bench::with_ci(e.w), bench::with_ci(t.w)});
    csv.row({std::to_string(n), TablePrinter::num(h.w.mean(), 3),
             TablePrinter::num(e.w.mean(), 3),
             TablePrinter::num(t.w.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference at n = 1e5: HPP ~16, EHPP ~9.0, TPP ~3.06"
               " bits\n(compression vs CPP's 96-bit ID: ~6x, ~10x, ~31x)."
               "\nShape check: HPP grows with n; EHPP and TPP stay flat.\n";
  return 0;
}
