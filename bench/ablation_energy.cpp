// Extension bench: per-tag energy (the concern of Coded Polling, paper ref
// [19]). A battery-assisted tag spends most of its budget *listening* to
// reader transmissions, so shrinking the polling vector from 96 bits to ~3
// cuts tag energy by the same order as it cuts time.
#include <iostream>

#include "analysis/energy_model.hpp"
#include "bench_util.hpp"
#include "protocols/registry.hpp"

int main() {
  using namespace rfid;
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 10000);
  bench::CsvSink csv("ablation_energy");
  std::cout << "=== Extension: energy per inventory sweep (n = " << n
            << ", 1-bit info) ===\n\n";

  TablePrinter table({"protocol", "reader energy (mJ)",
                      "tag listen (uJ/tag)", "tag transmit (uJ/tag)",
                      "tag total (uJ/tag)"});
  csv.row({"protocol", "reader_mj", "tag_listen_uj", "tag_tx_uj",
           "tag_total_uj"});
  for (const auto kind :
       {protocols::ProtocolKind::kCpp, protocols::ProtocolKind::kCodedPolling,
        protocols::ProtocolKind::kHpp, protocols::ProtocolKind::kEhpp,
        protocols::ProtocolKind::kMic, protocols::ProtocolKind::kTpp}) {
    const auto protocol = protocols::make_protocol(kind);
    Xoshiro256ss rng(9);
    const auto pop = tags::TagPopulation::uniform_random(n, rng);
    sim::SessionConfig config;
    config.seed = 77;
    config.keep_records = false;
    const auto result = protocol->run(pop, config);
    const auto energy = analysis::estimate_energy(result.metrics, n);
    table.add_row({std::string(protocol->name()),
                   TablePrinter::num(energy.reader_mj, 1),
                   TablePrinter::num(energy.tag_listen_uj, 2),
                   TablePrinter::num(energy.tag_tx_uj, 4),
                   TablePrinter::num(energy.tag_total_uj(), 2)});
    csv.row({std::string(protocol->name()),
             TablePrinter::num(energy.reader_mj, 2),
             TablePrinter::num(energy.tag_listen_uj, 3),
             TablePrinter::num(energy.tag_tx_uj, 5),
             TablePrinter::num(energy.tag_total_uj(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: tag listen energy tracks total reader bits —"
               "\nCP halves CPP, the hash family cuts another order of"
               " magnitude,\nand TPP is the floor.\n";
  return 0;
}
