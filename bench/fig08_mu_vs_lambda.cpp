// Figure 8: the singleton-index probability mu = lambda e^{-lambda} as a
// function of the load factor lambda = n / 2^h, peaking at 1/e for
// lambda = 1, with the balanced pair (ln2, 2 ln2) that defines TPP's
// optimal index-length band (Eq. (13)-(14)).
#include <iostream>

#include "analysis/tpp_model.hpp"
#include "bench_util.hpp"
#include "common/math_util.hpp"

int main() {
  using namespace rfid;
  bench::CsvSink csv("fig08_mu_vs_lambda");
  std::cout << "=== Fig. 8: singleton probability mu vs load factor lambda"
               " ===\n\n";

  TablePrinter table({"lambda = n/2^h", "mu = lambda*e^-lambda", "note"});
  csv.row({"lambda", "mu"});
  const auto note = [](double lambda) -> std::string {
    if (std::abs(lambda - kLn2) < 1e-9) return "lambda1 = ln2 (band start)";
    if (std::abs(lambda - 1.0) < 1e-9) return "peak: mu = 1/e";
    if (std::abs(lambda - 2 * kLn2) < 1e-9) return "2*lambda1 (band end)";
    return "";
  };
  std::vector<double> lambdas;
  for (double l = 0.2; l <= 4.0 + 1e-9; l += 0.2) lambdas.push_back(l);
  lambdas.push_back(kLn2);
  lambdas.push_back(1.0);
  lambdas.push_back(2 * kLn2);
  std::sort(lambdas.begin(), lambdas.end());
  for (const double lambda : lambdas) {
    table.add_row({TablePrinter::num(lambda, 3),
                   TablePrinter::num(analysis::tpp_mu(lambda), 4),
                   note(lambda)});
    csv.row({TablePrinter::num(lambda, 4),
             TablePrinter::num(analysis::tpp_mu(lambda), 6)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: single interior maximum at lambda = 1"
               " (mu = 0.3679);\nmu(ln2) = mu(2 ln2) = "
            << TablePrinter::num(analysis::tpp_mu(kLn2), 4)
            << " — the balance that yields Eq. (14).\n";
  return 0;
}
