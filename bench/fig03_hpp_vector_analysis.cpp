// Figure 3: analytical average polling-vector length of HPP (Eq. (4))
// against the number of tags. Paper shape: ~10 bits at n = 1,000 growing
// near-logarithmically to ~16 bits at n = 100,000.
#include <iostream>

#include "analysis/hpp_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rfid;
  bench::CsvSink csv("fig03_hpp_vector_analysis");
  std::cout << "=== Fig. 3: HPP average vector length w (analytical, Eq. 4)"
               " ===\n\n";

  TablePrinter table({"tags n", "w (bits)", "upper bound ceil(log2 n)",
                      "expected rounds"});
  csv.row({"n", "w_bits", "upper_bound", "rounds"});
  std::vector<std::size_t> ns = {1000};
  for (std::size_t n = 10000; n <= 100000; n += 10000) ns.push_back(n);
  for (const std::size_t n : ns) {
    const auto prediction = analysis::hpp_predict(n);
    table.add_row({std::to_string(n),
                   TablePrinter::num(prediction.avg_vector_bits, 2),
                   std::to_string(analysis::hpp_vector_upper_bound(n)),
                   TablePrinter::num(prediction.expected_rounds, 1)});
    csv.row({std::to_string(n),
             TablePrinter::num(prediction.avg_vector_bits, 3),
             std::to_string(analysis::hpp_vector_upper_bound(n)),
             TablePrinter::num(prediction.expected_rounds, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: w ~= 10 at n = 1,000 and ~16 at n ="
               " 100,000; all\nvalues stay below 16 bits and far below the"
               " 96-bit ID of CPP.\n";
  return 0;
}
