// Table II: execution time (seconds) to collect 16-bit information. The
// paper reports ratios at n = 10^4: TPP is 85.7% of MIC, 78.3% of EHPP,
// 68.6% of HPP and 19.6% of CPP.
#include "table_exec_common.hpp"

int main() {
  return rfid::bench::run_exec_table(
      "Table II: execution time to collect 16-bit information", 16, {});
}
