// Shared plumbing for the reproduction bench binaries.
//
// Every bench regenerates one table or figure of the paper. Conventions:
//   * RFID_RUNS   — Monte-Carlo repetitions per data point (paper used 100;
//                   defaults here are small enough for a laptop run).
//   * RFID_MAX_N  — cap on the largest population, for quick CI passes.
//   * RFID_CSV_DIR — when set, each bench additionally writes its series to
//                   <dir>/<bench>.csv for external plotting, plus a
//                   <dir>/<bench>.manifest.json run manifest (provenance:
//                   seeds, workloads, build info) so a CSV can always be
//                   traced back to the exact run that produced it.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "parallel/trial_runner.hpp"
#include "protocols/protocol.hpp"

namespace rfid::bench {

inline std::size_t runs(std::size_t fallback) {
  return env_u64("RFID_RUNS", fallback);
}

inline std::size_t max_n(std::size_t fallback) {
  return env_u64("RFID_MAX_N", fallback);
}

/// Run provenance. Each bench process accumulates one manifest — the bench
/// name, build info, the RFID_* environment knobs, and one entry per
/// measured (protocol, population, seed) workload — and writes it to
/// <RFID_CSV_DIR>/<bench>.manifest.json when the process exits, next to the
/// CSV it describes. The CSV schema itself is untouched; provenance rides
/// in the sidecar. Collection is automatic: CsvSink registers the bench
/// name and measure() records every workload it runs.
class RunManifest final {
 public:
  static RunManifest& instance() {
    static RunManifest manifest;
    return manifest;
  }

  void set_bench(const std::string& name) { bench_ = name; }

  void record(std::string_view protocol, std::size_t population,
              std::size_t info_bits, std::size_t trials,
              std::uint64_t master_seed) {
    entries_.push_back(Entry{std::string(protocol), population, info_bits,
                             trials, master_seed});
  }

  ~RunManifest() { write(); }

  RunManifest(const RunManifest&) = delete;
  RunManifest& operator=(const RunManifest&) = delete;

 private:
  RunManifest() = default;

  static std::string json_escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void write() const {
    const char* dir = std::getenv("RFID_CSV_DIR");
    if (dir == nullptr || *dir == '\0' || bench_.empty()) return;
    std::ofstream os(std::string(dir) + "/" + bench_ + ".manifest.json");
    if (!os.is_open()) return;  // provenance must never fail the bench
    os << "{\n  \"bench\": \"" << json_escape(bench_) << "\",\n";
    os << "  \"build\": {\"compiler\": \"" << json_escape(__VERSION__)
       << "\", \"cxx_standard\": " << __cplusplus << "},\n";
    os << "  \"env\": {";
    bool first = true;
    for (const char* name :
         {"RFID_RUNS", "RFID_MAX_N", "RFID_BENCH_MAX_N", "RFID_CSV_DIR"}) {
      const char* value = std::getenv(name);
      if (value == nullptr) continue;
      os << (first ? "" : ", ") << '"' << name << "\": \""
         << json_escape(value) << '"';
      first = false;
    }
    os << "},\n  \"measurements\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      os << (i == 0 ? "" : ",") << "\n    {\"protocol\": \""
         << json_escape(e.protocol) << "\", \"population\": " << e.population
         << ", \"info_bits\": " << e.info_bits
         << ", \"trials\": " << e.trials
         << ", \"master_seed\": " << e.master_seed << '}';
    }
    os << (entries_.empty() ? "" : "\n  ") << "]\n}\n";
  }

  struct Entry final {
    std::string protocol;
    std::size_t population = 0;
    std::size_t info_bits = 0;
    std::size_t trials = 0;
    std::uint64_t master_seed = 0;
  };

  std::string bench_;
  std::vector<Entry> entries_;
};

/// Optional CSV sink keyed by bench name.
class CsvSink final {
 public:
  explicit CsvSink(const std::string& bench_name) {
    RunManifest::instance().set_bench(bench_name);
    const char* dir = std::getenv("RFID_CSV_DIR");
    if (dir != nullptr && *dir != '\0')
      writer_.emplace(std::string(dir) + "/" + bench_name + ".csv");
  }

  void row(const std::vector<std::string>& cells) {
    if (writer_) writer_->write_row(cells);
  }

 private:
  std::optional<CsvWriter> writer_;
};

/// Averaged outcome of `trials` runs of one protocol at one population size.
struct SeriesPoint final {
  RunningStats w;
  RunningStats time_s;
  RunningStats waste;
};

inline SeriesPoint measure(const protocols::PollingProtocol& protocol,
                           std::size_t n, std::size_t info_bits,
                           std::size_t trials, std::uint64_t master_seed) {
  RunManifest::instance().record(protocol.name(), n, info_bits, trials,
                                 master_seed);
  parallel::TrialPlan plan;
  plan.trials = trials;
  plan.master_seed = master_seed;
  plan.session.info_bits = info_bits;
  const auto series =
      parallel::run_trials(protocol, parallel::uniform_population(n), plan);
  SeriesPoint point;
  point.w = series.vector_bits();
  point.time_s = series.time_s();
  point.waste = series.waste();
  return point;
}

/// "12.34 ±0.05" formatting for a measured statistic.
inline std::string with_ci(const RunningStats& stats, int digits = 2) {
  std::string out = TablePrinter::num(stats.mean(), digits);
  if (stats.count() > 1)
    out += " \xC2\xB1" + TablePrinter::num(stats.ci95_half_width(), digits);
  return out;
}

inline void preamble(const std::string& what, std::size_t trial_count) {
  std::cout << "=== " << what << " ===\n"
            << "(averages over " << trial_count
            << " runs; set RFID_RUNS to change; paper used 100)\n\n";
}

}  // namespace rfid::bench
