// Shared plumbing for the reproduction bench binaries.
//
// Every bench regenerates one table or figure of the paper. Conventions:
//   * RFID_RUNS   — Monte-Carlo repetitions per data point (paper used 100;
//                   defaults here are small enough for a laptop run).
//   * RFID_MAX_N  — cap on the largest population, for quick CI passes.
//   * RFID_CSV_DIR — when set, each bench additionally writes its series to
//                   <dir>/<bench>.csv for external plotting.
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "parallel/trial_runner.hpp"
#include "protocols/protocol.hpp"

namespace rfid::bench {

inline std::size_t runs(std::size_t fallback) {
  return env_u64("RFID_RUNS", fallback);
}

inline std::size_t max_n(std::size_t fallback) {
  return env_u64("RFID_MAX_N", fallback);
}

/// Optional CSV sink keyed by bench name.
class CsvSink final {
 public:
  explicit CsvSink(const std::string& bench_name) {
    const char* dir = std::getenv("RFID_CSV_DIR");
    if (dir != nullptr && *dir != '\0')
      writer_.emplace(std::string(dir) + "/" + bench_name + ".csv");
  }

  void row(const std::vector<std::string>& cells) {
    if (writer_) writer_->write_row(cells);
  }

 private:
  std::optional<CsvWriter> writer_;
};

/// Averaged outcome of `trials` runs of one protocol at one population size.
struct SeriesPoint final {
  RunningStats w;
  RunningStats time_s;
  RunningStats waste;
};

inline SeriesPoint measure(const protocols::PollingProtocol& protocol,
                           std::size_t n, std::size_t info_bits,
                           std::size_t trials, std::uint64_t master_seed) {
  parallel::TrialPlan plan;
  plan.trials = trials;
  plan.master_seed = master_seed;
  plan.session.info_bits = info_bits;
  const auto series =
      parallel::run_trials(protocol, parallel::uniform_population(n), plan);
  SeriesPoint point;
  point.w = series.vector_bits();
  point.time_s = series.time_s();
  point.waste = series.waste();
  return point;
}

/// "12.34 ±0.05" formatting for a measured statistic.
inline std::string with_ci(const RunningStats& stats, int digits = 2) {
  std::string out = TablePrinter::num(stats.mean(), digits);
  if (stats.count() > 1)
    out += " \xC2\xB1" + TablePrinter::num(stats.ci95_half_width(), digits);
  return out;
}

inline void preamble(const std::string& what, std::size_t trial_count) {
  std::cout << "=== " << what << " ===\n"
            << "(averages over " << trial_count
            << " runs; set RFID_RUNS to change; paper used 100)\n\n";
}

}  // namespace rfid::bench
