// Extension bench: multi-reader scaling (paper Section II-A's remark that
// the protocols extend to multiple readers once a collision-free schedule
// exists).
//
// Two phases share one CSV (schema column `mode` tells them apart):
//   * mode=schedule — the original makespan-vs-portals table under the
//     two degenerate schedules (TDMA / fully spatial), simulated time.
//   * mode=fleet    — wall-clock throughput of the sharded deployment
//     simulator at (readers, channels, n) points up to a million tags,
//     reported as tags/sec. scripts/check_bench_regression.sh gates these
//     rows against the committed BENCH_fleet.json snapshot.
//
// RFID_BENCH_MAX_N caps the largest fleet population (default 1,000,000);
// RFID_MAX_N caps the schedule-phase population as everywhere else.
// RFID_THREADS pools the fleet tick loop's parallel phase.
#include <chrono>
#include <iostream>
#include <memory>
#include <set>
#include <tuple>

#include "bench_util.hpp"
#include "core/deployment.hpp"
#include "core/multi_reader.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace rfid;

struct FleetPoint final {
  std::size_t readers;
  std::size_t channels;
  std::size_t tags;
};

}  // namespace

int main() {
  using namespace rfid;
  bench::CsvSink csv("multi_reader_scaling");
  csv.row({"mode", "readers", "channels", "n", "tdma_s", "parallel_s",
           "speedup", "wall_s", "tags_per_sec"});

  // --- Phase 1: schedule shape (simulated time, no wall clock) ---------
  const std::size_t n = bench::max_n(100000);
  std::cout << "=== Extension: multi-reader sweep scaling (TPP, n = " << n
            << ", 1-bit) ===\n\n";

  Xoshiro256ss rng(6);
  const auto inventory = tags::TagPopulation::uniform_random(n, rng);

  TablePrinter table({"portals", "TDMA makespan (s)",
                      "parallel makespan (s)", "parallel speedup",
                      "covered once"});
  double baseline = 0.0;
  for (const std::size_t readers : {1u, 2u, 4u, 8u}) {
    core::MultiReaderConfig config;
    config.readers = readers;
    config.session.seed = 99;
    config.schedule = core::ReaderSchedule::kTimeDivision;
    const auto tdma = core::run_multi_reader(inventory, config);
    config.schedule = core::ReaderSchedule::kSpatialParallel;
    const auto par = core::run_multi_reader(inventory, config);
    if (readers == 1) baseline = par.makespan_s;
    table.add_row({std::to_string(readers),
                   TablePrinter::num(tdma.makespan_s),
                   TablePrinter::num(par.makespan_s),
                   TablePrinter::num(baseline / par.makespan_s, 2) + "x",
                   (tdma.verified && par.verified) ? "yes" : "NO"});
    csv.row({"schedule", std::to_string(readers), "", std::to_string(n),
             TablePrinter::num(tdma.makespan_s, 3),
             TablePrinter::num(par.makespan_s, 3),
             TablePrinter::num(baseline / par.makespan_s, 3), "", ""});
    bench::RunManifest::instance().record("multi-reader-tpp", n, 1, 1, 99);
  }
  table.print(std::cout);
  std::cout << "\nShape check: TDMA makespan is flat (one shared channel);"
               "\nisolated zones scale near-linearly because the hash"
               " partition balances\nshares and TPP's vector length is"
               " population-independent.\n";

  // --- Phase 2: sharded fleet throughput (wall clock, perf-gated) ------
  const std::size_t fleet_cap = env_u64("RFID_BENCH_MAX_N", 1000000);
  std::cout << "\n=== Sharded deployment throughput (TPP, overlap 0.1,"
               " churn 0.001, cap = " << fleet_cap << ") ===\n\n";

  std::unique_ptr<parallel::ThreadPool> pool;
  if (const std::uint64_t threads = env_u64("RFID_THREADS", 0); threads > 0)
    pool = std::make_unique<parallel::ThreadPool>(
        static_cast<unsigned>(threads));

  const FleetPoint points[] = {
      {8, 2, std::min<std::size_t>(fleet_cap, 100000)},
      {64, 8, std::min<std::size_t>(fleet_cap, 1000000)},
      {128, 16, std::min<std::size_t>(fleet_cap, 1000000)},
  };

  TablePrinter fleet({"readers", "channels", "tags", "ticks", "wall (s)",
                      "tags/sec", "verified"});
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen;
  bool all_verified = true;
  for (const FleetPoint& point : points) {
    // A tight RFID_BENCH_MAX_N can collapse distinct specs onto one
    // (readers, channels, n) key; measure each key once.
    if (!seen.insert({point.readers, point.channels, point.tags}).second)
      continue;
    const tags::TagPopulation population =
        tags::TagPopulation::uniform_random_sharded(point.tags, 7, 8);
    core::DeploymentConfig config;
    config.readers = point.readers;
    config.channels = point.channels;
    config.kind = protocols::ProtocolKind::kTpp;
    config.session.seed = 7;
    config.session.keep_records = false;
    config.zone_overlap = 0.1;
    config.churn_move_per_tick = 0.0008;
    config.churn_depart_per_tick = 0.0002;

    const auto start = std::chrono::steady_clock::now();
    const core::DeploymentReport report =
        core::run_deployment(population, config, pool.get());
    const auto end = std::chrono::steady_clock::now();
    const double wall_s = std::chrono::duration<double>(end - start).count();
    const double tags_per_sec =
        wall_s > 0.0 ? static_cast<double>(point.tags) / wall_s : 0.0;
    all_verified = all_verified && report.verified;

    fleet.add_row({std::to_string(point.readers),
                   std::to_string(point.channels),
                   std::to_string(point.tags), std::to_string(report.ticks),
                   TablePrinter::num(wall_s, 3),
                   TablePrinter::num(tags_per_sec, 0),
                   report.verified ? "yes" : "NO"});
    csv.row({"fleet", std::to_string(point.readers),
             std::to_string(point.channels), std::to_string(point.tags), "",
             "", "", TablePrinter::num(wall_s, 4),
             TablePrinter::num(tags_per_sec, 0)});
    bench::RunManifest::instance().record("fleet-tpp", point.tags, 1, 1, 7);
  }
  fleet.print(std::cout);
  std::cout << "\nFleet rows exercise the full tick loop: channel-rotated"
               " scheduling,\nzone-overlap ownership, churn handoffs and the"
               " reader-ordered merge fold.\n";
  return all_verified ? 0 : 1;
}
