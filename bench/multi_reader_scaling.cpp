// Extension bench: multi-reader scaling (paper Section II-A's remark that
// the protocols extend to multiple readers once a collision-free schedule
// exists). Makespan vs number of portals under both schedules.
#include <iostream>

#include "bench_util.hpp"
#include "core/multi_reader.hpp"

int main() {
  using namespace rfid;
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 40000);
  bench::CsvSink csv("multi_reader_scaling");
  std::cout << "=== Extension: multi-reader sweep scaling (TPP, n = " << n
            << ", 1-bit) ===\n\n";

  Xoshiro256ss rng(6);
  const auto inventory = tags::TagPopulation::uniform_random(n, rng);

  TablePrinter table({"portals", "TDMA makespan (s)",
                      "parallel makespan (s)", "parallel speedup",
                      "covered once"});
  csv.row({"readers", "tdma_s", "parallel_s", "speedup"});
  double baseline = 0.0;
  for (const std::size_t readers : {1u, 2u, 4u, 8u}) {
    core::MultiReaderConfig config;
    config.readers = readers;
    config.session.seed = 99;
    config.schedule = core::ReaderSchedule::kTimeDivision;
    const auto tdma = core::run_multi_reader(inventory, config);
    config.schedule = core::ReaderSchedule::kSpatialParallel;
    const auto par = core::run_multi_reader(inventory, config);
    if (readers == 1) baseline = par.makespan_s;
    table.add_row({std::to_string(readers),
                   TablePrinter::num(tdma.makespan_s),
                   TablePrinter::num(par.makespan_s),
                   TablePrinter::num(baseline / par.makespan_s, 2) + "x",
                   (tdma.verified && par.verified) ? "yes" : "NO"});
    csv.row({std::to_string(readers), TablePrinter::num(tdma.makespan_s, 3),
             TablePrinter::num(par.makespan_s, 3),
             TablePrinter::num(baseline / par.makespan_s, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: TDMA makespan is flat (one shared channel);"
               "\nisolated zones scale near-linearly because the hash"
               " partition balances\nshares and TPP's vector length is"
               " population-independent.\n";
  return 0;
}
