// Table III: execution time (seconds) to collect 32-bit information. The
// paper reports multiples of the lower bound at n = 10^4: TPP 1.10x,
// MIC 1.28x, EHPP 1.31x, HPP 1.45x, CPP 4.14x.
#include "table_exec_common.hpp"

int main() {
  return rfid::bench::run_exec_table(
      "Table III: execution time to collect 32-bit information", 32, {});
}
