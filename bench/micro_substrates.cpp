// Microbenchmarks of the hot substrate paths (google-benchmark). These are
// engineering benchmarks, not paper reproductions: they bound how fast the
// simulator itself can turn over rounds.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/bitvec.hpp"
#include "common/crc.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "protocols/polling_tree.hpp"
#include "protocols/tree_polling.hpp"
#include "tags/population.hpp"

namespace {

using namespace rfid;

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256ss rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Xoshiro);

void BM_TagHash(benchmark::State& state) {
  Xoshiro256ss rng(2);
  const auto pop = tags::TagPopulation::uniform_random(1024, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tag_hash(42, pop[i & 1023].id()));
    ++i;
  }
}
BENCHMARK(BM_TagHash);

void BM_Crc16OfId(benchmark::State& state) {
  Xoshiro256ss rng(3);
  const auto pop = tags::TagPopulation::uniform_random(1024, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc16_of_id(pop[i & 1023].id()));
    ++i;
  }
}
BENCHMARK(BM_Crc16OfId);

void BM_BitVecAppend(benchmark::State& state) {
  for (auto _ : state) {
    BitVec v;
    for (int i = 0; i < 1024; ++i) v.append_bits(0x5A, 8);
    benchmark::DoNotOptimize(v.size());
  }
}
BENCHMARK(BM_BitVecAppend);

void BM_PollingTreeBuild(benchmark::State& state) {
  const auto h = static_cast<unsigned>(state.range(0));
  Xoshiro256ss rng(4);
  std::vector<std::uint32_t> indices;
  const std::size_t space = std::size_t{1} << h;
  std::vector<bool> used(space, false);
  while (indices.size() < space / 3) {
    const auto idx = static_cast<std::uint32_t>(rng.below(space));
    if (!used[idx]) {
      used[idx] = true;
      indices.push_back(idx);
    }
  }
  for (auto _ : state) {
    protocols::PollingTree tree(indices, h);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(indices.size()));
}
BENCHMARK(BM_PollingTreeBuild)->Arg(8)->Arg(12)->Arg(16);

void BM_SegmentsFromIndices(benchmark::State& state) {
  const auto h = static_cast<unsigned>(state.range(0));
  Xoshiro256ss rng(5);
  std::vector<std::uint32_t> indices;
  const std::size_t space = std::size_t{1} << h;
  std::vector<bool> used(space, false);
  while (indices.size() < space / 3) {
    const auto idx = static_cast<std::uint32_t>(rng.below(space));
    if (!used[idx]) {
      used[idx] = true;
      indices.push_back(idx);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        protocols::PollingTree::segments_from_indices(indices, h));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(indices.size()));
}
BENCHMARK(BM_SegmentsFromIndices)->Arg(8)->Arg(12)->Arg(16);

void BM_TppFullSession(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(6);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.keep_records = false;
  const protocols::Tpp tpp;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    benchmark::DoNotOptimize(tpp.run(pop, config).metrics.polls);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TppFullSession)->Arg(1000)->Arg(10000);

}  // namespace
