// Figure 9: TPP's analytical average vector length (Eqs. (6), (8), (11),
// (15)) against the number of tags. Paper shape: flat at ~3.38 bits, below
// the universal Eq.-(16) bound of 3.44 — 28x less than the 96-bit ID.
#include <iostream>

#include "analysis/tpp_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rfid;
  bench::CsvSink csv("fig09_tpp_vector_analysis");
  std::cout << "=== Fig. 9: TPP average vector length w (analytical) ===\n\n";

  TablePrinter table({"tags n", "w (bits)", "optimal h (round 1)",
                      "vs 96-bit ID"});
  csv.row({"n", "w_bits", "h1", "compression"});
  std::vector<std::size_t> ns = {1000, 5000};
  for (std::size_t n = 10000; n <= 100000; n += 10000) ns.push_back(n);
  for (const std::size_t n : ns) {
    const double w = analysis::tpp_predict_w(n);
    const unsigned h = analysis::tpp_optimal_index_length(n);
    table.add_row({std::to_string(n), TablePrinter::num(w, 3),
                   std::to_string(h),
                   TablePrinter::num(96.0 / w, 1) + "x"});
    csv.row({std::to_string(n), TablePrinter::num(w, 4), std::to_string(h),
             TablePrinter::num(96.0 / w, 2)});
  }
  table.print(std::cout);
  std::cout << "\nUniversal upper bound (Eq. 16): "
            << TablePrinter::num(analysis::tpp_universal_upper_bound(), 3)
            << " bits.\nPaper reference: w stable at ~3.38 for all n.\n";
  return 0;
}
