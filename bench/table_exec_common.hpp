// Shared harness for Tables I-III: execution time to collect l-bit
// information with CPP / HPP / EHPP / MIC / TPP, plus the C1G2 lower bound,
// over n in {100, 1000, 10000, 100000}.
#pragma once

#include <iostream>
#include <map>

#include "analysis/timing_model.hpp"
#include "bench_util.hpp"
#include "protocols/registry.hpp"

namespace rfid::bench {

/// Paper-reported values (seconds) at n = 10^4 where the text states them;
/// empty when the paper only gives ratios.
using PaperColumn = std::map<std::string, double>;

inline int run_exec_table(const std::string& caption, std::size_t info_bits,
                          const PaperColumn& paper_at_1e4) {
  const std::size_t trials = runs(5);
  const std::size_t cap = max_n(100000);
  CsvSink csv("table_exec_" + std::to_string(info_bits) + "bit");
  preamble(caption, trials);

  std::vector<std::size_t> ns;
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u})
    if (n <= cap) ns.push_back(n);

  const auto kinds = {protocols::ProtocolKind::kCpp,
                      protocols::ProtocolKind::kHpp,
                      protocols::ProtocolKind::kEhpp,
                      protocols::ProtocolKind::kMic,
                      protocols::ProtocolKind::kTpp};

  std::vector<std::string> headers{"protocol"};
  for (const std::size_t n : ns) headers.push_back("n=" + std::to_string(n));
  if (!paper_at_1e4.empty()) headers.push_back("paper @ n=1e4");
  TablePrinter table(headers);
  csv.row(headers);

  for (const auto kind : kinds) {
    const auto protocol = protocols::make_protocol(kind);
    std::vector<std::string> row{std::string(protocol->name())};
    for (const std::size_t n : ns) {
      const auto point =
          measure(*protocol, n, info_bits, trials, 7000 + info_bits);
      row.push_back(with_ci(point.time_s));
    }
    if (!paper_at_1e4.empty()) {
      const auto it = paper_at_1e4.find(std::string(protocol->name()));
      row.push_back(it == paper_at_1e4.end()
                        ? std::string("-")
                        : TablePrinter::num(it->second, 2));
    }
    table.add_row(row);
    csv.row(row);
  }

  std::vector<std::string> bound_row{"LowerBound"};
  for (const std::size_t n : ns)
    bound_row.push_back(
        TablePrinter::num(analysis::lower_bound_time_s(n, info_bits), 3));
  if (!paper_at_1e4.empty()) {
    const auto it = paper_at_1e4.find("LowerBound");
    bound_row.push_back(it == paper_at_1e4.end()
                            ? std::string("-")
                            : TablePrinter::num(it->second, 3));
  }
  table.add_row(bound_row);
  csv.row(bound_row);

  table.print(std::cout);
  std::cout << "\nShape check: TPP < MIC < EHPP < HPP < CPP at every n >="
               " 1000;\nEHPP == HPP at n = 100 (single circle).\n";
  return 0;
}

}  // namespace rfid::bench
