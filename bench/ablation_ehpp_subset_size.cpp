// Ablation: EHPP's subset size. Theorem 1 puts the optimum near l_c ln2 /
// mu; quartering or quadrupling it must cost vector bits — small subsets
// pay too many circle commands, large ones pay HPP's log-growth.
#include <iostream>

#include "analysis/ehpp_model.hpp"
#include "bench_util.hpp"
#include "protocols/enhanced_hash_polling.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(5);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 20000);
  bench::CsvSink csv("ablation_ehpp_subset_size");
  bench::preamble("Ablation: EHPP subset size around the Theorem-1 optimum",
                  trials);

  const std::size_t star = protocols::Ehpp().effective_subset_size();
  TablePrinter table({"subset size n'", "relative to n*", "w (bits)",
                      "time (s)", "circles"});
  csv.row({"subset", "rel", "w", "time_s", "circles"});
  const std::vector<std::pair<std::size_t, std::string>> settings = {
      {star / 4, "n*/4"}, {star / 2, "n*/2"}, {star, "n* (optimizer)"},
      {star * 2, "2 n*"}, {star * 4, "4 n*"},
  };
  for (const auto& [subset, label] : settings) {
    protocols::Ehpp ehpp(protocols::Ehpp::Config{.subset_size = subset});
    parallel::TrialPlan plan;
    plan.trials = trials;
    plan.master_seed = 555;
    bench::RunManifest::instance().record(ehpp.name(), n, 1, trials,
                                          plan.master_seed);
    const auto series =
        parallel::run_trials(ehpp, parallel::uniform_population(n), plan);
    RunningStats circles;
    // circles are not in TrialOutcome; re-derive from a single run
    // deterministically for display purposes only.
    Xoshiro256ss rng(derive_seed(555, 0));
    const auto pop = tags::TagPopulation::uniform_random(n, rng);
    sim::SessionConfig config;
    config.seed = derive_seed(555, 1);
    config.keep_records = false;
    const auto one = ehpp.run(pop, config);
    table.add_row({std::to_string(subset), label,
                   bench::with_ci(series.vector_bits()),
                   bench::with_ci(series.time_s(), 3),
                   std::to_string(one.metrics.circles)});
    csv.row({std::to_string(subset), label,
             TablePrinter::num(series.vector_bits().mean(), 3),
             TablePrinter::num(series.time_s().mean(), 4),
             std::to_string(one.metrics.circles)});
  }
  table.print(std::cout);
  std::cout << "\nShape check (n = " << n << ", l_c = 128): w is minimized"
            << " at the optimizer's n* = " << star << ".\n";
  return 0;
}
