// Ablation: ID-distribution sensitivity (paper Section II-B). The enhanced
// conventional baseline (Prefix-CPP) only helps when tags share category
// prefixes; the hash-based protocols are oblivious to the distribution.
#include <iostream>

#include "bench_util.hpp"
#include "protocols/conventional.hpp"
#include "protocols/tree_polling.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(5);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 10000);
  bench::CsvSink csv("ablation_prefix_clustering");
  bench::preamble("Ablation: ID clustering vs protocol choice", trials);

  const protocols::Cpp cpp;
  const protocols::PrefixCpp prefix_cpp;
  const protocols::Tpp tpp;

  const auto uniform = parallel::uniform_population(n);
  const auto clustered = [n](Xoshiro256ss& rng) {
    return tags::TagPopulation::prefix_clustered(n, 4, 32, rng);
  };

  TablePrinter table({"protocol", "uniform IDs time (s)",
                      "clustered IDs time (s)", "clustered speedup"});
  csv.row({"protocol", "uniform_s", "clustered_s", "speedup"});
  for (const protocols::PollingProtocol* protocol :
       std::initializer_list<const protocols::PollingProtocol*>{
           &cpp, &prefix_cpp, &tpp}) {
    parallel::TrialPlan plan;
    plan.trials = trials;
    plan.master_seed = 31337;
    bench::RunManifest::instance().record(protocol->name(), n, 1, trials,
                                          plan.master_seed);
    const auto u = parallel::run_trials(*protocol, uniform, plan);
    const auto c = parallel::run_trials(*protocol, clustered, plan);
    const double speedup = u.time_s().mean() / c.time_s().mean();
    table.add_row({std::string(protocol->name()),
                   bench::with_ci(u.time_s(), 3),
                   bench::with_ci(c.time_s(), 3),
                   TablePrinter::num(speedup, 2) + "x"});
    csv.row({std::string(protocol->name()),
             TablePrinter::num(u.time_s().mean(), 4),
             TablePrinter::num(c.time_s().mean(), 4),
             TablePrinter::num(speedup, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check (n = " << n
            << ", 4 categories, 32-bit prefixes): Prefix-CPP gains ~1.5x"
               "\nonly on clustered inventories; CPP and TPP are"
               " distribution-blind, and\nTPP beats Prefix-CPP's best case"
               " by an order of magnitude anyway.\n";
  return 0;
}
