// Figure 5: EHPP's analytical average vector length against the number of
// tags, for circle-command lengths l_c in {100, 200, 400}. Paper shape:
// each series is flat in n and longer commands cost more bits (e.g. ~7.94
// bits at n = 1e5 for l_c = 200).
#include <iostream>

#include "analysis/ehpp_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rfid;
  bench::CsvSink csv("fig05_ehpp_vector_analysis");
  std::cout << "=== Fig. 5: EHPP average vector length w (analytical) ===\n\n";

  const std::vector<double> lcs = {100.0, 200.0, 400.0};
  TablePrinter table({"tags n", "w @ l_c=100", "w @ l_c=200", "w @ l_c=400"});
  csv.row({"n", "w_lc100", "w_lc200", "w_lc400"});
  for (std::size_t n = 10000; n <= 100000; n += 10000) {
    std::vector<std::string> row{std::to_string(n)};
    std::vector<std::string> csv_row{std::to_string(n)};
    for (const double lc : lcs) {
      const double w = analysis::ehpp_predict_w(n, lc);
      row.push_back(TablePrinter::num(w, 2));
      csv_row.push_back(TablePrinter::num(w, 3));
    }
    table.add_row(std::move(row));
    csv.row(csv_row);
  }
  table.print(std::cout);
  std::cout << "\nShape check: every series is flat in n (contrast Fig. 3's"
               " growth for\nplain HPP) and w increases with l_c. Paper"
               " reference: ~7.94 bits at\nn = 1e5 with l_c = 200.\n";
  return 0;
}
