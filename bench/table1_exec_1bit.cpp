// Table I: execution time (seconds) to collect 1-bit information — the
// presence bit used for missing-tag/anti-theft monitoring.
#include "table_exec_common.hpp"

int main() {
  const rfid::bench::PaperColumn paper = {
      {"CPP", 37.70}, {"HPP", 8.12},        {"EHPP", 6.63},
      {"MIC", 5.15},  {"TPP", 4.39},        {"LowerBound", 3.248},
  };
  return rfid::bench::run_exec_table(
      "Table I: execution time to collect 1-bit information", 1, paper);
}
