// Ablation: TPP's index-length rule (Eq. (15) picks h so that the load
// factor n/2^h lies in [ln2, 2 ln2)). Offsetting h away from the optimum
// must lengthen the average polling vector in both directions — shorter
// indices collide too often, longer ones waste prefix bits.
#include <iostream>

#include "bench_util.hpp"
#include "protocols/tree_polling.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(5);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 20000);
  bench::CsvSink csv("ablation_tpp_index_length");
  bench::preamble("Ablation: TPP index length offset from Eq. (15) optimum",
                  trials);

  TablePrinter table({"h offset", "w (bits)", "time (s)", "rounds"});
  csv.row({"offset", "w", "time_s", "rounds"});
  for (const int offset : {-2, -1, 0, 1, 2}) {
    protocols::Tpp tpp(protocols::Tpp::Config{.index_length_offset = offset});
    parallel::TrialPlan plan;
    plan.trials = trials;
    plan.master_seed = 4242;
    bench::RunManifest::instance().record(tpp.name(), n, 1, trials,
                                          plan.master_seed);
    const auto series =
        parallel::run_trials(tpp, parallel::uniform_population(n), plan);
    table.add_row({std::to_string(offset), bench::with_ci(series.vector_bits()),
                   bench::with_ci(series.time_s(), 3),
                   bench::with_ci(series.rounds(), 1)});
    csv.row({std::to_string(offset),
             TablePrinter::num(series.vector_bits().mean(), 3),
             TablePrinter::num(series.time_s().mean(), 4),
             TablePrinter::num(series.rounds().mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nShape check (n = " << n
            << "): w is minimized at offset 0; negative offsets inflate"
               "\nround counts (collisions), positive ones inflate per-poll"
               " bits.\n";
  return 0;
}
