// Ablation: MIC's hash-count dilemma (paper Section VI). More hash
// functions cut the wasted-slot fraction (63.2% at k=1 down to ~13.9% at
// k=7) but inflate the per-slot indicator field and the tag's storage; the
// sweet spot depends on the payload length.
#include <iostream>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "protocols/mic.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(5);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 20000);
  bench::CsvSink csv("ablation_mic_hash_count");
  bench::preamble("Ablation: MIC hash count k (waste vs indicator size)",
                  trials);

  TablePrinter table({"k", "bits/slot", "waste fraction", "time l=1 (s)",
                      "time l=32 (s)"});
  csv.row({"k", "bits_per_slot", "waste", "time_1bit", "time_32bit"});
  for (unsigned k = 1; k <= 8; ++k) {
    const protocols::Mic mic(protocols::Mic::Config{.num_hashes = k});
    const auto p1 = bench::measure(mic, n, 1, trials, 600 + k);
    const auto p32 = bench::measure(mic, n, 32, trials, 700 + k);
    table.add_row({std::to_string(k), std::to_string(ceil_log2(k + 1)),
                   bench::with_ci(p1.waste, 3),
                   bench::with_ci(p1.time_s, 3),
                   bench::with_ci(p32.time_s, 3)});
    csv.row({std::to_string(k), std::to_string(ceil_log2(k + 1)),
             TablePrinter::num(p1.waste.mean(), 4),
             TablePrinter::num(p1.time_s.mean(), 4),
             TablePrinter::num(p32.time_s.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nShape check (n = " << n
            << "): waste falls monotonically with k (0.632 at k=1, ~0.139"
               "\nat k=7, the figures MIC's authors report) while the"
               " indicator grows;\ntime improvements flatten beyond k ~ 4."
               " TPP avoids the dilemma entirely\n(no indicator vector, no"
               " waste).\n";
  return 0;
}
