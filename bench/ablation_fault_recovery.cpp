// Ablation (extension beyond the paper): burst loss x retry budget. The
// link follows a Gilbert–Elliott burst-error process (scaled so its
// stationary loss hits each target rate) and the reader runs the bounded
// re-poll recovery policy. Small budgets trade undelivered tags for time;
// generous budgets restore complete collection at a modest retry cost,
// because short polling vectors keep each re-poll cheap.
#include <iostream>

#include "bench_util.hpp"
#include "protocols/registry.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(3);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 5000);
  bench::CsvSink csv("ablation_fault_recovery");
  bench::preamble(
      "Ablation (extension): burst loss x retry budget under recovery",
      trials);

  const std::vector<double> loss_rates = {0.05, 0.15, 0.30};
  const std::vector<std::uint32_t> budgets = {2, 8, 32};

  const std::vector<std::string> headers{"protocol", "loss", "budget",
                                         "time (s)",  "retries/tag",
                                         "undelivered/trial"};
  TablePrinter table(headers);
  csv.row(headers);

  for (const auto kind :
       {protocols::ProtocolKind::kHpp, protocols::ProtocolKind::kTpp}) {
    const auto protocol = protocols::make_protocol(kind);
    for (const double loss : loss_rates) {
      for (const std::uint32_t budget : budgets) {
        parallel::TrialPlan plan;
        plan.trials = trials;
        plan.master_seed = 2025;
        plan.session.info_bits = 1;
        // Bad state always garbles; the entry rate is scaled so the chain's
        // stationary bad-state share — and hence its stationary loss —
        // equals the target rate: pi_bad = p_gb / (p_gb + p_bg) = loss.
        auto& ge = plan.session.fault.gilbert_elliott;
        plan.session.fault.link = fault::LinkModel::kGilbertElliott;
        ge.loss_good = 0.0;
        ge.loss_bad = 1.0;
        ge.p_bad_to_good = 0.4;
        ge.p_good_to_bad = 0.4 * loss / (1.0 - loss);
        plan.session.recovery.enabled = true;
        plan.session.recovery.retry_budget = budget;
        bench::RunManifest::instance().record(protocol->name(), n, 1, trials,
                                              plan.master_seed);
        const auto series = parallel::run_trials(
            *protocol, parallel::uniform_population(n), plan);
        const double per_trial = 1.0 / static_cast<double>(trials);
        const std::vector<std::string> row{
            std::string(protocol->name()),
            TablePrinter::num(loss, 2),
            std::to_string(budget),
            bench::with_ci(series.time_s()),
            TablePrinter::num(static_cast<double>(series.totals.retries) *
                                  per_trial / static_cast<double>(n),
                              3),
            TablePrinter::num(
                static_cast<double>(series.totals.undelivered) * per_trial,
                2)};
        table.add_row(row);
        csv.row(row);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check (n = " << n
            << "): undelivered/trial falls to 0 as the budget grows; time"
               "\nrises with loss but stays within ~1/(1-loss) of the clean"
               " run once\nthe budget is generous.\n";
  return 0;
}
