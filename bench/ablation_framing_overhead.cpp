// Ablation (extension beyond the paper): downlink BER x segment size x
// protocol under CRC-framed segmented broadcast. Each 20-bit frame header
// (4-bit sequence + 16-bit CRC) buys corruption detection; retransmission
// with bounded backoff buys delivery. The sweep shows the three regimes:
//   * clean channel   — framing costs pure overhead (20/S extra bits per
//                       payload bit), so large segments win;
//   * moderate BER    — small segments win: a flip throws away less payload
//                       and the per-frame clean probability (1-ber)^bits
//                       stays workable;
//   * heavy BER       — static TPP drowns in retransmissions of its long
//                       vector; ADAPT downgrades towards HPP's short
//                       per-tag segments and finishes sooner.
// The "w bits/tag" column is the paper's polling-vector metric; TPP's
// clean-channel value sits near the 3.44 bits/tag bound of Eq. (16), and
// the overhead column shows exactly what framing adds on top.
#include <iostream>

#include "bench_util.hpp"
#include "protocols/registry.hpp"

int main() {
  using namespace rfid;
  const std::size_t trials = bench::runs(3);
  const std::size_t n = std::min<std::size_t>(bench::max_n(100000), 2000);
  bench::CsvSink csv("ablation_framing_overhead");
  bench::preamble(
      "Ablation (extension): downlink BER x segment size under CRC framing",
      trials);

  // 0.07 sits just past the TPP->HPP cost crossover for 32-bit segments
  // (TPP loses once its per-delivery retransmission factor exceeds the
  // HPP/TPP vector-length ratio of ~4x), so the adaptive row visibly
  // diverges from static TPP there.
  const std::vector<double> bers = {0.0, 0.001, 0.01, 0.05, 0.07, 0.1};
  const std::vector<unsigned> segment_bits = {16, 32, 64};

  const std::vector<std::string> headers{
      "protocol", "ber",          "seg bits",          "time (s)",
      "w/tag",    "overhead/tag", "undelivered/trial"};
  TablePrinter table(headers);
  csv.row(headers);

  for (const auto kind :
       {protocols::ProtocolKind::kHpp, protocols::ProtocolKind::kTpp,
        protocols::ProtocolKind::kAdaptive}) {
    const auto protocol = protocols::make_protocol(kind);
    for (const double ber : bers) {
      for (const unsigned seg : segment_bits) {
        parallel::TrialPlan plan;
        plan.trials = trials;
        plan.master_seed = 2025;
        plan.session.info_bits = 1;
        plan.session.fault.downlink_ber = ber;
        plan.session.framing.enabled = true;
        plan.session.framing.segment_payload_bits = seg;
        // A deep retransmission ladder keeps the moderate-BER cells
        // deliverable, so the undelivered column isolates the truly
        // hopeless (heavy-BER, long-frame) corner.
        plan.session.framing.max_retransmissions = 16;
        plan.session.recovery.enabled = true;
        plan.session.recovery.retry_budget = 12;
        bench::RunManifest::instance().record(protocol->name(), n, 1, trials,
                                              plan.master_seed);
        const auto series = parallel::run_trials(
            *protocol, parallel::uniform_population(n), plan);
        const double per_tag =
            1.0 / (static_cast<double>(trials) * static_cast<double>(n));
        const std::vector<std::string> row{
            std::string(protocol->name()),
            TablePrinter::num(ber, 3),
            std::to_string(seg),
            bench::with_ci(series.time_s()),
            TablePrinter::num(series.vector_bits().mean(), 2),
            TablePrinter::num(
                static_cast<double>(series.totals.framing_overhead_bits) *
                    per_tag,
                2),
            TablePrinter::num(
                static_cast<double>(series.totals.undelivered) /
                    static_cast<double>(trials),
                1)};
        table.add_row(row);
        csv.row(row);
      }
    }
  }
  table.print(std::cout);
  std::cout
      << "\nShape check (n = " << n
      << "): TPP's clean-channel w/tag approaches the paper's 3.44-bit"
         "\nbound (Eq. 16) and framing adds ~20/S bits of overhead per"
         " payload bit.\nAt BER 0 ADAPT matches TPP exactly. Past the"
         " crossover (BER ~0.05-0.07,\nlarge segments) ADAPT downgrades"
         " (TPP->EHPP->HPP) and beats static TPP\nin air time; at BER 0.1"
         " it trades time for far fewer stranded tags.\n";
  return 0;
}
