// Clang thread-safety-analysis capability annotations.
//
// The macros expand to Clang's `capability` attribute family when the
// compiler understands it and to nothing otherwise (GCC builds compile the
// same sources unannotated). Building with
//
//   -Wthread-safety -Werror=thread-safety-analysis
//
// turns lock-discipline violations — touching a GUARDED_BY member without
// its mutex, returning with a capability still held, calling a REQUIRES
// function unlocked — into compile errors instead of TSan findings at
// runtime. The annotated lock types live in common/mutex.hpp; the analysis
// conventions are documented in docs/static_analysis.md.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define RFID_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RFID_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (a lock). The string names the capability
/// kind in diagnostics ("mutex").
#define RFID_CAPABILITY(x) RFID_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define RFID_SCOPED_CAPABILITY RFID_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define RFID_GUARDED_BY(x) RFID_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define RFID_PT_GUARDED_BY(x) RFID_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define RFID_ACQUIRE(...) \
  RFID_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RFID_ACQUIRE_SHARED(...) \
  RFID_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define RFID_RELEASE(...) \
  RFID_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RFID_RELEASE_SHARED(...) \
  RFID_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function may be called only while holding the capability.
#define RFID_REQUIRES(...) \
  RFID_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RFID_REQUIRES_SHARED(...) \
  RFID_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function may be called only while NOT holding the capability (deadlock
/// guard for non-reentrant locks).
#define RFID_EXCLUDES(...) RFID_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// try_lock-style function: acquires the capability iff it returns `r`.
#define RFID_TRY_ACQUIRE(r, ...) \
  RFID_THREAD_ANNOTATION(try_acquire_capability(r, __VA_ARGS__))

/// Runtime assertion that the calling thread already holds the capability.
/// Used inside lambdas (condition-variable predicates) whose enclosing
/// lock the intra-procedural analysis cannot see.
#define RFID_ASSERT_CAPABILITY(x) \
  RFID_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define RFID_RETURN_CAPABILITY(x) RFID_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only for
/// init/teardown paths the analysis cannot model, with a comment saying why.
#define RFID_NO_THREAD_SAFETY_ANALYSIS \
  RFID_THREAD_ANNOTATION(no_thread_safety_analysis)
