// Backend implementations for common/simd.hpp. This is the only TU with
// vector intrinsics; each x86 kernel carries its own `target` attribute,
// so the TU needs no ISA compile flags, the scalar reference stays
// baseline-ISA, and one binary runs safely on any CPU of its architecture
// (best_backend() never hands out a backend the running CPU lacks).
// RFID_SIMD=ON/OFF builds differ in exactly this one object file.
#include "common/simd.hpp"

#include "common/hash.hpp"

#if defined(RFID_SIMD_ENABLED) && RFID_SIMD_ENABLED
#if defined(__x86_64__) || defined(__amd64__)
#include <immintrin.h>
#define RFID_SIMD_X86 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#define RFID_SIMD_NEON 1
#endif
#endif

#include <bit>

namespace rfid::simd {
namespace {

void hash_indices_scalar(std::uint64_t seed, const std::uint64_t* id_hi,
                         const std::uint64_t* id_lo, std::uint32_t* out,
                         std::size_t n, unsigned h) noexcept {
  if (h == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const unsigned shift = 64u - h;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        tag_hash_words(seed, id_hi[i], id_lo[i]) >> shift);
  }
}

std::size_t count_singletons_scalar(const std::uint32_t* counts,
                                    std::size_t f) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < f; ++i) total += counts[i] == 1 ? 1u : 0u;
  return total;
}

std::size_t compact_nonsingletons_scalar(const std::uint32_t* counts,
                                         const std::uint32_t* slot,
                                         std::uint64_t* col_a,
                                         std::uint64_t* col_b,
                                         std::uint64_t* col_c,
                                         std::size_t start, std::size_t n,
                                         std::size_t write) noexcept {
  // Branchless stable compaction: always copy element i to the write
  // cursor (write <= i makes that a self-copy at worst), advance the
  // cursor only for survivors. Survival is close to a coin flip per
  // element, so a conditional copy would eat a branch mispredict each.
  // Doubles as the tail loop of the vector kernels, hence the explicit
  // start/write cursors.
  for (std::size_t i = start; i < n; ++i) {
    const std::size_t keep = counts[slot[i]] != 1 ? 1u : 0u;
    col_a[write] = col_a[i];
    col_b[write] = col_b[i];
    col_c[write] = col_c[i];
    write += keep;
  }
  return write;
}

#if defined(RFID_SIMD_X86)

// GCC 12's avx512 intrinsic headers expand the no-mask conversion forms
// through an undefined-value placeholder that -Wmaybe-uninitialized flags
// (a known header false positive); scoped suppression keeps the
// warnings-as-errors CI lanes clean without loosening the project flags.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// --- AVX2 (4 × 64-bit lanes) ----------------------------------------------

// AVX2 has no 64×64→64 multiply; compose it from 32×32→64 partials:
// a*b = lo(a)*lo(b) + ((hi(a)*lo(b) + lo(a)*hi(b)) << 32).
__attribute__((target("avx2"))) inline __m256i mul64(__m256i a,
                                                     __m256i b) noexcept {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

// Four lanes of rfid::mix64 (murmur3 fmix64), op-for-op.
__attribute__((target("avx2"))) inline __m256i mix64x4(__m256i x) noexcept {
  const __m256i m1 =
      _mm256_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i m2 =
      _mm256_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = mul64(x, m1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = mul64(x, m2);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  return x;
}

__attribute__((target("avx2"))) void hash_indices_avx2(
    std::uint64_t seed, const std::uint64_t* id_hi, const std::uint64_t* id_lo,
    std::uint32_t* out, std::size_t n, unsigned h) noexcept {
  if (h == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const __m256i seeded = _mm256_set1_epi64x(
      static_cast<long long>(mix64(seed ^ 0x2545f4914f6cdd1dULL)));
  const __m256i golden =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(64u - h));
  // Indices are < 2^30, so each 64-bit lane's low dword carries the whole
  // value; pack dwords 0,2,4,6 into the low 128 bits and store four u32.
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(id_hi + i));
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(id_lo + i));
    __m256i acc = mix64x4(_mm256_xor_si256(seeded, hi));
    acc = mix64x4(_mm256_xor_si256(acc, mul64(lo, golden)));
    const __m256i idx = _mm256_srl_epi64(acc, shift);
    const __m256i packed = _mm256_permutevar8x32_epi32(idx, pack);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(packed));
  }
  hash_indices_scalar(seed, id_hi + i, id_lo + i, out + i, n - i, h);
}

__attribute__((target("avx2"))) std::size_t count_singletons_avx2(
    const std::uint32_t* counts, std::size_t f) noexcept {
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 8 <= f; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i));
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(c, one)));
    total += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(mask)));
  }
  return total + count_singletons_scalar(counts + i, f - i);
}

// --- AVX-512 (8 × 64-bit lanes) -------------------------------------------
//
// AVX-512DQ brings the native 64×64→64 multiply (vpmullq) the AVX2 kernel
// has to emulate with three 32-bit partials, so each fmix64 round is one
// multiply per step across eight lanes — the widest and cheapest path for
// the round hash.

// Eight lanes of rfid::mix64 (murmur3 fmix64), op-for-op.
__attribute__((target("avx512f,avx512dq"))) inline __m512i mix64x8(
    __m512i x) noexcept {
  const __m512i m1 =
      _mm512_set1_epi64(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m512i m2 =
      _mm512_set1_epi64(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  x = _mm512_mullo_epi64(x, m1);
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  x = _mm512_mullo_epi64(x, m2);
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  return x;
}

__attribute__((target("avx512f,avx512dq"))) void hash_indices_avx512(
    std::uint64_t seed, const std::uint64_t* id_hi, const std::uint64_t* id_lo,
    std::uint32_t* out, std::size_t n, unsigned h) noexcept {
  if (h == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const __m512i seeded = _mm512_set1_epi64(
      static_cast<long long>(mix64(seed ^ 0x2545f4914f6cdd1dULL)));
  const __m512i golden =
      _mm512_set1_epi64(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(64u - h));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i hi = _mm512_loadu_si512(id_hi + i);
    const __m512i lo = _mm512_loadu_si512(id_lo + i);
    __m512i acc = mix64x8(_mm512_xor_si512(seeded, hi));
    acc = mix64x8(
        _mm512_xor_si512(acc, _mm512_mullo_epi64(lo, golden)));
    const __m512i idx = _mm512_srl_epi64(acc, shift);
    // Indices are < 2^30: the truncating 64→32 narrow keeps every value.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi64_epi32(idx));
  }
  hash_indices_scalar(seed, id_hi + i, id_lo + i, out + i, n - i, h);
}

__attribute__((target("avx512f,avx512dq"))) std::size_t
compact_nonsingletons_avx512(const std::uint32_t* counts,
                             const std::uint32_t* slot, std::uint64_t* col_a,
                             std::uint64_t* col_b, std::uint64_t* col_c,
                             std::size_t n) noexcept {
  // Gather each element's bucket count through its slot, build the keep
  // mask, and compress-store the survivors of all three columns. The
  // compress store writes exactly popcount(keep) elements at the write
  // cursor, and write + popcount <= i + 8 always, so the stores never
  // touch elements the next iteration still has to load.
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t write = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slot + i));
    const __m256i cnt =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(counts), s, 4);
    const unsigned drop = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(cnt, one))));
    const __mmask8 keep = static_cast<__mmask8>(~drop & 0xFFu);
    const __m512i va = _mm512_loadu_si512(col_a + i);
    const __m512i vb = _mm512_loadu_si512(col_b + i);
    const __m512i vc = _mm512_loadu_si512(col_c + i);
    _mm512_mask_compressstoreu_epi64(col_a + write, keep, va);
    _mm512_mask_compressstoreu_epi64(col_b + write, keep, vb);
    _mm512_mask_compressstoreu_epi64(col_c + write, keep, vc);
    write += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(keep)));
  }
  return compact_nonsingletons_scalar(counts, slot, col_a, col_b, col_c, i, n,
                                      write);
}

__attribute__((target("avx512f,avx512dq"))) std::size_t
count_singletons_avx512(const std::uint32_t* counts, std::size_t f) noexcept {
  const __m512i one = _mm512_set1_epi32(1);
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 16 <= f; i += 16) {
    const __mmask16 mask =
        _mm512_cmpeq_epi32_mask(_mm512_loadu_si512(counts + i), one);
    total += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(mask)));
  }
  return total + count_singletons_scalar(counts + i, f - i);
}

#pragma GCC diagnostic pop

#endif  // RFID_SIMD_X86

#if defined(RFID_SIMD_NEON)

// NEON (AArch64) has no 64×64 vector multiply either; same 32×32→64
// composition as the AVX2 backend, via vmull/vmlal.
inline uint64x2_t mul64(uint64x2_t a, uint64x2_t b) noexcept {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  uint64x2_t cross = vmull_u32(a_hi, b_lo);
  cross = vmlal_u32(cross, a_lo, b_hi);
  return vaddq_u64(vmull_u32(a_lo, b_lo), vshlq_n_u64(cross, 32));
}

inline uint64x2_t mix64x2(uint64x2_t x) noexcept {
  const uint64x2_t m1 = vdupq_n_u64(0xff51afd7ed558ccdULL);
  const uint64x2_t m2 = vdupq_n_u64(0xc4ceb9fe1a85ec53ULL);
  x = veorq_u64(x, vshrq_n_u64(x, 33));
  x = mul64(x, m1);
  x = veorq_u64(x, vshrq_n_u64(x, 33));
  x = mul64(x, m2);
  x = veorq_u64(x, vshrq_n_u64(x, 33));
  return x;
}

void hash_indices_neon(std::uint64_t seed, const std::uint64_t* id_hi,
                       const std::uint64_t* id_lo, std::uint32_t* out,
                       std::size_t n, unsigned h) noexcept {
  if (h == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const uint64x2_t seeded = vdupq_n_u64(mix64(seed ^ 0x2545f4914f6cdd1dULL));
  const uint64x2_t golden = vdupq_n_u64(0x9e3779b97f4a7c15ULL);
  // vshlq_u64 with a negative per-lane count is a logical right shift.
  const int64x2_t shift = vdupq_n_s64(-static_cast<std::int64_t>(64u - h));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t hi = vld1q_u64(id_hi + i);
    const uint64x2_t lo = vld1q_u64(id_lo + i);
    uint64x2_t acc = mix64x2(veorq_u64(seeded, hi));
    acc = mix64x2(veorq_u64(acc, mul64(lo, golden)));
    const uint64x2_t idx = vshlq_u64(acc, shift);
    out[i] = static_cast<std::uint32_t>(vgetq_lane_u64(idx, 0));
    out[i + 1] = static_cast<std::uint32_t>(vgetq_lane_u64(idx, 1));
  }
  hash_indices_scalar(seed, id_hi + i, id_lo + i, out + i, n - i, h);
}

std::size_t count_singletons_neon(const std::uint32_t* counts,
                                  std::size_t f) noexcept {
  const uint32x4_t one = vdupq_n_u32(1);
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 4 <= f; i += 4) {
    const uint32x4_t eq = vceqq_u32(vld1q_u32(counts + i), one);
    acc = vaddq_u64(acc, vpaddlq_u32(vshrq_n_u32(eq, 31)));
  }
  const std::size_t total = static_cast<std::size_t>(
      vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1));
  return total + count_singletons_scalar(counts + i, f - i);
}

#endif  // RFID_SIMD_NEON

#if defined(RFID_SIMD_X86)
Backend detect_backend() noexcept {
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq"))
    return Backend::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
  return Backend::kScalar;
}
#endif

}  // namespace

Backend best_backend() noexcept {
#if defined(RFID_SIMD_X86)
  static const Backend detected = detect_backend();
  return detected;
#elif defined(RFID_SIMD_NEON)
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

std::size_t lanes() noexcept {
  switch (best_backend()) {
    case Backend::kAvx512:
      return 8;
    case Backend::kAvx2:
      return 4;
    case Backend::kNeon:
      return 2;
    case Backend::kScalar:
      return 1;
  }
  return 1;
}

void hash_indices(std::uint64_t seed, const std::uint64_t* id_hi,
                  const std::uint64_t* id_lo, std::uint32_t* out,
                  std::size_t n, unsigned h, Backend backend) {
  // A requested backend is honoured only when compiled in AND supported by
  // the running CPU (best_backend gates the latter); anything else falls
  // back to the scalar reference, which is byte-identical by the lane→tag
  // rule.
#if defined(RFID_SIMD_X86)
  if (backend == Backend::kAvx512 && best_backend() == Backend::kAvx512) {
    hash_indices_avx512(seed, id_hi, id_lo, out, n, h);
    return;
  }
  if (backend == Backend::kAvx2 && best_backend() != Backend::kScalar) {
    hash_indices_avx2(seed, id_hi, id_lo, out, n, h);
    return;
  }
#elif defined(RFID_SIMD_NEON)
  if (backend == Backend::kNeon) {
    hash_indices_neon(seed, id_hi, id_lo, out, n, h);
    return;
  }
#endif
  (void)backend;
  hash_indices_scalar(seed, id_hi, id_lo, out, n, h);
}

std::size_t count_singletons(const std::uint32_t* counts, std::size_t f,
                             Backend backend) {
#if defined(RFID_SIMD_X86)
  if (backend == Backend::kAvx512 && best_backend() == Backend::kAvx512)
    return count_singletons_avx512(counts, f);
  if (backend == Backend::kAvx2 && best_backend() != Backend::kScalar)
    return count_singletons_avx2(counts, f);
#elif defined(RFID_SIMD_NEON)
  if (backend == Backend::kNeon) return count_singletons_neon(counts, f);
#endif
  (void)backend;
  return count_singletons_scalar(counts, f);
}

std::size_t compact_nonsingletons(const std::uint32_t* counts,
                                  const std::uint32_t* slot,
                                  std::uint64_t* col_a, std::uint64_t* col_b,
                                  std::uint64_t* col_c, std::size_t n,
                                  Backend backend) {
  // Only AVX-512 has the masked compress store; every other backend runs
  // the scalar reference, which keeps exactly the same elements in the
  // same order.
#if defined(RFID_SIMD_X86)
  if (backend == Backend::kAvx512 && best_backend() == Backend::kAvx512)
    return compact_nonsingletons_avx512(counts, slot, col_a, col_b, col_c, n);
#endif
  (void)backend;
  return compact_nonsingletons_scalar(counts, slot, col_a, col_b, col_c, 0, n,
                                      0);
}

}  // namespace rfid::simd
