// Streaming statistics for Monte-Carlo trials.
//
// Every table and figure in the paper is the average of repeated simulation
// runs; RunningStats accumulates mean/variance in one pass (Welford) and the
// benches report 95% confidence half-widths alongside the paper's numbers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rfid {

/// One-pass mean/variance accumulator (Welford's algorithm).
class RunningStats final {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel trial reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson chi-square statistic for observed counts vs a uniform expectation.
/// Used by the hash-quality tests.
[[nodiscard]] double chi_square_uniform(std::span<const std::size_t> observed);

/// Pearson chi-square statistic for observed counts vs arbitrary category
/// probabilities (which must sum to ~1). Cells whose expected count is zero
/// contribute nothing when observed is also zero and +inf otherwise. Used by
/// the fault-model tests to compare empirical loss against closed forms.
[[nodiscard]] double chi_square_expected(
    std::span<const std::size_t> observed,
    std::span<const double> probabilities);

/// 99% critical value of the chi-square distribution with `dof` degrees of
/// freedom (Wilson–Hilferty approximation; adequate for dof >= 10).
[[nodiscard]] double chi_square_critical_99(std::size_t dof);

}  // namespace rfid
