#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

namespace rfid {

double relative_difference(double a, double b) noexcept {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) / scale;
}

}  // namespace rfid
