// CRC implementations used by the air-interface framing.
//
// C1G2 protects tag replies with CRC-16/CCITT (poly 0x1021) and short
// handle replies with CRC-5. The coded-polling baseline additionally uses
// CRC-16 to let a tag validate whether a coded frame addresses it.
#pragma once

#include <cstdint>
#include <span>

#include "common/tag_id.hpp"

namespace rfid {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no xorout).
[[nodiscard]] std::uint16_t crc16_ccitt(
    std::span<const std::uint8_t> bytes) noexcept;

/// CRC-16 over the 12 bytes of a 96-bit tag ID (big-endian word order).
[[nodiscard]] std::uint16_t crc16_of_id(const TagId& id) noexcept;

/// CRC-5 as specified by C1G2 (poly x^5+x^3+1 = 0x09, init 0b01001),
/// computed over the lowest `nbits` bits of `value` (MSB first).
[[nodiscard]] std::uint8_t crc5_c1g2(std::uint32_t value,
                                     unsigned nbits) noexcept;

}  // namespace rfid
