#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace rfid {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RFID_EXPECTS(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RFID_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string TablePrinter::num(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

}  // namespace rfid
