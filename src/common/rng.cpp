#include "common/rng.hpp"

namespace rfid {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Xoshiro256ss::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  if (bound == 0) return 0;  // degenerate; callers guard via RFID_EXPECTS
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256ss::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256ss::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

void Xoshiro256ss::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)(*this)();
    }
  }
  s_ = acc;
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  std::uint64_t sm = master ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  (void)splitmix64_next(sm);
  return splitmix64_next(sm);
}

}  // namespace rfid
