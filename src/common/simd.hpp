// Portable batched kernels for the hash-polling hot path.
//
// The per-round work every protocol in the family shares — computing
// H(r, id) for all awake tags and sifting the bucket histogram for
// singletons — is data-parallel over the structure-of-arrays population
// view (tags::TagSoA). This wrapper exposes that work as flat-array
// kernels with four backends: a scalar reference, AVX-512 (8 × 64-bit
// lanes), AVX2 (4 × 64-bit lanes), and NEON (2 × 64-bit lanes). Vector
// backends are compiled in at configure time via the RFID_SIMD CMake
// option; among the compiled-in backends the widest one the *running* CPU
// supports is picked at startup (best_backend), so one binary is safe on
// any machine of its architecture. The implementation lives in simd.cpp —
// the only translation unit containing vector intrinsics (each kernel
// carries its own `target` attribute) — so the rest of the build is
// bit-for-bit independent of the option.
//
// Lane→tag determinism rule: out[i] depends ONLY on (seed, id_hi[i],
// id_lo[i], h) — never on the lane position, the vector width, or a
// neighbouring element. Every backend evaluates the exact scalar chain
// rfid::tag_hash_words lane-by-lane, so scalar and SIMD builds (and any
// future wider backend) produce byte-identical simulation results. The
// scalar/SIMD cross-check in CI and tests/test_simd.cpp enforce this.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rfid::simd {

enum class Backend : std::uint8_t { kScalar, kAvx2, kAvx512, kNeon };

[[nodiscard]] constexpr const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kAvx512:
      return "avx512";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
      return "scalar";
  }
  return "scalar";
}

/// The widest backend this build compiled in AND the running CPU supports
/// (kScalar when RFID_SIMD is OFF or neither holds). Constant for the
/// process lifetime, so callers may cache it.
[[nodiscard]] Backend best_backend() noexcept;

/// 64-bit lanes of best_backend(): 8 (AVX-512), 4 (AVX2), 2 (NEON),
/// 1 (scalar). Tests use this to pin the lane-tail edge cases
/// (n = width ± 1).
[[nodiscard]] std::size_t lanes() noexcept;

/// Batched H(r, id) index pick: out[i] = tag_hash_words(seed, id_hi[i],
/// id_lo[i]) >> (64 - h) for all i < n (h == 0 yields index 0), exactly
/// the scalar tag_index_pow2 per element. Requesting a backend that is
/// not compiled in (or not supported by the running CPU) falls back to
/// the scalar reference — same results by the lane→tag rule above, only
/// slower.
void hash_indices(std::uint64_t seed, const std::uint64_t* id_hi,
                  const std::uint64_t* id_lo, std::uint32_t* out,
                  std::size_t n, unsigned h, Backend backend);

/// Number of buckets with exactly one occupant in counts[0..f): the
/// singleton polls a clean round will issue.
[[nodiscard]] std::size_t count_singletons(const std::uint32_t* counts,
                                           std::size_t f, Backend backend);

/// In-place stable compaction of three parallel 64-bit columns: element i
/// survives iff counts[slot[i]] != 1 (its bucket was not a singleton).
/// Survivors keep their relative order; returns the surviving count. The
/// keep decision depends only on counts[slot[i]], so every backend keeps
/// exactly the same elements in the same order (AVX-512 uses masked
/// compress stores; backends without compress fall back to the scalar
/// reference). The columns are opaque 64-bit payloads — TagSoA passes its
/// Tag-pointer column reinterpreted as u64, which the kernels only ever
/// copy, never interpret.
std::size_t compact_nonsingletons(const std::uint32_t* counts,
                                  const std::uint32_t* slot,
                                  std::uint64_t* col_a, std::uint64_t* col_b,
                                  std::uint64_t* col_c, std::size_t n,
                                  Backend backend);

}  // namespace rfid::simd
