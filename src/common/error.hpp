// Lightweight contract checks used across the library.
//
// RFID_EXPECTS / RFID_ENSURES throw std::logic_error on violation instead of
// aborting: the simulator is frequently embedded in test harnesses that want
// to observe a contract failure as a catchable error.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace rfid {

/// Error thrown when a precondition or invariant of the simulator is violated.
class ContractViolation final : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// Error thrown when a protocol observes physically impossible channel
/// behaviour (e.g. two tags answering a poll that must be exclusive).
class ProtocolError final : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::source_location loc) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          loc.file_name() + ":" + std::to_string(loc.line()));
}
}  // namespace detail

}  // namespace rfid

#define RFID_EXPECTS(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::rfid::detail::contract_fail("precondition", #cond,                 \
                                    std::source_location::current());      \
  } while (false)

#define RFID_ENSURES(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::rfid::detail::contract_fail("invariant", #cond,                    \
                                    std::source_location::current());      \
  } while (false)
