#include "common/hash.hpp"

#include "common/error.hpp"

namespace rfid {

std::uint64_t tag_hash(std::uint64_t seed, const TagId& id) noexcept {
  const auto hi = (static_cast<std::uint64_t>(id.words[0]) << 32) | id.words[1];
  const auto lo = static_cast<std::uint64_t>(id.words[2]);
  return tag_hash_words(seed, hi, lo);
}

std::uint32_t tag_index_pow2(std::uint64_t seed, const TagId& id,
                             unsigned h) noexcept {
  if (h == 0) return 0;
  const std::uint64_t value = tag_hash(seed, id);
  // Use the high bits: the low bits of multiplicative mixes are weakest.
  return static_cast<std::uint32_t>(value >> (64 - h));
}

std::uint64_t tag_index_mod(std::uint64_t seed, const TagId& id,
                            std::uint64_t modulus) noexcept {
  if (modulus == 0) return 0;
  return tag_hash(seed, id) % modulus;
}

std::uint64_t tag_hash_family(std::uint64_t seed, unsigned j,
                              const TagId& id) noexcept {
  return tag_hash(mix64(seed + 0x632be59bd9b4e019ULL * (j + 1)), id);
}

}  // namespace rfid
