#include "common/crc.hpp"

#include <array>

namespace rfid {

namespace {
constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint16_t>((crc & 0x8000u) ? (crc << 1) ^ 0x1021u
                                                       : (crc << 1));
    }
    table[i] = crc;
  }
  return table;
}
// Thread-safety audit (RFID_THREADS > 1): kCrc16Table is constexpr, so it
// is materialized at compile time into read-only storage — there is no
// runtime first-use initialization for concurrent first callers to race on.
// (A lazily-initialized `static` local or a runtime-filled table would need
// a guard here; this one must stay constexpr.) The static_assert pins the
// compile-time evaluation so a refactor that silently demotes it to runtime
// init fails to build.
constexpr auto kCrc16Table = make_crc16_table();
static_assert(kCrc16Table[1] == 0x1021 && kCrc16Table[255] == 0x1EF0,
              "CRC-16 table must be a compile-time constant");
}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> bytes) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (const std::uint8_t b : bytes) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kCrc16Table[((crc >> 8) ^ b) & 0xFF]);
  }
  return crc;
}

std::uint16_t crc16_of_id(const TagId& id) noexcept {
  std::array<std::uint8_t, 12> bytes{};
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t b = 0; b < 4; ++b) {
      bytes[w * 4 + b] =
          static_cast<std::uint8_t>(id.words[w] >> (8 * (3 - b)));
    }
  }
  return crc16_ccitt(bytes);
}

std::uint8_t crc5_c1g2(std::uint32_t value, unsigned nbits) noexcept {
  std::uint8_t crc = 0b01001;
  for (unsigned i = 0; i < nbits; ++i) {
    const bool bit = (value >> (nbits - 1 - i)) & 1u;
    const bool msb = (crc >> 4) & 1u;
    crc = static_cast<std::uint8_t>((crc << 1) & 0x1F);
    if (bit != msb) crc ^= 0x09;
  }
  return crc;
}

}  // namespace rfid
