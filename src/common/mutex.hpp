// Annotated lock types for the Clang thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so code locking
// it is invisible to -Wthread-safety. Mutex wraps std::mutex as an
// annotated capability and MutexLock is the annotated scoped guard; both
// are zero-overhead forwards. Condition-variable waits go through
// std::condition_variable_any, which accepts Mutex directly (it is
// BasicLockable); predicates that read GUARDED_BY members call
// Mutex::assert_held() first, because the analysis cannot see through the
// wait's unlock/relock cycle into the predicate lambda.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace rfid {

/// std::mutex as a Clang thread-safety capability.
class RFID_CAPABILITY("mutex") Mutex final {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RFID_ACQUIRE() { mutex_.lock(); }
  void unlock() RFID_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() RFID_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// Declares (to the analysis) that the calling thread holds the mutex.
  /// Call at the top of condition-variable predicates.
  void assert_held() const RFID_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mutex_;
};

/// Scoped lock of a Mutex, visible to the thread-safety analysis.
class RFID_SCOPED_CAPABILITY MutexLock final {
 public:
  explicit MutexLock(Mutex& mutex) RFID_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RFID_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace rfid
