#include "common/csv.hpp"

#include <stdexcept>

namespace rfid {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace rfid
