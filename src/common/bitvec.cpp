#include "common/bitvec.hpp"

namespace rfid {

BitVec::BitVec(const std::string& bits) {
  for (const char c : bits) {
    RFID_EXPECTS(c == '0' || c == '1');
    push_back(c == '1');
  }
}

void BitVec::push_back(bool value) {
  const std::size_t word = size_ / 64;
  if (word == words_.size()) words_.push_back(0);
  if (value) words_[word] |= 1ULL << (63 - size_ % 64);
  ++size_;
}

void BitVec::append_bits(std::uint64_t value, unsigned nbits) {
  // Word-at-a-time append: the value spans at most two 64-bit words. Every
  // frame encode runs through here each round, so the old bit-by-bit loop
  // was a measurable slice of the round engine's fixed cost. All shift
  // counts stay in [0, 63] (each case is annotated below) — a count of 64
  // would be undefined behaviour.
  RFID_EXPECTS(nbits <= 64);
  if (nbits == 0) return;
  if (nbits < 64) value &= ~0ULL >> (64 - nbits);
  const std::size_t word = size_ / 64;
  const unsigned room = 64u - static_cast<unsigned>(size_ % 64);
  size_ += nbits;
  words_.resize((size_ + 63) / 64, 0);
  if (nbits <= room) {
    // room - nbits is in [0, 63]: room <= 64 and nbits >= 1.
    words_[word] |= value << (room - nbits);
  } else {
    // nbits - room is in [1, 63]: nbits <= 64 and 1 <= room < nbits.
    const unsigned spill = nbits - room;
    words_[word] |= value >> spill;
    words_[word + 1] |= value << (64u - spill);
  }
}

void BitVec::append(const BitVec& other) {
  std::size_t i = 0;
  for (; i + 64 <= other.size_; i += 64) {
    append_bits(other.read_bits(i, 64), 64);
  }
  if (i < other.size_) {
    const unsigned rem = static_cast<unsigned>(other.size_ - i);
    append_bits(other.read_bits(i, rem), rem);
  }
}

std::uint64_t BitVec::read_bits(std::size_t pos, unsigned nbits) const {
  // Word-at-a-time read, mirroring append_bits. Bits beyond size_ in the
  // last word are always zero (append_bits masks its value and push_back
  // only sets bits), so reading a full word from the tail is safe.
  RFID_EXPECTS(nbits <= 64);
  RFID_EXPECTS(pos + nbits <= size_);
  if (nbits == 0) return 0;
  const std::size_t word = pos / 64;
  const unsigned offset = static_cast<unsigned>(pos % 64);
  // offset is in [0, 63]; after the shift the requested bits are MSB-
  // aligned in acc.
  std::uint64_t acc = words_[word] << offset;
  const unsigned avail = 64u - offset;
  if (nbits > avail) {
    // avail is in [1, 63] here: nbits <= 64 forces offset >= 1.
    acc |= words_[word + 1] >> avail;
  }
  return nbits == 64 ? acc : acc >> (64u - nbits);
}

std::string BitVec::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::vector<std::uint64_t> BitVec::to_words_view() const {
  std::vector<std::uint64_t> words = words_;
  // Mask tail garbage beyond size_ so equality is well-defined.
  const std::size_t tail = size_ % 64;
  if (!words.empty() && tail != 0)
    words.back() &= ~0ULL << (64 - tail);
  words.resize((size_ + 63) / 64);
  return words;
}

}  // namespace rfid
