#include "common/bitvec.hpp"

namespace rfid {

BitVec::BitVec(const std::string& bits) {
  for (const char c : bits) {
    RFID_EXPECTS(c == '0' || c == '1');
    push_back(c == '1');
  }
}

void BitVec::push_back(bool value) {
  const std::size_t word = size_ / 64;
  if (word == words_.size()) words_.push_back(0);
  if (value) words_[word] |= 1ULL << (63 - size_ % 64);
  ++size_;
}

void BitVec::append_bits(std::uint64_t value, unsigned nbits) {
  RFID_EXPECTS(nbits <= 64);
  for (unsigned i = 0; i < nbits; ++i)
    push_back((value >> (nbits - 1 - i)) & 1u);
}

void BitVec::append(const BitVec& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_back(other.bit(i));
}

std::uint64_t BitVec::read_bits(std::size_t pos, unsigned nbits) const {
  RFID_EXPECTS(nbits <= 64);
  RFID_EXPECTS(pos + nbits <= size_);
  std::uint64_t value = 0;
  for (unsigned i = 0; i < nbits; ++i)
    value = (value << 1) | static_cast<std::uint64_t>(bit(pos + i));
  return value;
}

std::string BitVec::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::vector<std::uint64_t> BitVec::to_words_view() const {
  std::vector<std::uint64_t> words = words_;
  // Mask tail garbage beyond size_ so equality is well-defined.
  const std::size_t tail = size_ % 64;
  if (!words.empty() && tail != 0)
    words.back() &= ~0ULL << (64 - tail);
  words.resize((size_ + 63) / 64);
  return words;
}

}  // namespace rfid
