// Environment-variable and numeric-argument helpers shared by the bench and
// example binaries.
//
// Benches honour RFID_RUNS (Monte-Carlo repetitions) and RFID_MAX_N
// (largest population) so CI machines can trade fidelity for speed without
// editing code. parse_u64/parse_size_arg give the examples one strict
// argv-number parser instead of per-binary strtoull calls that silently
// accepted "10x", overflow, or a degenerate n = 0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rfid {

/// Reads an unsigned integer from the environment; returns `fallback` when
/// the variable is unset or unparsable.
[[nodiscard]] std::uint64_t env_u64(const std::string& name,
                                    std::uint64_t fallback);

/// Strictly parses a base-10 unsigned integer: the entire string must be
/// digits (no sign, no whitespace, no trailing garbage) and the value must
/// fit in 64 bits. Returns nullopt otherwise.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(
    std::string_view text) noexcept;

/// Command-line size-argument parser for the examples: strict like
/// parse_u64, and additionally rejects 0 unless `allow_zero` — a population
/// or trial count of zero is always a typo, and silently running a
/// degenerate simulation helps nobody. Returns nullopt on any rejection;
/// callers print their own usage message.
[[nodiscard]] std::optional<std::size_t> parse_size_arg(
    std::string_view text, bool allow_zero = false) noexcept;

}  // namespace rfid
