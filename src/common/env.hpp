// Environment-variable helpers shared by bench binaries.
//
// Benches honour RFID_RUNS (Monte-Carlo repetitions) and RFID_MAX_N
// (largest population) so CI machines can trade fidelity for speed without
// editing code.
#pragma once

#include <cstdint>
#include <string>

namespace rfid {

/// Reads an unsigned integer from the environment; returns `fallback` when
/// the variable is unset or unparsable.
[[nodiscard]] std::uint64_t env_u64(const std::string& name,
                                    std::uint64_t fallback);

}  // namespace rfid
