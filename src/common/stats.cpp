#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rfid {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double chi_square_uniform(std::span<const std::size_t> observed) {
  if (observed.empty()) return 0.0;
  std::size_t total = 0;
  for (const std::size_t c : observed) total += c;
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  if (expected <= 0.0) return 0.0;
  double chi2 = 0.0;
  for (const std::size_t c : observed) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

double chi_square_expected(std::span<const std::size_t> observed,
                           std::span<const double> probabilities) {
  if (observed.empty() || observed.size() != probabilities.size()) return 0.0;
  std::size_t total = 0;
  for (const std::size_t c : observed) total += c;
  double chi2 = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = static_cast<double>(total) * probabilities[i];
    const double diff = static_cast<double>(observed[i]) - expected;
    if (expected <= 0.0) {
      if (observed[i] != 0)
        chi2 = std::numeric_limits<double>::infinity();
      continue;
    }
    chi2 += diff * diff / expected;
  }
  return chi2;
}

double chi_square_critical_99(std::size_t dof) {
  // Wilson–Hilferty: chi2_p(k) ~ k * (1 - 2/(9k) + z_p * sqrt(2/(9k)))^3.
  const double k = static_cast<double>(dof);
  constexpr double z99 = 2.3263478740408408;
  const double term = 1.0 - 2.0 / (9.0 * k) + z99 * std::sqrt(2.0 / (9.0 * k));
  return k * term * term * term;
}

}  // namespace rfid
