#include "common/tag_id.hpp"

#include <bit>
#include <stdexcept>

namespace rfid {

std::size_t TagId::common_prefix_length(const TagId& other) const noexcept {
  std::size_t prefix = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const std::uint32_t diff = words[i] ^ other.words[i];
    if (diff == 0) {
      prefix += 32;
      continue;
    }
    prefix += static_cast<std::size_t>(std::countl_zero(diff));
    break;
  }
  return prefix;
}

std::string TagId::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(24);
  for (const std::uint32_t word : words) {
    for (int shift = 28; shift >= 0; shift -= 4)
      out.push_back(kDigits[(word >> shift) & 0xF]);
  }
  return out;
}

TagId TagId::from_hex(const std::string& hex) {
  if (hex.size() != 24)
    throw std::invalid_argument(
        "TagId::from_hex: expected 24 hex digits, got " +
        std::to_string(hex.size()));
  TagId id;
  for (std::size_t i = 0; i < 24; ++i) {
    const char c = hex[i];
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9')
      nibble = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      nibble = static_cast<std::uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      nibble = static_cast<std::uint32_t>(c - 'A' + 10);
    else
      throw std::invalid_argument("TagId::from_hex: invalid hex digit");
    id.words[i / 8] |= nibble << (4 * (7 - (i % 8)));
  }
  return id;
}

}  // namespace rfid
