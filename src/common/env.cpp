#include "common/env.hpp"

#include <cstdlib>

namespace rfid {

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

}  // namespace rfid
