#include "common/env.hpp"

#include <cstdlib>
#include <limits>

namespace rfid {

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto parsed = parse_u64(raw);
  return parsed.value_or(fallback);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;  // sign/space/garbage
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::size_t> parse_size_arg(std::string_view text,
                                          bool allow_zero) noexcept {
  const auto parsed = parse_u64(text);
  if (!parsed) return std::nullopt;
  if (*parsed == 0 && !allow_zero) return std::nullopt;
  if (*parsed > std::numeric_limits<std::size_t>::max()) return std::nullopt;
  return static_cast<std::size_t>(*parsed);
}

}  // namespace rfid
