// Small numeric helpers shared by the protocols and the analytical models.
#pragma once

#include <cstdint>

namespace rfid {

/// Smallest h with 2^h >= n; by the paper's convention the HPP index length
/// for n' unread tags is the h satisfying 2^{h-1} < n' <= 2^h, which is
/// exactly ceil_log2(n'). ceil_log2(0) == 0 and ceil_log2(1) == 0.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  unsigned h = 0;
  std::uint64_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++h;
  }
  return h;
}

/// Largest h with 2^h <= n (floor of log2). floor_log2(0) == 0 by convention.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t n) noexcept {
  unsigned h = 0;
  while (n > 1) {
    n >>= 1;
    ++h;
  }
  return h;
}

[[nodiscard]] constexpr bool is_pow2(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Integer power of two as u64; precondition h < 64.
[[nodiscard]] constexpr std::uint64_t pow2(unsigned h) noexcept {
  return 1ULL << h;
}

/// Natural-log constants used throughout the paper's analysis.
inline constexpr double kLn2 = 0.6931471805599453;
inline constexpr double kE = 2.718281828459045;

/// Relative difference |a-b| / max(|a|,|b|,eps); convenient for approximate
/// comparisons of analytical vs simulated quantities in tests.
[[nodiscard]] double relative_difference(double a, double b) noexcept;

}  // namespace rfid
