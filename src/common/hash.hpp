// The seeded hash H(r, id) shared by reader and tags.
//
// Both sides of the air interface must compute identical indices from the
// same (seed, id) pair — the reader to precompute singleton indices, the tag
// to know which index it picked (Section III-B of the paper). We use a
// murmur-style 64-bit finalizer over the full 96-bit ID so that index quality
// does not depend on the ID distribution (uniform, sequential, or clustered).
#pragma once

#include <cstdint>

#include "common/tag_id.hpp"

namespace rfid {

/// 64-bit avalanche mix (murmur3 fmix64 variant).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// H(r, id) over an identifier pre-split into 64-bit words — the form the
/// structure-of-arrays hot path stores (see tags::TagSoA). For a TagId,
/// hi = (words[0] << 32) | words[1] and lo = words[2]; tag_hash(seed, id)
/// equals tag_hash_words(seed, hi, lo) by construction. This scalar chain
/// is the reference every simd backend must reproduce lane-for-lane
/// (src/common/simd.hpp).
[[nodiscard]] constexpr std::uint64_t tag_hash_words(
    std::uint64_t seed, std::uint64_t hi, std::uint64_t lo) noexcept {
  // Absorb all 96 bits: two mixing rounds keyed by the seed.
  std::uint64_t acc = mix64(seed ^ 0x2545f4914f6cdd1dULL);
  acc = mix64(acc ^ hi);
  acc = mix64(acc ^ (lo * 0x9e3779b97f4a7c15ULL));
  return acc;
}

/// H(r, id): the seeded hash over the full 96-bit identifier.
[[nodiscard]] std::uint64_t tag_hash(std::uint64_t seed,
                                     const TagId& id) noexcept;

/// H(r, id) mod 2^h — the h-bit index a tag picks in HPP/TPP rounds.
/// h == 0 yields index 0 (a single remaining tag needs no vector bits).
[[nodiscard]] std::uint32_t tag_index_pow2(std::uint64_t seed, const TagId& id,
                                           unsigned h) noexcept;

/// H(r, id) mod modulus — used by EHPP's probabilistic subset selection.
[[nodiscard]] std::uint64_t tag_index_mod(std::uint64_t seed, const TagId& id,
                                          std::uint64_t modulus) noexcept;

/// The j-th hash of a family (j in [0, k)), as required by MIC's k hash
/// functions. Derived from tag_hash with a per-function tweak so tags only
/// need one hardware hash plus a counter — mirroring MIC's storage argument.
[[nodiscard]] std::uint64_t tag_hash_family(std::uint64_t seed, unsigned j,
                                            const TagId& id) noexcept;

}  // namespace rfid
