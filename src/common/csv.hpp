// Minimal CSV emitter so bench outputs can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rfid {

/// Writes rows to a CSV file; quoting is applied when a cell contains a
/// comma, quote, or newline.
class CsvWriter final {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace rfid
