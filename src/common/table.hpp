// ASCII table rendering for the bench harnesses.
//
// Every bench binary prints rows in the same layout the paper's tables and
// figure series use, so a human can diff our output against the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rfid {

/// Column-aligned ASCII table with an optional title and rule lines.
class TablePrinter final {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table; called by operator<< too.
  void print(std::ostream& os) const;

  friend std::ostream& operator<<(std::ostream& os, const TablePrinter& t) {
    t.print(os);
    return os;
  }

  /// Formats a double with `digits` fraction digits (fixed notation).
  [[nodiscard]] static std::string num(double value, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfid
