// Bit-level containers for broadcast payloads.
//
// Polling vectors, circle commands, MIC indicator vectors and the TPP
// polling-tree stream are all bit strings whose exact lengths drive the
// timing model, so the library manipulates them at single-bit granularity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rfid {

/// Growable MSB-first bit string.
class BitVec final {
 public:
  BitVec() = default;

  /// Constructs from a string of '0'/'1' characters (test convenience).
  explicit BitVec(const std::string& bits);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool bit(std::size_t pos) const {
    RFID_EXPECTS(pos < size_);
    return (words_[pos / 64] >> (63 - pos % 64)) & 1u;
  }

  /// Empties the vector but keeps the word capacity, so a cleared BitVec
  /// can be refilled without reallocating (per-round command scratch).
  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  void push_back(bool value);

  /// Appends the low `nbits` bits of `value`, most significant first.
  void append_bits(std::uint64_t value, unsigned nbits);

  /// Appends another bit vector.
  void append(const BitVec& other);

  /// Reads `nbits` bits starting at `pos` as an unsigned value (MSB first).
  [[nodiscard]] std::uint64_t read_bits(std::size_t pos, unsigned nbits) const;

  /// '0'/'1' rendering, MSB first.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    if (a.size_ != b.size_) return false;
    return a.to_words_view() == b.to_words_view();
  }

 private:
  [[nodiscard]] std::vector<std::uint64_t> to_words_view() const;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Sequential reader over a BitVec, used by simulated tags decoding a
/// broadcast stream.
class BitReader final {
 public:
  explicit BitReader(const BitVec& vec) noexcept : vec_(&vec) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return vec_->size() - pos_;
  }

  [[nodiscard]] bool read_bit() {
    RFID_EXPECTS(remaining() >= 1);
    return vec_->bit(pos_++);
  }

  [[nodiscard]] std::uint64_t read_bits(unsigned nbits) {
    RFID_EXPECTS(remaining() >= nbits);
    const std::uint64_t value = vec_->read_bits(pos_, nbits);
    pos_ += nbits;
    return value;
  }

 private:
  const BitVec* vec_;
  std::size_t pos_ = 0;
};

}  // namespace rfid
