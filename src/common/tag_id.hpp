// 96-bit EPC tag identifiers.
//
// C1G2 EPCs are 96 bits; the paper's whole premise is that broadcasting those
// 96 bits per poll is wasteful. We model the ID exactly (three 32-bit words,
// most-significant word first) so that prefix-based baselines (Prefix-CPP)
// and the coded-polling XOR trick operate on realistic bit layouts.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <set>
#include <string>

namespace rfid {

/// Number of bits in an EPC-96 tag identifier.
inline constexpr std::size_t kTagIdBits = 96;

/// A 96-bit tag ID stored as three 32-bit words, word 0 most significant.
struct TagId final {
  std::array<std::uint32_t, 3> words{};

  friend constexpr auto operator<=>(const TagId&, const TagId&) = default;

  /// Bit at position `pos` counted from the most-significant bit (pos 0).
  [[nodiscard]] constexpr bool bit(std::size_t pos) const noexcept {
    const std::size_t word = pos / 32;
    const std::size_t offset = 31 - (pos % 32);
    return (words[word] >> offset) & 1u;
  }

  /// Sets bit `pos` (MSB-first numbering) to `value`.
  constexpr void set_bit(std::size_t pos, bool value) noexcept {
    const std::size_t word = pos / 32;
    const std::uint32_t mask = 1u << (31 - (pos % 32));
    if (value)
      words[word] |= mask;
    else
      words[word] &= ~mask;
  }

  /// XOR of two IDs; used by the coded-polling baseline.
  [[nodiscard]] constexpr TagId operator^(const TagId& other) const noexcept {
    TagId out;
    for (std::size_t i = 0; i < 3; ++i)
      out.words[i] = words[i] ^ other.words[i];
    return out;
  }

  /// Length of the common most-significant-bit prefix shared with `other`.
  [[nodiscard]] std::size_t common_prefix_length(
      const TagId& other) const noexcept;

  /// 24-hex-digit canonical rendering (EPC style).
  [[nodiscard]] std::string to_hex() const;

  /// Parses a 24-hex-digit string; throws std::invalid_argument otherwise.
  [[nodiscard]] static TagId from_hex(const std::string& hex);

  /// Folds the 96 bits into a 64-bit value for hashing.
  [[nodiscard]] constexpr std::uint64_t fold64() const noexcept {
    const auto hi = (static_cast<std::uint64_t>(words[0]) << 32) | words[1];
    return hi ^ (static_cast<std::uint64_t>(words[2]) * 0x9e3779b97f4a7c15ULL);
  }
};

/// std::hash-compatible functor for containers keyed by TagId.
struct TagIdHash final {
  [[nodiscard]] std::size_t operator()(const TagId& id) const noexcept {
    return static_cast<std::size_t>(id.fold64());
  }
};

/// The house container for sets of tag IDs that cross an API boundary.
/// Ordered on purpose: iteration order is the ID order, so anything derived
/// from walking the set (reports, metrics, RNG-consuming loops) is
/// deterministic by construction — the property tools/rfidlint's
/// unordered-container rules enforce. Hash sets remain fine for
/// membership-only scratch that is never iterated.
using TagIdSet = std::set<TagId>;

}  // namespace rfid
