// Deterministic pseudo-random number generation.
//
// The whole simulator is seed-deterministic: a session seeded with the same
// 64-bit value produces bit-identical metrics, which the replay tests and the
// parallel trial runner rely on. We implement splitmix64 (for seeding and
// hashing) and xoshiro256** (for bulk stream generation) rather than using
// std::mt19937 so that results are stable across standard library versions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rfid {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Public because it doubles as the seed expander for Xoshiro256ss.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss final {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by expanding `seed` through splitmix64, which
  /// guarantees a non-zero state for every seed (including 0).
  explicit Xoshiro256ss(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  [[nodiscard]] result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound == 0 is a precondition violation.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] double uniform01() noexcept;

  /// Returns true with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Jump function: advances the stream by 2^128 steps. Used to derive
  /// statistically independent streams for parallel trials.
  void jump() noexcept;

  /// The four raw state words, for checkpoint/resume (sim/checkpoint.hpp).
  /// A stream restored with set_state() continues bit-identically from
  /// where state() was captured.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return s_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    s_ = state;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Derives a child seed from (master, index); used to give every Monte-Carlo
/// trial its own independent deterministic stream.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t index) noexcept;

}  // namespace rfid
