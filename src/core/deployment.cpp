#include "core/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/multi_reader.hpp"
#include "fault/injector.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/round_engine.hpp"
#include "protocols/tree_polling.hpp"
#include "tags/soa.hpp"

namespace rfid::core {

namespace {

/// Salt under partition_seed for the per-tag overlap draw, so reachability
/// and zone assignment come from independent streams of the same knob.
constexpr std::uint64_t kOverlapSalt = 0x4F564C50;  // "OVLP"
/// Salt under the session seed for the per-reader fault streams — the
/// exact derivation the legacy fleet used, so a FleetConfig ported to the
/// deployment layer replays the same fault draws.
constexpr std::uint64_t kReaderFaultSalt = 0x52465446;  // "RFTF"

/// Maps a 64-bit hash to (0, 1] — never 0, so log(u) is always finite.
double hash_unit(std::uint64_t h) noexcept {
  return static_cast<double>((h >> 11) + 1) * 0x1.0p-53;
}

std::unique_ptr<protocols::RoundPolicy> make_deployment_policy(
    protocols::ProtocolKind kind) {
  switch (kind) {
    case protocols::ProtocolKind::kHpp:
      return std::make_unique<protocols::HppRoundPolicy>(
          protocols::HppRoundConfig{});
    case protocols::ProtocolKind::kTpp:
      return std::make_unique<protocols::TppRoundPolicy>(
          protocols::Tpp::Config{});
    default:
      throw std::invalid_argument(
          "Deployment: only round-engine protocols (HPP, TPP) can be "
          "scheduled tick by tick");
  }
}

/// A reader that only holds the channel every `rotation` ticks completes
/// rounds `rotation`× slower than the legacy everyone-every-tick fleet; the
/// supervisor's silence deadlines and restart backoffs stretch by the same
/// factor so schedule-obedient readers are never declared dead.
fault::SupervisorConfig scale_supervisor(fault::SupervisorConfig config,
                                         std::uint64_t rotation) {
  config.degraded_after_ticks *= rotation;
  config.down_after_ticks *= rotation;
  config.backoff_initial_ticks *= rotation;
  config.backoff_max_ticks *= rotation;
  return config;
}

fault::RecoveryConfig handoff_ledger(std::uint32_t budget) {
  fault::RecoveryConfig config;
  config.enabled = true;
  config.retry_budget = budget;
  return config;
}

/// Contract checks run here, in the config_ member initializer, so they
/// fire before any member (the supervisor in particular) could reject the
/// same config with a less precise error.
DeploymentConfig validated(DeploymentConfig config) {
  RFID_EXPECTS(config.readers >= 1);
  RFID_EXPECTS(config.zone_overlap >= 0.0 && config.zone_overlap <= 1.0);
  RFID_EXPECTS(config.churn_depart_per_tick >= 0.0 &&
               config.churn_depart_per_tick < 1.0);
  RFID_EXPECTS(config.churn_move_per_tick >= 0.0 &&
               config.churn_move_per_tick < 1.0);
  RFID_EXPECTS(config.churn_depart_per_tick + config.churn_move_per_tick <
               1.0);
  return config;
}

}  // namespace

// --- Pure schedule / placement rules ----------------------------------------

std::size_t channel_population(std::size_t channel, std::size_t readers,
                               std::size_t channels) {
  RFID_EXPECTS(channels >= 1 && channel < channels);
  return channel < readers ? (readers - channel - 1) / channels + 1 : 0;
}

std::size_t scheduled_reader(std::size_t channel, std::size_t readers,
                             std::size_t channels, std::uint64_t tick) {
  const std::size_t members = channel_population(channel, readers, channels);
  RFID_EXPECTS(members >= 1 && tick >= 1);
  return channel +
         channels * static_cast<std::size_t>((tick - 1) % members);
}

bool tag_reaches_neighbor(const TagId& id, double zone_overlap,
                          std::uint64_t partition_seed) {
  if (zone_overlap <= 0.0) return false;
  if (zone_overlap >= 1.0) return true;
  return hash_unit(tag_hash(derive_seed(partition_seed, kOverlapSalt), id)) <
         zone_overlap;
}

std::size_t owner_in_zone(const TagId& id, std::size_t zone,
                          const DeploymentConfig& config) {
  const std::size_t readers = config.readers;
  RFID_EXPECTS(readers >= 1 && zone < readers);
  if (readers == 1 ||
      !tag_reaches_neighbor(id, config.zone_overlap, config.partition_seed))
    return zone;
  const std::size_t alt = (zone + 1) % readers;
  const std::uint64_t zone_key =
      tag_hash(derive_seed(config.ownership_seed, zone), id);
  const std::uint64_t alt_key =
      tag_hash(derive_seed(config.ownership_seed, alt), id);
  if (alt_key != zone_key) return alt_key < zone_key ? alt : zone;
  return std::min(zone, alt);
}

ChurnPosition churn_position(const TagId& id, std::size_t home_zone,
                             std::uint64_t tick,
                             const DeploymentConfig& config) {
  ChurnPosition position;
  position.zone = home_zone;
  const double hazard =
      config.churn_depart_per_tick + config.churn_move_per_tick;
  if (hazard <= 0.0) return position;
  // Geometric interarrivals by inverse CDF over pure per-event hash draws:
  // event k's tick depends only on (churn_seed, id, k), never on mutable
  // RNG state, so the walk replays identically from any schedule or shard.
  const double log_survive = std::log1p(-std::min(hazard, 0.9999999999));
  std::uint64_t at = 0;
  for (std::uint64_t event = 0;; ++event) {
    const double wait = hash_unit(
        tag_hash(derive_seed(config.churn_seed, event << 1), id));
    at += 1 + static_cast<std::uint64_t>(std::log(wait) / log_survive);
    if (at > tick) return position;
    const std::uint64_t kind_hash =
        tag_hash(derive_seed(config.churn_seed, (event << 1) | 1), id);
    if (hash_unit(kind_hash) * hazard <= config.churn_depart_per_tick) {
      position.departed = true;
      position.departed_at = at;
      return position;  // departure is absorbing
    }
    ++position.moves;
    if (config.readers > 1)
      position.zone = (position.zone + 1 +
                       static_cast<std::size_t>(
                           (kind_hash >> 8) % (config.readers - 1))) %
                      config.readers;
  }
}

// --- Reader runtime ---------------------------------------------------------

namespace detail {

/// One reader's runtime. The session stack is rebuilt on every crash or
/// reboot; the active tag set survives restarts and moves wholesale on
/// handoff (tag pointers stay valid — every session is built over the one
/// shared population). The parallel-phase output slots at the bottom are
/// written only by this reader's shard task and consumed by the serial
/// merge, which is what keeps pooled runs byte-identical to serial ones.
struct ReaderRuntime final {
  std::unique_ptr<sim::Session> session;
  std::unique_ptr<protocols::RoundPolicy> policy;
  std::unique_ptr<protocols::RoundEngine> engine;
  fault::RecoveryCoordinator recovery;
  tags::TagSoA active;
  fault::FaultInjector faults;  ///< reader-fault stream only
  sim::Metrics folded{};        ///< finished incarnations, merged in order
  std::size_t delivered = 0;
  std::uint64_t incarnations = 0;
  std::uint64_t stalled_until = 0;  ///< ticks < this are skipped (stall)
  bool rebuilt_this_tick = false;   ///< reboot consumed the tick
  bool scheduled = false;           ///< holds its channel this tick

  // --- Parallel-phase outputs (reader-local; merged serially) ---------------
  std::optional<fault::ReaderFaultEvent> fault_event;
  bool round_ran = false;
  bool round_completed = false;  ///< init delivered -> supervisor heartbeat
  bool heartbeat = false;        ///< scheduled with a drained zone
  double round_time_us = 0.0;
  std::size_t round_delivered = 0;
  std::vector<const tags::Tag*> moved;  ///< churn: tags owned elsewhere now
  std::vector<std::uint32_t> moved_target;
  std::vector<TagId> departed;          ///< churn: left before being read
  std::vector<char> churn_done;         ///< compaction scratch
  tags::TagSoA keep_scratch;            ///< hand_off stay-put rebuilds

  explicit ReaderRuntime(const fault::RecoveryConfig& recovery_config)
      : recovery(recovery_config) {}
};

}  // namespace detail

// --- Deployment -------------------------------------------------------------

Deployment::Deployment(const tags::TagPopulation& population,
                       DeploymentConfig config, parallel::ThreadPool* pool)
    : population_(&population),
      config_(validated(std::move(config))),
      pool_(pool),
      channels_(std::min(std::max<std::size_t>(config_.channels, 1),
                         std::max<std::size_t>(config_.readers, 1))),
      shards_(config_.shards != 0
                  ? std::min(config_.shards,
                             std::max<std::size_t>(config_.readers, 1))
                  : (pool_ != nullptr
                         ? std::min<std::size_t>(
                               pool_->thread_count(),
                               std::max<std::size_t>(config_.readers, 1))
                         : 1)),
      rotation_(channel_population(0,
                                   std::max<std::size_t>(config_.readers, 1),
                                   channels_)),
      protocol_name_(protocols::to_string(config_.kind)),
      supervisor_(config_.readers,
                  scale_supervisor(config_.supervisor, rotation_)),
      handoff_budget_(handoff_ledger(config_.handoff_budget)) {
  runtime_.reserve(config_.readers);
  for (std::size_t r = 0; r < config_.readers; ++r) {
    runtime_.emplace_back(config_.session.recovery);
    build_session(r, runtime_[r]);
    runtime_[r].faults.arm_reader_faults(
        config_.reader_faults,
        derive_seed(derive_seed(config_.session.seed, kReaderFaultSalt), r));
  }

  // Shard boundaries: contiguous reader ranges, one pool task each.
  shard_begin_.resize(shards_ + 1);
  for (std::size_t s = 0; s <= shards_; ++s)
    shard_begin_[s] = s * config_.readers / shards_;

  // Initial placement: home zone by hash partition, then the ownership
  // rule for tags that overlap into the neighbor zone. Sharded over the
  // pool — each shard scans the population and keeps only its readers'
  // tags, so per-reader insertion order equals population order exactly
  // as in the serial pass (shard-count invariance by construction).
  const auto place_range = [this](std::size_t first_reader,
                                  std::size_t last_reader) {
    for (const tags::Tag& tag : *population_) {
      const std::size_t home =
          reader_of(tag.id(), config_.readers, config_.partition_seed);
      const std::size_t owner = owner_in_zone(tag.id(), home, config_);
      if (owner >= first_reader && owner < last_reader)
        runtime_[owner].active.push_back(&tag);
    }
  };
  if (pool_ != nullptr && shards_ > 1) {
    for (std::size_t s = 0; s < shards_; ++s) {
      const std::size_t first = shard_begin_[s];
      const std::size_t last = shard_begin_[s + 1];
      pool_->submit([&place_range, first, last] { place_range(first, last); });
    }
    pool_->wait_idle();
  } else {
    place_range(0, config_.readers);
  }

  channels_state_.resize(channels_);
  for (std::size_t c = 0; c < channels_; ++c)
    channels_state_[c].readers =
        channel_population(c, config_.readers, channels_);
  scheduled_.resize(channels_);
}

Deployment::~Deployment() = default;

void Deployment::build_session(std::size_t reader,
                               detail::ReaderRuntime& rt) {
  sim::SessionConfig session_config = config_.session;
  // Incarnation in the seed: a rebooted reader is a new physical boot, so
  // its protocol stream must not replay the dead one's draws.
  session_config.seed = derive_seed(
      derive_seed(config_.session.seed, reader), rt.incarnations);
  rt.session =
      std::make_unique<sim::Session>(*population_, std::move(session_config));
  rt.policy = make_deployment_policy(config_.kind);
  rt.engine =
      std::make_unique<protocols::RoundEngine>(*rt.session, rt.recovery);
  ++rt.incarnations;
}

void Deployment::fold_session(std::size_t reader, detail::ReaderRuntime& rt) {
  (void)reader;
  if (rt.session == nullptr) return;
  sim::RunResult result = rt.session->finish(protocol_name_);
  rt.folded.merge(result.metrics);
  for (sim::CollectedRecord& record : result.records)
    report_.records.push_back(std::move(record));
  for (const TagId& id : result.missing_ids)
    report_.missing_ids.push_back(id);
  for (const TagId& id : result.undelivered_ids)
    report_.undelivered_ids.push_back(id);
  rt.session.reset();
  rt.engine.reset();
  rt.policy.reset();
}

void Deployment::run_reader_parallel(std::size_t reader,
                                     detail::ReaderRuntime& rt) {
  rt.fault_event.reset();
  rt.round_ran = false;
  rt.round_completed = false;
  rt.heartbeat = false;
  rt.round_time_us = 0.0;
  rt.round_delivered = 0;
  rt.moved.clear();
  rt.moved_target.clear();
  rt.departed.clear();

  if (rt.rebuilt_this_tick) return;  // the reboot consumed the tick
  if (supervisor_.permanently_down(reader)) return;
  if (supervisor_.health(reader) == obs::ReaderHealth::kDown) return;
  if (tick_ < rt.stalled_until) return;  // mid-stall: silent
  // Fault draws happen at the tick boundary, before the round, so a round
  // either runs to completion or not at all — delivered work is never
  // torn, which is what keeps delivered-or-listed accounting exact. The
  // draw itself only touches this reader's dedicated stream, so it is
  // safe (and deterministic) inside the parallel phase.
  rt.fault_event = rt.faults.sample_reader_fault();
  if (rt.fault_event.has_value()) return;
  if (!rt.scheduled) return;  // another co-channel reader holds the RF slot

  const bool churn = config_.churn_depart_per_tick > 0.0 ||
                     config_.churn_move_per_tick > 0.0;
  if (churn && !rt.active.empty()) {
    // Zone scan at the reader's own transmit slot: departed tags leave the
    // active set (listed missing at the merge), moved tags queue for
    // handoff to their new owner. Scan before the round so a tag that
    // left at tick t is never interrogated at tick >= t.
    rt.churn_done.assign(rt.active.size(), 0);
    std::size_t removed = 0;
    for (std::size_t i = 0; i < rt.active.size(); ++i) {
      const tags::Tag* tag = rt.active.tag(i);
      const std::size_t home =
          reader_of(tag->id(), config_.readers, config_.partition_seed);
      const ChurnPosition position =
          churn_position(tag->id(), home, tick_, config_);
      if (position.departed) {
        rt.departed.push_back(tag->id());
        rt.churn_done[i] = 1;
        ++removed;
        continue;
      }
      const std::size_t owner =
          owner_in_zone(tag->id(), position.zone, config_);
      if (owner != reader) {
        rt.moved.push_back(tag);
        rt.moved_target.push_back(static_cast<std::uint32_t>(owner));
        rt.churn_done[i] = 1;
        ++removed;
      }
    }
    if (removed > 0) rt.active.compact(rt.churn_done);
  }

  if (rt.active.empty()) {
    // Zone drained: the reader idles but still answers its heartbeat.
    rt.heartbeat = true;
    return;
  }

  const std::size_t before = rt.active.size();
  const sim::Metrics& live = rt.session->metrics();
  const double time_before = live.time_us;
  const std::uint64_t undelivered_before = live.undelivered;
  const std::uint64_t missing_before = live.missing;
  rt.round_completed = rt.engine->run_round(rt.active, *rt.policy);
  rt.round_ran = true;
  rt.round_time_us = live.time_us - time_before;
  // Erased = delivered + abandoned + detected-missing; subtract the loud
  // outcomes so `delivered` counts exactly the interrogated tags even in
  // record-free sweeps.
  rt.round_delivered = before - rt.active.size() -
                       static_cast<std::size_t>(live.undelivered -
                                                undelivered_before) -
                       static_cast<std::size_t>(live.missing - missing_before);
}

void Deployment::apply_fault_event(std::size_t reader,
                                   detail::ReaderRuntime& rt) {
  switch (rt.fault_event->kind) {
    case fault::ReaderFaultKind::kCrash:
      fold_session(reader, rt);
      supervisor_.note_crash(reader, tick_);
      hand_off(reader);
      break;
    case fault::ReaderFaultKind::kRestart:
      fold_session(reader, rt);
      supervisor_.note_spontaneous_restart(reader, tick_);
      build_session(reader, rt);
      break;
    case fault::ReaderFaultKind::kStall:
      supervisor_.note_stall(reader);
      rt.stalled_until = tick_ + rt.fault_event->stall_ticks;
      break;
  }
}

void Deployment::hand_off(std::size_t from) {
  detail::ReaderRuntime& rt = runtime_[from];
  if (rt.active.empty()) return;
  // Ring fallback target, computed once: the next reader in ring order
  // that can still make progress (the legacy fleet rule).
  std::size_t ring = config_.readers;  // sentinel: none
  for (std::size_t step = 1; step < config_.readers; ++step) {
    const std::size_t candidate = (from + step) % config_.readers;
    if (supervisor_.permanently_down(candidate)) continue;
    if (supervisor_.health(candidate) == obs::ReaderHealth::kDown) continue;
    ring = candidate;
    break;
  }
  const bool overlap = config_.zone_overlap > 0.0 && config_.readers > 1;
  rt.keep_scratch.clear();
  std::size_t rehomed = 0;
  for (std::size_t i = 0; i < rt.active.size(); ++i) {
    const tags::Tag* tag = rt.active.tag(i);
    std::size_t target = config_.readers;
    if (overlap && tag_reaches_neighbor(tag->id(), config_.zone_overlap,
                                        config_.partition_seed)) {
      // Prefer the other reader that can already hear the tag: of the
      // home-zone pair {z, z+1}, whichever is not the downed reader.
      const std::size_t home =
          reader_of(tag->id(), config_.readers, config_.partition_seed);
      const std::size_t next = (home + 1) % config_.readers;
      const std::size_t other = home == from ? next : home;
      if (other != from && !supervisor_.permanently_down(other) &&
          supervisor_.health(other) != obs::ReaderHealth::kDown)
        target = other;
    }
    if (target == config_.readers) target = ring;
    if (target == config_.readers) {
      // Nobody can take the tag. Give it up loudly only if this reader
      // will never come back; otherwise it waits for the restart.
      if (supervisor_.permanently_down(from))
        report_.undelivered_ids.push_back(tag->id());
      else
        rt.keep_scratch.push_back(tag);
      continue;
    }
    if (handoff_budget_.take_attempt(tag->id())) {
      runtime_[target].active.push_back(tag);
      ++rehomed;
    } else {
      report_.undelivered_ids.push_back(tag->id());
    }
  }
  std::swap(rt.active, rt.keep_scratch);
  rt.keep_scratch.clear();
  report_.handoffs += rehomed;
}

// rfidlint: hotpath(deployment-serial-tick)
bool Deployment::tick() {
  RFID_EXPECTS(!finished_);
  bool any = false;
  for (const detail::ReaderRuntime& rt : runtime_)
    if (!rt.active.empty()) {
      any = true;
      break;
    }
  if (!any || tick_ >= config_.max_ticks) return false;
  ++tick_;

  // Serial pre-phase, reader order: due restarts rebuild their session and
  // consume the tick; the channel schedule is fixed for the tick.
  for (std::size_t r = 0; r < config_.readers; ++r) {
    detail::ReaderRuntime& rt = runtime_[r];
    rt.rebuilt_this_tick = false;
    rt.scheduled = false;
    if (supervisor_.permanently_down(r)) continue;
    if (supervisor_.health(r) == obs::ReaderHealth::kDown &&
        supervisor_.restart_due(r, tick_)) {
      supervisor_.begin_restart(r, tick_);
      // Deadline-downed readers (stall escalations) still hold their dead
      // incarnation's session — fold it so its delivered records survive
      // the reboot. Crash paths already folded; this is then a no-op.
      fold_session(r, rt);
      build_session(r, rt);
      rt.rebuilt_this_tick = true;
    }
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    scheduled_[c] = scheduled_reader(c, config_.readers, channels_, tick_);
    runtime_[scheduled_[c]].scheduled = true;
  }

  // Parallel phase: every shard runs its readers' fault draws, churn scans
  // and scheduled rounds against reader-local state only.
  if (pool_ != nullptr && shards_ > 1) {
    for (std::size_t s = 0; s < shards_; ++s) {
      const std::size_t first = shard_begin_[s];
      const std::size_t last = shard_begin_[s + 1];
      pool_->submit([this, first, last] {
        for (std::size_t r = first; r < last; ++r)
          run_reader_parallel(r, runtime_[r]);
      });
    }
    pool_->wait_idle();
  } else {
    for (std::size_t r = 0; r < config_.readers; ++r)
      run_reader_parallel(r, runtime_[r]);
  }

  // Serial merge, reader index order: supervision verdicts, churn
  // handoffs, channel accounting. All cross-reader mutation happens here,
  // which is what makes pooled runs byte-identical to serial ones.
  double tick_busy_us = 0.0;
  for (std::size_t r = 0; r < config_.readers; ++r) {
    detail::ReaderRuntime& rt = runtime_[r];
    if (rt.fault_event.has_value()) {
      apply_fault_event(r, rt);
      continue;
    }
    if (rt.round_ran) {
      ChannelReport& channel = channels_state_[channel_of(r, channels_)];
      channel.busy_us += rt.round_time_us;
      ++channel.rounds;
      tick_busy_us = std::max(tick_busy_us, rt.round_time_us);
      rt.delivered += rt.round_delivered;
      if (rt.round_completed) supervisor_.note_round_complete(r, tick_);
    } else if (rt.heartbeat) {
      supervisor_.note_round_complete(r, tick_);
    }
    for (const TagId& id : rt.departed) {
      // rfidlint: allow(hotpath-alloc) — churn slow path, outside the fault-free zero-alloc contract
      report_.missing_ids.push_back(id);
      ++report_.churn_departures;
    }
    for (std::size_t m = 0; m < rt.moved.size(); ++m) {
      const tags::Tag* tag = rt.moved[m];
      if (handoff_budget_.take_attempt(tag->id())) {
        // rfidlint: allow(hotpath-alloc) — churn handoff slow path, outside the fault-free zero-alloc contract
        runtime_[rt.moved_target[m]].active.push_back(tag);
        ++report_.handoffs;
        ++report_.churn_moves;
      } else {
        // rfidlint: allow(hotpath-alloc) — budget-exhausted slow path, outside the fault-free zero-alloc contract
        report_.undelivered_ids.push_back(tag->id());
      }
    }
  }
  makespan_us_ += tick_busy_us;
  supervisor_.advance(tick_);
  // Escalations (silence -> down) surface here; their tags move now.
  for (std::size_t r = 0; r < config_.readers; ++r)
    if (supervisor_.health(r) == obs::ReaderHealth::kDown ||
        supervisor_.permanently_down(r))
      hand_off(r);
  return true;
}

DeploymentReport Deployment::finish() {
  RFID_EXPECTS(!finished_);
  finished_ = true;

  // Tick cap exhausted with work left: list every survivor, loudly.
  for (detail::ReaderRuntime& rt : runtime_) {
    for (std::size_t i = 0; i < rt.active.size(); ++i)
      report_.undelivered_ids.push_back(rt.active.tag(i)->id());
    rt.active.clear();
  }
  for (std::size_t r = 0; r < config_.readers; ++r)
    fold_session(r, runtime_[r]);

  report_.ticks = tick_;
  report_.transitions = supervisor_.transitions();
  report_.per_channel = channels_state_;
  report_.per_reader_metrics.reserve(config_.readers);
  report_.per_reader_health.reserve(config_.readers);
  report_.per_reader_incarnations.reserve(config_.readers);
  report_.per_reader_delivered.reserve(config_.readers);
  for (std::size_t r = 0; r < config_.readers; ++r) {
    detail::ReaderRuntime& rt = runtime_[r];
    rt.folded.reader_crashes = supervisor_.crashes(r);
    rt.folded.reader_stalls = supervisor_.stalls(r);
    rt.folded.reader_restarts = supervisor_.restarts(r);
    report_.per_reader_metrics.push_back(rt.folded);
    report_.per_reader_health.push_back(supervisor_.health(r));
    report_.per_reader_incarnations.push_back(rt.incarnations);
    report_.per_reader_delivered.push_back(rt.delivered);
    report_.delivered += rt.delivered;
    report_.totals.merge(rt.folded);
  }
  report_.totals.handoffs = report_.handoffs;
  report_.makespan_s = makespan_us_ * 1e-6;
  report_.total_busy_s = report_.totals.time_us * 1e-6;

  // Delivered-or-listed verification. Record-free sweeps verify by exact
  // counts (every tag is owned by exactly one reader at any time and
  // leaves the simulation through exactly one of the three outcomes);
  // record-keeping sweeps additionally verify the ID sets cover the
  // population exactly once. Membership-only hash set — never iterated
  // (rfidlint's unordered-iteration rule).
  const std::size_t population_n = population_->size();
  bool exact = report_.delivered + report_.missing_ids.size() +
                   report_.undelivered_ids.size() ==
               population_n;
  if (config_.session.keep_records) {
    exact = exact && report_.records.size() == report_.delivered;
    std::unordered_set<TagId, TagIdHash> seen;
    seen.reserve(population_n);
    bool duplicates = false;
    for (const sim::CollectedRecord& record : report_.records)
      duplicates |= !seen.insert(record.id).second;
    for (const TagId& id : report_.missing_ids)
      duplicates |= !seen.insert(id).second;
    for (const TagId& id : report_.undelivered_ids)
      duplicates |= !seen.insert(id).second;
    bool covered = seen.size() == population_n;
    for (const tags::Tag& tag : *population_)
      covered &= seen.contains(tag.id());
    exact = exact && covered && !duplicates;
  }
  report_.verified = exact;
  return std::move(report_);
}

// --- Live views -------------------------------------------------------------

std::size_t Deployment::reader_count() const noexcept {
  return config_.readers;
}
std::size_t Deployment::channel_count() const noexcept { return channels_; }
std::size_t Deployment::shard_count() const noexcept { return shards_; }
std::uint64_t Deployment::ticks_run() const noexcept { return tick_; }

std::size_t Deployment::active_remaining() const {
  std::size_t remaining = 0;
  for (const detail::ReaderRuntime& rt : runtime_)
    remaining += rt.active.size();
  return remaining;
}

sim::Metrics Deployment::reader_metrics(std::size_t reader) const {
  const detail::ReaderRuntime& rt = runtime_[reader];
  sim::Metrics metrics = rt.folded;
  if (rt.session != nullptr) metrics.merge(rt.session->metrics());
  metrics.reader_crashes = supervisor_.crashes(reader);
  metrics.reader_stalls = supervisor_.stalls(reader);
  metrics.reader_restarts = supervisor_.restarts(reader);
  return metrics;
}

obs::ReaderHealth Deployment::reader_health(std::size_t reader) const {
  return supervisor_.health(reader);
}

double Deployment::channel_busy_us(std::size_t channel) const {
  return channels_state_[channel].busy_us;
}

std::uint64_t Deployment::channel_rounds(std::size_t channel) const {
  return channels_state_[channel].rounds;
}

std::uint64_t Deployment::handoffs() const noexcept {
  return report_.handoffs;
}

std::uint64_t Deployment::churn_departures() const noexcept {
  return report_.churn_departures;
}

DeploymentReport run_deployment(const tags::TagPopulation& population,
                                const DeploymentConfig& config,
                                parallel::ThreadPool* pool) {
  Deployment deployment(population, config, pool);
  while (deployment.tick()) {
  }
  return deployment.finish();
}

}  // namespace rfid::core
