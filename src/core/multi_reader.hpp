// Multi-reader deployments (paper Section II-A: the protocols "can be
// easily modified for multiple readers when the collision-free transmission
// schedule among the readers is established").
//
// This module supplies that schedule. The backend server partitions the
// known inventory across R readers (hash partition: balanced and
// distribution-independent); each reader runs the chosen polling protocol
// over its share. Two schedules are modelled:
//   * kTimeDivision    — readers share one RF channel and take turns; the
//                        sweep makespan is the sum of per-reader times.
//   * kSpatialParallel — readers cover RF-isolated zones (separate rooms,
//                        dock doors) and run concurrently; the makespan is
//                        the maximum per-reader time.
#pragma once

#include <cstdint>
#include <vector>

#include "protocols/registry.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid::core {

enum class ReaderSchedule : std::uint8_t { kTimeDivision, kSpatialParallel };

struct MultiReaderConfig final {
  std::size_t readers = 2;
  protocols::ProtocolKind kind = protocols::ProtocolKind::kTpp;
  ReaderSchedule schedule = ReaderSchedule::kTimeDivision;
  sim::SessionConfig session{};  ///< per-reader seeds derive from .seed
  /// Seed of the hash partition assigning tags to readers.
  std::uint64_t partition_seed = 0x52464944;
};

struct MultiReaderReport final {
  std::vector<sim::RunResult> per_reader;
  double makespan_s = 0.0;      ///< wall-clock time of the whole sweep
  double total_busy_s = 0.0;    ///< summed reader activity (energy proxy)
  std::size_t collected = 0;    ///< total tags interrogated
  bool verified = false;        ///< union of records covers the inventory
};

/// Runs a full multi-reader sweep over `population`.
[[nodiscard]] MultiReaderReport run_multi_reader(
    const tags::TagPopulation& population, const MultiReaderConfig& config);

/// The partition function: which reader covers `id` (exposed for tests).
[[nodiscard]] std::size_t reader_of(const TagId& id, std::size_t readers,
                                    std::uint64_t partition_seed);

}  // namespace rfid::core
