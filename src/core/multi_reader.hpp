// Multi-reader deployments (paper Section II-A: the protocols "can be
// easily modified for multiple readers when the collision-free transmission
// schedule among the readers is established").
//
// This module supplies that schedule. The backend server partitions the
// known inventory across R readers (hash partition: balanced and
// distribution-independent); each reader runs the chosen polling protocol
// over its share. Two schedules are modelled:
//   * kTimeDivision    — readers share one RF channel and take turns; the
//                        sweep makespan is the sum of per-reader times.
//   * kSpatialParallel — readers cover RF-isolated zones (separate rooms,
//                        dock doors) and run concurrently; the makespan is
//                        the maximum per-reader time.
// A second, fault-tolerant schedule lives below run_multi_reader:
// run_fleet drives the same partitioned readers *tick by tick* (one polling
// round per reader per tick) under a fault::ReaderSupervisor, so readers
// can crash, stall and restart mid-sweep. A downed reader's still-unread
// tags are handed off to the next alive reader in ring order, each handoff
// gated by a fleet-level RecoveryCoordinator budget; tags whose budget runs
// out are reported undelivered — the fleet delivers or lists every tag,
// never loses one silently. All fault draws come from per-reader dedicated
// streams (fault::FaultInjector::sample_reader_fault), so a fleet with
// faults disabled is byte-identical to one built without the fault layer.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.hpp"
#include "fault/supervisor.hpp"
#include "obs/health.hpp"
#include "protocols/registry.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid::core {

enum class ReaderSchedule : std::uint8_t { kTimeDivision, kSpatialParallel };

struct MultiReaderConfig final {
  std::size_t readers = 2;
  protocols::ProtocolKind kind = protocols::ProtocolKind::kTpp;
  ReaderSchedule schedule = ReaderSchedule::kTimeDivision;
  sim::SessionConfig session{};  ///< per-reader seeds derive from .seed
  /// Seed of the hash partition assigning tags to readers.
  std::uint64_t partition_seed = 0x52464944;
};

struct MultiReaderReport final {
  std::vector<sim::RunResult> per_reader;
  double makespan_s = 0.0;      ///< wall-clock time of the whole sweep
  double total_busy_s = 0.0;    ///< summed reader activity (energy proxy)
  std::size_t collected = 0;    ///< total tags interrogated
  bool verified = false;        ///< union of records covers the inventory
};

/// Runs a full multi-reader sweep over `population`.
[[nodiscard]] MultiReaderReport run_multi_reader(
    const tags::TagPopulation& population, const MultiReaderConfig& config);

/// The partition function: which reader covers `id` (exposed for tests).
[[nodiscard]] std::size_t reader_of(const TagId& id, std::size_t readers,
                                    std::uint64_t partition_seed);

// --- Fault-tolerant fleet schedule ------------------------------------------

/// Configuration of one supervised fleet sweep. Reader faults and the
/// supervisor policy ride alongside the usual per-session knobs; with
/// `reader_faults` disabled the sweep never draws from the fault streams
/// and collects exactly what run_multi_reader would.
struct FleetConfig final {
  std::size_t readers = 4;
  protocols::ProtocolKind kind = protocols::ProtocolKind::kTpp;
  sim::SessionConfig session{};  ///< per-reader seeds derive from .seed
  std::uint64_t partition_seed = 0x52464944;
  /// Per-reader, per-tick fault process (crash / stall / restart), each
  /// reader sampling its own stream seeded by (seed, reader).
  fault::ReaderFaultConfig reader_faults{};
  fault::SupervisorConfig supervisor{};
  /// Times one tag may be rehomed away from a downed reader before the
  /// fleet gives it up as undelivered (a fleet-level RecoveryCoordinator
  /// budget, same machinery as per-session retry budgets).
  std::uint32_t handoff_budget = 4;
  /// Scheduling-tick cap: the sweep abandons (loudly — every remaining tag
  /// is listed undelivered) rather than run forever against a fault plan
  /// that keeps killing readers.
  std::uint64_t max_ticks = 1u << 16;
};

/// Per-reader outcome of a fleet sweep, folded across the reader's
/// incarnations (every crash/restart rebuilds the session; metrics of all
/// incarnations merge here).
struct FleetReaderReport final {
  sim::Metrics metrics{};
  std::size_t collected = 0;       ///< records delivered by this reader
  std::uint64_t incarnations = 1;  ///< sessions built (1 = never restarted)
  obs::ReaderHealth final_health = obs::ReaderHealth::kHealthy;
  std::uint64_t crashes = 0;
  std::uint64_t stalls = 0;
  std::uint64_t restarts = 0;
};

/// Outcome of a supervised fleet sweep. Every tag of the population is
/// accounted for exactly once across records / missing_ids /
/// undelivered_ids (`verified` asserts it).
struct FleetReport final {
  std::vector<FleetReaderReport> per_reader;
  /// Merge-fold of per_reader metrics in reader order, including the
  /// reader-fault counters (reader_crashes / reader_stalls /
  /// reader_restarts / handoffs).
  sim::Metrics totals{};
  std::vector<sim::CollectedRecord> records;
  std::vector<TagId> missing_ids;
  /// Tags given up on: session retry budgets, fleet handoff budgets, tick
  /// cap, or every eligible reader permanently down. In abandonment order.
  std::vector<TagId> undelivered_ids;
  /// Every health transition the supervisor recorded, in tick order.
  std::vector<fault::HealthTransition> transitions;
  std::uint64_t ticks = 0;      ///< scheduling ticks the sweep took
  std::uint64_t handoffs = 0;   ///< tags rehomed away from downed readers
  bool verified = false;        ///< exact delivered-or-listed accounting
};

/// Runs a supervised, fault-tolerant fleet sweep over `population`.
/// Deterministic in config.session.seed: byte-identical serial vs pooled
/// (the sweep itself is single-threaded; determinism tests replay it).
[[nodiscard]] FleetReport run_fleet(const tags::TagPopulation& population,
                                    const FleetConfig& config);

}  // namespace rfid::core
