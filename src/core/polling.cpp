#include "core/polling.hpp"

#include <algorithm>

#include "analysis/timing_model.hpp"
#include "common/error.hpp"

namespace rfid::core {

CollectionReport collect_info(ProtocolKind kind,
                              const tags::TagPopulation& population,
                              sim::SessionConfig config) {
  config.keep_records = true;
  const auto protocol = protocols::make_protocol(kind);
  CollectionReport report;
  report.result = protocol->run(population, config);
  report.verification =
      sim::verify_complete_collection(population, report.result);
  return report;
}

MissingTagReport find_missing_tags(
    ProtocolKind kind, const tags::TagPopulation& expected,
    const std::unordered_set<TagId, TagIdHash>& present,
    sim::SessionConfig config) {
  RFID_EXPECTS(kind != ProtocolKind::kDfsa);
  config.keep_records = true;
  config.info_bits = std::max<std::size_t>(config.info_bits, 1);
  config.present = &present;

  const auto protocol = protocols::make_protocol(kind);
  MissingTagReport report;
  report.result = protocol->run(expected, config);
  report.missing = report.result.missing_ids;
  std::sort(report.missing.begin(), report.missing.end());

  // Ground truth: exactly the expected tags absent from `present`.
  std::vector<TagId> truth;
  for (const tags::Tag& tag : expected)
    if (!present.contains(tag.id())) truth.push_back(tag.id());
  std::sort(truth.begin(), truth.end());
  report.exact = truth == report.missing;
  return report;
}

std::vector<ComparisonRow> compare_protocols(
    std::span<const ProtocolKind> kinds, std::size_t n, std::size_t info_bits,
    std::size_t trials, std::uint64_t master_seed,
    parallel::ThreadPool* pool) {
  std::vector<ComparisonRow> rows;
  rows.reserve(kinds.size() + 1);

  parallel::TrialPlan plan;
  plan.trials = trials;
  plan.master_seed = master_seed;
  plan.session.info_bits = info_bits;
  const auto factory = parallel::uniform_population(n);

  for (const ProtocolKind kind : kinds) {
    const auto protocol = protocols::make_protocol(kind);
    const parallel::TrialSeries series =
        parallel::run_trials(*protocol, factory, plan, pool);
    ComparisonRow row;
    row.protocol = std::string(protocols::to_string(kind));
    row.avg_vector_bits = series.vector_bits().mean();
    row.avg_time_s = series.time_s().mean();
    row.ci95_time_s = series.time_s().ci95_half_width();
    rows.push_back(std::move(row));
  }

  ComparisonRow bound;
  bound.protocol = "LowerBound";
  bound.avg_vector_bits = 0.0;
  bound.avg_time_s = analysis::lower_bound_time_s(n, info_bits);
  rows.push_back(std::move(bound));
  return rows;
}

}  // namespace rfid::core
