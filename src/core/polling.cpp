#include "core/polling.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "analysis/timing_model.hpp"
#include "common/error.hpp"

namespace rfid::core {

CollectionReport collect_info(ProtocolKind kind,
                              const tags::TagPopulation& population,
                              sim::SessionConfig config) {
  config.keep_records = true;
  const auto protocol = protocols::make_protocol(kind);
  CollectionReport report;
  report.result = protocol->run(population, config);
  report.verification =
      sim::verify_complete_collection(population, report.result);
  return report;
}

MissingTagReport find_missing_tags(
    ProtocolKind kind, const tags::TagPopulation& expected,
    const std::unordered_set<TagId, TagIdHash>& present,
    sim::SessionConfig config) {
  RFID_EXPECTS(kind != ProtocolKind::kDfsa);
  config.keep_records = true;
  config.info_bits = std::max<std::size_t>(config.info_bits, 1);
  config.present = &present;

  const auto protocol = protocols::make_protocol(kind);
  MissingTagReport report;
  report.result = protocol->run(expected, config);
  report.missing = report.result.missing_ids;
  std::sort(report.missing.begin(), report.missing.end());

  // Ground truth: exactly the expected tags absent from `present`.
  std::vector<TagId> truth;
  for (const tags::Tag& tag : expected)
    if (!present.contains(tag.id())) truth.push_back(tag.id());
  std::sort(truth.begin(), truth.end());
  report.exact = truth == report.missing;
  return report;
}

sim::SessionConfig fault_comparison_session() {
  sim::SessionConfig session;
  session.fault.link = fault::LinkModel::kGilbertElliott;
  session.fault.downlink_ber = 0.005;
  session.framing.enabled = true;
  session.framing.segment_payload_bits = 32;
  session.recovery.enabled = true;
  session.recovery.retry_budget = 12;
  return session;
}

std::vector<ComparisonRow> compare_protocols(
    std::span<const ProtocolKind> kinds, std::size_t n, std::size_t info_bits,
    std::size_t trials, std::uint64_t master_seed, parallel::ThreadPool* pool,
    const sim::SessionConfig& base_session) {
  std::vector<ComparisonRow> rows;
  rows.reserve(kinds.size() + 1);

  parallel::TrialPlan plan;
  plan.trials = trials;
  plan.master_seed = master_seed;
  plan.session = base_session;
  plan.session.info_bits = info_bits;
  const auto factory = parallel::uniform_population(n);

  for (const ProtocolKind kind : kinds) {
    const auto protocol = protocols::make_protocol(kind);
    const parallel::TrialSeries series =
        parallel::run_trials(*protocol, factory, plan, pool);
    ComparisonRow row;
    row.protocol = std::string(protocols::to_string(kind));
    row.avg_vector_bits = series.vector_bits().mean();
    row.avg_time_s = series.time_s().mean();
    row.ci95_time_s = series.time_s().ci95_half_width();
    row.totals = series.totals;
    row.trials = trials;
    rows.push_back(std::move(row));
  }

  ComparisonRow bound;
  bound.protocol = "LowerBound";
  bound.avg_vector_bits = 0.0;
  bound.avg_time_s = analysis::lower_bound_time_s(n, info_bits);
  rows.push_back(std::move(bound));
  return rows;
}

namespace {

std::string num(double value) {
  std::ostringstream oss;
  oss.precision(12);
  oss << value;
  return oss.str();
}

}  // namespace

void write_comparison_json(std::ostream& os,
                           std::span<const ComparisonRow> rows,
                           const ComparisonMeta& meta) {
  // Fixed key order and formatting: identical inputs must serialise to
  // identical bytes regardless of thread count (CI diffs this output).
  os << "{\n";
  os << "  \"n\": " << meta.n << ",\n";
  os << "  \"info_bits\": " << meta.info_bits << ",\n";
  os << "  \"trials\": " << meta.trials << ",\n";
  os << "  \"master_seed\": " << meta.master_seed << ",\n";
  os << "  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ComparisonRow& row = rows[i];
    const sim::Metrics& t = row.totals;
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"protocol\": \"" << row.protocol << "\",\n";
    os << "      \"avg_vector_bits\": " << num(row.avg_vector_bits) << ",\n";
    os << "      \"avg_time_s\": " << num(row.avg_time_s) << ",\n";
    os << "      \"ci95_time_s\": " << num(row.ci95_time_s) << ",\n";
    os << "      \"trials\": " << row.trials << ",\n";
    os << "      \"totals\": {\n";
    os << "        \"polls\": " << t.polls << ",\n";
    os << "        \"missing\": " << t.missing << ",\n";
    os << "        \"corrupted\": " << t.corrupted << ",\n";
    os << "        \"retries\": " << t.retries << ",\n";
    os << "        \"undelivered\": " << t.undelivered << ",\n";
    os << "        \"rounds\": " << t.rounds << ",\n";
    os << "        \"circles\": " << t.circles << ",\n";
    os << "        \"slots_total\": " << t.slots_total << ",\n";
    os << "        \"slots_useful\": " << t.slots_useful << ",\n";
    os << "        \"slots_wasted\": " << t.slots_wasted << ",\n";
    os << "        \"vector_bits\": " << t.vector_bits << ",\n";
    os << "        \"command_bits\": " << t.command_bits << ",\n";
    os << "        \"tag_bits\": " << t.tag_bits << ",\n";
    os << "        \"time_us\": " << num(t.time_us) << "\n";
    os << "      }\n";
    os << "    }";
  }
  os << "\n  ]\n}\n";
}

}  // namespace rfid::core
