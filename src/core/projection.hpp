// Closed-form execution-time projections per protocol.
//
// Combines the vector-length models (Eqs. (4), Theorem 1, Eq. (6)) with the
// Section V-A timing formula into a single "how long will this inventory
// take" estimate, without running the simulator. The simulation tests hold
// the simulator to these projections within a few percent — each validates
// the other.
#pragma once

#include <cstddef>
#include <optional>

#include "phy/c1g2.hpp"
#include "protocols/registry.hpp"

namespace rfid::core {

/// Projected inventory time in seconds for collecting l_bits from n tags.
/// Returns nullopt for protocols without a closed-form model here (MIC,
/// SIC, DFSA, PrefixCPP — their costs depend on slot-level dynamics or the
/// ID distribution).
[[nodiscard]] std::optional<double> projected_protocol_time_s(
    protocols::ProtocolKind kind, std::size_t n, std::size_t l_bits,
    const phy::C1G2Timing& timing = {});

}  // namespace rfid::core
