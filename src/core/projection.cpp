#include "core/projection.hpp"

#include <cmath>

#include "analysis/ehpp_model.hpp"
#include "analysis/hpp_model.hpp"
#include "analysis/timing_model.hpp"
#include "analysis/tpp_model.hpp"
#include "common/tag_id.hpp"
#include "phy/commands.hpp"

namespace rfid::core {
using namespace rfid::analysis;

std::optional<double> projected_protocol_time_s(
    protocols::ProtocolKind kind, std::size_t n, std::size_t l_bits,
    const phy::C1G2Timing& timing) {
  using protocols::ProtocolKind;
  switch (kind) {
    case ProtocolKind::kCpp:
      return projected_time_s(n, double(kTagIdBits), l_bits, timing,
                              /*query_rep_prefix=*/false);
    case ProtocolKind::kCodedPolling: {
      // 48 vector bits/tag plus 16 validator bits/tag, bare framing.
      return projected_time_s(n, 48.0 + 16.0, l_bits, timing, false);
    }
    case ProtocolKind::kHpp: {
      // Round inits are outside w but on the air; amortize them in.
      const HppPrediction p = hpp_predict(n);
      const double init_per_tag =
          n == 0 ? 0.0
                 : p.expected_rounds * double(phy::QueryRoundCommand::kBits) /
                       double(n);
      return projected_time_s(n, p.avg_vector_bits + init_per_tag, l_bits,
                              timing);
    }
    case ProtocolKind::kEhpp: {
      const double w = ehpp_predict_w(
          n, double(phy::CircleCommand::kBits),
          double(phy::QueryRoundCommand::kBits));
      return projected_time_s(n, w, l_bits, timing);
    }
    case ProtocolKind::kTpp: {
      const double w = tpp_predict_w(n);
      // Rounds shrink survivors by e^{-lambda} in [0.25, 0.5]; bound the
      // init overhead with the geometric estimate at the band midpoint.
      const double rounds =
          n == 0 ? 0.0 : std::log(double(n) + 1.0) / std::log(1.0 / 0.6);
      const double init_per_tag =
          n == 0 ? 0.0
                 : rounds * double(phy::QueryRoundCommand::kBits) / double(n);
      return projected_time_s(n, w + init_per_tag, l_bits, timing);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace rfid::core
