#include "core/warehouse.hpp"

#include <bit>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "fault/fault_model.hpp"

namespace rfid::core {

namespace {

/// Seed of the crash-decision stream for one (reader, epoch, attempt).
/// The *attempt* belongs here and nowhere else: the epoch's session seed
/// must exclude it (so the completing attempt is bit-identical to a
/// crash-free run), while the crash draw must include it (or a crashed
/// attempt would replay the identical crash forever — a livelock).
std::uint64_t crash_stream_seed(std::uint64_t master, std::size_t reader,
                                std::uint64_t epoch,
                                std::uint64_t attempt) noexcept {
  return derive_seed(
      derive_seed(derive_seed(derive_seed(master, 0xC7A54ull), reader), epoch),
      attempt);
}

}  // namespace

WarehouseReader::WarehouseReader(std::size_t index,
                                 const WarehouseConfig& config,
                                 obs::StreamingAggregator& aggregator)
    : index_(index),
      config_(config),
      aggregator_(aggregator),
      hpp_policy_(protocols::HppRoundConfig{}),
      tpp_policy_(protocols::Tpp::Config{}) {
  // Distinct populations per reader, stable across epochs: the warehouse
  // zone a reader covers does not change, only which tags are in it.
  Xoshiro256ss pop_rng(config.seed * 1000003ull + index);
  population_ = tags::TagPopulation::uniform_random(config.tags, pop_rng);
  aggregator_.set_retry_budget(index_, 8);
  begin_epoch();
}

void WarehouseReader::set_health(obs::ReaderHealth health) {
  if (health_ == health) return;
  health_ = health;
  aggregator_.set_reader_health(index_, health);
}

/// Builds the fault plan for one epoch: a bursty downlink plus a churn
/// schedule where ~1/8 of the tags depart mid-drain and a few outsiders
/// arrive late. All draws come from named per-reader streams seeded by
/// (seed, reader, epoch) — never by the attempt — so a daemon restart (or
/// a crash replay) reproduces the completing attempt bit-identically.
void WarehouseReader::begin_epoch() {
  sim::SessionConfig session_config;
  session_config.seed = config_.seed ^
                        (0x9E3779B97F4A7C15ull * (index_ + 1)) ^
                        (epochs_ * 0x7F4A7C15ull);
  session_config.keep_records = false;
  session_config.tracer = config_.tracer;
  session_config.fault.link = fault::LinkModel::kGilbertElliott;
  session_config.fault.downlink_ber = 2e-4;
  session_config.framing.enabled = true;
  session_config.recovery.enabled = true;
  session_config.recovery.retry_budget = 8;
  session_config.degradation.enabled = true;

  Xoshiro256ss churn_rng(session_config.seed ^ 0xC0FFEEull);
  const auto& tags_list = population_.tags();
  for (std::size_t t = 0; t < tags_list.size(); ++t) {
    const std::uint64_t draw = churn_rng();
    fault::ChurnEvent event;
    event.id = tags_list[t].id();
    event.round = 2 + draw % 24;
    if (draw % 8 == 0) {
      event.kind = fault::ChurnEvent::Kind::kDepart;
      session_config.fault.churn.push_back(event);
    } else if (draw % 8 == 1) {
      // First event is an arrival: the tag starts outside the zone and
      // shows up mid-epoch.
      event.kind = fault::ChurnEvent::Kind::kArrive;
      session_config.fault.churn.push_back(event);
    }
  }

  session_ = std::make_unique<sim::Session>(population_, session_config);
  recovery_ =
      std::make_unique<fault::RecoveryCoordinator>(session_config.recovery);
  engine_ = std::make_unique<protocols::RoundEngine>(*session_, *recovery_);
  active_ = protocols::make_devices(*session_);
  init_failures_ = 0;
  rounds_this_epoch_ = 0;

  // Crash schedule for this attempt. Disabled crash injection draws
  // nothing, keeping fault-free runs byte-identical to older builds.
  crash_after_round_ = 0;
  if (config_.crash_every_epochs != 0) {
    Xoshiro256ss crash_rng(
        crash_stream_seed(config_.seed, index_, epochs_, attempt_));
    if (crash_rng.bernoulli(1.0 /
                            static_cast<double>(config_.crash_every_epochs)))
      crash_after_round_ = 1 + crash_rng.below(12);
  }
}

bool WarehouseReader::step() {
  // Adaptive tier: the session's degradation policy watches observed
  // downlink corruption and the daemon honours its TPP->HPP downgrades
  // (EHPP shares HPP's round shape at this layer).
  const analysis::PollingTier tier = session_->degradation_tier(active_.size());
  protocols::RoundPolicy& policy =
      tier == analysis::PollingTier::kTpp
          ? static_cast<protocols::RoundPolicy&>(tpp_policy_)
          : hpp_policy_;
  if (!engine_->run_round(active_, policy)) {
    // Round-init undeliverable: bounded retry, then give up loudly on
    // whatever is left so the epoch still terminates.
    if (++init_failures_ > 8) engine_->abandon_active(active_);
  } else {
    init_failures_ = 0;
  }
  ++rounds_this_epoch_;

  if (crash_after_round_ != 0 && rounds_this_epoch_ >= crash_after_round_ &&
      !active_.empty()) {
    // Reader dies mid-epoch: the incarnation's partial work evaporates
    // (abort_epoch discards the live slot without folding), the epoch is
    // replayed from its boundary as a new attempt. Completed folds never
    // see any of this — they remain a pure function of (seed, reader,
    // epoch), the checkpoint-resume invariant.
    ++crashes_;
    aggregator_.note_reader_crash(index_);
    aggregator_.abort_epoch(index_);
    set_health(obs::ReaderHealth::kDown);
    ++attempt_;
    ++restarts_;
    aggregator_.note_reader_restart(index_);
    begin_epoch();
    set_health(obs::ReaderHealth::kRecovering);
    return false;
  }

  aggregator_.update_reader(index_, session_->metrics(),
                            session_->downlink().estimated_ber());
  if (!active_.empty()) return false;

  // Epoch drained: fold it everywhere (aggregator and the local mirror,
  // same Metrics::merge, so both stay bit-exact).
  aggregator_.complete_epoch(index_, session_->metrics());
  completed_.merge(session_->metrics());
  ++epochs_;
  attempt_ = 0;
  set_health(obs::ReaderHealth::kHealthy);
  begin_epoch();
  return true;
}

void WarehouseReader::restore(const sim::ReaderCheckpoint& slot) {
  epochs_ = slot.epochs;
  completed_ = slot.completed;
  crashes_ = slot.crashes;
  restarts_ = slot.restarts;
  health_ = slot.health;
  attempt_ = 0;
  begin_epoch();
}

// --- WarehouseSim -----------------------------------------------------------

WarehouseSim::WarehouseSim(const WarehouseConfig& config,
                           obs::StreamingAggregator& aggregator)
    : config_(config), aggregator_(aggregator) {
  if (config_.readers == 0)
    throw std::invalid_argument("WarehouseSim: need >= 1 reader");
  readers_.reserve(config_.readers);
  for (std::size_t r = 0; r < config_.readers; ++r)
    readers_.push_back(
        std::make_unique<WarehouseReader>(r, config_, aggregator_));
}

std::size_t WarehouseSim::step() {
  std::size_t completed = 0;
  for (auto& reader : readers_) {
    if (config_.epoch_target != 0 && reader->epochs() >= config_.epoch_target)
      continue;  // reached its goal; idles so the folds stop exactly there
    if (reader->step()) ++completed;
  }
  return completed;
}

bool WarehouseSim::target_reached() const {
  if (config_.epoch_target == 0) return false;
  for (const auto& reader : readers_)
    if (reader->epochs() < config_.epoch_target) return false;
  return true;
}

std::uint64_t WarehouseSim::total_epochs() const {
  std::uint64_t total = 0;
  for (const auto& reader : readers_) total += reader->epochs();
  return total;
}

std::uint64_t WarehouseSim::config_fingerprint() const {
  // Only what shapes the completed folds belongs here: readers, zone
  // populations, seed. The epoch target and crash rate are stopping/fault
  // conditions the folds are invariant to — fingerprinting them would
  // (wrongly) refuse to extend a finished run or replay one crash-free.
  std::uint64_t h = 0x57415245ull;  // 'WARE'
  h = sim::fingerprint_mix(h, config_.readers);
  h = sim::fingerprint_mix(h, config_.tags);
  h = sim::fingerprint_mix(h, config_.seed);
  return h;
}

void WarehouseSim::fill_checkpoint(sim::Checkpoint& out,
                                   std::uint64_t wall_unix_ms) const {
  out.config_fingerprint = config_fingerprint();
  out.master_seed = config_.seed;
  out.wall_unix_ms = wall_unix_ms;
  out.epoch_target = config_.epoch_target;
  out.readers.resize(readers_.size());
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    sim::ReaderCheckpoint& slot = out.readers[r];
    const WarehouseReader& reader = *readers_[r];
    slot.epochs = reader.epochs();
    slot.crashes = reader.crashes();
    slot.restarts = reader.restarts();
    slot.health = reader.health();
    slot.completed = reader.completed();
  }
  // No live RNG streams: everything per-epoch re-derives from (seed,
  // reader, epoch), so an epoch-boundary checkpoint needs no stream state.
  out.rng_streams.clear();
}

void WarehouseSim::restore(const sim::Checkpoint& checkpoint) {
  if (checkpoint.config_fingerprint != config_fingerprint())
    throw std::runtime_error(
        "warehouse: checkpoint was taken under a different configuration "
        "(fingerprint mismatch)");
  if (checkpoint.readers.size() != readers_.size())
    throw std::runtime_error("warehouse: checkpoint reader count mismatch");
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    const sim::ReaderCheckpoint& slot = checkpoint.readers[r];
    readers_[r]->restore(slot);
    aggregator_.restore_reader(r, slot.completed, slot.epochs, slot.crashes,
                               slot.restarts, slot.health);
  }
}

void WarehouseSim::write_final_metrics(std::ostream& os) const {
  // Only epoch-boundary state: completed folds and epoch counts. Incident
  // counters (crashes/restarts) are deliberately absent — a resumed run may
  // replay a crashed epoch a different number of times, and this report's
  // contract is byte-identity at equal epoch counts.
  os << R"({"seed":)" << config_.seed << R"(,"readers":)" << readers_.size()
     << R"(,"epoch_target":)" << config_.epoch_target << R"(,"per_reader":[)";
  sim::Metrics totals;
  for (std::size_t r = 0; r < readers_.size(); ++r) {
    const WarehouseReader& reader = *readers_[r];
    os << (r == 0 ? "" : ",") << R"({"epochs":)" << reader.epochs()
       << R"(,"metrics":)";
    obs::write_json(os, reader.completed());
    os << '}';
    totals.merge(reader.completed());
  }
  os << R"(],"totals":)";
  obs::write_json(os, totals);
  os << "}\n";
}

}  // namespace rfid::core
