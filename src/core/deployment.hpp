// Deployment simulator: hundreds of readers with overlapping interrogation
// zones, frequency-channel scheduling and continuous tag churn.
//
// The paper (Section II-A) assumes "the collision-free transmission
// schedule among the readers is established" and says nothing about how.
// core/multi_reader.hpp models the two degenerate schedules (one shared
// channel = pure time division; fully RF-isolated zones = full spatial
// parallelism); this layer generalizes both into the schedule real sites
// run: R readers share C frequency channels, readers on the same channel
// take turns (time division within the channel) while readers on different
// channels interrogate concurrently (spatial parallelism across channels).
// C = 1 reproduces kTimeDivision, C = R reproduces kSpatialParallel, and
// everything in between is a dense-reader site — the case the two-value
// ReaderSchedule enum could not express.
//
// Three deployment realities ride on top of the schedule:
//
//   * Overlapping zones. A tag near a zone boundary is reachable by its
//     home reader AND the next zone's reader. Exactly one of them owns the
//     tag (deterministic ownership resolution: the reachable reader with
//     the smallest per-reader keyed hash of the tag ID), so every tag is
//     interrogated by exactly one reader and the delivered-or-listed
//     accounting of the fleet layer stays exact. The overlap also gives
//     fault handoff a better target: a downed reader's boundary tags
//     rehome to the other reader that can already hear them.
//
//   * Continuous churn. Tags depart (goods ship out) and move between
//     zones (goods relocate) on pure per-tag hazard schedules — every
//     event tick is a pure function of (churn_seed, id, event#), never a
//     draw from mutable RNG state, so a tag's trajectory is identical
//     regardless of shard count, schedule, or thread count. A moved tag
//     triggers a handoff to its new owner (consuming the same per-tag
//     fleet handoff budget as fault rehoming); a departed tag that was
//     never read is listed as missing. Churn therefore never breaks the
//     exact accounting: population = delivered + missing + undelivered.
//
//   * Reader faults. The PR-8 supervision machinery (fault::
//     ReaderSupervisor, per-reader fault streams, bounded handoff budgets)
//     plugs in unchanged; deadline- and backoff-valued supervisor knobs
//     are scaled by the channel rotation length so a reader that only
//     transmits every R/C ticks is not declared dead for obeying the
//     schedule.
//
// Scale & determinism. The tick loop splits into a parallel phase — every
// execution shard (a contiguous reader range with its own tags::TagSoA
// columns) runs its scheduled readers' rounds and churn scans, touching
// only reader-local state — and a serial merge phase that applies
// supervision, handoffs and report folds in reader index order. All
// cross-reader mutation is serial and reader-ordered, so a run is
// byte-identical serial vs RFID_THREADS=N and invariant to the shard
// count; the fault-free serial tick path performs zero steady-state heap
// allocations (gated by tests/test_alloc_guard.cpp). run_fleet is a thin
// legacy wrapper over this layer (channels = readers, no overlap, no
// churn). See docs/fleet.md and docs/architecture.md ("Deployment
// simulator").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_model.hpp"
#include "fault/recovery.hpp"
#include "fault/supervisor.hpp"
#include "obs/health.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/registry.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid::core {

struct DeploymentConfig final {
  std::size_t readers = 8;
  /// Frequency channels; clamped to `readers`. Readers r and r' share a
  /// channel iff r ≡ r' (mod channels) and then never transmit in the
  /// same tick. 1 = pure time division, readers = full spatial parallelism.
  std::size_t channels = 1;
  protocols::ProtocolKind kind = protocols::ProtocolKind::kTpp;
  sim::SessionConfig session{};  ///< per-reader seeds derive from .seed
  std::uint64_t partition_seed = 0x52464944;
  /// Probability that a tag is also reachable by the next zone's reader
  /// (pure per-tag hash draw; 0 = disjoint zones, the legacy partition).
  double zone_overlap = 0.0;
  /// Keys the per-reader ownership hash that resolves overlapping reach.
  std::uint64_t ownership_seed = 0x4F574E52;  // "OWNR"
  /// Per-tag, per-tick departure hazard (goods leaving the site for good).
  double churn_depart_per_tick = 0.0;
  /// Per-tag, per-tick zone-move hazard (goods relocating; each observed
  /// move rehomes the tag to its new owner, consuming handoff budget).
  double churn_move_per_tick = 0.0;
  std::uint64_t churn_seed = 0x4348524E;  // "CHRN"
  fault::ReaderFaultConfig reader_faults{};
  /// Tick-valued fields (deadlines, backoffs) are interpreted in units of
  /// the channel rotation length — scaled internally by ceil(readers /
  /// channels) — so the same config means the same wall-equivalent
  /// patience at any channel count.
  fault::SupervisorConfig supervisor{};
  std::uint32_t handoff_budget = 4;
  std::uint64_t max_ticks = 1u << 20;
  /// Execution shards (contiguous reader ranges run as one pool task).
  /// 0 = one shard per pool worker (1 when serial). Results are invariant
  /// to this knob; it only controls parallel grain.
  std::size_t shards = 0;
};

struct ChannelReport final {
  std::size_t readers = 0;      ///< readers assigned to this channel
  std::uint64_t rounds = 0;     ///< polling rounds transmitted on it
  double busy_us = 0.0;         ///< airtime the channel carried
};

struct DeploymentReport final {
  std::vector<sim::Metrics> per_reader_metrics;  ///< folded incarnations
  std::vector<obs::ReaderHealth> per_reader_health;
  std::vector<std::uint64_t> per_reader_incarnations;
  std::vector<std::size_t> per_reader_delivered;
  /// Merge-fold of per-reader metrics in reader index order (the
  /// deterministic fold every sharded/pooled run reproduces byte-for-byte).
  sim::Metrics totals{};
  std::vector<ChannelReport> per_channel;
  /// Full records only when session.keep_records — at deployment scale the
  /// sweep runs record-free and accounts by exact counts instead.
  std::vector<sim::CollectedRecord> records;
  std::vector<TagId> missing_ids;      ///< departed before they were read
  std::vector<TagId> undelivered_ids;  ///< budgets / tick cap gave them up
  std::vector<fault::HealthTransition> transitions;
  std::size_t delivered = 0;    ///< tags successfully interrogated
  std::uint64_t ticks = 0;
  std::uint64_t handoffs = 0;       ///< fault- and churn-driven rehomings
  std::uint64_t churn_moves = 0;    ///< handoffs caused by zone moves
  std::uint64_t churn_departures = 0;
  double makespan_s = 0.0;      ///< sum over ticks of the slowest channel
  double total_busy_s = 0.0;    ///< summed reader airtime (energy proxy)
  bool verified = false;        ///< exact delivered-or-listed accounting
};

// --- Pure schedule / placement rules (exposed for tests) --------------------

/// The channel reader `r` transmits on.
[[nodiscard]] constexpr std::size_t channel_of(std::size_t reader,
                                               std::size_t channels) noexcept {
  return reader % channels;
}

/// How many readers share channel `c` out of `readers` total.
[[nodiscard]] std::size_t channel_population(std::size_t channel,
                                             std::size_t readers,
                                             std::size_t channels);

/// The one reader allowed to transmit on `channel` during `tick` (ticks are
/// 1-based). Exactly one reader per channel per tick, every channel member
/// scheduled once per rotation — the no-co-channel-concurrency invariant.
[[nodiscard]] std::size_t scheduled_reader(std::size_t channel,
                                           std::size_t readers,
                                           std::size_t channels,
                                           std::uint64_t tick);

/// True when `id` is also reachable by zone (home+1) % readers — a pure
/// per-tag hash draw against `zone_overlap`.
[[nodiscard]] bool tag_reaches_neighbor(const TagId& id, double zone_overlap,
                                        std::uint64_t partition_seed);

/// Ownership resolution: among the readers that can reach a tag sitting in
/// `zone`, the one with the smallest ownership-keyed hash of the ID (ties
/// to the lower index). With zone_overlap == 0 this is `zone` itself.
[[nodiscard]] std::size_t owner_in_zone(const TagId& id, std::size_t zone,
                                        const DeploymentConfig& config);

/// The tag's zone and presence at `tick` under the pure churn schedule:
/// walks the tag's (churn_seed, id, event#) hazard events from its home
/// zone. `departed_at` is the departure tick when `departed` (events after
/// a departure never fire — departure is absorbing).
struct ChurnPosition final {
  std::size_t zone = 0;
  bool departed = false;
  std::uint64_t departed_at = 0;
  std::uint32_t moves = 0;  ///< move events that fired up to `tick`
};
[[nodiscard]] ChurnPosition churn_position(const TagId& id,
                                           std::size_t home_zone,
                                           std::uint64_t tick,
                                           const DeploymentConfig& config);

// --- The simulator ----------------------------------------------------------

namespace detail {
struct ReaderRuntime;
}  // namespace detail

/// One stepping deployment sweep. Construct, call tick() until it returns
/// false (or drive it from a serving loop, publishing the live accessors
/// between ticks), then finish() exactly once for the folded report.
class Deployment final {
 public:
  /// `population` and `pool` are borrowed and must outlive the Deployment;
  /// pool == nullptr runs the parallel phase inline (serial), byte-identical
  /// to any pooled run.
  Deployment(const tags::TagPopulation& population, DeploymentConfig config,
             parallel::ThreadPool* pool = nullptr);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Runs one scheduling tick. Returns false once no reader holds active
  /// tags (or the tick cap tripped — finish() then lists the survivors).
  bool tick();

  /// Folds every live session and builds the report. Call once, after the
  /// last tick; the Deployment is drained afterwards.
  [[nodiscard]] DeploymentReport finish();

  // --- Live views (telemetry; safe between ticks) ---------------------------

  [[nodiscard]] std::size_t reader_count() const noexcept;
  [[nodiscard]] std::size_t channel_count() const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept;
  [[nodiscard]] std::uint64_t ticks_run() const noexcept;
  [[nodiscard]] std::size_t active_remaining() const;
  /// Folded incarnations ⊕ the live session's running totals.
  [[nodiscard]] sim::Metrics reader_metrics(std::size_t reader) const;
  [[nodiscard]] obs::ReaderHealth reader_health(std::size_t reader) const;
  [[nodiscard]] double channel_busy_us(std::size_t channel) const;
  [[nodiscard]] std::uint64_t channel_rounds(std::size_t channel) const;
  [[nodiscard]] std::uint64_t handoffs() const noexcept;
  [[nodiscard]] std::uint64_t churn_departures() const noexcept;

 private:
  void apply_fault_event(std::size_t reader, detail::ReaderRuntime& rt);
  void hand_off(std::size_t from);
  void fold_session(std::size_t reader, detail::ReaderRuntime& rt);
  void build_session(std::size_t reader, detail::ReaderRuntime& rt);
  void run_reader_parallel(std::size_t reader, detail::ReaderRuntime& rt);

  const tags::TagPopulation* population_;
  DeploymentConfig config_;
  parallel::ThreadPool* pool_;
  std::size_t channels_;  ///< clamped
  std::size_t shards_;
  std::uint64_t rotation_;  ///< max readers per channel (deadline scale)
  std::string protocol_name_;
  std::vector<detail::ReaderRuntime> runtime_;
  fault::ReaderSupervisor supervisor_;
  fault::RecoveryCoordinator handoff_budget_;
  std::vector<ChannelReport> channels_state_;
  std::vector<std::size_t> scheduled_;  ///< per-channel reader, per tick
  std::vector<std::size_t> shard_begin_;  ///< shard -> first reader
  DeploymentReport report_;  ///< accumulating folds; moved out by finish()
  std::uint64_t tick_ = 0;
  double makespan_us_ = 0.0;
  bool finished_ = false;
};

/// Convenience: ticks a Deployment to completion and returns the report.
[[nodiscard]] DeploymentReport run_deployment(
    const tags::TagPopulation& population, const DeploymentConfig& config,
    parallel::ThreadPool* pool = nullptr);

}  // namespace rfid::core
