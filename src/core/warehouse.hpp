// The continuous warehouse workload behind tools/simserved, extracted so
// checkpoint/resume is testable in-process.
//
// A WarehouseSim owns R readers, each endlessly draining its own tag
// population (stable zone, per-epoch churn and burst faults, bounded
// recovery, adaptive degradation) and reporting into a shared
// obs::StreamingAggregator. Everything runs on the deterministic simulated
// clock; the serving layer decides pacing and wall time.
//
// Determinism contract (relied on by tests/test_checkpoint.cpp and the
// chaos-fleet CI job):
//   * each epoch's session seed is a pure function of (seed, reader,
//     epoch#) — never of how many crashed attempts the epoch took — so the
//     per-reader *completed* metrics fold after E epochs is one exact byte
//     sequence regardless of crashes, kills and resumes along the way;
//   * crash faults draw from a separate named stream keyed by (seed,
//     reader, epoch#, attempt#): a crashed attempt replays the same rounds
//     up to a possibly different crash point, and the attempt that finally
//     completes is bit-identical to the epoch on a crash-free run;
//   * a checkpoint captures only epoch-boundary state (epoch counts +
//     completed folds + incident counters), which is why restore() needs
//     no mid-round RNG surgery: the in-flight epoch is simply replayed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "fault/recovery.hpp"
#include "obs/health.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/round_engine.hpp"
#include "protocols/tree_polling.hpp"
#include "sim/checkpoint.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid::core {

struct WarehouseConfig final {
  std::size_t readers = 2;
  std::size_t tags = 256;
  std::uint64_t seed = 1;
  /// Per-reader epoch goal; a reader that reaches it idles. 0 = forever.
  /// The per-reader goal (rather than a fleet total) is what makes the
  /// final completed folds independent of scheduling interleaving.
  std::uint64_t epoch_target = 0;
  /// Mean epochs between injected reader crashes (1/N probability per
  /// attempt, crash point uniform over the epoch's early rounds). 0 = off —
  /// and off means the crash streams are never drawn from, keeping
  /// fault-free runs byte-identical to builds without this machinery.
  std::uint64_t crash_every_epochs = 0;
  obs::Tracer* tracer = nullptr;  ///< not owned; may be nullptr
};

/// One simulated reader: an endlessly repeating drain of its own zone.
class WarehouseReader final {
 public:
  WarehouseReader(std::size_t index, const WarehouseConfig& config,
                  obs::StreamingAggregator& aggregator);

  /// Runs one engine round (or replays a crash). Returns true when the
  /// round completed an epoch and a fresh session was started.
  bool step();

  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] const sim::Metrics& completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }
  [[nodiscard]] obs::ReaderHealth health() const noexcept { return health_; }

  /// Restores epoch-boundary state from a checkpoint slot and begins the
  /// next epoch from scratch (attempt 0). The aggregator is NOT touched
  /// here — WarehouseSim::restore pushes the restored state into it.
  void restore(const sim::ReaderCheckpoint& slot);

 private:
  void begin_epoch();
  void set_health(obs::ReaderHealth health);

  const std::size_t index_;
  const WarehouseConfig& config_;
  obs::StreamingAggregator& aggregator_;
  tags::TagPopulation population_{};
  protocols::HppRoundPolicy hpp_policy_;
  protocols::TppRoundPolicy tpp_policy_;
  std::unique_ptr<sim::Session> session_;
  std::unique_ptr<fault::RecoveryCoordinator> recovery_;
  std::unique_ptr<protocols::RoundEngine> engine_;
  tags::TagSoA active_;
  /// Bit-exact fold of completed epochs — the mirror of the aggregator's
  /// completed slot, kept here so checkpoints never reach into the
  /// aggregator's lock.
  sim::Metrics completed_{};
  std::uint64_t epochs_ = 0;
  std::uint64_t attempt_ = 0;  ///< crash replays within the current epoch
  std::uint64_t rounds_this_epoch_ = 0;
  /// Crash schedule of the current attempt: 0 = survives; otherwise the
  /// 1-based round after which the reader dies.
  std::uint64_t crash_after_round_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  obs::ReaderHealth health_ = obs::ReaderHealth::kHealthy;
  unsigned init_failures_ = 0;
};

class WarehouseSim final {
 public:
  WarehouseSim(const WarehouseConfig& config,
               obs::StreamingAggregator& aggregator);

  /// One scheduling tick: one engine round per reader (readers that hit
  /// the epoch target idle). Returns the number of epochs completed.
  std::size_t step();

  /// True once every reader completed the per-reader epoch target
  /// (never true when the target is 0).
  [[nodiscard]] bool target_reached() const;

  /// Total completed epochs across readers.
  [[nodiscard]] std::uint64_t total_epochs() const;

  [[nodiscard]] const WarehouseReader& reader(std::size_t r) const {
    return *readers_[r];
  }
  [[nodiscard]] std::size_t reader_count() const noexcept {
    return readers_.size();
  }

  // --- Checkpoint/resume ----------------------------------------------------

  /// Digest of everything that shapes the run; embedded in checkpoints and
  /// compared on restore.
  [[nodiscard]] std::uint64_t config_fingerprint() const;

  /// Fills `out` with the current epoch-boundary state. `wall_unix_ms` is
  /// the caller's wall timestamp (the sim layer never reads a clock).
  /// Reuses `out`'s buffers, so periodic snapshots allocate nothing warm.
  void fill_checkpoint(sim::Checkpoint& out, std::uint64_t wall_unix_ms) const;

  /// Restores from a decoded checkpoint and pushes the restored state into
  /// the aggregator. Throws std::runtime_error on fingerprint or shape
  /// mismatch — a checkpoint from a different config is refused loudly.
  void restore(const sim::Checkpoint& checkpoint);

  /// Byte-stable JSON of the *completed* per-reader folds (the
  /// crash/kill-invariant state): same bytes at the same epoch counts no
  /// matter how often the process was killed and resumed in between.
  void write_final_metrics(std::ostream& os) const;

 private:
  const WarehouseConfig config_;
  obs::StreamingAggregator& aggregator_;
  std::vector<std::unique_ptr<WarehouseReader>> readers_;
};

}  // namespace rfid::core
