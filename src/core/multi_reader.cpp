#include "core/multi_reader.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/round_engine.hpp"
#include "protocols/tree_polling.hpp"
#include "tags/soa.hpp"

namespace rfid::core {

std::size_t reader_of(const TagId& id, std::size_t readers,
                      std::uint64_t partition_seed) {
  RFID_EXPECTS(readers >= 1);
  return static_cast<std::size_t>(tag_hash(partition_seed, id) % readers);
}

MultiReaderReport run_multi_reader(const tags::TagPopulation& population,
                                   const MultiReaderConfig& config) {
  RFID_EXPECTS(config.readers >= 1);
  const auto protocol = protocols::make_protocol(config.kind);

  // Partition the inventory by hashed zone assignment.
  std::vector<std::vector<tags::Tag>> shares(config.readers);
  for (const tags::Tag& tag : population)
    shares[reader_of(tag.id(), config.readers, config.partition_seed)]
        .push_back(tag);

  MultiReaderReport report;
  report.per_reader.reserve(config.readers);
  for (std::size_t r = 0; r < config.readers; ++r) {
    const tags::TagPopulation zone(std::move(shares[r]));
    sim::SessionConfig session = config.session;
    session.seed = derive_seed(config.session.seed, r);
    report.per_reader.push_back(protocol->run(zone, session));
  }

  for (const sim::RunResult& result : report.per_reader) {
    const double t = result.exec_time_s();
    report.total_busy_s += t;
    report.makespan_s = config.schedule == ReaderSchedule::kTimeDivision
                            ? report.total_busy_s
                            : std::max(report.makespan_s, t);
    report.collected += result.records.size();
  }

  // Verification: the union of per-reader records covers the inventory
  // exactly once (readers must neither overlap nor skip). The hash set is
  // membership-only scratch — never iterated, so it cannot leak hash order
  // into the report (detlint's unordered-iteration rule).
  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(population.size());
  bool duplicates = false;
  for (const sim::RunResult& result : report.per_reader)
    for (const sim::CollectedRecord& record : result.records)
      duplicates |= !seen.insert(record.id).second;
  bool covered = seen.size() == population.size();
  for (const tags::Tag& tag : population)
    covered &= seen.contains(tag.id());
  report.verified = covered && !duplicates;
  return report;
}

// --- Fault-tolerant fleet schedule ------------------------------------------

namespace {

/// One reader's runtime: the session stack is rebuilt on every crash or
/// reboot (a fresh incarnation loses all volatile reader state), while the
/// active tag set — which models which tags are still unread in its zone —
/// survives restarts and moves wholesale on handoff. Tag pointers stay
/// valid across both because every session is built over the one shared
/// population.
struct ReaderRuntime final {
  std::unique_ptr<sim::Session> session;
  std::unique_ptr<protocols::RoundPolicy> policy;
  std::unique_ptr<protocols::RoundEngine> engine;
  fault::RecoveryCoordinator recovery;
  tags::TagSoA active;
  fault::FaultInjector faults;  ///< reader-fault stream only
  std::uint64_t incarnations = 0;
  std::uint64_t stalled_until = 0;  ///< ticks < this are skipped (stall)

  explicit ReaderRuntime(const fault::RecoveryConfig& recovery_config)
      : recovery(recovery_config) {}
};

std::unique_ptr<protocols::RoundPolicy> make_fleet_policy(
    protocols::ProtocolKind kind) {
  switch (kind) {
    case protocols::ProtocolKind::kHpp:
      return std::make_unique<protocols::HppRoundPolicy>(
          protocols::HppRoundConfig{});
    case protocols::ProtocolKind::kTpp:
      return std::make_unique<protocols::TppRoundPolicy>(
          protocols::Tpp::Config{});
    default:
      throw std::invalid_argument(
          "run_fleet: only round-engine protocols (HPP, TPP) can be "
          "supervised tick by tick");
  }
}

}  // namespace

FleetReport run_fleet(const tags::TagPopulation& population,
                      const FleetConfig& config) {
  RFID_EXPECTS(config.readers >= 1);
  const std::string protocol_name{
      protocols::to_string(config.kind)};

  FleetReport report;
  report.per_reader.resize(config.readers);

  fault::ReaderSupervisor supervisor(config.readers, config.supervisor);
  // The handoff ledger: every rehoming consumes one attempt of the tag's
  // fleet-level budget — the same bounded give-up-loudly machinery the
  // per-session recovery path uses.
  fault::RecoveryConfig handoff_config;
  handoff_config.enabled = true;
  handoff_config.retry_budget = config.handoff_budget;
  fault::RecoveryCoordinator handoff_budget(handoff_config);

  // Tear-down helper: folds a dying/finished incarnation into the report.
  const auto fold_session = [&](std::size_t r, ReaderRuntime& rt) {
    if (rt.session == nullptr) return;
    sim::RunResult result = rt.session->finish(protocol_name);
    FleetReaderReport& reader_report = report.per_reader[r];
    reader_report.metrics.merge(result.metrics);
    reader_report.collected += result.records.size();
    for (sim::CollectedRecord& record : result.records)
      report.records.push_back(std::move(record));
    for (const TagId& id : result.missing_ids)
      report.missing_ids.push_back(id);
    for (const TagId& id : result.undelivered_ids)
      report.undelivered_ids.push_back(id);
    rt.session.reset();
    rt.engine.reset();
    rt.policy.reset();
  };

  const auto build_session = [&](std::size_t r, ReaderRuntime& rt) {
    sim::SessionConfig session_config = config.session;
    // Incarnation in the seed: a rebooted reader is a new physical boot,
    // so its protocol stream must not replay the dead one's draws.
    session_config.seed = derive_seed(derive_seed(config.session.seed, r),
                                      rt.incarnations);
    rt.session =
        std::make_unique<sim::Session>(population, std::move(session_config));
    rt.policy = make_fleet_policy(config.kind);
    rt.engine =
        std::make_unique<protocols::RoundEngine>(*rt.session, rt.recovery);
    ++rt.incarnations;
  };

  // Partition the inventory and boot every reader over the shared
  // population (active sets select each reader's zone).
  std::vector<ReaderRuntime> runtime;
  runtime.reserve(config.readers);
  for (std::size_t r = 0; r < config.readers; ++r) {
    runtime.emplace_back(config.session.recovery);
    build_session(r, runtime[r]);
    runtime[r].faults.arm_reader_faults(
        config.reader_faults,
        derive_seed(derive_seed(config.session.seed, 0x52465446u), r));
  }
  for (const tags::Tag& tag : population) {
    const std::size_t r =
        reader_of(tag.id(), config.readers, config.partition_seed);
    runtime[r].active.push_back(&tag);
  }

  // Rehomes every still-active tag of downed reader `from` to the next
  // reader in ring order that can still make progress. Budget-exhausted
  // tags are listed undelivered; with no eligible target the tags stay
  // put and wait for the reader's own restart.
  const auto hand_off = [&](std::size_t from) {
    ReaderRuntime& rt = runtime[from];
    if (rt.active.empty()) return;
    std::size_t target = config.readers;  // sentinel: none
    for (std::size_t step = 1; step < config.readers; ++step) {
      const std::size_t candidate = (from + step) % config.readers;
      if (supervisor.permanently_down(candidate)) continue;
      if (supervisor.health(candidate) == obs::ReaderHealth::kDown) continue;
      target = candidate;
      break;
    }
    if (target == config.readers) {
      if (!supervisor.permanently_down(from)) return;  // wait for restart
      // Nobody can take the tags and this reader will never come back:
      // give them up loudly, one budget slot each.
      for (std::size_t i = 0; i < rt.active.size(); ++i)
        report.undelivered_ids.push_back(rt.active.tag(i)->id());
      rt.active.clear();
      return;
    }
    std::size_t rehomed = 0;
    for (std::size_t i = 0; i < rt.active.size(); ++i) {
      const tags::Tag* tag = rt.active.tag(i);
      if (handoff_budget.take_attempt(tag->id())) {
        runtime[target].active.push_back(tag);
        ++rehomed;
      } else {
        report.undelivered_ids.push_back(tag->id());
      }
    }
    rt.active.clear();
    report.handoffs += rehomed;
  };

  const auto work_remaining = [&] {
    for (const ReaderRuntime& rt : runtime)
      if (!rt.active.empty()) return true;
    return false;
  };

  std::uint64_t tick = 0;
  while (work_remaining() && tick < config.max_ticks) {
    ++tick;
    for (std::size_t r = 0; r < config.readers; ++r) {
      ReaderRuntime& rt = runtime[r];
      if (supervisor.permanently_down(r)) continue;
      if (supervisor.health(r) == obs::ReaderHealth::kDown) {
        if (!supervisor.restart_due(r, tick)) continue;
        supervisor.begin_restart(r, tick);
        // Deadline-downed readers (stall escalations) still hold their dead
        // incarnation's session — fold it so its delivered records survive
        // the reboot. Crash paths already folded; this is then a no-op.
        fold_session(r, rt);
        build_session(r, rt);
        continue;  // the reboot consumes the tick; rounds resume next tick
      }
      if (tick < rt.stalled_until) continue;  // mid-stall: silent
      // Fault draws happen at the tick boundary, before the round, so a
      // round either runs to completion or not at all — delivered work is
      // never torn, which is what makes the delivered-or-listed accounting
      // exact.
      if (const auto fault = rt.faults.sample_reader_fault()) {
        switch (fault->kind) {
          case fault::ReaderFaultKind::kCrash:
            fold_session(r, rt);
            supervisor.note_crash(r, tick);
            hand_off(r);
            continue;
          case fault::ReaderFaultKind::kRestart:
            fold_session(r, rt);
            supervisor.note_spontaneous_restart(r, tick);
            build_session(r, rt);
            continue;  // the reboot consumes the tick
          case fault::ReaderFaultKind::kStall:
            supervisor.note_stall(r);
            rt.stalled_until = tick + fault->stall_ticks;
            continue;
        }
      }
      if (rt.active.empty()) {
        // Zone drained: the reader idles but still answers its heartbeat.
        supervisor.note_round_complete(r, tick);
        continue;
      }
      if (rt.engine->run_round(rt.active, *rt.policy))
        supervisor.note_round_complete(r, tick);
    }
    supervisor.advance(tick);
    // Escalations (silence -> down) surface here; their tags move now.
    for (std::size_t r = 0; r < config.readers; ++r)
      if (supervisor.health(r) == obs::ReaderHealth::kDown ||
          supervisor.permanently_down(r))
        hand_off(r);
  }

  // Tick cap exhausted with work left: list every survivor, loudly.
  for (ReaderRuntime& rt : runtime) {
    for (std::size_t i = 0; i < rt.active.size(); ++i)
      report.undelivered_ids.push_back(rt.active.tag(i)->id());
    rt.active.clear();
  }
  for (std::size_t r = 0; r < config.readers; ++r) fold_session(r, runtime[r]);

  report.ticks = tick;
  report.transitions = supervisor.transitions();
  for (std::size_t r = 0; r < config.readers; ++r) {
    FleetReaderReport& reader_report = report.per_reader[r];
    reader_report.incarnations = runtime[r].incarnations;
    reader_report.final_health = supervisor.health(r);
    reader_report.crashes = supervisor.crashes(r);
    reader_report.stalls = supervisor.stalls(r);
    reader_report.restarts = supervisor.restarts(r);
    reader_report.metrics.reader_crashes = reader_report.crashes;
    reader_report.metrics.reader_stalls = reader_report.stalls;
    reader_report.metrics.reader_restarts = reader_report.restarts;
    report.totals.merge(reader_report.metrics);
  }
  report.totals.handoffs = report.handoffs;

  // Delivered-or-listed verification: records, missing and undelivered
  // must cover the population exactly once. Membership-only hash set —
  // never iterated (detlint's unordered-iteration rule).
  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(population.size());
  bool duplicates = false;
  for (const sim::CollectedRecord& record : report.records)
    duplicates |= !seen.insert(record.id).second;
  for (const TagId& id : report.missing_ids)
    duplicates |= !seen.insert(id).second;
  for (const TagId& id : report.undelivered_ids)
    duplicates |= !seen.insert(id).second;
  bool covered = seen.size() == population.size();
  for (const tags::Tag& tag : population) covered &= seen.contains(tag.id());
  report.verified = covered && !duplicates;
  return report;
}

}  // namespace rfid::core
