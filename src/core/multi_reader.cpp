#include "core/multi_reader.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace rfid::core {

std::size_t reader_of(const TagId& id, std::size_t readers,
                      std::uint64_t partition_seed) {
  RFID_EXPECTS(readers >= 1);
  return static_cast<std::size_t>(tag_hash(partition_seed, id) % readers);
}

MultiReaderReport run_multi_reader(const tags::TagPopulation& population,
                                   const MultiReaderConfig& config) {
  RFID_EXPECTS(config.readers >= 1);
  const auto protocol = protocols::make_protocol(config.kind);

  // Partition the inventory by hashed zone assignment.
  std::vector<std::vector<tags::Tag>> shares(config.readers);
  for (const tags::Tag& tag : population)
    shares[reader_of(tag.id(), config.readers, config.partition_seed)]
        .push_back(tag);

  MultiReaderReport report;
  report.per_reader.reserve(config.readers);
  for (std::size_t r = 0; r < config.readers; ++r) {
    const tags::TagPopulation zone(std::move(shares[r]));
    sim::SessionConfig session = config.session;
    session.seed = derive_seed(config.session.seed, r);
    report.per_reader.push_back(protocol->run(zone, session));
  }

  for (const sim::RunResult& result : report.per_reader) {
    const double t = result.exec_time_s();
    report.total_busy_s += t;
    report.makespan_s = config.schedule == ReaderSchedule::kTimeDivision
                            ? report.total_busy_s
                            : std::max(report.makespan_s, t);
    report.collected += result.records.size();
  }

  // Verification: the union of per-reader records covers the inventory
  // exactly once (readers must neither overlap nor skip). The hash set is
  // membership-only scratch — never iterated, so it cannot leak hash order
  // into the report (detlint's unordered-iteration rule).
  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(population.size());
  bool duplicates = false;
  for (const sim::RunResult& result : report.per_reader)
    for (const sim::CollectedRecord& record : result.records)
      duplicates |= !seen.insert(record.id).second;
  bool covered = seen.size() == population.size();
  for (const tags::Tag& tag : population)
    covered &= seen.contains(tag.id());
  report.verified = covered && !duplicates;
  return report;
}

}  // namespace rfid::core
