#include "core/multi_reader.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"

namespace rfid::core {

std::size_t reader_of(const TagId& id, std::size_t readers,
                      std::uint64_t partition_seed) {
  RFID_EXPECTS(readers >= 1);
  return static_cast<std::size_t>(tag_hash(partition_seed, id) % readers);
}

MultiReaderReport run_multi_reader(const tags::TagPopulation& population,
                                   const MultiReaderConfig& config) {
  RFID_EXPECTS(config.readers >= 1);
  const auto protocol = protocols::make_protocol(config.kind);

  // Partition the inventory by hashed zone assignment.
  std::vector<std::vector<tags::Tag>> shares(config.readers);
  for (const tags::Tag& tag : population)
    shares[reader_of(tag.id(), config.readers, config.partition_seed)]
        .push_back(tag);

  MultiReaderReport report;
  report.per_reader.reserve(config.readers);
  for (std::size_t r = 0; r < config.readers; ++r) {
    const tags::TagPopulation zone(std::move(shares[r]));
    sim::SessionConfig session = config.session;
    session.seed = derive_seed(config.session.seed, r);
    report.per_reader.push_back(protocol->run(zone, session));
  }

  for (const sim::RunResult& result : report.per_reader) {
    const double t = result.exec_time_s();
    report.total_busy_s += t;
    report.makespan_s = config.schedule == ReaderSchedule::kTimeDivision
                            ? report.total_busy_s
                            : std::max(report.makespan_s, t);
    report.collected += result.records.size();
  }

  // Verification: the union of per-reader records covers the inventory
  // exactly once (readers must neither overlap nor skip). The hash set is
  // membership-only scratch — never iterated, so it cannot leak hash order
  // into the report (rfidlint's unordered-iteration rule).
  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(population.size());
  bool duplicates = false;
  for (const sim::RunResult& result : report.per_reader)
    for (const sim::CollectedRecord& record : result.records)
      duplicates |= !seen.insert(record.id).second;
  bool covered = seen.size() == population.size();
  for (const tags::Tag& tag : population)
    covered &= seen.contains(tag.id());
  report.verified = covered && !duplicates;
  return report;
}

// --- Fault-tolerant fleet schedule ------------------------------------------
//
// run_fleet is a thin legacy shim over core::Deployment (see
// core/deployment.hpp): channels = readers (every reader transmits every
// tick, the schedule the original fleet engine hard-coded), disjoint zones
// (no overlap) and no churn. The supervision, handoff-budget and
// delivered-or-listed semantics live in the deployment layer now; this
// wrapper only reshapes the report into the stable FleetReport API.

FleetReport run_fleet(const tags::TagPopulation& population,
                      const FleetConfig& config) {
  RFID_EXPECTS(config.readers >= 1);
  DeploymentConfig deployment;
  deployment.readers = config.readers;
  deployment.channels = config.readers;  // legacy: all readers, every tick
  deployment.kind = config.kind;
  deployment.session = config.session;
  deployment.partition_seed = config.partition_seed;
  deployment.zone_overlap = 0.0;
  deployment.reader_faults = config.reader_faults;
  deployment.supervisor = config.supervisor;
  deployment.handoff_budget = config.handoff_budget;
  deployment.max_ticks = config.max_ticks;

  DeploymentReport result = run_deployment(population, deployment);

  FleetReport report;
  report.per_reader.resize(config.readers);
  for (std::size_t r = 0; r < config.readers; ++r) {
    FleetReaderReport& reader_report = report.per_reader[r];
    reader_report.metrics = result.per_reader_metrics[r];
    reader_report.collected = result.per_reader_delivered[r];
    reader_report.incarnations = result.per_reader_incarnations[r];
    reader_report.final_health = result.per_reader_health[r];
    reader_report.crashes = reader_report.metrics.reader_crashes;
    reader_report.stalls = reader_report.metrics.reader_stalls;
    reader_report.restarts = reader_report.metrics.reader_restarts;
  }
  report.totals = result.totals;
  report.records = std::move(result.records);
  report.missing_ids = std::move(result.missing_ids);
  report.undelivered_ids = std::move(result.undelivered_ids);
  report.transitions = std::move(result.transitions);
  report.ticks = result.ticks;
  report.handoffs = result.handoffs;
  report.verified = result.verified;
  return report;
}

}  // namespace rfid::core
