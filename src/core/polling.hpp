// Public facade of the fast-RFID-polling library.
//
// Downstream users interact with three verbs:
//   * collect_info       — gather m bits from every tag (Section II-C's fast
//                          polling problem), verified end to end;
//   * find_missing_tags  — the 1-bit anti-theft use case: poll the expected
//                          inventory, report which tags never answer;
//   * compare_protocols  — run several protocols on identical workloads and
//                          return their averaged metrics side by side.
// Everything deeper (custom protocol knobs, raw sessions, analysis models)
// remains available through the underlying modules.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "parallel/trial_runner.hpp"
#include "protocols/registry.hpp"
#include "sim/session.hpp"
#include "sim/verify.hpp"
#include "tags/population.hpp"

namespace rfid::core {

using protocols::ProtocolKind;

/// Result of collect_info: the raw run plus its end-to-end verification.
struct CollectionReport final {
  sim::RunResult result;
  sim::VerifyReport verification;
};

/// Collects `config.info_bits` bits from every tag in `population` using the
/// given protocol (paper defaults), and verifies completeness.
[[nodiscard]] CollectionReport collect_info(
    ProtocolKind kind, const tags::TagPopulation& population,
    sim::SessionConfig config = {});

/// Result of find_missing_tags.
struct MissingTagReport final {
  std::vector<TagId> missing;  ///< expected tags that never replied
  sim::RunResult result;
  bool exact = false;  ///< missing set matches ground truth exactly
};

/// Interrogates the expected inventory with 1-bit presence polls; tags not
/// in `present` are reported missing. `kind` must be a polling protocol
/// (DFSA cannot detect absences). `present` is queried by membership only
/// (never iterated), so its hash order cannot reach the report; the
/// missing list is sorted before it is returned.
[[nodiscard]] MissingTagReport find_missing_tags(
    ProtocolKind kind, const tags::TagPopulation& expected,
    const std::unordered_set<TagId, TagIdHash>& present,
    sim::SessionConfig config = {});

/// One protocol's averaged metrics in a comparison.
struct ComparisonRow final {
  std::string protocol;
  double avg_vector_bits = 0.0;
  double avg_time_s = 0.0;
  double ci95_time_s = 0.0;
  /// Metrics summed over all trials (sim::Metrics::merge in trial order, so
  /// serial and pooled comparisons agree bitwise). Zero for the synthetic
  /// LowerBound row.
  sim::Metrics totals{};
  std::size_t trials = 0;  ///< trials behind `totals`; 0 for LowerBound
};

/// Runs every requested protocol over `trials` fresh n-tag populations and
/// returns averaged metrics, plus the paper's lower bound as the last row.
/// `base_session` seeds every trial's SessionConfig (fault plan, framing,
/// recovery policy, ...); info_bits and the derived per-trial seed are
/// overlaid onto it. The default base is the clean-channel session.
[[nodiscard]] std::vector<ComparisonRow> compare_protocols(
    std::span<const ProtocolKind> kinds, std::size_t n, std::size_t info_bits,
    std::size_t trials = 10, std::uint64_t master_seed = 42,
    parallel::ThreadPool* pool = nullptr,
    const sim::SessionConfig& base_session = {});

/// The canned fault workload of `protocol_comparison --fault`: bursty
/// Gilbert–Elliott reply loss, downlink BER 0.005 with CRC framing
/// (32-bit segments), and a bounded recovery policy — one shared scenario
/// so comparisons across protocols and machines are reproducible.
[[nodiscard]] sim::SessionConfig fault_comparison_session();

/// Workload description echoed into a comparison JSON report.
struct ComparisonMeta final {
  std::size_t n = 0;
  std::size_t info_bits = 0;
  std::size_t trials = 0;
  std::uint64_t master_seed = 42;
};

/// Serialises a comparison as deterministic JSON (fixed key order, 12
/// significant digits): identical rows produce identical bytes, which is
/// what the CI determinism gate diffs between serial and pooled runs.
void write_comparison_json(std::ostream& os,
                           std::span<const ComparisonRow> rows,
                           const ComparisonMeta& meta);

}  // namespace rfid::core
