// The shared wireless medium.
//
// RFID tags cannot hear each other, so when several decide to answer the
// same reader transmission, their backscatter superimposes and the reader
// decodes nothing. The Channel is where that physics is *observed*: a
// protocol hands it the set of tags whose (tag-side) predicates fired, and
// the channel classifies the slot as empty / singleton / collision and keeps
// slot statistics. Protocol correctness — "polling elicits exactly one
// reply" — is therefore measured, never assumed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tags/tag.hpp"

namespace rfid::air {

enum class SlotOutcome : std::uint8_t { kEmpty, kSingleton, kCollision };

/// Result of one reader-initiated slot.
struct SlotResult final {
  SlotOutcome outcome = SlotOutcome::kEmpty;
  const tags::Tag* responder = nullptr;  ///< set only for kSingleton
  std::size_t responder_count = 0;
  /// False when a singleton reply was garbled by channel noise before the
  /// reader could decode it (set by the session's noise model).
  bool decoded = true;
};

/// Cumulative channel-level statistics for a session.
struct ChannelStats final {
  std::uint64_t empty_slots = 0;
  std::uint64_t singleton_slots = 0;
  std::uint64_t collision_slots = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return empty_slots + singleton_slots + collision_slots;
  }
};

class Channel final {
 public:
  /// Arbitrates one slot given the tags that chose to respond.
  [[nodiscard]] SlotResult arbitrate(
      std::span<const tags::Tag* const> responders) noexcept;

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }

  /// Batched equivalent of `count` singleton arbitrations whose outcome is
  /// predetermined (the clean-poll fast path, sim::AirLoop::
  /// clean_singleton_replies): only the slot statistics move, exactly as
  /// `count` arbitrate calls over one-element responder sets would.
  void record_clean_singletons(std::uint64_t count) noexcept {
    stats_.singleton_slots += count;
  }

 private:
  ChannelStats stats_{};
};

}  // namespace rfid::air
