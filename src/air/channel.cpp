#include "air/channel.hpp"

namespace rfid::air {

SlotResult Channel::arbitrate(
    std::span<const tags::Tag* const> responders) noexcept {
  SlotResult result;
  result.responder_count = responders.size();
  if (responders.empty()) {
    result.outcome = SlotOutcome::kEmpty;
    ++stats_.empty_slots;
  } else if (responders.size() == 1) {
    result.outcome = SlotOutcome::kSingleton;
    result.responder = responders.front();
    ++stats_.singleton_slots;
  } else {
    result.outcome = SlotOutcome::kCollision;
    ++stats_.collision_slots;
  }
  return result;
}

}  // namespace rfid::air
