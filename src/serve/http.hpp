// Minimal dependency-free HTTP/1.1 server for the telemetry service.
//
// This is deliberately not a general web server: it serves a handful of
// GET routes (JSON documents, one static page, and Server-Sent Event
// streams) to localhost dashboards and smoke tests, over plain POSIX
// sockets, with no third-party dependencies. Design constraints, in order:
//
//   * the simulation must never feel the server: all socket work happens
//     on the acceptor thread and one detached-style worker thread per
//     connection, and handlers only touch the obs layer's thread-safe
//     telemetry objects;
//   * shutdown is graceful and bounded: stop() closes the listener,
//     shuts down every live connection socket (which unblocks any
//     in-flight send/recv), and joins every worker before returning, so
//     the daemon can flush sinks after stop() with no racing writers;
//   * slow clients are bounded, not trusted: SO_SNDTIMEO/SO_RCVTIMEO
//     timeouts turn a stalled peer into a failed write, and MSG_NOSIGNAL
//     keeps a dead peer from raising SIGPIPE.
//
// The server itself never reads a wall clock; socket timeouts are kernel
// relative intervals. Wall time is confined to the telemetry handlers
// behind documented rfidlint pragmas (see telemetry_service.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace rfid::serve {

/// A parsed request line. Only what the telemetry routes need: the method,
/// the path (target with the query string split off), and the raw query.
struct HttpRequest final {
  std::string method;  ///< "GET" or "HEAD" (anything else is rejected early)
  std::string path;    ///< target up to '?', e.g. "/metrics.json"
  std::string query;   ///< target after '?', "" when absent
};

/// A buffered response for plain (non-streaming) routes.
struct HttpResponse final {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Handle for streaming handlers (SSE). write() sends bytes to the peer
/// and returns false once the client disconnected, the send timed out, or
/// the server began shutting down — the handler must then return promptly.
class StreamWriter {
 public:
  virtual ~StreamWriter() = default;

  /// Sends `data` fully. Returns false on any failure; failures are
  /// sticky (once false, always false).
  virtual bool write(std::string_view data) = 0;

  /// True while the connection is healthy and the server keeps running.
  [[nodiscard]] virtual bool alive() const = 0;
};

/// The server. Register routes, start(), and stop() exactly once.
class HttpServer final {
 public:
  struct Config final {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    int backlog = 16;
    std::size_t max_connections = 32;  ///< excess connections get 503
    unsigned send_timeout_ms = 5000;
    unsigned recv_timeout_ms = 5000;
    /// Request-head bounds. A slow-loris peer is limited on THREE axes:
    /// total bytes, recv() calls, and per-recv kernel timeout — so the
    /// worst case a hostile client can pin a worker thread for is
    /// max_request_reads * recv_timeout_ms, not bytes * timeout.
    std::size_t max_request_bytes = 8192;
    std::size_t max_request_reads = 32;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using StreamHandler = std::function<void(const HttpRequest&, StreamWriter&)>;

  HttpServer();
  explicit HttpServer(Config config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a buffered handler for an exact path. Must precede start().
  void route(std::string path, Handler handler);

  /// Registers a streaming (SSE) handler for an exact path. The response
  /// header is written by the server; the handler writes the event body.
  /// Must precede start().
  void route_stream(std::string path, StreamHandler handler);

  /// Binds, listens, and spawns the acceptor thread. Throws
  /// std::system_error when the socket cannot be bound.
  void start();

  /// Stops accepting, unblocks and joins every connection, closes all
  /// sockets. Idempotent; safe to call from a signal-watcher thread.
  void stop();

  /// The bound port (resolves ephemeral port 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire);
  }

 private:
  struct Connection final {
    int fd = -1;
    std::thread worker;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& connection);
  void reap_finished() RFID_EXCLUDES(mutex_);

  Config config_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  std::vector<std::pair<std::string, StreamHandler>> stream_handlers_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      RFID_GUARDED_BY(mutex_);
};

}  // namespace rfid::serve
