#include "serve/telemetry_service.hpp"

#include <chrono>
#include <sstream>
#include <string>

#include "serve/dashboard.hpp"

namespace rfid::serve {

namespace {

std::string num(double value) {
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

}  // namespace

TelemetryService::TelemetryService(obs::StreamingAggregator& aggregator)
    : TelemetryService(aggregator, Config{}) {}

TelemetryService::TelemetryService(obs::StreamingAggregator& aggregator,
                                   Config config)
    : aggregator_(aggregator),
      config_(config),
      start_(std::chrono::steady_clock::now()) {}

void TelemetryService::install(HttpServer& server) {
  server.route("/", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/html; charset=utf-8";
    response.body = std::string(dashboard_html());
    return response;
  });
  server.route("/healthz",
               [this](const HttpRequest&) { return healthz(); });
  server.route("/metrics.json",
               [this](const HttpRequest&) { return metrics_json(); });
  server.route_stream("/events", [this](const HttpRequest&,
                                        StreamWriter& writer) {
    events(writer);
  });
}

HttpResponse TelemetryService::healthz() const {
  const auto uptime = std::chrono::steady_clock::now() - start_;
  const double uptime_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(uptime)
          .count();
  // The serving layer is the one place the repo reads wall time: a
  // dashboard or curl-based probe wants a real timestamp to correlate
  // with its own logs, and nothing deterministic consumes this value.
  // rfidlint: allow(wall-clock) — /healthz reports real time to external probes; never feeds the simulation
  const auto wall = std::chrono::system_clock::now().time_since_epoch();
  const auto wall_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(wall).count();

  // Per-reader supervisor verdicts from the latest snapshot: a probe can
  // alert on a down reader without parsing the full /metrics.json. Overall
  // status degrades as soon as any reader is not healthy.
  const auto snapshot = aggregator_.latest();
  std::string health = "[";
  bool all_healthy = true;
  if (snapshot != nullptr) {
    for (std::size_t r = 0; r < snapshot->readers.size(); ++r) {
      const obs::ReaderHealth reader_health = snapshot->readers[r].health;
      if (reader_health != obs::ReaderHealth::kHealthy) all_healthy = false;
      health += (r == 0 ? "\"" : ",\"");
      health += obs::to_string(reader_health);
      health += '"';
    }
  }
  health += ']';

  HttpResponse response;
  response.body = std::string(R"({"status":")") +
                  (all_healthy ? "ok" : "degraded") + R"(","uptime_s":)" +
                  num(uptime_s) + R"(,"wall_unix_ms":)" +
                  std::to_string(wall_unix_ms) + R"(,"readers":)" +
                  std::to_string(aggregator_.reader_count()) +
                  R"(,"reader_health":)" + health + R"(,"snapshots":)" +
                  std::to_string(snapshot ? snapshot->sequence : 0) + "}";
  return response;
}

HttpResponse TelemetryService::metrics_json() const {
  const auto snapshot = aggregator_.latest();
  HttpResponse response;
  if (snapshot == nullptr) {
    response.status = 503;
    response.body = R"({"error":"no snapshot published yet"})";
    return response;
  }
  response.body = obs::to_json(*snapshot);
  return response;
}

void TelemetryService::events(StreamWriter& writer) const {
  const auto subscription = aggregator_.subscribe(config_.sse_queue_capacity);
  std::uint64_t reported_drops = 0;
  unsigned idle_waits = 0;

  // Late joiners get the current state immediately instead of waiting a
  // full publish interval for their first frame.
  if (const auto latest = aggregator_.latest(); latest != nullptr) {
    writer.write("event: snapshot\ndata: " + obs::to_json(*latest) + "\n\n");
  }

  while (writer.alive()) {
    auto item = subscription->wait(config_.sse_wait_ms);
    if (!item.has_value()) {
      if (subscription->closed()) break;  // daemon shut the stream down
      if (++idle_waits >= config_.keepalive_every_waits) {
        idle_waits = 0;
        if (!writer.write(": keepalive\n\n")) break;
      }
      continue;
    }
    idle_waits = 0;

    bool ok = true;
    if (item->type == obs::StreamSubscription::Item::Type::kSnapshot) {
      ok = writer.write("event: snapshot\ndata: " +
                        obs::to_json(*item->snapshot) + "\n\n");
    } else {
      ok = writer.write("event: " +
                        std::string(obs::to_string(item->event.kind)) +
                        "\ndata: " + obs::to_json(item->event) + "\n\n");
    }
    if (!ok) break;

    // Tell the client its own queue overflowed (drop-oldest policy): the
    // stream stays live under backpressure but is no longer gap-free.
    if (const std::uint64_t drops = subscription->dropped();
        drops != reported_drops) {
      reported_drops = drops;
      if (!writer.write("event: drops\ndata: {\"dropped\":" +
                        std::to_string(drops) + "}\n\n"))
        break;
    }
  }
  aggregator_.unsubscribe(subscription);
}

}  // namespace rfid::serve
