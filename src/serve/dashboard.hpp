// The embedded live dashboard: one self-contained HTML page (inline CSS
// and vanilla JS, no external assets, works offline) served at GET /.
// It subscribes to /events via EventSource and renders live throughput,
// per-reader BER, recovery-budget consumption, a per-reader data table,
// and a typed event log. The page is compiled into the binary so the
// daemon stays a single artifact.
#pragma once

#include <string_view>

namespace rfid::serve {

[[nodiscard]] std::string_view dashboard_html() noexcept;

}  // namespace rfid::serve
