// Telemetry routes over the streaming aggregator.
//
// TelemetryService binds an obs::StreamingAggregator to an HttpServer:
//
//   GET /            single-file live dashboard (serve/dashboard.hpp)
//   GET /healthz     liveness + uptime + per-reader supervisor health
//                    ("status" degrades when any reader is not healthy)
//   GET /metrics.json  the latest MetricsSnapshot as one JSON object
//                      (503 until the first publish)
//   GET /events      Server-Sent Events: every published snapshot plus
//                    typed fault/degradation events, one subscription
//                    (bounded drop-oldest queue) per client; a `drops`
//                    event reports queue overflow to the client itself
//
// This file is the wall-clock boundary of the repository: uptime comes
// from the monotonic clock and /healthz's wall_unix_ms from the system
// clock behind a documented rfidlint pragma. Simulation layers below never
// see either (docs/observability.md, "Wall-clock policy").
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "obs/stream.hpp"
#include "serve/http.hpp"

namespace rfid::serve {

class TelemetryService final {
 public:
  struct Config final {
    std::size_t sse_queue_capacity = 64;  ///< items buffered per client
    unsigned sse_wait_ms = 250;           ///< queue poll interval
    unsigned keepalive_every_waits = 20;  ///< idle waits per ": keepalive"
  };

  explicit TelemetryService(obs::StreamingAggregator& aggregator);
  TelemetryService(obs::StreamingAggregator& aggregator, Config config);

  /// Registers /, /healthz, /metrics.json, and /events on `server`.
  /// Call before server.start().
  void install(HttpServer& server);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  HttpResponse healthz() const;
  HttpResponse metrics_json() const;
  void events(StreamWriter& writer) const;

  obs::StreamingAggregator& aggregator_;
  Config config_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rfid::serve
