#include "serve/dashboard.hpp"

namespace rfid::serve {

// Palette and chart chrome follow the validated reference palette
// (categorical slots in fixed order, mode-stepped for dark; series identity
// is carried by legend chips and direct labels, never color alone; the
// per-reader table is the screen-reader/low-contrast relief view).
namespace {

constexpr std::string_view kDashboardHtml = R"dash(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>rfid simserved — live telemetry</title>
<style>
  :root {
    color-scheme: light;
    --page: #f9f9f7; --surface-1: #fcfcfb;
    --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
    --grid: #e1e0d9; --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
    --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
    --good: #0ca30c; --warning: #fab219; --serious: #ec835a;
    --critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) {
      color-scheme: dark;
      --page: #0d0d0d; --surface-1: #1a1a19;
      --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
      --grid: #2c2c2a; --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
      --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
    }
  }
  :root[data-theme="dark"] {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; background: var(--page); color: var(--ink-1);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    display: flex; align-items: baseline; gap: 12px;
    padding: 14px 20px 6px;
  }
  header h1 { font-size: 17px; font-weight: 650; margin: 0; }
  header .sub { color: var(--ink-2); font-size: 13px; }
  #conn {
    margin-left: auto; font-size: 12px; color: var(--ink-2);
    display: inline-flex; align-items: center; gap: 6px;
  }
  #conn .dot {
    width: 8px; height: 8px; border-radius: 50%;
    background: var(--ink-muted);
  }
  #conn.live .dot { background: var(--good); }
  #conn.down .dot { background: var(--critical); }
  main { padding: 8px 20px 28px; max-width: 1180px; margin: 0 auto; }
  .tiles {
    display: grid; gap: 10px; margin-bottom: 12px;
    grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
  }
  .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 14px;
  }
  .tile .k { font-size: 12px; color: var(--ink-2); }
  .tile .v { font-size: 24px; font-weight: 650; }
  .tile .v small { font-size: 13px; font-weight: 400; color: var(--ink-2); }
  .cards { display: grid; gap: 12px; grid-template-columns: 1fr 1fr; }
  @media (max-width: 880px) { .cards { grid-template-columns: 1fr; } }
  .card {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 14px; position: relative;
  }
  .card h2 { font-size: 13px; font-weight: 650; margin: 0 0 2px; }
  .card .hint { font-size: 12px; color: var(--ink-muted); margin: 0 0 6px; }
  .card.wide { grid-column: 1 / -1; }
  .legend {
    display: flex; flex-wrap: wrap; gap: 4px 14px; margin: 4px 0 2px;
    font-size: 12px; color: var(--ink-2);
  }
  .legend .chip {
    display: inline-block; width: 10px; height: 10px; border-radius: 3px;
    margin-right: 5px; vertical-align: -1px;
  }
  svg { display: block; width: 100%; height: auto; }
  svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
  .axis { fill: var(--ink-muted); }
  .dlabel { fill: var(--ink-2); font-weight: 600; }
  .vlabel { fill: var(--ink-2); }
  #tooltip {
    position: fixed; pointer-events: none; display: none; z-index: 10;
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 6px; padding: 6px 9px; font-size: 12px;
    color: var(--ink-1); box-shadow: 0 2px 8px rgba(0,0,0,0.18);
    max-width: 260px;
  }
  #tooltip .t { color: var(--ink-2); margin-bottom: 2px; }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th, td {
    text-align: right; padding: 4px 10px;
    border-bottom: 1px solid var(--grid);
    font-variant-numeric: tabular-nums;
  }
  th { color: var(--ink-2); font-weight: 600; }
  th:first-child, td:first-child { text-align: left; }
  #eventlog { list-style: none; margin: 0; padding: 0; font-size: 13px; }
  #eventlog li {
    display: flex; gap: 8px; padding: 3px 0; align-items: baseline;
    border-bottom: 1px solid var(--grid);
  }
  #eventlog .icon { font-weight: 700; width: 14px; text-align: center; }
  #eventlog .kind { width: 92px; font-weight: 600; }
  #eventlog .meta { color: var(--ink-2); }
  #eventlog li.degrade .icon { color: var(--warning); }
  #eventlog li.undelivered .icon { color: var(--serious); }
  #eventlog li.epoch .icon { color: var(--good); }
  #eventlog li.drops .icon { color: var(--critical); }
  .empty { color: var(--ink-muted); font-size: 13px; padding: 8px 0; }
</style>
</head>
<body>
<header>
  <h1>rfid simserved</h1>
  <span class="sub">live telemetry &middot; <a href="/metrics.json">metrics.json</a> &middot; <a href="/healthz">healthz</a></span>
  <span id="conn"><span class="dot"></span><span id="connText">connecting…</span></span>
</header>
<main>
  <div class="tiles">
    <div class="tile"><div class="k">rounds / sec</div><div class="v" id="tileRps">—</div></div>
    <div class="tile"><div class="k">tags polled</div><div class="v" id="tilePolls">—</div></div>
    <div class="tile"><div class="k">undelivered</div><div class="v" id="tileUndeliv">—</div></div>
    <div class="tile"><div class="k">degradations</div><div class="v" id="tileDegrade">—</div></div>
    <div class="tile"><div class="k">mean BER estimate</div><div class="v" id="tileBer">—</div></div>
    <div class="tile"><div class="k">stream drops <small>(this client)</small></div><div class="v" id="tileDrops">0</div></div>
    <div class="tile" id="tileHandoffsWrap" style="display:none"><div class="k">handoffs <small>(fleet)</small></div><div class="v" id="tileHandoffs">—</div></div>
  </div>
  <div class="cards">
    <div class="card">
      <h2>Throughput — rounds per second</h2>
      <p class="hint">per publish interval, last 120 snapshots</p>
      <div id="chartRps" class="chart"><p class="empty">waiting for snapshots…</p></div>
    </div>
    <div class="card">
      <h2>Downlink BER estimate per reader</h2>
      <p class="hint">live estimate from delivery feedback</p>
      <div class="legend" id="legendBer"></div>
      <div id="chartBer" class="chart"><p class="empty">waiting for snapshots…</p></div>
    </div>
    <div class="card">
      <h2>Recovery budget consumption</h2>
      <p class="hint">retries spent and tags abandoned, per reader</p>
      <div class="legend" id="legendBudget"></div>
      <div id="chartBudget" class="chart"><p class="empty">waiting for snapshots…</p></div>
    </div>
    <div class="card">
      <h2>Event log</h2>
      <p class="hint">typed fault / degradation / epoch events</p>
      <ul id="eventlog"></ul>
      <p class="empty" id="eventlogEmpty">no events yet</p>
    </div>
    <div class="card" id="channelCard" style="display:none">
      <h2>Per-channel utilization</h2>
      <p class="hint">airtime carried and rounds per frequency channel; handoff rate below</p>
      <div id="chartChannels"></div>
      <p class="hint" id="handoffRate"></p>
    </div>
    <div class="card wide">
      <h2>Per-reader detail</h2>
      <p class="hint">exact values behind the charts</p>
      <div id="readerTable"></div>
    </div>
  </div>
</main>
<div id="tooltip"></div>
<script>
"use strict";
const MAX_POINTS = 120, MAX_EVENTS = 40;
const SLOTS = ["--s1","--s2","--s3","--s4","--s5","--s6","--s7","--s8"];
const hist = [];
let dropsSeen = 0;

const $ = id => document.getElementById(id);
const css = v => getComputedStyle(document.documentElement)
  .getPropertyValue(v).trim();
const slot = i => css(SLOTS[i % SLOTS.length]);
const fmtInt = n => n.toLocaleString("en-US");
const fmt = n => {
  if (!isFinite(n)) return "—";
  if (n === 0) return "0";
  const a = Math.abs(n);
  if (a >= 100) return n.toFixed(0);
  if (a >= 1) return n.toFixed(1);
  return n.toPrecision(2);
};
const esc = s => String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));

// --- tooltip -----------------------------------------------------------
const tip = $("tooltip");
function showTip(html, x, y) {
  tip.innerHTML = html; tip.style.display = "block";
  const w = tip.offsetWidth;
  tip.style.left = Math.min(x + 14, innerWidth - w - 8) + "px";
  tip.style.top = (y + 14) + "px";
}
function hideTip() { tip.style.display = "none"; }

// --- line chart (shared by throughput + BER) ---------------------------
// series: [{name, color, points:[{x, y}]}]; one y axis, hairline grid,
// 2px lines, direct label at each line's end.
function lineChart(el, series, opts) {
  const W = 520, H = 190, L = 46, R = 46, T = 10, B = 22;
  const pts = series.flatMap(s => s.points);
  if (pts.length < 2) return;
  const xs = pts.map(p => p.x), ys = pts.map(p => p.y);
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  let y0 = 0, y1 = Math.max(...ys, opts.yFloor || 0);
  if (y1 <= y0) y1 = y0 + 1;
  y1 *= 1.08;
  const px = x => L + (x - x0) / Math.max(1e-9, x1 - x0) * (W - L - R);
  const py = y => T + (1 - (y - y0) / (y1 - y0)) * (H - T - B);
  let g = "";
  for (let i = 0; i <= 3; i++) {
    const y = y0 + (y1 - y0) * i / 3, yy = py(y).toFixed(1);
    g += `<line x1="${L}" y1="${yy}" x2="${W - R}" y2="${yy}"
      stroke="var(--grid)" stroke-width="1"/>`;
    g += `<text class="axis" x="${L - 6}" y="${+yy + 3}"
      text-anchor="end">${opts.yFmt(y)}</text>`;
  }
  g += `<line x1="${L}" y1="${py(y0)}" x2="${W - R}" y2="${py(y0)}"
    stroke="var(--baseline)" stroke-width="1"/>`;
  g += `<text class="axis" x="${L}" y="${H - 6}">seq ${fmtInt(x0)}</text>`;
  g += `<text class="axis" x="${W - R}" y="${H - 6}"
    text-anchor="end">seq ${fmtInt(x1)}</text>`;
  for (const s of series) {
    const d = s.points.map(p => px(p.x).toFixed(1) + "," +
      py(p.y).toFixed(1)).join(" ");
    g += `<polyline points="${d}" fill="none" stroke="${s.color}"
      stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`;
    const last = s.points[s.points.length - 1];
    g += `<text class="dlabel" x="${W - R + 4}"
      y="${py(last.y).toFixed(1)}" dominant-baseline="middle"
      >${esc(s.name)}</text>`;
  }
  el.innerHTML = `<svg viewBox="0 0 ${W} ${H}" role="img"
    aria-label="${esc(opts.aria)}">${g}</svg>`;
  const svg = el.querySelector("svg");
  svg.addEventListener("mousemove", ev => {
    const r = svg.getBoundingClientRect();
    const mx = (ev.clientX - r.left) / r.width * W;
    const seq = x0 + (mx - L) / Math.max(1e-9, W - L - R) * (x1 - x0);
    let best = null, bd = Infinity;
    for (const p of series[0].points) {
      const d = Math.abs(p.x - seq);
      if (d < bd) { bd = d; best = p.x; }
    }
    if (best == null) return;
    let html = `<div class="t">snapshot ${fmtInt(best)}</div>`;
    for (const s of series) {
      const p = s.points.find(q => q.x === best);
      if (p) html += `<div><span class="chip" style="background:${s.color};
        display:inline-block;width:9px;height:9px;border-radius:2px;
        margin-right:5px"></span>${esc(s.name)}: <b>${opts.yFmt(p.y)}</b></div>`;
    }
    showTip(html, ev.clientX, ev.clientY);
  });
  svg.addEventListener("mouseleave", hideTip);
}

// --- grouped horizontal bars (budget card) -----------------------------
function budgetChart(el, readers) {
  const rows = readers.length, BH = 12, GAP = 2, GROUP = 10;
  const W = 520, L = 46, R = 84;
  const H = 14 + rows * (2 * BH + GAP + GROUP) + 18;
  const maxV = Math.max(1,
    ...readers.map(r => Math.max(r.metrics.retries, r.metrics.undelivered)));
  const px = v => v / (maxV * 1.05) * (W - L - R);
  let g = "";
  let y = 10;
  const cols = [css("--s1"), css("--s2")];
  readers.forEach((r, i) => {
    g += `<text class="dlabel" x="${L - 6}" y="${y + BH + 2}"
      text-anchor="end">R${i}</text>`;
    const bars = [
      { v: r.metrics.retries, c: cols[0], n: "retries" },
      { v: r.metrics.undelivered, c: cols[1], n: "undelivered" },
    ];
    for (const b of bars) {
      const w = Math.max(px(b.v), b.v > 0 ? 2 : 0);
      g += `<rect x="${L}" y="${y}" width="${w.toFixed(1)}" height="${BH}"
        rx="2" fill="${b.c}"><title>reader ${i} ${b.n}: ${fmtInt(b.v)}
(budget ${fmtInt(r.retry_budget)} retries/tag)</title></rect>`;
      g += `<text class="vlabel" x="${(L + w + 5).toFixed(1)}"
        y="${y + BH - 2}">${fmtInt(b.v)}</text>`;
      y += BH + GAP;
    }
    y += GROUP;
  });
  g += `<line x1="${L}" y1="8" x2="${L}" y2="${y - GROUP + 2}"
    stroke="var(--baseline)" stroke-width="1"/>`;
  el.innerHTML = `<svg viewBox="0 0 ${W} ${H}" role="img"
    aria-label="recovery retries and undelivered tags per reader">${g}</svg>`;
}

// --- per-channel bars (deployment mode) --------------------------------
// One bar per frequency channel: width = share of the busiest channel's
// carried airtime, label = busy ms and rounds. Utilization skew across
// channels is exactly what the zone/channel scheduler is supposed to keep
// flat — this chart is its live check.
function channelChart(el, channels) {
  const rows = channels.length, BH = 14, GAP = 6;
  const W = 520, L = 46, R = 150;
  const H = 10 + rows * (BH + GAP) + 16;
  const maxBusy = Math.max(1e-9, ...channels.map(c => c.busy_us));
  let g = "", y = 8;
  channels.forEach((c, i) => {
    const w = Math.max(c.busy_us / (maxBusy * 1.05) * (W - L - R),
      c.busy_us > 0 ? 2 : 0);
    g += `<text class="dlabel" x="${L - 6}" y="${y + BH - 3}"
      text-anchor="end">C${i}</text>`;
    g += `<rect x="${L}" y="${y}" width="${w.toFixed(1)}" height="${BH}"
      rx="2" fill="${slot(i)}"><title>channel ${i}: ${fmt(c.busy_us / 1e3)} ms
airtime, ${fmtInt(c.rounds)} rounds, ${fmtInt(c.readers)} readers</title></rect>`;
    g += `<text class="vlabel" x="${(L + w + 5).toFixed(1)}"
      y="${y + BH - 3}">${fmt(c.busy_us / 1e3)} ms · ${fmtInt(c.rounds)} rds · ${fmtInt(c.readers)} rdr</text>`;
    y += BH + GAP;
  });
  g += `<line x1="${L}" y1="6" x2="${L}" y2="${y}"
    stroke="var(--baseline)" stroke-width="1"/>`;
  el.innerHTML = `<svg viewBox="0 0 ${W} ${H}" role="img"
    aria-label="airtime carried per frequency channel">${g}</svg>`;
}

function legend(el, entries) {
  el.innerHTML = entries.map(e =>
    `<span><span class="chip" style="background:${e.color}"></span>` +
    `${esc(e.name)}</span>`).join("");
}

// --- event log ---------------------------------------------------------
const KIND_ICON = { degrade: "▾", undelivered: "✕", epoch: "✓", drops: "!" };
function logEvent(kind, detail) {
  const log = $("eventlog");
  $("eventlogEmpty").style.display = "none";
  const li = document.createElement("li");
  li.className = kind;
  li.innerHTML = `<span class="icon">${KIND_ICON[kind] || "•"}</span>` +
    `<span class="kind">${esc(kind)}</span><span class="meta">${esc(detail)}</span>`;
  log.prepend(li);
  while (log.children.length > MAX_EVENTS) log.removeChild(log.lastChild);
}

// --- render ------------------------------------------------------------
function render() {
  const s = hist[hist.length - 1];
  if (!s) return;
  const readers = s.readers;
  $("tileRps").textContent = fmt(s.rounds_per_sec);
  $("tilePolls").textContent = fmtInt(s.totals.polls);
  $("tileUndeliv").textContent = fmtInt(s.totals.undelivered);
  $("tileDegrade").textContent = fmtInt(s.totals.degradations);
  const meanBer = readers.length === 0 ? 0 :
    readers.reduce((a, r) => a + r.ber_estimate, 0) / readers.length;
  $("tileBer").textContent = meanBer.toExponential(2);

  lineChart($("chartRps"), [{
    name: "rounds/s", color: css("--s1"),
    points: hist.map(h => ({ x: h.sequence, y: h.rounds_per_sec })),
  }], { yFmt: fmt, aria: "rounds per second over snapshots" });

  const berSeries = readers.slice(0, 8).map((_, i) => ({
    name: "R" + i, color: slot(i),
    points: hist.filter(h => h.readers.length > i)
      .map(h => ({ x: h.sequence, y: h.readers[i].ber_estimate })),
  }));
  if (readers.length > 1) {
    legend($("legendBer"), berSeries.map(s2 =>
      ({ name: s2.name, color: s2.color })));
  }
  lineChart($("chartBer"), berSeries,
    { yFmt: v => v.toExponential(1), yFloor: 1e-4,
      aria: "bit error rate estimate per reader" });

  legend($("legendBudget"), [
    { name: "retries spent", color: css("--s1") },
    { name: "undelivered (budget exhausted)", color: css("--s2") },
  ]);
  budgetChart($("chartBudget"), readers);

  if (s.channels && s.channels.length) {
    $("channelCard").style.display = "";
    $("tileHandoffsWrap").style.display = "";
    $("tileHandoffs").textContent = fmtInt(s.handoffs);
    channelChart($("chartChannels"), s.channels);
    const prev = hist.length > 1 ? hist[hist.length - 2] : null;
    const rate = prev && s.interval_s > 0
      ? (s.handoffs - prev.handoffs) / s.interval_s : 0;
    $("handoffRate").textContent =
      `handoffs: ${fmtInt(s.handoffs)} total (${fmt(rate)}/s), ` +
      `churn departures: ${fmtInt(s.churn_departures)}`;
  }

  $("readerTable").innerHTML = "<table><thead><tr>" +
    "<th>reader</th><th>epochs</th><th>rounds</th><th>polled</th>" +
    "<th>retries</th><th>undelivered</th><th>BER est.</th>" +
    "<th>budget/tag</th></tr></thead><tbody>" +
    readers.map((r, i) => `<tr><td>R${i}</td>` +
      `<td>${fmtInt(r.epochs)}</td><td>${fmtInt(r.metrics.rounds)}</td>` +
      `<td>${fmtInt(r.metrics.polls)}</td>` +
      `<td>${fmtInt(r.metrics.retries)}</td>` +
      `<td>${fmtInt(r.metrics.undelivered)}</td>` +
      `<td>${r.ber_estimate.toExponential(2)}</td>` +
      `<td>${fmtInt(r.retry_budget)}</td></tr>`).join("") +
    "</tbody></table>";
}

// --- event source ------------------------------------------------------
const conn = $("conn"), connText = $("connText");
const es = new EventSource("/events");
es.onopen = () => { conn.className = "live"; connText.textContent = "live"; };
es.onerror = () => {
  conn.className = "down"; connText.textContent = "reconnecting…";
};
es.addEventListener("snapshot", ev => {
  hist.push(JSON.parse(ev.data));
  if (hist.length > MAX_POINTS) hist.shift();
  render();
});
for (const kind of ["degrade", "undelivered", "epoch"]) {
  es.addEventListener(kind, ev => {
    const d = JSON.parse(ev.data);
    logEvent(kind, `reader ${d.reader} ×${d.count} @ snapshot ${d.sequence}`);
  });
}
es.addEventListener("drops", ev => {
  const d = JSON.parse(ev.data);
  dropsSeen = d.dropped;
  $("tileDrops").textContent = fmtInt(dropsSeen);
  logEvent("drops", `queue overflowed; ${d.dropped} items dropped so far`);
});
</script>
</body>
</html>
)dash";

}  // namespace

std::string_view dashboard_html() noexcept { return kDashboardHtml; }

}  // namespace rfid::serve
