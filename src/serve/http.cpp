#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace rfid::serve {

namespace {

std::string_view status_text(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

void set_timeout(int fd, int option, unsigned timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// Sends the whole buffer; false on any error (peer gone, timeout,
/// shutdown). MSG_NOSIGNAL keeps a closed peer from raising SIGPIPE.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

enum class ReadHeadResult : std::uint8_t {
  kOk,
  kDisconnected,  ///< peer closed or reset before finishing the head
  kTimeout,       ///< SO_RCVTIMEO expired mid-head (stalled client)
  kTooLarge,      ///< byte or recv-count cap exceeded (slow loris / abuse)
};

/// Reads until the end of the request head ("\r\n\r\n"), bounded by both
/// the byte cap and the recv-call cap. The recv cap is what defeats a
/// slow-loris client that drips one byte per almost-timed-out recv: the
/// worker is pinned for at most max_reads * recv_timeout, independent of
/// how many bytes the byte cap would still allow.
ReadHeadResult read_request_head(int fd, const HttpServer::Config& config,
                                 std::string& head) {
  char buffer[1024];
  std::size_t reads = 0;
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() >= config.max_request_bytes ||
        reads >= config.max_request_reads)
      return ReadHeadResult::kTooLarge;
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return ReadHeadResult::kTimeout;
      return ReadHeadResult::kDisconnected;
    }
    ++reads;
    head.append(buffer, static_cast<std::size_t>(got));
  }
  return ReadHeadResult::kOk;
}

/// Parses the request line ("GET /path?query HTTP/1.1"). Returns false on
/// anything malformed; headers beyond the request line are ignored.
bool parse_request(const std::string& head, HttpRequest& request) {
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string_view line(head.data(), line_end);

  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos) return false;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) return false;

  request.method = std::string(line.substr(0, method_end));
  std::string_view target =
      line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target.front() != '/') return false;

  const std::size_t query_at = target.find('?');
  if (query_at == std::string_view::npos) {
    request.path = std::string(target);
    request.query.clear();
  } else {
    request.path = std::string(target.substr(0, query_at));
    request.query = std::string(target.substr(query_at + 1));
  }
  return true;
}

std::string response_head(int status, std::string_view content_type,
                          std::size_t content_length) {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += status_text(status);
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(content_length);
  head += "\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
  return head;
}

void send_response(int fd, const HttpResponse& response, bool head_only) {
  std::string payload =
      response_head(response.status, response.content_type,
                    response.body.size());
  if (!head_only) payload += response.body;
  send_all(fd, payload);
}

void send_error(int fd, int status, std::string_view message,
                bool head_only) {
  HttpResponse response;
  response.status = status;
  response.body = R"({"error":")";
  response.body += message;
  response.body += "\"}";
  send_response(fd, response, head_only);
}

/// StreamWriter bound to one connection socket. Failure is sticky and the
/// server's stopping flag ends the stream from the handler's side even
/// when the socket itself would still accept bytes.
class SocketStreamWriter final : public StreamWriter {
 public:
  SocketStreamWriter(int fd, const std::atomic<bool>& stopping)
      : fd_(fd), stopping_(stopping) {}

  bool write(std::string_view data) override {
    if (!alive()) return false;
    if (!send_all(fd_, data)) {
      failed_ = true;
      return false;
    }
    return true;
  }

  [[nodiscard]] bool alive() const override {
    return !failed_ && !stopping_.load(std::memory_order_acquire);
  }

 private:
  int fd_;
  const std::atomic<bool>& stopping_;
  bool failed_ = false;
};

}  // namespace

HttpServer::HttpServer() : HttpServer(Config{}) {}

HttpServer::HttpServer(Config config) : config_(std::move(config)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, Handler handler) {
  if (started_.load(std::memory_order_acquire))
    throw std::logic_error("HttpServer: route() after start()");
  handlers_.emplace_back(std::move(path), std::move(handler));
}

void HttpServer::route_stream(std::string path, StreamHandler handler) {
  if (started_.load(std::memory_order_acquire))
    throw std::logic_error("HttpServer: route_stream() after start()");
  stream_handlers_.emplace_back(std::move(path), std::move(handler));
}

void HttpServer::start() {
  if (started_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("HttpServer: start() twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &address.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("HttpServer: bad bind address " +
                                config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(saved, std::generic_category(), "bind/listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // A second caller still waits for the acceptor to be joined by the
    // first; joining a joined thread is UB, so only the winner joins.
    return;
  }

  if (listen_fd_ >= 0) {
    // shutdown() unblocks the acceptor's accept(); close() alone does not
    // reliably do that on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();

  std::vector<std::unique_ptr<Connection>> to_join;
  {
    const MutexLock lock(mutex_);
    to_join.swap(connections_);
  }
  for (auto& connection : to_join) {
    // Unblocks any in-flight recv/send inside the worker.
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : to_join) {
    if (connection->worker.joinable()) connection->worker.join();
    ::close(connection->fd);
  }
}

void HttpServer::reap_finished() {
  const MutexLock lock(mutex_);
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
    if (!c->done.load(std::memory_order_acquire)) return false;
    if (c->worker.joinable()) c->worker.join();
    ::close(c->fd);
    return true;
  });
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                            &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or unrecoverable
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }

    set_timeout(fd, SO_RCVTIMEO, config_.recv_timeout_ms);
    set_timeout(fd, SO_SNDTIMEO, config_.send_timeout_ms);

    reap_finished();
    {
      const MutexLock lock(mutex_);
      if (connections_.size() >= config_.max_connections) {
        send_error(fd, 503, "too many connections", false);
        ::close(fd);
        continue;
      }
      auto connection = std::make_unique<Connection>();
      connection->fd = fd;
      Connection* raw = connection.get();
      connections_.push_back(std::move(connection));
      raw->worker = std::thread([this, raw] { serve_connection(*raw); });
    }
  }
}

void HttpServer::serve_connection(Connection& connection) {
  const int fd = connection.fd;
  std::string head;
  HttpRequest request;
  const ReadHeadResult read_result = read_request_head(fd, config_, head);
  if (read_result == ReadHeadResult::kTooLarge) {
    send_error(fd, 431, "request head too large", false);
  } else if (read_result == ReadHeadResult::kTimeout) {
    send_error(fd, 408, "timed out reading request", false);
  } else if (read_result == ReadHeadResult::kDisconnected) {
    // Peer is gone; nothing to send.
  } else if (!parse_request(head, request)) {
    send_error(fd, 400, "malformed request", false);
  } else if (request.method != "GET" && request.method != "HEAD") {
    send_error(fd, 405, "only GET is supported", request.method == "HEAD");
  } else {
    const bool head_only = request.method == "HEAD";
    bool handled = false;
    for (const auto& [path, handler] : stream_handlers_) {
      if (path != request.path) continue;
      handled = true;
      if (head_only) {
        send_all(fd, response_head(200, "text/event-stream", 0));
        break;
      }
      if (send_all(fd,
                   "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
                   "Cache-Control: no-cache\r\nConnection: close\r\n\r\n")) {
        SocketStreamWriter writer(fd, stopping_);
        handler(request, writer);
      }
      break;
    }
    if (!handled) {
      for (const auto& [path, handler] : handlers_) {
        if (path != request.path) continue;
        handled = true;
        send_response(fd, handler(request), head_only);
        break;
      }
    }
    if (!handled) send_error(fd, 404, "no such route", head_only);
  }
  ::shutdown(fd, SHUT_RDWR);
  // The acceptor (reap_finished) or stop() joins the thread and closes fd.
  connection.done.store(true, std::memory_order_release);
}

}  // namespace rfid::serve
