#include "obs/trace.hpp"

#include <array>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rfid::obs {

namespace {

constexpr std::array<std::string_view, kEventKindCount> kKindNames{
    "reader_broadcast", "poll",        "reply",
    "timeout",          "corrupted",   "slot_empty",
    "slot_collision",   "round_begin", "circle_begin",
    "segment_corrupted", "degrade",
};

/// Round-trippable double formatting for the JSONL stream.
std::string num(double value) {
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

bool parse_event_kind(std::string_view name, EventKind& out) noexcept {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) {
      out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

// --- RingBufferSink ---------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : buffer_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::on_event(const Event& event) {
  buffer_[head_] = event;
  head_ = (head_ + 1) % buffer_.size();
  if (size_ < buffer_.size()) ++size_;
  ++seen_;
  sum_vector_bits_ += event.vector_bits;
  sum_command_bits_ += event.command_bits;
  sum_tag_bits_ += event.tag_bits;
  sum_us_ += event.duration_us;
}

std::vector<Event> RingBufferSink::snapshot() const {
  std::vector<Event> out;
  out.reserve(size_);
  // Oldest element sits at head_ once the buffer has wrapped, at 0 before.
  const std::size_t start = size_ == buffer_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  return out;
}

// --- JsonlSink --------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) { write_meta(); }

JsonlSink::JsonlSink(const std::string& path) : file_(path), os_(&file_) {
  if (!file_.is_open())
    throw std::runtime_error("JsonlSink: cannot open " + path);
  write_meta();
}

void JsonlSink::write_meta() {
  *os_ << R"({"type":"meta","schema":"rfid-trace","version":2})" << '\n';
}

void JsonlSink::on_event(const Event& event) {
  *os_ << R"({"type":"event","event":")" << to_string(event.kind)
       << R"(","round":)" << event.round << R"(,"circle":)" << event.circle
       << R"(,"vector_bits":)" << event.vector_bits << R"(,"command_bits":)"
       << event.command_bits << R"(,"tag_bits":)" << event.tag_bits
       << R"(,"time_us":)" << num(event.time_us) << R"(,"duration_us":)"
       << num(event.duration_us) << R"(,"reader_us":)" << num(event.reader_us)
       << R"(,"tag_us":)" << num(event.tag_us) << R"(,"detail":)"
       << event.detail << "}\n";
}

void JsonlSink::on_finish() { os_->flush(); }

}  // namespace rfid::obs
