// Air-interface event tracing.
//
// The paper's headline numbers are *distributions* — polling-vector bits per
// tag (Figs. 3/5/9), per-protocol time breakdowns (Tables I-III) — but
// sim::Metrics only keeps sums. The tracer closes that gap: when a
// SessionConfig carries a Tracer pointer, the Session emits one typed event
// per accounting action (broadcast, poll, reply, timeout, wasted slot, round
// or circle start), stamped with the simulated clock and the exact bit and
// microsecond increments that went into the metrics. A run's events are a
// lossless decomposition of its Metrics totals:
//
//   sum(event.vector_bits)  == metrics.vector_bits
//   sum(event.command_bits) == metrics.command_bits
//   sum(event.tag_bits)     == metrics.tag_bits
//   fold(+, event.duration_us) == metrics.time_us   (bit-exact: durations
//       are the very doubles added to the clock, in the same order)
//
// With no tracer configured the hooks are a single branch on a null pointer;
// hot paths are otherwise untouched and seeded runs stay byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rfid::obs {

/// Everything that can happen on the air interface, one tag per action.
enum class EventKind : std::uint8_t {
  kReaderBroadcast,  ///< standalone reader frame (round/circle init, Select)
  kPoll,             ///< a polling vector was issued (duration on the reply)
  kReply,            ///< a singleton reply decoded; full interaction airtime
  kTimeout,          ///< addressed tag absent; reader waited out the window
  kCorrupted,        ///< reply garbled in flight; airtime spent, no decode
  kSlotEmpty,        ///< frame slot nobody answered
  kSlotCollision,    ///< frame slot with >= 2 replies superposed
  kRoundBegin,       ///< inventory round started
  kCircleBegin,      ///< EHPP subset-query circle started
  kSegmentCorrupted,  ///< framed downlink segment failed its CRC check
  kDegrade,  ///< adaptive policy downgraded the protocol tier mid-session
};

inline constexpr std::size_t kEventKindCount = 11;

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// Parses the names emitted by to_string; returns false on unknown input.
[[nodiscard]] bool parse_event_kind(std::string_view name,
                                    EventKind& out) noexcept;

/// One air-interface event. Bit fields partition the session's bit metrics;
/// `duration_us` is exactly the increment applied to the session clock for
/// this event (0 for kPoll — its airtime is carried by the outcome event
/// that follows — and for round/circle markers). `reader_us`/`tag_us` split
/// the duration into phase components (see obs/phase_timer.hpp); whatever
/// remains is turn-around time.
struct Event final {
  EventKind kind = EventKind::kReaderBroadcast;
  std::uint64_t round = 0;       ///< rounds begun so far (1-based once running)
  std::uint64_t circle = 0;      ///< circles begun so far
  std::uint64_t vector_bits = 0;   ///< reader bits counted into w
  std::uint64_t command_bits = 0;  ///< reader bits outside w
  std::uint64_t tag_bits = 0;      ///< decoded tag bits
  double time_us = 0.0;      ///< session clock *after* the event
  double duration_us = 0.0;  ///< clock increment attributed to the event
  double reader_us = 0.0;    ///< reader-transmission share of the duration
  double tag_us = 0.0;       ///< tag-transmission share of the duration
  /// Kind-specific payload, excluded from every metric identity. Zero for
  /// most kinds; kSegmentCorrupted and framed kReaderBroadcast store the
  /// segment sequence number, kDegrade stores (from_tier << 8) | to_tier
  /// (analysis::PollingTier), kTimeout stores 1 when the downlink vector
  /// was BER-corrupted and 2 when a desynchronized poll went unanswered.
  std::uint64_t detail = 0;
};

/// Receives the event stream. Implementations must not mutate simulation
/// state; a sink is wired to exactly one session at a time (sessions are
/// single-threaded, so sinks need no locking).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& event) = 0;
  /// Called once when the session finishes; flush buffers here.
  virtual void on_finish() {}
};

/// The dispatch point a Session talks to. Fans one event out to any number
/// of sinks; owning none is legal (events vanish).
class Tracer final {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) { add_sink(sink); }

  /// Registers a sink (not owned; must outlive the tracer). Null is ignored.
  void add_sink(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void emit(const Event& event) {
    for (TraceSink* sink : sinks_) sink->on_event(event);
  }

  void finish() {
    for (TraceSink* sink : sinks_) sink->on_finish();
  }

  [[nodiscard]] std::size_t sink_count() const noexcept {
    return sinks_.size();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Fixed-capacity in-memory sink for tests and interactive inspection: keeps
/// the newest `capacity` events (older ones are dropped oldest-first) plus
/// running totals over *all* events seen, so metric identities can be
/// asserted even when the buffer wrapped.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void on_event(const Event& event) override;

  /// Events still buffered, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;

  [[nodiscard]] std::uint64_t total_events() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return seen_ - static_cast<std::uint64_t>(size_);
  }
  [[nodiscard]] std::uint64_t sum_vector_bits() const noexcept {
    return sum_vector_bits_;
  }
  [[nodiscard]] std::uint64_t sum_command_bits() const noexcept {
    return sum_command_bits_;
  }
  [[nodiscard]] std::uint64_t sum_tag_bits() const noexcept {
    return sum_tag_bits_;
  }
  /// Left-to-right fold of duration_us in arrival order — bit-identical to
  /// the session clock when every event was seen.
  [[nodiscard]] double sum_duration_us() const noexcept { return sum_us_; }

 private:
  std::vector<Event> buffer_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t seen_ = 0;
  std::uint64_t sum_vector_bits_ = 0;
  std::uint64_t sum_command_bits_ = 0;
  std::uint64_t sum_tag_bits_ = 0;
  double sum_us_ = 0.0;
};

/// Streams events as JSON Lines: one self-contained object per line, with a
/// leading `{"type":"meta",...}` header carrying the schema version so
/// offline tools (examples/trace_inspect) can sanity-check what they read.
/// The stream is flushed on on_finish().
class JsonlSink final : public TraceSink {
 public:
  /// Writes to an externally owned stream.
  explicit JsonlSink(std::ostream& os);
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlSink(const std::string& path);

  void on_event(const Event& event) override;
  void on_finish() override;

 private:
  void write_meta();

  std::ofstream file_;   ///< used by the path constructor
  std::ostream* os_;     ///< always valid; points at file_ or the ctor arg
};

}  // namespace rfid::obs
