// Distribution accumulators for the observability registry.
//
// Two complementary estimators:
//   * Histogram — fixed bucket edges decided up front. Counts merge exactly
//     and associatively, which is what the parallel trial runner needs:
//     merging per-trial histograms in trial order yields bit-identical
//     results whether the trials ran serially or across a pool. Mean/min/max
//     are exact (kept outside the buckets); quantiles are interpolated
//     within the owning bucket.
//   * P2Quantile — the piecewise-parabolic (P²) streaming estimator of Jain
//     & Chlamtac for a single quantile in O(1) memory. More precise tails
//     than bucket interpolation but *not* mergeable — use it for
//     single-stream analysis (examples/trace_inspect), never for
//     cross-thread aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rfid::obs {

/// Fixed-bucket histogram with exact sum/min/max side-channels.
class Histogram final {
 public:
  Histogram() = default;

  /// Buckets are [edges[i], edges[i+1]); values below edges.front() land in
  /// an underflow bucket, values >= edges.back() in an overflow bucket.
  /// Edges must be strictly increasing and at least two. Throws
  /// std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> edges);

  /// `buckets` equal-width buckets spanning [lo, hi).
  [[nodiscard]] static Histogram linear(double lo, double hi,
                                        std::size_t buckets);

  /// Geometrically growing buckets from `lo` with the given ratio — the
  /// right shape for airtime-style heavy tails.
  [[nodiscard]] static Histogram exponential(double lo, double ratio,
                                             std::size_t buckets);

  void record(double value) noexcept;
  /// Adds `count` identical observations in one step.
  void record_n(double value, std::uint64_t count) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Quantile estimate by linear interpolation inside the owning bucket;
  /// exact min/max clamp the extremes. q outside [0,1] is clamped.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }
  /// counts()[0] is the underflow bucket, counts().back() the overflow; the
  /// interior entries line up with [edges[i], edges[i+1]).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Exact, associative, commutative merge. Throws std::invalid_argument if
  /// the bucket layouts differ (merging a default-constructed histogram into
  /// a configured one adopts the configured layout).
  void merge(const Histogram& other);

  [[nodiscard]] bool same_layout(const Histogram& other) const noexcept {
    return edges_ == other.edges_;
  }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;  ///< underflow + interior + overflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// P² streaming estimator for one quantile (Jain & Chlamtac, CACM 1985).
/// Deterministic for a fixed input sequence; O(1) state; not mergeable.
class P2Quantile final {
 public:
  /// `q` in (0, 1); clamped to [0.001, 0.999].
  explicit P2Quantile(double q);

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  /// Current estimate; with fewer than 5 observations, the exact
  /// small-sample quantile.
  [[nodiscard]] double value() const noexcept;

 private:
  double q_;
  std::uint64_t n_ = 0;
  double heights_[5] = {};   ///< marker heights (q0, q/2-ish, q, ...)
  double positions_[5] = {}; ///< actual marker positions
  double desired_[5] = {};   ///< desired marker positions
  double increment_[5] = {}; ///< per-observation desired-position increments
};

}  // namespace rfid::obs
