// Streaming telemetry: periodic immutable snapshots of live metrics.
//
// The JSONL/ring sinks of obs/trace.hpp are post-hoc: they record a run so
// tools can replay it after the fact. A long-running simulation daemon
// (tools/simserved) needs the opposite — a live, thread-safe view of the
// metrics while the simulation keeps going. StreamingAggregator is that
// bridge:
//
//   * the simulation thread folds per-round Metrics state in with
//     update_reader() / complete_epoch() — an O(sizeof(Metrics)) copy or one
//     Metrics::merge under an uncontended mutex, no heap allocation, so the
//     zero-allocation steady state of the round engine survives the hook
//     (gated by bench_round_engine's `engine+stream` row);
//   * a publisher (the serving layer, on its own cadence) calls publish(),
//     which freezes the folded state into one immutable MetricsSnapshot —
//     totals are the bit-exact Metrics::merge fold of the per-reader states
//     in reader order, the same fold the trial runner uses — and fans it out
//     to every subscriber;
//   * subscribers (one per SSE client) each own a bounded ring queue.
//     A slow or stalled subscriber NEVER blocks the publisher: when a queue
//     is full the oldest item is dropped and the subscription's drop counter
//     increments. Consumers poll() or wait() items out at their own pace.
//
// publish() also synthesizes typed StreamEvents (protocol degradations,
// abandoned tags, completed inventory epochs) by diffing against the
// previously published snapshot, so fault telemetry rides the same queues
// as the periodic snapshots.
//
// The aggregator never reads a clock: wall-clock pacing and the wall-seconds
// argument of publish() belong to the serving layer (src/serve/, the one
// place wall time is allowed — see docs/observability.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace rfid::obs {

/// Live state of one reader as folded so far: the bit-exact merge of every
/// completed inventory epoch plus the running session's cumulative metrics.
struct ReaderTelemetry final {
  Metrics metrics{};          ///< completed epochs ⊕ live session (in order)
  double ber_estimate = 0.0;  ///< live downlink BER estimate (phy::Downlink)
  std::uint64_t epochs = 0;   ///< completed inventory drains
  std::uint64_t retry_budget = 0;  ///< recovery re-polls allowed per tag
  ReaderHealth health = ReaderHealth::kHealthy;  ///< supervisor's view
  std::uint64_t crashes = 0;   ///< reader crash faults observed so far
  std::uint64_t restarts = 0;  ///< supervisor-driven restarts so far
};

/// Live state of one frequency channel in a deployment sweep (see
/// core/deployment.hpp): how many readers share it and the airtime it has
/// carried so far. Deployment-mode daemons feed these via update_channel();
/// warehouse-mode daemons never configure channels and their snapshot JSON
/// stays byte-identical to the pre-channel format.
struct ChannelTelemetry final {
  std::size_t readers = 0;   ///< readers time-dividing this channel
  std::uint64_t rounds = 0;  ///< polling rounds transmitted on it
  double busy_us = 0.0;      ///< simulated airtime the channel carried
};

/// A typed telemetry event, synthesized at publish time from metric deltas.
struct StreamEvent final {
  enum class Kind : std::uint8_t {
    kDegrade,      ///< adaptive protocol-tier downgrades observed
    kUndelivered,  ///< tags abandoned after retry-budget exhaustion
    kEpoch,        ///< inventory epochs completed (population drained)
    kReaderDown,   ///< a reader's health entered the down state
    kReaderRecovered,  ///< a down/recovering reader completed a round again
  };

  Kind kind = Kind::kEpoch;
  std::size_t reader = 0;
  std::uint64_t count = 0;     ///< delta since the previous publish
  std::uint64_t sequence = 0;  ///< snapshot sequence that carried the delta
  double sim_time_us = 0.0;    ///< reader's simulated clock at publish
};

[[nodiscard]] std::string_view to_string(StreamEvent::Kind kind) noexcept;

/// One frozen, immutable view of the whole deployment. Shared read-only
/// across subscribers via shared_ptr; never mutated after publish().
struct MetricsSnapshot final {
  std::uint64_t sequence = 0;   ///< 1-based publish counter
  double interval_s = 0.0;      ///< wall seconds since the previous publish
  double rounds_per_sec = 0.0;  ///< delta rounds / interval_s (0 first/paused)
  Metrics totals{};             ///< merge-fold of readers[].metrics in order
  std::vector<ReaderTelemetry> readers;
  /// Deployment mode only (empty otherwise — and then absent from the
  /// JSON, keeping warehouse-mode snapshots byte-stable).
  std::vector<ChannelTelemetry> channels;
  std::uint64_t fleet_handoffs = 0;  ///< fault- and churn-driven rehomings
  std::uint64_t fleet_churn_departures = 0;
};

/// Deterministic compact JSON (one object, one line, precision-17 doubles).
/// Byte-stable for equal snapshots — serial vs pooled folds that produce
/// identical metrics serialize identically (tested in tests/test_obs.cpp).
void write_json(std::ostream& os, const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// One Metrics struct in the same byte-stable conventions; reused by the
/// snapshot writer above and by crash-consistent final-metrics reports
/// (core/warehouse.hpp), so both surfaces stay field-for-field identical.
void write_json(std::ostream& os, const Metrics& metrics);

/// JSON for one synthesized event (same conventions as snapshot JSON).
[[nodiscard]] std::string to_json(const StreamEvent& event);

/// A bounded, drop-oldest queue of published items, one per consumer.
/// push() (publisher side) never blocks: a full queue drops its oldest item
/// and counts the drop. Consumers poll() or wait() at their own pace.
class StreamSubscription final {
 public:
  struct Item final {
    enum class Type : std::uint8_t { kSnapshot, kEvent };
    Type type = Type::kSnapshot;
    std::shared_ptr<const MetricsSnapshot> snapshot;  ///< set for kSnapshot
    StreamEvent event{};                              ///< set for kEvent
  };

  explicit StreamSubscription(std::size_t capacity);

  /// Oldest queued item, or nullopt when the queue is empty.
  [[nodiscard]] std::optional<Item> poll() RFID_EXCLUDES(mutex_);

  /// Like poll(), but blocks up to timeout_ms for an item to arrive. Returns
  /// nullopt on timeout or when the subscription was closed while empty.
  [[nodiscard]] std::optional<Item> wait(unsigned timeout_ms)
      RFID_EXCLUDES(mutex_);

  /// Items discarded because the queue was full when push() arrived.
  [[nodiscard]] std::uint64_t dropped() const RFID_EXCLUDES(mutex_);

  /// True once close() ran; a closed, drained subscription yields nothing.
  [[nodiscard]] bool closed() const RFID_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  friend class StreamingAggregator;

  /// Publisher side: enqueue, dropping the oldest item when full. Never
  /// blocks, never allocates (the ring is sized at construction).
  void push(Item item) RFID_EXCLUDES(mutex_);

  /// Wakes every waiter; wait() stops blocking once closed.
  void close() RFID_EXCLUDES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::condition_variable_any ready_;
  std::vector<Item> ring_ RFID_GUARDED_BY(mutex_);
  std::size_t head_ RFID_GUARDED_BY(mutex_) = 0;  ///< oldest item
  std::size_t size_ RFID_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ RFID_GUARDED_BY(mutex_) = 0;
  bool closed_ RFID_GUARDED_BY(mutex_) = false;
};

/// Thread-safe, backpressure-safe publisher folding per-reader metrics into
/// periodic immutable snapshots. See the file comment for the contract.
class StreamingAggregator final {
 public:
  explicit StreamingAggregator(std::size_t readers);

  [[nodiscard]] std::size_t reader_count() const noexcept { return readers_n_; }

  // --- Simulation-thread side (hot path; no allocation) ---------------------

  /// Replaces reader `reader`'s live-session view with `cumulative` (the
  /// session's running totals — totals, not deltas, so the copy is bit-exact
  /// by construction) and its live BER estimate.
  void update_reader(std::size_t reader, const Metrics& cumulative,
                     double ber_estimate) RFID_EXCLUDES(mutex_);

  /// Epoch boundary: folds the drained session's final totals into the
  /// reader's completed accumulator (Metrics::merge, the bit-exact fold) and
  /// clears the live slot for the next session.
  void complete_epoch(std::size_t reader, const Metrics& session_totals)
      RFID_EXCLUDES(mutex_);

  /// Records the recovery retry budget the reader runs with (reporting
  /// only; budget consumption is metrics.retries / undelivered).
  void set_retry_budget(std::size_t reader, std::uint64_t budget)
      RFID_EXCLUDES(mutex_);

  /// Crash boundary: discards the reader's live-session view WITHOUT
  /// folding it into the completed accumulator — a crashed incarnation's
  /// partial work is lost, exactly like the real reader's volatile state.
  /// Keeps completed folds a pure function of (seed, reader, epoch), which
  /// is what lets a checkpoint-resumed daemon reproduce them byte-for-byte.
  void abort_epoch(std::size_t reader) RFID_EXCLUDES(mutex_);

  /// Updates the supervisor's health verdict for `reader` (reporting only).
  /// publish() synthesizes kReaderDown / kReaderRecovered events from
  /// health transitions between publishes.
  void set_reader_health(std::size_t reader, ReaderHealth health)
      RFID_EXCLUDES(mutex_);

  /// Increments the reader's crash / restart incident counters (reporting
  /// only; never part of the folded metrics, so checkpoint resume — which
  /// may replay a crashed epoch a different number of times — cannot
  /// perturb the byte-identical completed fold).
  void note_reader_crash(std::size_t reader) RFID_EXCLUDES(mutex_);
  void note_reader_restart(std::size_t reader) RFID_EXCLUDES(mutex_);

  /// Switches the aggregator into deployment mode with `channels` channel
  /// slots (idempotent; 0 returns to warehouse mode). Snapshots then carry
  /// a channels array and the fleet handoff counters.
  void configure_channels(std::size_t channels) RFID_EXCLUDES(mutex_);

  /// Replaces channel `channel`'s live view (running totals, not deltas).
  void update_channel(std::size_t channel, std::size_t readers,
                      std::uint64_t rounds, double busy_us)
      RFID_EXCLUDES(mutex_);

  /// Replaces the deployment-wide handoff / churn-departure running totals.
  void set_fleet_counters(std::uint64_t handoffs,
                          std::uint64_t churn_departures)
      RFID_EXCLUDES(mutex_);

  /// Checkpoint resume (core/warehouse.hpp): overwrites the reader's
  /// completed fold, epoch count, incident counters and health in one
  /// call. The live slot is cleared — resume always lands on an epoch
  /// boundary, so there is no in-flight session to carry over.
  void restore_reader(std::size_t reader, const Metrics& completed,
                      std::uint64_t epochs, std::uint64_t crashes,
                      std::uint64_t restarts, ReaderHealth health)
      RFID_EXCLUDES(mutex_);

  // --- Publisher side (snapshot cadence) ------------------------------------

  /// Freezes the folded state into an immutable snapshot, synthesizes typed
  /// events from deltas vs the previous publish, and fans both out to every
  /// subscriber. `wall_dt_s` is the wall-clock seconds since the previous
  /// publish as measured by the caller — the aggregator itself never reads
  /// a clock, so simulation layers linking it stay rfidlint-clean.
  std::shared_ptr<const MetricsSnapshot> publish(double wall_dt_s)
      RFID_EXCLUDES(mutex_);

  /// The most recently published snapshot; nullptr before the first publish.
  [[nodiscard]] std::shared_ptr<const MetricsSnapshot> latest() const
      RFID_EXCLUDES(mutex_);

  // --- Consumer side ----------------------------------------------------------

  /// Registers a new bounded subscription (queue of `capacity` items).
  [[nodiscard]] std::shared_ptr<StreamSubscription> subscribe(
      std::size_t capacity) RFID_EXCLUDES(mutex_);

  /// Deregisters and closes one subscription (idempotent).
  void unsubscribe(const std::shared_ptr<StreamSubscription>& subscription)
      RFID_EXCLUDES(mutex_);

  /// Closes every subscription (daemon shutdown); subscribers drain and
  /// then see closed() == true.
  void close_all() RFID_EXCLUDES(mutex_);

 private:
  struct ReaderState final {
    Metrics completed{};  ///< fold of finished epochs
    Metrics live{};       ///< running session totals
    double ber_estimate = 0.0;
    std::uint64_t epochs = 0;
    std::uint64_t retry_budget = 0;
    ReaderHealth health = ReaderHealth::kHealthy;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
  };

  const std::size_t readers_n_;
  mutable Mutex mutex_;
  std::vector<ReaderState> readers_ RFID_GUARDED_BY(mutex_);
  std::vector<ChannelTelemetry> channels_ RFID_GUARDED_BY(mutex_);
  std::uint64_t fleet_handoffs_ RFID_GUARDED_BY(mutex_) = 0;
  std::uint64_t fleet_churn_departures_ RFID_GUARDED_BY(mutex_) = 0;
  std::shared_ptr<const MetricsSnapshot> latest_ RFID_GUARDED_BY(mutex_);
  std::uint64_t sequence_ RFID_GUARDED_BY(mutex_) = 0;
  std::vector<std::shared_ptr<StreamSubscription>> subscriptions_
      RFID_GUARDED_BY(mutex_);
};

}  // namespace rfid::obs
