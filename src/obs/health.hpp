// Per-reader health taxonomy shared by the fault supervisor and the
// telemetry surface.
//
// The state machine itself lives in fault::ReaderSupervisor (the fault
// layer decides *when* a reader transitions); this header only names the
// states so the obs layer can carry them through snapshots, stream events,
// and the serve endpoints without depending on the fault layer. States and
// their meaning:
//
//   kHealthy    — meeting its round deadlines;
//   kDegraded   — alive but missing deadlines (latency spike / stall);
//   kDown       — crashed or stalled past the down threshold; its tags are
//                 eligible for handoff and a restart is (or was) scheduled;
//   kRecovering — restarted, not yet confirmed by a completed round.
#pragma once

#include <cstdint>
#include <string_view>

namespace rfid::obs {

enum class ReaderHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kDown = 2,
  kRecovering = 3,
};

inline constexpr std::size_t kReaderHealthCount = 4;

[[nodiscard]] constexpr std::string_view to_string(
    ReaderHealth health) noexcept {
  switch (health) {
    case ReaderHealth::kHealthy:
      return "healthy";
    case ReaderHealth::kDegraded:
      return "degraded";
    case ReaderHealth::kDown:
      return "down";
    case ReaderHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

}  // namespace rfid::obs
