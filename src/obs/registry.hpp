// Named metrics registry + the trace-consuming sink that fills it.
//
// A MetricsRegistry is a string-keyed bag of counters and histograms that
// merges exactly and associatively — the parallel trial runner folds one
// registry per trial into the series total in trial order, so aggregate
// distributions are bit-identical whether trials ran serially or across the
// pool (the same contract sim::Metrics::merge already honours).
//
// RegistrySink subscribes a registry to a session's event stream and
// maintains the standard air-interface distributions:
//   counters  events.<kind>           one per EventKind
//   histogram vector_bits_per_poll    polling-vector length per issued poll
//   histogram slot_airtime_us         airtime of each slot/interaction
//   histogram polls_per_round         successful polls per inventory round
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace rfid::obs {

class MetricsRegistry final {
 public:
  /// Returns the named counter, creating it at zero on first use.
  [[nodiscard]] std::uint64_t& counter(const std::string& name) {
    return counters_[name];
  }
  /// Read-only lookup; 0 when the counter was never touched.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Returns the named histogram, creating it with `layout`'s bucket edges
  /// on first use. Later calls ignore `layout` (the first registration
  /// wins); callers that know the histogram exists can pass {}.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const Histogram& layout = Histogram());
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Exact merge: counters add; histograms merge bucket-wise (layouts must
  /// match — see Histogram::merge). Names absent on one side are adopted.
  void merge(const MetricsRegistry& other);

  /// Serializes the registry as one JSON object (counters + histograms with
  /// bucket edges/counts and summary stats).
  void write_json(std::ostream& os, int indent = 2) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// A MetricsRegistry shared across threads, e.g. one aggregate registry
/// that several sessions (each on its own pool worker) fold into as they
/// finish. Access is serialized by an internal annotated Mutex, so misuse
/// is a compile error under -Wthread-safety and a data race under the TSan
/// job rather than silent corruption.
///
/// Note the determinism caveat: merge() calls arrive in completion order,
/// which is scheduling-dependent. MetricsRegistry::merge is commutative for
/// counters and bucket counts, so totals are stable, but anything
/// order-sensitive must keep using the per-trial registries that
/// parallel::run_trials folds in trial order. See docs/static_analysis.md.
class SharedRegistry final {
 public:
  /// Folds `other` into the shared aggregate.
  void merge(const MetricsRegistry& other) RFID_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    registry_.merge(other);
  }

  /// Copies the current aggregate out under the lock.
  [[nodiscard]] MetricsRegistry snapshot() const RFID_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return registry_;
  }

 private:
  mutable Mutex mutex_;
  MetricsRegistry registry_ RFID_GUARDED_BY(mutex_);
};

/// Standard bucket layouts for the built-in air-interface histograms.
[[nodiscard]] Histogram vector_bits_layout();
[[nodiscard]] Histogram slot_airtime_layout();
[[nodiscard]] Histogram polls_per_round_layout();

/// TraceSink that folds a session's events into a MetricsRegistry. The
/// registry is borrowed, not owned, so one registry can outlive many
/// sessions (or several sinks can fill disjoint registries for later merge).
class RegistrySink final : public TraceSink {
 public:
  explicit RegistrySink(MetricsRegistry& registry);

  void on_event(const Event& event) override;
  void on_finish() override;

 private:
  void close_round();

  MetricsRegistry* registry_;
  std::uint64_t polls_in_round_ = 0;
  bool round_open_ = false;
};

}  // namespace rfid::obs
