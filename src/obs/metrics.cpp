#include "obs/metrics.hpp"

namespace rfid::obs {

void Metrics::merge(const Metrics& other) noexcept {
  polls += other.polls;
  missing += other.missing;
  corrupted += other.corrupted;
  retries += other.retries;
  undelivered += other.undelivered;
  rounds += other.rounds;
  circles += other.circles;
  slots_total += other.slots_total;
  slots_useful += other.slots_useful;
  slots_wasted += other.slots_wasted;
  vector_bits += other.vector_bits;
  command_bits += other.command_bits;
  tag_bits += other.tag_bits;
  segments_sent += other.segments_sent;
  segments_corrupted += other.segments_corrupted;
  segments_retransmitted += other.segments_retransmitted;
  downlink_corrupted += other.downlink_corrupted;
  degradations += other.degradations;
  reader_crashes += other.reader_crashes;
  reader_stalls += other.reader_stalls;
  reader_restarts += other.reader_restarts;
  handoffs += other.handoffs;
  framing_overhead_bits += other.framing_overhead_bits;
  time_us += other.time_us;
  phases.merge(other.phases);
}

}  // namespace rfid::obs
