#include "obs/stream.hpp"

#include <chrono>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace rfid::obs {

namespace {

/// Round-trippable double formatting, matching the trace JSONL convention.
std::string num(double value) {
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

}  // namespace

void write_json(std::ostream& os, const Metrics& m) {
  os << R"({"polls":)" << m.polls << R"(,"missing":)" << m.missing
     << R"(,"corrupted":)" << m.corrupted << R"(,"retries":)" << m.retries
     << R"(,"undelivered":)" << m.undelivered << R"(,"rounds":)" << m.rounds
     << R"(,"circles":)" << m.circles << R"(,"slots_total":)" << m.slots_total
     << R"(,"slots_useful":)" << m.slots_useful << R"(,"slots_wasted":)"
     << m.slots_wasted << R"(,"vector_bits":)" << m.vector_bits
     << R"(,"command_bits":)" << m.command_bits << R"(,"tag_bits":)"
     << m.tag_bits << R"(,"segments_sent":)" << m.segments_sent
     << R"(,"segments_corrupted":)" << m.segments_corrupted
     << R"(,"segments_retransmitted":)" << m.segments_retransmitted
     << R"(,"downlink_corrupted":)" << m.downlink_corrupted
     << R"(,"degradations":)" << m.degradations
     << R"(,"reader_crashes":)" << m.reader_crashes
     << R"(,"reader_stalls":)" << m.reader_stalls
     << R"(,"reader_restarts":)" << m.reader_restarts
     << R"(,"handoffs":)" << m.handoffs
     << R"(,"framing_overhead_bits":)" << m.framing_overhead_bits
     << R"(,"time_us":)" << num(m.time_us) << R"(,"phases":{)";
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    os << (p == 0 ? "" : ",") << '"' << to_string(static_cast<Phase>(p))
       << R"(":)" << num(m.phases.us[p]);
  }
  os << "}}";
}

std::string_view to_string(StreamEvent::Kind kind) noexcept {
  switch (kind) {
    case StreamEvent::Kind::kDegrade:
      return "degrade";
    case StreamEvent::Kind::kUndelivered:
      return "undelivered";
    case StreamEvent::Kind::kEpoch:
      return "epoch";
    case StreamEvent::Kind::kReaderDown:
      return "reader_down";
    case StreamEvent::Kind::kReaderRecovered:
      return "reader_recovered";
  }
  return "unknown";
}

void write_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << R"({"type":"snapshot","sequence":)" << snapshot.sequence
     << R"(,"interval_s":)" << num(snapshot.interval_s)
     << R"(,"rounds_per_sec":)" << num(snapshot.rounds_per_sec)
     << R"(,"totals":)";
  write_json(os, snapshot.totals);
  os << R"(,"readers":[)";
  for (std::size_t r = 0; r < snapshot.readers.size(); ++r) {
    const ReaderTelemetry& reader = snapshot.readers[r];
    os << (r == 0 ? "" : ",") << R"({"metrics":)";
    write_json(os, reader.metrics);
    os << R"(,"ber_estimate":)" << num(reader.ber_estimate) << R"(,"epochs":)"
       << reader.epochs << R"(,"retry_budget":)" << reader.retry_budget
       << R"(,"health":")" << to_string(reader.health) << R"(","crashes":)"
       << reader.crashes << R"(,"restarts":)" << reader.restarts << '}';
  }
  os << "]";
  // Deployment-mode extras: emitted only when channels are configured, so
  // warehouse-mode snapshots keep their exact pre-channel byte layout.
  if (!snapshot.channels.empty()) {
    os << R"(,"channels":[)";
    for (std::size_t c = 0; c < snapshot.channels.size(); ++c) {
      const ChannelTelemetry& channel = snapshot.channels[c];
      os << (c == 0 ? "" : ",") << R"({"readers":)" << channel.readers
         << R"(,"rounds":)" << channel.rounds << R"(,"busy_us":)"
         << num(channel.busy_us) << '}';
    }
    os << R"(],"handoffs":)" << snapshot.fleet_handoffs
       << R"(,"churn_departures":)" << snapshot.fleet_churn_departures;
  }
  os << "}";
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream oss;
  write_json(oss, snapshot);
  return oss.str();
}

std::string to_json(const StreamEvent& event) {
  std::ostringstream oss;
  oss << R"({"type":"event","event":")" << to_string(event.kind)
      << R"(","reader":)" << event.reader << R"(,"count":)" << event.count
      << R"(,"sequence":)" << event.sequence << R"(,"sim_time_us":)"
      << num(event.sim_time_us) << '}';
  return oss.str();
}

// --- StreamSubscription -----------------------------------------------------

StreamSubscription::StreamSubscription(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      ring_(capacity == 0 ? 1 : capacity) {}

void StreamSubscription::push(Item item) {
  {
    const MutexLock lock(mutex_);
    if (closed_) return;
    if (size_ == ring_.size()) {
      // Backpressure policy: the publisher never waits. Drop the oldest
      // queued item, count it, and keep going.
      head_ = (head_ + 1) % ring_.size();
      --size_;
      ++dropped_;
    }
    ring_[(head_ + size_) % ring_.size()] = std::move(item);
    ++size_;
  }
  ready_.notify_all();
}

std::optional<StreamSubscription::Item> StreamSubscription::poll() {
  const MutexLock lock(mutex_);
  if (size_ == 0) return std::nullopt;
  Item item = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --size_;
  return item;
}

std::optional<StreamSubscription::Item> StreamSubscription::wait(
    unsigned timeout_ms) {
  const MutexLock lock(mutex_);
  ready_.wait_for(mutex_, std::chrono::milliseconds(timeout_ms), [this] {
    mutex_.assert_held();
    return size_ > 0 || closed_;
  });
  if (size_ == 0) return std::nullopt;
  Item item = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --size_;
  return item;
}

std::uint64_t StreamSubscription::dropped() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

bool StreamSubscription::closed() const {
  const MutexLock lock(mutex_);
  return closed_;
}

void StreamSubscription::close() {
  {
    const MutexLock lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

// --- StreamingAggregator ----------------------------------------------------

StreamingAggregator::StreamingAggregator(std::size_t readers)
    : readers_n_(readers), readers_(readers) {
  if (readers == 0)
    throw std::invalid_argument("StreamingAggregator: need >= 1 reader");
}

// rfidlint: hotpath(stream-update-reader)
void StreamingAggregator::update_reader(std::size_t reader,
                                        const Metrics& cumulative,
                                        double ber_estimate) {
  const MutexLock lock(mutex_);
  ReaderState& state = readers_.at(reader);
  state.live = cumulative;
  state.ber_estimate = ber_estimate;
}

void StreamingAggregator::complete_epoch(std::size_t reader,
                                         const Metrics& session_totals) {
  const MutexLock lock(mutex_);
  ReaderState& state = readers_.at(reader);
  state.completed.merge(session_totals);
  state.live = Metrics{};
  ++state.epochs;
}

void StreamingAggregator::set_retry_budget(std::size_t reader,
                                           std::uint64_t budget) {
  const MutexLock lock(mutex_);
  readers_.at(reader).retry_budget = budget;
}

void StreamingAggregator::abort_epoch(std::size_t reader) {
  const MutexLock lock(mutex_);
  // Crash boundary: the incarnation's partial session evaporates. The
  // completed accumulator is untouched, so it stays a pure function of
  // (seed, reader, epochs) regardless of how many crashed attempts the
  // epoch took — the invariant checkpoint resume relies on.
  readers_.at(reader).live = Metrics{};
}

void StreamingAggregator::set_reader_health(std::size_t reader,
                                            ReaderHealth health) {
  const MutexLock lock(mutex_);
  readers_.at(reader).health = health;
}

void StreamingAggregator::note_reader_crash(std::size_t reader) {
  const MutexLock lock(mutex_);
  ++readers_.at(reader).crashes;
}

void StreamingAggregator::note_reader_restart(std::size_t reader) {
  const MutexLock lock(mutex_);
  ++readers_.at(reader).restarts;
}

void StreamingAggregator::configure_channels(std::size_t channels) {
  const MutexLock lock(mutex_);
  channels_.assign(channels, ChannelTelemetry{});
}

void StreamingAggregator::update_channel(std::size_t channel,
                                         std::size_t readers,
                                         std::uint64_t rounds,
                                         double busy_us) {
  const MutexLock lock(mutex_);
  ChannelTelemetry& state = channels_.at(channel);
  state.readers = readers;
  state.rounds = rounds;
  state.busy_us = busy_us;
}

void StreamingAggregator::set_fleet_counters(std::uint64_t handoffs,
                                             std::uint64_t churn_departures) {
  const MutexLock lock(mutex_);
  fleet_handoffs_ = handoffs;
  fleet_churn_departures_ = churn_departures;
}

void StreamingAggregator::restore_reader(std::size_t reader,
                                         const Metrics& completed,
                                         std::uint64_t epochs,
                                         std::uint64_t crashes,
                                         std::uint64_t restarts,
                                         ReaderHealth health) {
  const MutexLock lock(mutex_);
  ReaderState& state = readers_.at(reader);
  state.completed = completed;
  state.live = Metrics{};
  state.epochs = epochs;
  state.crashes = crashes;
  state.restarts = restarts;
  state.health = health;
}

std::shared_ptr<const MetricsSnapshot> StreamingAggregator::publish(
    double wall_dt_s) {
  auto snapshot = std::make_shared<MetricsSnapshot>();
  std::vector<StreamEvent> events;
  std::vector<std::shared_ptr<StreamSubscription>> fan_out;
  {
    const MutexLock lock(mutex_);
    snapshot->sequence = ++sequence_;
    snapshot->interval_s = wall_dt_s;
    snapshot->channels = channels_;
    snapshot->fleet_handoffs = fleet_handoffs_;
    snapshot->fleet_churn_departures = fleet_churn_departures_;
    snapshot->readers.reserve(readers_.size());
    for (const ReaderState& state : readers_) {
      ReaderTelemetry telemetry;
      telemetry.metrics = state.completed;  // bit-exact: completed ⊕ live,
      telemetry.metrics.merge(state.live);  // always folded in this order
      telemetry.ber_estimate = state.ber_estimate;
      telemetry.epochs = state.epochs;
      telemetry.retry_budget = state.retry_budget;
      telemetry.health = state.health;
      telemetry.crashes = state.crashes;
      telemetry.restarts = state.restarts;
      snapshot->totals.merge(telemetry.metrics);
      snapshot->readers.push_back(std::move(telemetry));
    }
    const MetricsSnapshot* previous = latest_.get();
    if (wall_dt_s > 0.0) {
      const std::uint64_t prev_rounds =
          previous == nullptr ? 0 : previous->totals.rounds;
      snapshot->rounds_per_sec =
          static_cast<double>(snapshot->totals.rounds - prev_rounds) /
          wall_dt_s;
    }
    for (std::size_t r = 0; r < snapshot->readers.size(); ++r) {
      const ReaderTelemetry& now = snapshot->readers[r];
      const bool had = previous != nullptr && r < previous->readers.size();
      const std::uint64_t prev_degrade =
          had ? previous->readers[r].metrics.degradations : 0;
      const std::uint64_t prev_undelivered =
          had ? previous->readers[r].metrics.undelivered : 0;
      const std::uint64_t prev_epochs = had ? previous->readers[r].epochs : 0;
      const auto emit = [&](StreamEvent::Kind kind, std::uint64_t delta) {
        if (delta == 0) return;
        events.push_back(StreamEvent{kind, r, delta, snapshot->sequence,
                                     now.metrics.time_us});
      };
      emit(StreamEvent::Kind::kDegrade,
           now.metrics.degradations - prev_degrade);
      emit(StreamEvent::Kind::kUndelivered,
           now.metrics.undelivered - prev_undelivered);
      emit(StreamEvent::Kind::kEpoch, now.epochs - prev_epochs);
      const ReaderHealth prev_health =
          had ? previous->readers[r].health : ReaderHealth::kHealthy;
      if (now.health == ReaderHealth::kDown &&
          prev_health != ReaderHealth::kDown) {
        emit(StreamEvent::Kind::kReaderDown, 1);
      }
      if (now.health == ReaderHealth::kHealthy &&
          (prev_health == ReaderHealth::kDown ||
           prev_health == ReaderHealth::kRecovering)) {
        emit(StreamEvent::Kind::kReaderRecovered, 1);
      }
    }
    latest_ = snapshot;
    fan_out = subscriptions_;
  }
  // Fan-out happens outside the aggregator lock: a subscription's own lock
  // is the only one push() takes, so a stalled consumer cannot hold up
  // update_reader() on the simulation thread.
  for (const auto& subscription : fan_out) {
    StreamSubscription::Item item;
    item.type = StreamSubscription::Item::Type::kSnapshot;
    item.snapshot = snapshot;
    subscription->push(std::move(item));
    for (const StreamEvent& event : events) {
      StreamSubscription::Item event_item;
      event_item.type = StreamSubscription::Item::Type::kEvent;
      event_item.event = event;
      subscription->push(std::move(event_item));
    }
  }
  return snapshot;
}

std::shared_ptr<const MetricsSnapshot> StreamingAggregator::latest() const {
  const MutexLock lock(mutex_);
  return latest_;
}

std::shared_ptr<StreamSubscription> StreamingAggregator::subscribe(
    std::size_t capacity) {
  auto subscription = std::make_shared<StreamSubscription>(capacity);
  const MutexLock lock(mutex_);
  subscriptions_.push_back(subscription);
  return subscription;
}

void StreamingAggregator::unsubscribe(
    const std::shared_ptr<StreamSubscription>& subscription) {
  if (subscription == nullptr) return;
  {
    const MutexLock lock(mutex_);
    std::erase(subscriptions_, subscription);
  }
  subscription->close();
}

void StreamingAggregator::close_all() {
  std::vector<std::shared_ptr<StreamSubscription>> to_close;
  {
    const MutexLock lock(mutex_);
    to_close.swap(subscriptions_);
  }
  for (const auto& subscription : to_close) subscription->close();
}

}  // namespace rfid::obs
