#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfid::obs {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2)
    throw std::invalid_argument("Histogram: need at least two bucket edges");
  for (std::size_t i = 1; i < edges_.size(); ++i)
    if (!(edges_[i - 1] < edges_[i]))
      throw std::invalid_argument(
          "Histogram: bucket edges must be strictly increasing");
  counts_.assign(edges_.size() + 1, 0);  // underflow + interior + overflow
}

Histogram Histogram::linear(double lo, double hi, std::size_t buckets) {
  if (buckets == 0 || !(lo < hi))
    throw std::invalid_argument("Histogram::linear: empty range");
  std::vector<double> edges(buckets + 1);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (std::size_t i = 0; i <= buckets; ++i)
    edges[i] = lo + width * static_cast<double>(i);
  return Histogram(std::move(edges));
}

Histogram Histogram::exponential(double lo, double ratio,
                                 std::size_t buckets) {
  if (buckets == 0 || !(lo > 0.0) || !(ratio > 1.0))
    throw std::invalid_argument(
        "Histogram::exponential: need lo > 0 and ratio > 1");
  std::vector<double> edges(buckets + 1);
  double edge = lo;
  for (std::size_t i = 0; i <= buckets; ++i, edge *= ratio) edges[i] = edge;
  return Histogram(std::move(edges));
}

void Histogram::record(double value) noexcept { record_n(value, 1); }

void Histogram::record_n(double value, std::uint64_t count) noexcept {
  if (count == 0) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
  if (counts_.empty()) return;  // default-constructed: totals only
  // upper_bound gives the first edge > value; bucket 0 is the underflow.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  counts_[static_cast<std::size_t>(it - edges_.begin())] += count;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < target) continue;
    // The target rank lands in bucket b; interpolate across its span. The
    // open-ended underflow/overflow buckets fall back on the exact extremes.
    double lo = b == 0 ? min_ : edges_[b - 1];
    double hi = b == counts_.size() - 1 ? max_ : edges_[b];
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (!(lo < hi)) return lo;
    const double frac =
        (target - before) / static_cast<double>(counts_[b]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty() && count_ == 0) {
    *this = other;  // adopt the configured layout wholesale
    return;
  }
  if (!same_layout(other))
    throw std::invalid_argument("Histogram::merge: bucket layouts differ");
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t b = 0; b < counts_.size(); ++b)
    counts_[b] += other.counts_[b];
}

// --- P2Quantile -------------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.001, 0.999)) {
  increment_[0] = 0.0;
  increment_[1] = q_ / 2.0;
  increment_[2] = q_;
  increment_[3] = (1.0 + q_) / 2.0;
  increment_[4] = 1.0;
}

void P2Quantile::record(double value) noexcept {
  if (n_ < 5) {
    heights_[n_++] = value;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * increment_[i];
      }
    }
    return;
  }

  // Locate the cell and bump the extreme markers if needed.
  int cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }
  ++n_;
  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Adjust the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) update, falling back to linear when the
  // parabolic estimate would leave the bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          sign / span *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact nearest-rank quantile over the few samples seen so far.
    double sorted[5];
    std::copy(heights_, heights_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const auto rank = static_cast<std::size_t>(
        q_ * static_cast<double>(n_ - 1) + 0.5);
    return sorted[std::min<std::size_t>(rank, n_ - 1)];
  }
  return heights_[2];
}

}  // namespace rfid::obs
