#include "obs/registry.hpp"

#include <ostream>
#include <sstream>

namespace rfid::obs {

namespace {

std::string num(double value) {
  std::ostringstream oss;
  oss.precision(12);
  oss << value;
  return oss.str();
}

std::string indent_of(int indent, int depth) {
  return indent <= 0 ? std::string()
                     : "\n" + std::string(
                                  static_cast<std::size_t>(indent * depth),
                                  ' ');
}

}  // namespace

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Histogram& layout) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, layout).first->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, histogram] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, histogram);
    else
      it->second.merge(histogram);
  }
}

void MetricsRegistry::write_json(std::ostream& os, int indent) const {
  // std::map keys iterate sorted, so output is deterministic.
  os << '{';
  os << indent_of(indent, 1) << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) os << ',';
    first = false;
    os << indent_of(indent, 2) << '"' << name << "\": " << value;
  }
  os << indent_of(indent, 1) << "},";
  os << indent_of(indent, 1) << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << indent_of(indent, 2) << '"' << name << "\": {";
    os << indent_of(indent, 3) << "\"count\": " << h.count() << ',';
    os << indent_of(indent, 3) << "\"sum\": " << num(h.sum()) << ',';
    os << indent_of(indent, 3) << "\"mean\": " << num(h.mean()) << ',';
    os << indent_of(indent, 3) << "\"min\": " << num(h.min()) << ',';
    os << indent_of(indent, 3) << "\"max\": " << num(h.max()) << ',';
    os << indent_of(indent, 3) << "\"p50\": " << num(h.quantile(0.5)) << ',';
    os << indent_of(indent, 3) << "\"p99\": " << num(h.quantile(0.99)) << ',';
    os << indent_of(indent, 3) << "\"edges\": [";
    for (std::size_t i = 0; i < h.edges().size(); ++i)
      os << (i == 0 ? "" : ", ") << num(h.edges()[i]);
    os << "],";
    os << indent_of(indent, 3) << "\"counts\": [";
    for (std::size_t i = 0; i < h.counts().size(); ++i)
      os << (i == 0 ? "" : ", ") << h.counts()[i];
    os << ']';
    os << indent_of(indent, 2) << '}';
  }
  os << indent_of(indent, 1) << '}';
  os << indent_of(indent, 0) << '}';
  if (indent > 0) os << '\n';
}

Histogram vector_bits_layout() {
  // Polling vectors run 0..96 bits (CPP's full EPC is the ceiling); 1-bit
  // buckets keep the Fig. 3/5/9 distributions exact.
  return Histogram::linear(0.0, 128.0, 128);
}

Histogram slot_airtime_layout() {
  // Interaction airtimes live between ~200 us (bare empty slot) and a few
  // ms (96-bit vector + long payload); geometric buckets track the tail.
  return Histogram::exponential(100.0, 1.2, 32);
}

Histogram polls_per_round_layout() {
  return Histogram::exponential(1.0, 2.0, 24);
}

RegistrySink::RegistrySink(MetricsRegistry& registry) : registry_(&registry) {
  // Materialize the standard layouts up front so empty trials still merge
  // cleanly with populated ones.
  (void)registry_->histogram("vector_bits_per_poll", vector_bits_layout());
  (void)registry_->histogram("slot_airtime_us", slot_airtime_layout());
  (void)registry_->histogram("polls_per_round", polls_per_round_layout());
}

void RegistrySink::close_round() {
  if (!round_open_) return;
  registry_->histogram("polls_per_round")
      .record(static_cast<double>(polls_in_round_));
  polls_in_round_ = 0;
}

void RegistrySink::on_event(const Event& event) {
  ++registry_->counter("events." + std::string(to_string(event.kind)));
  switch (event.kind) {
    case EventKind::kPoll:
      registry_->histogram("vector_bits_per_poll")
          .record(static_cast<double>(event.vector_bits));
      break;
    case EventKind::kRoundBegin:
      close_round();
      round_open_ = true;
      break;
    case EventKind::kReply:
      ++polls_in_round_;
      registry_->histogram("slot_airtime_us").record(event.duration_us);
      break;
    case EventKind::kTimeout:
    case EventKind::kCorrupted:
    case EventKind::kSlotEmpty:
    case EventKind::kSlotCollision:
      registry_->histogram("slot_airtime_us").record(event.duration_us);
      break;
    case EventKind::kReaderBroadcast:
    case EventKind::kCircleBegin:
    case EventKind::kSegmentCorrupted:
    case EventKind::kDegrade:
      break;
  }
}

void RegistrySink::on_finish() {
  close_round();
  round_open_ = false;
}

}  // namespace rfid::obs
