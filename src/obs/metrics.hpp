// Session-level accounting.
//
// The paper reports two quantities per protocol: the average polling-vector
// length w (bits the reader spends to single out one tag) and the execution
// time. Metrics separates reader bits into two buckets so both can be
// derived from one run:
//   * vector_bits  — bits the paper counts into w (per-poll vectors; for
//                    EHPP also the circle command and per-round init, per
//                    Section V-B's explicit statement)
//   * command_bits — reader bits outside the w accounting (HPP/TPP round
//                    initialization, CRC fields of coded polling, ...)
// Time always accumulates everything actually transmitted.
// A third derived view, the per-phase time split (where did the microseconds
// go: vector transmission, commands, turn-arounds, tag replies, wasted
// slots), lives in `phases` — see obs/phase_timer.hpp for the taxonomy and
// docs/observability.md for the partition identity.
//
// The struct lives in the obs layer (it is pure accounting over the phase
// taxonomy) so both the simulation stack above and the streaming telemetry
// path (obs/stream.hpp) can fold it; sim/metrics.hpp re-exports it as
// sim::Metrics for the rest of the simulator.
#pragma once

#include <cstdint>

#include "obs/phase_timer.hpp"

namespace rfid::obs {

struct Metrics final {
  std::uint64_t polls = 0;    ///< successful singleton interrogations
  std::uint64_t missing = 0;    ///< polls that timed out on an absent tag
  std::uint64_t corrupted = 0;  ///< replies garbled by channel noise
  std::uint64_t retries = 0;  ///< recovery re-polls issued (fault layer)
  std::uint64_t undelivered = 0;  ///< tags abandoned after budget exhaustion
  std::uint64_t rounds = 0;   ///< inventory rounds (HPP/TPP) or frames
  std::uint64_t circles = 0;  ///< EHPP subset-query circles

  std::uint64_t slots_total = 0;   ///< frame slots walked (ALOHA family)
  std::uint64_t slots_useful = 0;  ///< slots that yielded a reply
  std::uint64_t slots_wasted = 0;  ///< empty/collision slots

  std::uint64_t vector_bits = 0;   ///< reader bits counted into w
  std::uint64_t command_bits = 0;  ///< reader bits outside w
  std::uint64_t tag_bits = 0;      ///< bits transmitted by tags

  // Corruption-resilient broadcast accounting (fault layer; all zero and
  // absent from reports when framing and BER are off).
  std::uint64_t segments_sent = 0;  ///< framed segments, first attempts only
  std::uint64_t segments_corrupted = 0;  ///< segment attempts that failed CRC
  std::uint64_t segments_retransmitted = 0;  ///< retransmission attempts
  std::uint64_t downlink_corrupted = 0;  ///< unframed broadcasts hit by BER
  std::uint64_t degradations = 0;  ///< adaptive protocol-tier downgrades

  // Reader-level fault accounting (fleet supervisor; see
  // fault/supervisor.hpp). All zero — and absent from reports — outside
  // supervised fleet runs with reader faults enabled.
  std::uint64_t reader_crashes = 0;   ///< readers lost mid-run (crash faults)
  std::uint64_t reader_stalls = 0;    ///< stall/latency-spike faults applied
  std::uint64_t reader_restarts = 0;  ///< supervisor-driven restarts
  std::uint64_t handoffs = 0;  ///< tags rehomed away from a downed reader
  /// Downlink bits framing added beyond the raw payload: header + CRC of
  /// every attempt plus the whole frame of each retransmission. Subset of
  /// command_bits; the bench's overhead-vs-Eq.16 figure is this per tag.
  std::uint64_t framing_overhead_bits = 0;

  double time_us = 0.0;  ///< wall-clock time under the C1G2 model

  /// time_us attributed by air-interface phase; the entries partition the
  /// clock up to floating-point association (~1e-9 relative).
  PhaseBreakdown phases{};

  /// Average polling-vector length: w-counted bits per interrogated tag.
  [[nodiscard]] double avg_vector_bits() const noexcept {
    return polls == 0 ? 0.0
                      : static_cast<double>(vector_bits) /
                            static_cast<double>(polls);
  }

  [[nodiscard]] double exec_time_s() const noexcept { return time_us * 1e-6; }

  /// Fraction of frame slots that produced no reply (ALOHA family metric).
  [[nodiscard]] double waste_fraction() const noexcept {
    return slots_total == 0 ? 0.0
                            : static_cast<double>(slots_wasted) /
                                  static_cast<double>(slots_total);
  }

  void merge(const Metrics& other) noexcept;
};

}  // namespace rfid::obs
