// Simulated-time attribution by air-interface phase.
//
// The paper's Tables I-III report *total* execution time; the natural next
// question — where did the microseconds go? — needs the clock split by what
// the medium was doing. PhaseBreakdown keeps one accumulator per phase:
//
//   kReaderVector — reader transmitting polling vectors (incl. the QueryRep
//                   prefix of a poll and w-counted init frames)
//   kCommand      — reader frames outside the w accounting (round/circle
//                   init, Select, validators)
//   kTurnaround   — T1/T2 settling windows around successful interactions
//   kTagReply     — tags transmitting decoded payloads
//   kWastedSlot   — airtime that produced nothing: timeouts on absent tags,
//                   garbled replies, empty and collision slots
//   kRecovery     — every microsecond spent inside a reader-side recovery
//                   re-poll (vector, turn-arounds, reply or timeout alike);
//                   zero unless a session runs with fault recovery enabled
//
// The phases partition sim::Metrics::time_us up to floating-point
// association (each increment is split into components before summation);
// tests assert agreement to 1e-9 relative. The struct is a plain value —
// merge() is memberwise addition, so it aggregates across trials exactly
// like the scalar metrics do. kRecovery must stay the last entry: report
// and trace writers omit the trailing column for runs without a fault
// layer so zero-fault output stays byte-identical to older builds.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace rfid::obs {

enum class Phase : std::size_t {
  kReaderVector = 0,
  kCommand = 1,
  kTurnaround = 2,
  kTagReply = 3,
  kWastedSlot = 4,
  kRecovery = 5,
};

inline constexpr std::size_t kPhaseCount = 6;

[[nodiscard]] constexpr std::string_view to_string(Phase phase) noexcept {
  constexpr std::array<std::string_view, kPhaseCount> names{
      "reader_vector", "command",     "turnaround",
      "tag_reply",     "wasted_slot", "recovery"};
  return names[static_cast<std::size_t>(phase)];
}

/// Per-phase simulated-microsecond accumulators.
struct PhaseBreakdown final {
  std::array<double, kPhaseCount> us{};

  void add(Phase phase, double delta_us) noexcept {
    us[static_cast<std::size_t>(phase)] += delta_us;
  }

  [[nodiscard]] double get(Phase phase) const noexcept {
    return us[static_cast<std::size_t>(phase)];
  }

  [[nodiscard]] double total_us() const noexcept {
    double total = 0.0;
    for (const double phase_us : us) total += phase_us;
    return total;
  }

  /// Share of the total spent in `phase`; 0 for an empty breakdown.
  [[nodiscard]] double fraction(Phase phase) const noexcept {
    const double total = total_us();
    return total <= 0.0 ? 0.0 : get(phase) / total;
  }

  void merge(const PhaseBreakdown& other) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) us[i] += other.us[i];
  }
};

}  // namespace rfid::obs
