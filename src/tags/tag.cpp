#include "tags/tag.hpp"

namespace rfid::tags {

BitVec derived_payload(const TagId& id, std::size_t bits) {
  BitVec out;
  std::uint64_t word = 0;
  unsigned available = 0;
  std::uint64_t counter = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    if (available == 0) {
      word = tag_hash(0x7061796c6f616421ULL + counter++, id);
      available = 64;
    }
    out.push_back((word >> 63) & 1u);
    word <<= 1;
    --available;
  }
  return out;
}

BitVec Tag::reply_payload(std::size_t bits) const {
  if (payload_.size() >= bits) {
    BitVec out;
    for (std::size_t i = 0; i < bits; ++i) out.push_back(payload_.bit(i));
    return out;
  }
  return derived_payload(id_, bits);
}

}  // namespace rfid::tags
