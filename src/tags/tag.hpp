// A simulated sensor-augmented RFID tag.
//
// Tags carry a 96-bit EPC identifier plus an m-bit information payload
// (battery level, temperature, product data — the paper's Section I use
// cases). Protocol-specific runtime state (picked index, TPP bit array,
// sleep flag) lives in per-protocol device structs, not here, because a
// physical tag's identity outlives any one inventory session.
#pragma once

#include "common/bitvec.hpp"
#include "common/hash.hpp"
#include "common/tag_id.hpp"

namespace rfid::tags {

class Tag final {
 public:
  Tag() = default;
  explicit Tag(TagId id) : id_(id) {}
  Tag(TagId id, BitVec payload) : id_(id), payload_(std::move(payload)) {}

  [[nodiscard]] const TagId& id() const noexcept { return id_; }

  /// Raw stored payload (may be empty if the population was created without
  /// sensor data).
  [[nodiscard]] const BitVec& stored_payload() const noexcept {
    return payload_;
  }

  void set_payload(BitVec payload) { payload_ = std::move(payload); }

  /// The `bits`-long reply this tag transmits when polled. If the stored
  /// payload is at least `bits` long its prefix is used; otherwise the reply
  /// is derived deterministically from the ID, so reader-side verification
  /// can recompute the expected value without a side channel.
  [[nodiscard]] BitVec reply_payload(std::size_t bits) const;

 private:
  TagId id_{};
  BitVec payload_{};
};

/// The deterministic payload derivation used when a tag has no stored sensor
/// data; exposed so tests and the session verifier share one definition.
[[nodiscard]] BitVec derived_payload(const TagId& id, std::size_t bits);

}  // namespace rfid::tags
