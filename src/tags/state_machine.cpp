#include "tags/state_machine.hpp"

namespace rfid::tags {

std::string_view to_string(TagState state) noexcept {
  switch (state) {
    case TagState::kReady: return "Ready";
    case TagState::kArbitrate: return "Arbitrate";
    case TagState::kReply: return "Reply";
    case TagState::kAcknowledged: return "Acknowledged";
    case TagState::kOpen: return "Open";
    case TagState::kSecured: return "Secured";
    case TagState::kKilled: return "Killed";
  }
  return "?";
}

bool TagStateMachine::power_cycle() noexcept {
  if (state_ == TagState::kKilled) return false;  // absorbing
  state_ = TagState::kReady;
  slot_ = 0;
  return true;
}

bool TagStateMachine::on_query(SessionFlag target,
                               std::uint16_t slot) noexcept {
  if (state_ == TagState::kKilled) return false;
  if (state_ != TagState::kReady) return illegal();
  if (flag_ != target) return true;  // legally sits the round out
  slot_ = slot;
  state_ = (slot_ == 0) ? TagState::kReply : TagState::kArbitrate;
  return true;
}

bool TagStateMachine::on_query_rep() noexcept {
  if (state_ == TagState::kKilled) return false;
  if (state_ != TagState::kArbitrate) return illegal();
  if (slot_ > 0) --slot_;
  if (slot_ == 0) state_ = TagState::kReply;
  return true;
}

bool TagStateMachine::on_ack() noexcept {
  if (state_ == TagState::kKilled) return false;
  if (state_ != TagState::kReply) return illegal();
  state_ = TagState::kAcknowledged;
  return true;
}

bool TagStateMachine::on_nak() noexcept {
  if (state_ == TagState::kKilled) return false;
  switch (state_) {
    case TagState::kReply:
    case TagState::kAcknowledged:
    case TagState::kOpen:
    case TagState::kSecured:
      state_ = TagState::kArbitrate;
      slot_ = 0xFFFF;  // C1G2: NAK'ed tags fall back with max slot
      return true;
    default:
      return illegal();
  }
}

bool TagStateMachine::on_inventory_complete() noexcept {
  if (state_ == TagState::kKilled) return false;
  if (state_ != TagState::kAcknowledged && state_ != TagState::kOpen &&
      state_ != TagState::kSecured)
    return illegal();
  flag_ = (flag_ == SessionFlag::kA) ? SessionFlag::kB : SessionFlag::kA;
  state_ = TagState::kReady;
  slot_ = 0;
  return true;
}

bool TagStateMachine::on_req_rn() noexcept {
  if (state_ == TagState::kKilled) return false;
  if (state_ != TagState::kAcknowledged) return illegal();
  state_ = TagState::kOpen;
  return true;
}

bool TagStateMachine::on_access_granted() noexcept {
  if (state_ == TagState::kKilled) return false;
  if (state_ != TagState::kOpen) return illegal();
  state_ = TagState::kSecured;
  return true;
}

bool TagStateMachine::on_kill() noexcept {
  if (state_ == TagState::kKilled) return false;
  if (state_ != TagState::kOpen && state_ != TagState::kSecured)
    return illegal();
  state_ = TagState::kKilled;
  return true;
}

}  // namespace rfid::tags
