#include "tags/population.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace rfid::tags {

namespace {

TagId random_id(Xoshiro256ss& id_rng) {
  TagId id;
  const std::uint64_t hi = id_rng();
  const std::uint64_t lo = id_rng();
  id.words[0] = static_cast<std::uint32_t>(hi >> 32);
  id.words[1] = static_cast<std::uint32_t>(hi);
  id.words[2] = static_cast<std::uint32_t>(lo);
  return id;
}

}  // namespace

TagPopulation::TagPopulation(std::vector<Tag> tags) : tags_(std::move(tags)) {
  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(tags_.size());
  for (const Tag& tag : tags_) {
    const bool inserted = seen.insert(tag.id()).second;
    RFID_EXPECTS(inserted && "duplicate tag ID in population");
  }
}

TagPopulation TagPopulation::uniform_random(std::size_t n, Xoshiro256ss& id_rng) {
  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(n);
  std::vector<Tag> tags;
  tags.reserve(n);
  while (tags.size() < n) {
    const TagId id = random_id(id_rng);
    if (seen.insert(id).second) tags.emplace_back(id);
  }
  return TagPopulation(std::move(tags));
}

TagPopulation TagPopulation::uniform_random_sharded(std::size_t n,
                                                    std::uint64_t seed,
                                                    std::size_t shards) {
  RFID_EXPECTS(shards >= 1);
  std::vector<Tag> tags;
  tags.reserve(n);
  for (std::size_t shard = 0; shard < shards; ++shard)
    uniform_random_shard_into(tags, n, seed, shard, shards);
  // Cross-shard collisions are possible in principle (each shard only
  // dedups locally) and vanishingly rare with 96-bit IDs; the population
  // constructor still catches them loudly.
  return TagPopulation(std::move(tags));
}

void TagPopulation::uniform_random_shard_into(std::vector<Tag>& out,
                                              std::size_t n, std::uint64_t seed,
                                              std::size_t shard,
                                              std::size_t shards) {
  RFID_EXPECTS(shards >= 1 && shard < shards);
  const std::size_t first = shard * n / shards;
  const std::size_t last = (shard + 1) * n / shards;
  Xoshiro256ss shard_id_rng(derive_seed(seed, shard));
  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(last - first);
  out.reserve(out.size() + (last - first));
  std::size_t made = 0;
  while (made < last - first) {
    const TagId id = random_id(shard_id_rng);
    if (seen.insert(id).second) {
      out.emplace_back(id);
      ++made;
    }
  }
}

TagPopulation TagPopulation::sequential(std::size_t n, std::uint64_t first) {
  std::vector<Tag> tags;
  tags.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t value = first + i;
    TagId id;
    id.words[1] = static_cast<std::uint32_t>(value >> 32);
    id.words[2] = static_cast<std::uint32_t>(value);
    tags.emplace_back(id);
  }
  return TagPopulation(std::move(tags));
}

TagPopulation TagPopulation::prefix_clustered(std::size_t n,
                                              std::size_t categories,
                                              std::size_t prefix_bits,
                                              Xoshiro256ss& id_rng) {
  RFID_EXPECTS(categories >= 1);
  RFID_EXPECTS(prefix_bits <= kTagIdBits);
  // One random prefix per category; suffixes random, deduplicated.
  std::vector<TagId> prefixes;
  prefixes.reserve(categories);
  for (std::size_t c = 0; c < categories; ++c)
    prefixes.push_back(random_id(id_rng));

  std::unordered_set<TagId, TagIdHash> seen;
  seen.reserve(n);
  std::vector<Tag> tags;
  tags.reserve(n);
  while (tags.size() < n) {
    const std::size_t category = tags.size() % categories;
    TagId id = random_id(id_rng);
    for (std::size_t b = 0; b < prefix_bits; ++b)
      id.set_bit(b, prefixes[category].bit(b));
    if (seen.insert(id).second) tags.emplace_back(id);
  }
  return TagPopulation(std::move(tags));
}

TagPopulation TagPopulation::with_random_payloads(std::size_t bits,
                                                  Xoshiro256ss& id_rng) const {
  std::vector<Tag> tags;
  tags.reserve(tags_.size());
  for (const Tag& tag : tags_) {
    BitVec payload;
    for (std::size_t i = 0; i < bits; ++i)
      payload.push_back(id_rng.bernoulli(0.5));
    tags.emplace_back(tag.id(), std::move(payload));
  }
  return TagPopulation(std::move(tags));
}

}  // namespace rfid::tags
