// Structure-of-arrays view of the active (still-unread) population.
//
// The round engine's hot loop touches three things per tag per round: the
// two 64-bit ID words feeding H(r, id), the picked bucket slot, and the
// done flag. The old array-of-structs device list (Tag pointer + index +
// presence) made every hash a pointer chase into the Tag object; this view
// keeps each field in its own contiguous array so the batched kernels in
// common/simd.hpp stream the ID words at full width and the compaction
// walks plain arrays. Element i of every array describes the same tag —
// all mutators below preserve that alignment and the relative order of
// surviving elements (protocol semantics depend on ascending dispatch
// order).
//
// The Tag pointer column stays: polls, records and presence checks need
// the full object. It is simply no longer on the hashing path. Presence
// itself is NOT mirrored here — the polling loops query
// sim::Session::is_present live so churn schedules are honoured, and a
// cached copy would only invite stale reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "tags/tag.hpp"

namespace rfid::tags {

class TagSoA final {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return tag_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tag_.empty(); }

  void reserve(std::size_t n);
  void clear() noexcept;

  /// Appends one tag, splitting its 96-bit ID into the (hi, lo) words
  /// rfid::tag_hash_words consumes. The new element's slot is 0 until a
  /// round writes it.
  void push_back(const Tag* tag);

  /// Appends the identity of element `i` of `other` (EHPP's
  /// circle-membership split). The slot column is round-scoped scratch
  /// (see below) and is not carried over.
  void push_back_from(const TagSoA& other, std::size_t i);

  [[nodiscard]] const Tag* tag(std::size_t i) const noexcept {
    return tag_[i];
  }
  [[nodiscard]] std::uint64_t id_hi(std::size_t i) const noexcept {
    return id_hi_[i];
  }
  [[nodiscard]] std::uint64_t id_lo(std::size_t i) const noexcept {
    return id_lo_[i];
  }

  /// The bucket index the tag picked this round (written wholesale by the
  /// engine's batched hash; DFSA writes per element). Round-scoped
  /// SCRATCH: every round overwrites slots [0, size()) before reading
  /// any, and no mutator below promises to preserve them — compaction
  /// skips the column entirely so the hot path never pays for moving
  /// values the next round immediately clobbers.
  [[nodiscard]] std::uint32_t slot(std::size_t i) const noexcept {
    return slot_[i];
  }
  void set_slot(std::size_t i, std::uint32_t value) noexcept {
    slot_[i] = value;
  }

  // Flat-array surface for the batched kernels (common/simd.hpp).
  [[nodiscard]] const std::uint64_t* id_hi_data() const noexcept {
    return id_hi_.data();
  }
  [[nodiscard]] const std::uint64_t* id_lo_data() const noexcept {
    return id_lo_.data();
  }
  [[nodiscard]] std::uint32_t* slot_data() noexcept { return slot_.data(); }

  /// Order-preserving erase of every element whose done flag is set.
  /// Slots are left stale (round-scoped scratch, see slot()).
  void compact(const std::vector<char>& done);

  /// Order-preserving erase of every element whose picked slot is a
  /// singleton bucket (counts[slot] == 1) — the clean-round compaction,
  /// where every singleton poll deterministically succeeded and every
  /// collision-bucket tag stays awake. Slots are left stale. Runs through
  /// simd::compact_nonsingletons; any backend keeps exactly the same
  /// elements in the same order.
  void compact_singletons(const std::vector<std::uint32_t>& counts,
                          simd::Backend backend);

  /// Copies the identity columns of element `src` over element `dst`
  /// (manual compaction loops; dst <= src keeps the operation
  /// order-preserving). Slots are not copied.
  void move_element(std::size_t dst, std::size_t src) noexcept;

  /// Truncates to the first `n` elements (n <= size()).
  void resize_down(std::size_t n) noexcept;

 private:
  std::vector<const Tag*> tag_;
  std::vector<std::uint64_t> id_hi_;
  std::vector<std::uint64_t> id_lo_;
  std::vector<std::uint32_t> slot_;
};

}  // namespace rfid::tags
