#include "tags/soa.hpp"

namespace rfid::tags {

void TagSoA::reserve(std::size_t n) {
  tag_.reserve(n);
  id_hi_.reserve(n);
  id_lo_.reserve(n);
  slot_.reserve(n);
}

void TagSoA::clear() noexcept {
  tag_.clear();
  id_hi_.clear();
  id_lo_.clear();
  slot_.clear();
}

void TagSoA::push_back(const Tag* tag) {
  const TagId& id = tag->id();
  tag_.push_back(tag);
  id_hi_.push_back((static_cast<std::uint64_t>(id.words[0]) << 32) |
                   id.words[1]);
  id_lo_.push_back(static_cast<std::uint64_t>(id.words[2]));
  slot_.push_back(0);
}

void TagSoA::push_back_from(const TagSoA& other, std::size_t i) {
  tag_.push_back(other.tag_[i]);
  id_hi_.push_back(other.id_hi_[i]);
  id_lo_.push_back(other.id_lo_[i]);
  slot_.push_back(0);
}

void TagSoA::move_element(std::size_t dst, std::size_t src) noexcept {
  tag_[dst] = tag_[src];
  id_hi_[dst] = id_hi_[src];
  id_lo_[dst] = id_lo_[src];
}

void TagSoA::resize_down(std::size_t n) noexcept {
  tag_.resize(n);
  id_hi_.resize(n);
  id_lo_.resize(n);
  slot_.resize(n);
}

void TagSoA::compact(const std::vector<char>& done) {
  // Branchless stable compaction: always copy element i to the write
  // cursor, advance the cursor only for survivors. Whether a tag survives
  // a round is close to a coin flip, so a conditional copy would eat a
  // branch mispredict per element; the unconditional form is pure
  // store-port throughput. Copying i -> write with write <= i is safe
  // (self-copy at worst), and the relative order of survivors is kept.
  // Slots are scratch (see header) and are not moved.
  std::size_t write = 0;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t keep = done[i] == 0 ? 1u : 0u;
    tag_[write] = tag_[i];
    id_hi_[write] = id_hi_[i];
    id_lo_[write] = id_lo_[i];
    write += keep;
  }
  resize_down(write);
}

void TagSoA::compact_singletons(const std::vector<std::uint32_t>& counts,
                                simd::Backend backend) {
  // Survival is "my bucket was not a singleton", read straight off the
  // round's histogram. Reading slot_[i] is safe even though slots are not
  // moved: the read index only ever runs ahead of the write cursor, so
  // every slot read is the one this round's hash wrote. The kernel treats
  // the Tag-pointer column as an opaque 64-bit payload it only copies.
  static_assert(sizeof(const Tag*) == sizeof(std::uint64_t));
  const std::size_t write = simd::compact_nonsingletons(
      counts.data(), slot_.data(),
      reinterpret_cast<std::uint64_t*>(tag_.data()), id_hi_.data(),
      id_lo_.data(), size(), backend);
  resize_down(write);
}

}  // namespace rfid::tags
