// Tag population generation — the simulator's workload generator.
//
// The paper assumes the reader knows all tag IDs in advance (Section II-A);
// a TagPopulation is exactly that shared knowledge: an immutable set of
// unique tags the reader and the air interface both reference.
//
// Three ID distributions cover the paper's scenarios:
//   * uniform_random  — the paper's general case ("no assumption on the
//                       distribution of tag IDs", Section II-B)
//   * sequential      — worst case for hash-free schemes, common in freshly
//                       commissioned inventory
//   * prefix_clustered — tags sharing category IDs, the case motivating the
//                       enhanced-CPP baseline (Section II-B)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tags/tag.hpp"

namespace rfid::tags {

/// Immutable collection of unique tags.
class TagPopulation final {
 public:
  TagPopulation() = default;

  /// Takes ownership of `tags`; throws ContractViolation on duplicate IDs.
  explicit TagPopulation(std::vector<Tag> tags);

  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tags_.empty(); }

  [[nodiscard]] const Tag& operator[](std::size_t i) const { return tags_[i]; }

  [[nodiscard]] std::span<const Tag> tags() const noexcept { return tags_; }

  [[nodiscard]] auto begin() const noexcept { return tags_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tags_.end(); }

  /// n tags with uniformly random unique 96-bit IDs.
  [[nodiscard]] static TagPopulation uniform_random(std::size_t n,
                                                    Xoshiro256ss& id_rng);

  /// n tags generated as `shards` independent slices: shard s draws IDs for
  /// indices [s·n/shards, (s+1)·n/shards) from its own stream seeded
  /// derive_seed(seed, s) — pure in (seed, shard), so shards can be
  /// generated concurrently (or on different machines) and concatenated in
  /// shard order to reproduce the exact same population as this serial
  /// call. The million-tag deployment sweeps use this to build their
  /// populations in parallel without threading the draws through one
  /// sequential stream.
  [[nodiscard]] static TagPopulation uniform_random_sharded(std::size_t n,
                                                            std::uint64_t seed,
                                                            std::size_t shards);

  /// Appends shard `shard`'s slice of uniform_random_sharded(n, seed,
  /// shards) to `out`. Thread-safe across distinct `out` vectors — this is
  /// the piece pool workers run.
  static void uniform_random_shard_into(std::vector<Tag>& out, std::size_t n,
                                        std::uint64_t seed, std::size_t shard,
                                        std::size_t shards);

  /// n tags with consecutive IDs starting at `first` (low word increments).
  [[nodiscard]] static TagPopulation sequential(std::size_t n,
                                                std::uint64_t first = 0);

  /// n tags split across `categories` groups; tags in a group share a random
  /// `prefix_bits`-bit ID prefix (category ID), remaining bits random.
  [[nodiscard]] static TagPopulation prefix_clustered(std::size_t n,
                                                      std::size_t categories,
                                                      std::size_t prefix_bits,
                                                      Xoshiro256ss& id_rng);

  /// Returns a copy whose tags carry `bits`-long random sensor payloads.
  [[nodiscard]] TagPopulation with_random_payloads(std::size_t bits,
                                                   Xoshiro256ss& id_rng) const;

 private:
  std::vector<Tag> tags_;
};

}  // namespace rfid::tags
