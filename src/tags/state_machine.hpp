// C1G2 tag inventory state machine.
//
// The EPC C1G2 standard drives every tag through a small state machine
// during inventory: Ready -> (Query, slot counter) -> Arbitrate/Reply ->
// Acknowledged -> back to Ready with the inventoried flag flipped; ReqRN
// moves an acknowledged tag to Open/Secured for access commands; Kill is
// absorbing. The polling protocols in this library compress the
// *addressing* part of that dance; this class models the dance itself so
// the simulator's behaviour can be validated against the standard's legal
// transitions (and so downstream users get a faithful tag model to extend).
#pragma once

#include <cstdint>
#include <string_view>

namespace rfid::tags {

enum class TagState : std::uint8_t {
  kReady,         ///< powered, not participating in a round
  kArbitrate,     ///< in a round, slot counter > 0
  kReply,         ///< slot counter hit 0; backscattering RN16
  kAcknowledged,  ///< ACKed; EPC sent
  kOpen,          ///< access commands possible (ReqRN after Acknowledged)
  kSecured,       ///< access-password verified
  kKilled,        ///< permanently disabled (absorbing)
};

[[nodiscard]] std::string_view to_string(TagState state) noexcept;

/// Session inventoried-flag target (C1G2 A/B symmetry).
enum class SessionFlag : std::uint8_t { kA, kB };

class TagStateMachine final {
 public:
  [[nodiscard]] TagState state() const noexcept { return state_; }
  [[nodiscard]] SessionFlag inventoried() const noexcept { return flag_; }
  [[nodiscard]] std::uint16_t slot_counter() const noexcept { return slot_; }

  /// Number of commands the machine ignored because they were illegal in
  /// the current state — the validation signal the tests assert on.
  [[nodiscard]] std::uint64_t illegal_commands() const noexcept {
    return illegal_;
  }

  // --- Events (reader commands / physical events) ---------------------------
  // Each returns true when the command was legal and acted upon.

  /// Power loss / re-entry to the field: any state except Killed resets to
  /// Ready; the inventoried flag persists (it is NVM-backed in real tags).
  bool power_cycle() noexcept;

  /// Query targeting `target` tags: a tag whose flag matches joins the
  /// round with the given slot count (0 -> Reply, else Arbitrate); a tag
  /// whose flag does not match stays out (legal, no-op "ignored" = true).
  bool on_query(SessionFlag target, std::uint16_t slot) noexcept;

  /// QueryRep: decrement the slot counter; 0 -> Reply.
  bool on_query_rep() noexcept;

  /// ACK of this tag's reply: Reply -> Acknowledged.
  bool on_ack() noexcept;

  /// NAK: any inventoried-round state back to Arbitrate.
  bool on_nak() noexcept;

  /// End of round for an acknowledged tag: flag flips, back to Ready.
  /// (C1G2 folds this into the next Query/QueryRep; modelled explicitly.)
  bool on_inventory_complete() noexcept;

  /// ReqRN: Acknowledged -> Open.
  bool on_req_rn() noexcept;

  /// Correct access password: Open -> Secured.
  bool on_access_granted() noexcept;

  /// Kill (valid password, nonzero kill PW): Open/Secured -> Killed.
  bool on_kill() noexcept;

 private:
  bool illegal() noexcept {
    ++illegal_;
    return false;
  }

  TagState state_ = TagState::kReady;
  SessionFlag flag_ = SessionFlag::kA;
  std::uint16_t slot_ = 0;
  std::uint64_t illegal_ = 0;
};

}  // namespace rfid::tags
