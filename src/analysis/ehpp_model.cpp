#include "analysis/ehpp_model.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/hpp_model.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"

namespace rfid::analysis {

double ehpp_circle_cost(std::size_t n_sub, double l_c,
                        double round_init_bits) {
  RFID_EXPECTS(n_sub >= 1);
  const HppPrediction hpp = hpp_predict(n_sub);
  const double n = static_cast<double>(n_sub);
  return hpp.avg_vector_bits +
         (l_c + round_init_bits * hpp.expected_rounds) / n;
}

double ehpp_subset_lower_bound(double l_c) noexcept { return l_c * kLn2; }

double ehpp_subset_upper_bound(double l_c) noexcept { return kE * l_c * kLn2; }

std::size_t ehpp_optimal_subset_size(double l_c, double round_init_bits) {
  // The cost is unimodal in practice but mildly bumpy where the index length
  // h steps; an exhaustive scan over a generous window around the Theorem-1
  // interval is cheap (hpp_predict is O(log n)).
  const auto hi = static_cast<std::size_t>(
      std::ceil(ehpp_subset_upper_bound(l_c))) * 2 + 64;
  std::size_t best_n = 1;
  double best_cost = ehpp_circle_cost(1, l_c, round_init_bits);
  for (std::size_t n = 2; n <= hi; ++n) {
    const double cost = ehpp_circle_cost(n, l_c, round_init_bits);
    if (cost < best_cost) {
      best_cost = cost;
      best_n = n;
    }
  }
  return best_n;
}

double ehpp_predict_w(std::size_t n, double l_c, double round_init_bits) {
  if (n == 0) return 0.0;
  const std::size_t star = ehpp_optimal_subset_size(l_c, round_init_bits);
  if (n <= star) {
    // Small populations skip the circle machinery entirely (plain HPP).
    const HppPrediction hpp = hpp_predict(n);
    return hpp.avg_vector_bits + round_init_bits * hpp.expected_rounds /
                                     static_cast<double>(n);
  }
  const std::size_t full = n / star;
  const std::size_t rem = n % star;
  double total_bits =
      static_cast<double>(full) * ehpp_circle_cost(star, l_c, round_init_bits) *
      static_cast<double>(star);
  if (rem > 0)
    total_bits += ehpp_circle_cost(rem, l_c, round_init_bits) *
                  static_cast<double>(rem);
  return total_bits / static_cast<double>(n);
}

}  // namespace rfid::analysis
