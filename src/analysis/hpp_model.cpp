#include "analysis/hpp_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace rfid::analysis {

double hpp_singleton_probability(double n, double f) noexcept {
  if (n <= 0.0 || f <= 0.0) return 0.0;
  return (n / f) * std::exp(-(n - 1.0) / f);
}

double hpp_singleton_probability_exact(std::size_t n, double f) noexcept {
  if (n == 0 || f <= 0.0) return 0.0;
  return (static_cast<double>(n) / f) *
         std::pow(1.0 - 1.0 / f, static_cast<double>(n - 1));
}

HppPrediction hpp_predict(std::size_t n) {
  HppPrediction out;
  if (n == 0) return out;
  double remaining = static_cast<double>(n);
  double weighted_bits = 0.0;
  double rounds = 0.0;
  // Real-valued recursion; terminate once less than half a tag remains.
  // Convergence is geometric (each round reads >= 36.8% of survivors), so
  // the loop is short; the cap is a safety net only.
  for (int guard = 0; remaining >= 0.5 && guard < 4096; ++guard) {
    const unsigned h = ceil_log2(
        static_cast<std::uint64_t>(std::ceil(remaining - 1e-9)));
    const double f = static_cast<double>(pow2(h));
    const double read =
        std::min(remaining, remaining * std::exp(-(remaining - 1.0) / f));
    RFID_ENSURES(read > 0.0);
    weighted_bits += static_cast<double>(h) * read;
    remaining -= read;
    rounds += 1.0;
  }
  out.avg_vector_bits = weighted_bits / static_cast<double>(n);
  out.expected_rounds = rounds;
  return out;
}

unsigned hpp_vector_upper_bound(std::size_t n) noexcept {
  return ceil_log2(n);
}

}  // namespace rfid::analysis
