#include "analysis/energy_model.hpp"

namespace rfid::analysis {

EnergyReport estimate_energy(const obs::Metrics& metrics, std::size_t n,
                             const phy::C1G2Timing& timing,
                             const EnergyParams& params) {
  EnergyReport report;
  if (n == 0) return report;

  const double reader_air_us = timing.reader_tx_us(
      metrics.vector_bits + metrics.command_bits +
      metrics.slots_total * timing.query_rep_bits);
  const double tag_air_us =
      timing.tag_tx_us(metrics.tag_bits) / static_cast<double>(n);

  // W * us = uJ; mW * us = nJ.
  report.reader_mj = params.reader_tx_w * reader_air_us * 1e-3;
  report.tag_listen_uj =
      params.tag_listen_mw * 1e-3 * reader_air_us * params.awake_duty;
  report.tag_tx_uj = params.tag_tx_mw * 1e-3 * tag_air_us;
  return report;
}

}  // namespace rfid::analysis
