#include "analysis/degradation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/ehpp_model.hpp"
#include "analysis/hpp_model.hpp"
#include "analysis/tpp_model.hpp"
#include "common/error.hpp"
#include "phy/framing.hpp"

namespace rfid::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Closed-form payload lengths are real-valued; the channel model frames
/// integer bit counts.
std::size_t payload_bits_of(double bits) noexcept {
  return static_cast<std::size_t>(std::max(1LL, std::llround(bits)));
}

/// Expected downlink bits per delivered tag for an HPP execution over n
/// tags: every poll frames one tag's vector independently, so a corrupted
/// frame costs exactly one tag's retransmissions.
double hpp_cost(std::size_t n, const ChannelModel& channel,
                double round_init_bits) {
  const HppPrediction predict = hpp_predict(n);
  const PayloadCost vector =
      framed_payload_cost(channel, payload_bits_of(predict.avg_vector_bits));
  if (vector.p_deliver <= 0.0) return kInf;
  const PayloadCost init =
      framed_payload_cost(channel, payload_bits_of(round_init_bits));
  return vector.expected_bits / vector.p_deliver +
         predict.expected_rounds * init.expected_bits /
             static_cast<double>(n);
}

/// TPP packs several tags' differential segments into one framed chunk
/// (resynced with an absolute h-bit index), so one bad chunk burns — and on
/// exhaustion strands — every tag in it.
double tpp_cost(std::size_t n, const ChannelModel& channel,
                double round_init_bits) {
  const unsigned h = tpp_optimal_index_length(n);
  const double w = tpp_predict_w(n);
  const double chunk_payload =
      static_cast<double>(std::max<unsigned>(channel.segment_payload_bits, h));
  // One resync index, then differential segments fill the rest.
  const double tags_per_chunk =
      1.0 + std::max(0.0, (chunk_payload - static_cast<double>(h))) /
                std::max(1.0, w);
  const PayloadCost chunk =
      framed_payload_cost(channel, payload_bits_of(chunk_payload));
  if (chunk.p_deliver <= 0.0) return kInf;
  const PayloadCost init =
      framed_payload_cost(channel, payload_bits_of(round_init_bits));
  // Round structure mirrors HPP's (same load-factor recursion), so reuse its
  // expected round count for the init amortization.
  const double rounds = hpp_predict(n).expected_rounds;
  return chunk.expected_bits / (tags_per_chunk * chunk.p_deliver) +
         rounds * init.expected_bits / static_cast<double>(n);
}

/// EHPP: subset circles shrink the in-circle index length (cheaper, shorter
/// frames than HPP over n) but prepay a multi-segment circle command whose
/// segments must all survive.
double ehpp_cost(std::size_t n, const ChannelModel& channel,
                 double circle_command_bits, double round_init_bits) {
  const std::size_t n_sub =
      ehpp_optimal_subset_size(circle_command_bits, round_init_bits);
  if (n <= n_sub || n_sub == 0)
    return hpp_cost(n, channel, round_init_bits);
  const double in_circle = hpp_cost(n_sub, channel, round_init_bits);
  const PayloadCost command =
      framed_payload_cost(channel, payload_bits_of(circle_command_bits));
  if (command.p_deliver <= 0.0 || !std::isfinite(in_circle)) return kInf;
  return in_circle + command.expected_bits /
                         (static_cast<double>(n_sub) * command.p_deliver);
}

}  // namespace

std::string_view to_string(PollingTier tier) noexcept {
  switch (tier) {
    case PollingTier::kTpp:
      return "TPP";
    case PollingTier::kEhpp:
      return "EHPP";
    case PollingTier::kHpp:
      return "HPP";
  }
  return "?";
}

FrameOutcome segment_outcome(double ber, std::size_t frame_bits,
                             unsigned max_attempts) noexcept {
  RFID_EXPECTS(max_attempts >= 1);
  if (ber <= 0.0 || frame_bits == 0) return {1.0, 1.0};
  if (ber >= 1.0) return {0.0, static_cast<double>(max_attempts)};
  const double p_clean =
      std::pow(1.0 - ber, static_cast<double>(frame_bits));
  const double q_all =
      std::pow(1.0 - p_clean, static_cast<double>(max_attempts));
  FrameOutcome out;
  out.p_deliver = 1.0 - q_all;
  // E[min(Geometric(p), A)] = (1 - (1-p)^A) / p; -> A as p -> 0.
  out.expected_attempts = p_clean < 1e-12
                              ? static_cast<double>(max_attempts)
                              : out.p_deliver / p_clean;
  return out;
}

PayloadCost framed_payload_cost(const ChannelModel& channel,
                                std::size_t payload_bits) {
  RFID_EXPECTS(channel.segment_payload_bits >= 1);
  PayloadCost cost;
  std::size_t remaining = payload_bits;
  while (remaining > 0) {
    const std::size_t seg =
        std::min<std::size_t>(remaining, channel.segment_payload_bits);
    const std::size_t frame_bits = seg + phy::kSegmentOverheadBits;
    const FrameOutcome outcome =
        segment_outcome(channel.ber, frame_bits, channel.max_attempts);
    cost.expected_bits +=
        outcome.expected_attempts * static_cast<double>(frame_bits);
    cost.p_deliver *= outcome.p_deliver;
    remaining -= seg;
  }
  return cost;
}

double tier_cost_per_tag(PollingTier tier, std::size_t n,
                         const ChannelModel& channel,
                         double circle_command_bits, double round_init_bits) {
  if (n == 0) return 0.0;
  switch (tier) {
    case PollingTier::kTpp:
      return tpp_cost(n, channel, round_init_bits);
    case PollingTier::kEhpp:
      return ehpp_cost(n, channel, circle_command_bits, round_init_bits);
    case PollingTier::kHpp:
      return hpp_cost(n, channel, round_init_bits);
  }
  return kInf;
}

PollingTier select_tier(PollingTier current, std::size_t n,
                        const ChannelModel& channel, double hysteresis) {
  RFID_EXPECTS(hysteresis >= 1.0);
  if (n == 0) return current;
  const double current_cost = tier_cost_per_tag(current, n, channel);
  PollingTier best = current;
  double best_cost = current_cost;
  // Downgrade-only: consider tiers strictly below `current` on the ladder.
  for (auto t = static_cast<std::uint8_t>(current) + 1;
       t < kPollingTierCount; ++t) {
    const auto tier = static_cast<PollingTier>(t);
    const double cost = tier_cost_per_tag(tier, n, channel);
    if (cost < best_cost) {
      best = tier;
      best_cost = cost;
    }
  }
  if (best == current) return current;
  // The winner must clear the hysteresis margin; an unusable current tier
  // (infinite cost) always yields.
  if (!std::isfinite(current_cost)) return best;
  return best_cost * hysteresis < current_cost ? best : current;
}

}  // namespace rfid::analysis
