// Closed-form model of TPP (paper Section IV-D, Eqs. (6)-(16)).
//
// In round i the reader picks the index length h_i so that the load factor
// lambda = n_i / 2^{h_i} falls in [ln2, 2 ln2) (Eq. (14)/(15)), which
// maximizes the singleton-index probability mu = lambda e^{-lambda}
// (Theorem 2 territory). The broadcast cost of the round is bounded by the
// worst-case trie size (Eq. (7)), giving the per-tag bound of Eq. (8) and
// the universal bound w <= 2/(e mu*) ... = 3.44 bits (Eq. (16)).
#pragma once

#include <cstddef>

namespace rfid::analysis {

/// mu(lambda) = lambda e^{-lambda}: probability an index is a singleton when
/// n tags spread over 2^h indices with lambda = n / 2^h (Eq. (12)).
[[nodiscard]] double tpp_mu(double lambda) noexcept;

/// Eq. (15): the integer h with ln2 <= n / 2^h < 2 ln2.
[[nodiscard]] unsigned tpp_optimal_index_length(std::size_t n) noexcept;

/// Eq. (8) with Eq. (11): upper bound on the per-tag broadcast bits of one
/// round with n_i unread tags and the optimal index length.
[[nodiscard]] double tpp_round_w_upper(std::size_t n_i);

/// Eq. (6) evaluated with the per-round bound: session-average vector length
/// for n tags (the quantity plotted in Fig. 9; levels off near 3.38).
[[nodiscard]] double tpp_predict_w(std::size_t n);

/// Eq. (16): the n-independent upper bound ~= 3.44 bits.
[[nodiscard]] double tpp_universal_upper_bound() noexcept;

}  // namespace rfid::analysis
