// Closed-form model of HPP (paper Section III-C, Eqs. (1)-(5)).
//
// In round i with n_i unread tags and index space f_i = 2^{h_i}
// (2^{h_i - 1} < n_i <= 2^{h_i}):
//   p_i   = (n_i / f_i) e^{-(n_i - 1)/f_i}          singleton probability (1)
//   n_si  = f_i p_i = n_i e^{-(n_i - 1)/f_i}        tags polled this round (2)
//   n_{i+1} = n_i - n_si                            survivors             (3)
//   w     = sum_i h_i n_si / n                      average vector length (4)
//   w     <= ceil(log2 n)                           rough upper bound     (5)
#pragma once

#include <cstddef>

namespace rfid::analysis {

/// Eq. (1): probability that an index is picked by exactly one of n tags
/// when each picks uniformly among f indices (Poisson approximation, as the
/// paper uses it).
[[nodiscard]] double hpp_singleton_probability(double n, double f) noexcept;

/// The exact binomial form of Eq. (1): C(n,1) (1/f) (1 - 1/f)^{n-1}. The
/// approximation error against this is what the model tests bound.
[[nodiscard]] double hpp_singleton_probability_exact(std::size_t n,
                                                     double f) noexcept;

/// Prediction of a full HPP execution over n tags.
struct HppPrediction final {
  double avg_vector_bits = 0.0;  ///< Eq. (4)
  double expected_rounds = 0.0;  ///< number of rounds until all tags read
};

/// Evaluates the Eq. (2)-(4) recursion with real-valued tag counts.
[[nodiscard]] HppPrediction hpp_predict(std::size_t n);

/// Eq. (5): the rough upper bound ceil(log2 n) on the average vector length.
[[nodiscard]] unsigned hpp_vector_upper_bound(std::size_t n) noexcept;

}  // namespace rfid::analysis
