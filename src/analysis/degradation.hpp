// Adaptive protocol degradation: TPP -> EHPP -> HPP under corruption.
//
// Under a clean channel the paper's ordering is strict: TPP's differential
// tree (~3.44 bits/tag, Eq. 16) beats EHPP beats HPP. A corrupted downlink
// inverts it. The deciding quantity is the *atomic delivery unit*: a framed
// TPP chunk packs several tags' segments behind one CRC, so one bad frame
// burns (and on budget exhaustion strands) many tags at once, while an HPP
// poll frames a single h-bit index per tag and localizes every failure.
// EHPP sits between: subset circles shrink h, shortening frames and raising
// per-frame delivery probability, but its 128-bit circle command spans
// multiple segments that must *all* survive.
//
// This header prices the three tiers as expected downlink bits per
// *delivered* tag under a given BER and framing geometry, using the
// closed-form protocol models (hpp/ehpp/tpp_model.hpp) for the clean-channel
// payload and a truncated-geometric retransmission model for the channel.
// The session's adaptive policy (sim::Session) calls select_tier() with its
// observed corruption estimate; the math is pure (no RNG, no state), so a
// BER-0 session computes TPP-is-cheapest and never perturbs the run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rfid::analysis {

/// Degradation ladder, best-first. Values are wire-stable: they appear in
/// obs::Event::detail for kDegrade events.
enum class PollingTier : std::uint8_t { kTpp = 0, kEhpp = 1, kHpp = 2 };

inline constexpr std::size_t kPollingTierCount = 3;

[[nodiscard]] std::string_view to_string(PollingTier tier) noexcept;

/// Downlink channel + framing geometry as the policy sees it.
struct ChannelModel final {
  double ber = 0.0;                  ///< estimated per-bit flip probability
  unsigned segment_payload_bits = 32;  ///< framing segment payload size
  unsigned max_attempts = 9;  ///< 1 + max_retransmissions per segment
};

/// Delivery statistics of one framed segment attempt sequence.
struct FrameOutcome final {
  double p_deliver = 1.0;          ///< P(segment survives within budget)
  double expected_attempts = 1.0;  ///< E[attempts], truncated geometric
};

/// Per-segment outcome for a frame of `frame_bits` total on-air bits.
[[nodiscard]] FrameOutcome segment_outcome(double ber, std::size_t frame_bits,
                                           unsigned max_attempts) noexcept;

/// Expected downlink bits to push `payload_bits` through the framed channel
/// (all segments, all attempts), and the probability every segment delivers.
struct PayloadCost final {
  double expected_bits = 0.0;
  double p_deliver = 1.0;
};
[[nodiscard]] PayloadCost framed_payload_cost(const ChannelModel& channel,
                                              std::size_t payload_bits);

/// Expected downlink bits per successfully delivered tag for `tier` over a
/// population of `n` tags. Infinity when the channel cannot deliver at all.
[[nodiscard]] double tier_cost_per_tag(PollingTier tier, std::size_t n,
                                       const ChannelModel& channel,
                                       double circle_command_bits = 128.0,
                                       double round_init_bits = 32.0);

/// The policy: cheapest tier at or below `current` on the ladder
/// (downgrade-only — re-upgrading mid-session would re-pay TPP's stranded
/// rounds), requiring the winner to beat the current tier by `hysteresis`
/// (> 1) so estimate noise cannot oscillate the session.
[[nodiscard]] PollingTier select_tier(PollingTier current, std::size_t n,
                                      const ChannelModel& channel,
                                      double hysteresis = 1.05);

}  // namespace rfid::analysis
