#include "analysis/tpp_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace rfid::analysis {

double tpp_mu(double lambda) noexcept {
  if (lambda <= 0.0) return 0.0;
  return lambda * std::exp(-lambda);
}

unsigned tpp_optimal_index_length(std::size_t n) noexcept {
  if (n <= 1) return 0;
  // Find h with ln2 <= n / 2^h < 2 ln2, i.e. n/(2 ln2) < 2^h <= n/ln2.
  unsigned h = 0;
  double cap = 1.0;
  const double target = static_cast<double>(n) / (2.0 * kLn2);
  while (cap <= target) {
    cap *= 2.0;
    ++h;
  }
  return h;
}

double tpp_round_w_upper(std::size_t n_i) {
  if (n_i == 0) return 0.0;
  if (n_i == 1) return 0.0;  // h = 0: the lone tag is polled with no vector
  const unsigned h = tpp_optimal_index_length(n_i);
  const double f = static_cast<double>(pow2(h));
  const double n = static_cast<double>(n_i);
  // Eq. (11): expected singleton count m_i ~= n e^{-n / 2^h}.
  const double m = n * std::exp(-n / f);
  if (m < 1.0) return static_cast<double>(h);
  // Eq. (8): w+ = (2^{k+1} - 2)/m + (h - k), with 2^k < m <= 2^{k+1}.
  unsigned k = 0;
  while (std::pow(2.0, k + 1) < m) ++k;
  const double bifurcated = (std::pow(2.0, k + 1) - 2.0) / m;
  const double chain = static_cast<double>(h > k ? h - k : 0);
  return bifurcated + chain;
}

double tpp_predict_w(std::size_t n) {
  if (n == 0) return 0.0;
  double remaining = static_cast<double>(n);
  double total_bits = 0.0;
  for (int guard = 0; remaining >= 0.5 && guard < 4096; ++guard) {
    const auto n_i = static_cast<std::size_t>(std::ceil(remaining - 1e-9));
    const unsigned h = tpp_optimal_index_length(n_i);
    const double f = static_cast<double>(pow2(h));
    const double m =
        std::min(remaining, remaining * std::exp(-remaining / f));
    const double w_round = tpp_round_w_upper(n_i);
    if (m <= 0.0) break;
    total_bits += w_round * m;
    remaining -= m;
  }
  return total_bits / static_cast<double>(n);
}

double tpp_universal_upper_bound() noexcept {
  // Eq. (16): at the worst optimal load (lambda = ln2, mu = ln2/2) the
  // round bound becomes (2^{h-1} - 2)/(mu 2^h) + 2 -> 1/(2 mu) + 2.
  const double mu_star = tpp_mu(kLn2);
  return 1.0 / (2.0 * mu_star) + 2.0;
}

}  // namespace rfid::analysis
