#include "analysis/timing_model.hpp"

namespace rfid::analysis {

double projected_time_s(std::size_t n, double w_bits, std::size_t l_bits,
                        const phy::C1G2Timing& timing,
                        bool query_rep_prefix) noexcept {
  const double prefix =
      query_rep_prefix ? static_cast<double>(timing.query_rep_bits) : 0.0;
  const double per_tag_us = timing.reader_us_per_bit * (prefix + w_bits) +
                            timing.t1_us + timing.tag_tx_us(l_bits) +
                            timing.t2_us;
  return static_cast<double>(n) * per_tag_us * 1e-6;
}

double lower_bound_time_s(std::size_t n, std::size_t l_bits,
                          const phy::C1G2Timing& timing) noexcept {
  return timing.lower_bound_us(n, l_bits) * 1e-6;
}

}  // namespace rfid::analysis
