// Analytical model of MIC's layered assignment.
//
// With frame size f = factor * n, layer j of the assignment sees unassigned
// tags (density u_j per remaining slot budget) land Poisson-ly on the still
// unmarked slots; a slot is marked when exactly one lands. Iterating
//   assigned_j = unmarked_j * rho_j * e^{-rho_j},  rho_j = u_j / unmarked_j
// for k layers yields the expected useful-slot fraction; the complement is
// the wasted-slot fraction. For k = 7 and factor 1 the fixed point is
// ~13.9% — exactly the figure MIC's authors report and that the simulation
// reproduces (tests hold model and simulation to each other).
#pragma once

namespace rfid::analysis {

/// Expected fraction of frame slots left unmarked (wasted) after k layers
/// with frame factor `frame_factor` (f = factor * n).
[[nodiscard]] double mic_expected_waste(unsigned num_hashes,
                                        double frame_factor = 1.0) noexcept;

/// Expected fraction of tags resolved per frame (1 - unassigned fraction).
[[nodiscard]] double mic_expected_resolved(unsigned num_hashes,
                                           double frame_factor = 1.0) noexcept;

}  // namespace rfid::analysis
