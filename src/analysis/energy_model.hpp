// Energy accounting (the concern motivating Coded Polling — Qiao et al.,
// "Energy-efficient polling protocols in RFID systems", paper ref [19]).
//
// For battery-assisted tags the dominant drains are (a) listening to reader
// transmissions — every awake tag decodes every reader bit — and (b)
// transmitting replies. The reader itself is mains-powered but its airtime
// is a useful energy proxy too. The model derives all three from a run's
// Metrics:
//   * reader transmit energy  = P_reader * reader airtime
//   * per-tag listen energy   ~= P_listen * (reader airtime) * duty, where
//     duty is the average awake fraction: a tag sleeps after its own poll,
//     so on average it hears about half the session (duty = 0.5 for
//     protocols that put tags to sleep; 1.0 for detection protocols that
//     never do).
//   * per-tag transmit energy = P_tag_tx * (tag bits / n) * bit time.
// The absolute wattages are configurable; the defaults are representative
// of a 4 W ERP reader and a semi-passive tag front end.
#pragma once

#include <cstddef>

#include "obs/metrics.hpp"
#include "phy/c1g2.hpp"

namespace rfid::analysis {

struct EnergyParams final {
  double reader_tx_w = 1.0;      ///< reader RF transmit power
  double tag_listen_mw = 0.1;    ///< tag receive/decode power
  double tag_tx_mw = 0.05;       ///< tag backscatter modulator power
  double awake_duty = 0.5;       ///< average fraction of session a tag hears
};

struct EnergyReport final {
  double reader_mj = 0.0;        ///< total reader transmit energy
  double tag_listen_uj = 0.0;    ///< average per-tag listen energy
  double tag_tx_uj = 0.0;        ///< average per-tag transmit energy

  [[nodiscard]] double tag_total_uj() const noexcept {
    return tag_listen_uj + tag_tx_uj;
  }
};

/// Derives the energy report for a finished run over `n` tags.
[[nodiscard]] EnergyReport estimate_energy(const obs::Metrics& metrics,
                                           std::size_t n,
                                           const phy::C1G2Timing& timing = {},
                                           const EnergyParams& params = {});

}  // namespace rfid::analysis
