// Execution-time projections (paper Section V-A and Fig. 1).
//
// Given an average polling-vector length w, the paper projects total
// inventory time as n * (37.45 (4 + w) + T1 + 25 l + T2) microseconds; the
// conventional baseline drops the 4-bit QueryRep prefix. These helpers make
// the projection reusable by Fig. 1 and by the table cross-checks.
#pragma once

#include <cstddef>

#include "phy/c1g2.hpp"

namespace rfid::analysis {

/// Projected session time in seconds for n tags with average vector length
/// w_bits and l_bits-long replies.
[[nodiscard]] double projected_time_s(std::size_t n, double w_bits,
                                      std::size_t l_bits,
                                      const phy::C1G2Timing& timing = {},
                                      bool query_rep_prefix = true) noexcept;

/// The paper's protocol-independent lower bound in seconds.
[[nodiscard]] double lower_bound_time_s(
    std::size_t n, std::size_t l_bits,
    const phy::C1G2Timing& timing = {}) noexcept;

}  // namespace rfid::analysis
