#include "analysis/mic_model.hpp"

#include <cmath>

namespace rfid::analysis {

namespace {

struct LayeredFixedPoint final {
  double unmarked_fraction;    ///< of the frame
  double unassigned_fraction;  ///< of the tags
};

LayeredFixedPoint iterate(unsigned num_hashes, double frame_factor) {
  if (num_hashes == 0 || frame_factor <= 0.0) return {1.0, 1.0};
  // Normalize to one frame slot: tags per slot = 1 / factor.
  double unassigned = 1.0 / frame_factor;  // tags (in slot units)
  double unmarked = 1.0;                   // slots
  for (unsigned j = 0; j < num_hashes; ++j) {
    if (unmarked <= 0.0 || unassigned <= 0.0) break;
    // Each unassigned tag hashes uniformly over the whole frame; only the
    // fraction landing on unmarked slots can be assigned this layer.
    const double rho = unassigned / 1.0;  // per *frame* slot
    // A given unmarked slot receives Poisson(rho) candidates.
    const double p_single = rho * std::exp(-rho);
    const double assigned = unmarked * p_single;
    unmarked -= assigned;
    unassigned -= assigned;
  }
  return {unmarked, unassigned * frame_factor};
}

}  // namespace

double mic_expected_waste(unsigned num_hashes, double frame_factor) noexcept {
  return iterate(num_hashes, frame_factor).unmarked_fraction;
}

double mic_expected_resolved(unsigned num_hashes,
                             double frame_factor) noexcept {
  return 1.0 - iterate(num_hashes, frame_factor).unassigned_fraction;
}

}  // namespace rfid::analysis
