// Closed-form model of EHPP (paper Section III-D, Theorem 1).
//
// EHPP splits the population into subsets of size n' queried in "circles".
// Each circle pays the circle command (l_c bits) plus an HPP execution over
// n' tags, so the per-tag cost is
//     w(n') = hpp_w(n') + (l_c + init_bits * rounds(n')) / n'
// Theorem 1 shows the optimizing n' lies in [l_c ln2, e l_c ln2] under the
// paper's h(n')/n' = mu log2(n') approximation (mu in [1/e, 1]); we search
// the exact recursion numerically, as the paper's Fig. 4 does.
#pragma once

#include <cstddef>

namespace rfid::analysis {

/// Per-tag polling cost of one circle over a subset of n_sub tags.
/// `round_init_bits` is the per-HPP-round initialization overhead the
/// simulation counts (32 bits in the paper's Section V setting); pass 0 for
/// the pure Theorem-1 cost model.
[[nodiscard]] double ehpp_circle_cost(std::size_t n_sub, double l_c,
                                      double round_init_bits = 0.0);

/// Theorem 1 bounds on the optimal subset size.
[[nodiscard]] double ehpp_subset_lower_bound(double l_c) noexcept;
[[nodiscard]] double ehpp_subset_upper_bound(double l_c) noexcept;

/// Numerically optimal subset size n* for a given circle-command length.
[[nodiscard]] std::size_t ehpp_optimal_subset_size(
    double l_c, double round_init_bits = 0.0);

/// Predicted session-average vector length for n tags: full circles of n*
/// plus one remainder circle (run as plain HPP when the remainder fits).
[[nodiscard]] double ehpp_predict_w(std::size_t n, double l_c,
                                    double round_init_bits = 0.0);

}  // namespace rfid::analysis
