// Multi-hash Information Collection (MIC), Chen et al., INFOCOM 2011 — the
// state-of-the-art ALOHA-family comparator of the paper's Section V-C.
//
// Reconstructed from its published description: per frame the reader
// broadcasts an indicator vector of f slots, each entry ceil(log2(k+1))
// bits. Entry j in [1, k] declares "the tag whose j-th hash lands here and
// that has not replied yet owns this slot"; entry 0 marks the slot wasted.
// The reader builds the vector with a slot-ordered greedy that mirrors the
// tags' decoding rule exactly: a tag replies at the first slot s with
// vector[s] = j and H_j(id) mod f = s. With k = 7 hash functions the wasted
// slot fraction drops to ~13.9% (the figure MIC's authors report), at the
// price of 3 indicator bits per slot and k hash evaluations per tag — the
// dilemma the ICPP paper's related-work section calls out.
//
// SIC (single-hash information collection) is the k = 1 special case.
#pragma once

#include <string>

#include "protocols/protocol.hpp"

namespace rfid::protocols {

class Mic final : public PollingProtocol {
 public:
  struct Config final {
    unsigned num_hashes = 7;             ///< k
    double frame_factor = 1.0;           ///< f = factor * remaining tags
    std::size_t frame_command_bits = 32; ///< per-frame <f, r> command
  };

  Mic();
  explicit Mic(Config config, std::string display_name = "MIC")
      : config_(config), display_name_(std::move(display_name)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return display_name_;
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

  [[nodiscard]] const Config& protocol_config() const noexcept {
    return config_;
  }

 private:
  Config config_;
  std::string display_name_;
};

/// SIC: MIC restricted to a single hash function.
[[nodiscard]] inline Mic make_sic() {
  return Mic(Mic::Config{.num_hashes = 1}, "SIC");
}

inline Mic::Mic() : Mic(Config()) {}

}  // namespace rfid::protocols
