#include "protocols/presence.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/math_util.hpp"

namespace rfid::protocols {

namespace {

struct PresenceDevice final {
  const tags::Tag* tag = nullptr;
  bool present = true;
  std::uint32_t slot = 0;
};

std::vector<PresenceDevice> make_presence_devices(const sim::Session& session) {
  std::vector<PresenceDevice> devices;
  devices.reserve(session.population().size());
  for (const tags::Tag& tag : session.population())
    devices.push_back(PresenceDevice{&tag, session.is_present(tag.id()), 0});
  return devices;
}

std::size_t frame_size(double factor, std::size_t n) {
  return static_cast<std::size_t>(std::max<long long>(
      1, std::llround(factor * static_cast<double>(n))));
}

}  // namespace

std::size_t TrustedReaderDetection::planned_frames() const {
  // One frame exposes a lone missing tag iff no other expected tag shares
  // its slot: p1 ~= e^{-1/factor} for f = factor * n. Geometric repetition
  // reaches the target confidence after ln(1-alpha)/ln(1-p1) frames.
  const double p1 = std::exp(-1.0 / config_.frame_factor);
  const double alpha = std::clamp(config_.confidence, 0.0, 1.0 - 1e-12);
  if (alpha <= 0.0) return 1;
  const double frames = std::ceil(std::log1p(-alpha) / std::log1p(-p1));
  return std::clamp<std::size_t>(static_cast<std::size_t>(frames), 1,
                                 config_.max_frames);
}

TrustedReaderDetection::Report TrustedReaderDetection::detect(
    const tags::TagPopulation& expected,
    const sim::SessionConfig& session_config) const {
  RFID_EXPECTS(config_.frame_factor > 0.0);
  sim::Session session(expected, session_config);
  Report report;
  if (expected.empty()) {
    report.result = session.finish("TRP");
    return report;
  }

  std::vector<PresenceDevice> devices = make_presence_devices(session);
  const std::size_t f = frame_size(config_.frame_factor, devices.size());
  const std::size_t frames = planned_frames();

  std::vector<std::uint32_t> expected_count(f);
  std::vector<std::vector<const tags::Tag*>> responders(f);
  for (std::size_t frame = 0; frame < frames && !report.missing_detected;
       ++frame) {
    session.begin_round();
    const std::uint64_t seed = session.protocol_rng()();
    session.downlink().broadcast_command_bits(config_.frame_command_bits);

    std::fill(expected_count.begin(), expected_count.end(), 0u);
    for (auto& r : responders) r.clear();
    for (PresenceDevice& device : devices) {
      device.slot =
          static_cast<std::uint32_t>(tag_hash(seed, device.tag->id()) % f);
      ++expected_count[device.slot];  // reader's precomputed bitmap
      if (device.present) responders[device.slot].push_back(device.tag);
    }

    for (std::size_t s = 0; s < f; ++s) {
      const bool busy = session.air().presence_slot(responders[s]);
      if (expected_count[s] > 0 && !busy) {
        // Precomputed busy, observed silent: someone is gone.
        report.missing_detected = true;
        break;
      }
      RFID_ENSURES(!(expected_count[s] == 0 && busy));
    }
    ++report.frames_run;
  }
  report.result = session.finish("TRP");
  return report;
}

PollingAssistedIdentification::Report
PollingAssistedIdentification::identify(
    const tags::TagPopulation& expected,
    const sim::SessionConfig& session_config) const {
  RFID_EXPECTS(config_.frame_factor > 0.0);
  sim::Session session(expected, session_config);
  Report report;

  std::vector<PresenceDevice> devices = make_presence_devices(session);
  if (!devices.empty()) {
    // One bitmap frame.
    session.begin_round();
    const std::size_t f = frame_size(config_.frame_factor, devices.size());
    const std::uint64_t seed = session.protocol_rng()();
    session.downlink().broadcast_command_bits(config_.frame_command_bits);

    std::vector<std::uint32_t> counts(f, 0);
    std::vector<std::size_t> occupant(f, 0);
    std::vector<std::vector<const tags::Tag*>> responders(f);
    for (std::size_t i = 0; i < devices.size(); ++i) {
      PresenceDevice& device = devices[i];
      device.slot =
          static_cast<std::uint32_t>(tag_hash(seed, device.tag->id()) % f);
      ++counts[device.slot];
      occupant[device.slot] = i;
      if (device.present) responders[device.slot].push_back(device.tag);
    }

    std::vector<char> resolved(devices.size(), 0);
    for (std::size_t s = 0; s < f; ++s) {
      const bool busy = session.air().presence_slot(responders[s]);
      if (counts[s] != 1) continue;
      const std::size_t i = occupant[s];
      if (!busy) report.missing.push_back(devices[i].tag->id());
      resolved[i] = 1;
    }

    // Polling assist: every tag from an expected-collision slot is polled
    // conventionally (full 96-bit ID — the inefficiency the paper fixes).
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (resolved[i]) continue;
      const tags::Tag* responder = devices[i].tag;
      const bool present = devices[i].present;
      const tags::Tag* read = nullptr;
      do {  // garbled replies are re-polled, absent tags time out once
        read = session.air().poll_bare({&responder, present ? 1u : 0u},
                                 devices[i].tag, kTagIdBits);
      } while (read == nullptr && present);
      if (read == nullptr) report.missing.push_back(devices[i].tag->id());
    }
  }
  std::sort(report.missing.begin(), report.missing.end());
  report.result = session.finish("PollingAssist");
  return report;
}

BitmapMissingIdentification::Report BitmapMissingIdentification::identify(
    const tags::TagPopulation& expected,
    const sim::SessionConfig& session_config) const {
  RFID_EXPECTS(config_.frame_factor > 0.0);
  sim::Session session(expected, session_config);
  Report report;

  std::vector<PresenceDevice> active = make_presence_devices(session);
  std::vector<std::uint32_t> counts;
  std::vector<std::size_t> occupant;
  std::vector<std::vector<const tags::Tag*>> responders;
  while (!active.empty()) {
    session.begin_round();
    session.check_round_budget();

    const std::size_t f = active.size() > 1
                              ? frame_size(config_.frame_factor, active.size())
                              : 1;
    const std::uint64_t seed = session.protocol_rng()();
    session.downlink().broadcast_command_bits(config_.frame_command_bits);

    counts.assign(f, 0);
    occupant.assign(f, 0);
    responders.assign(f, {});
    for (std::size_t i = 0; i < active.size(); ++i) {
      PresenceDevice& device = active[i];
      device.slot =
          static_cast<std::uint32_t>(tag_hash(seed, device.tag->id()) % f);
      ++counts[device.slot];
      occupant[device.slot] = i;
      if (device.present) responders[device.slot].push_back(device.tag);
    }

    std::vector<char> done(active.size(), 0);
    for (std::size_t s = 0; s < f; ++s) {
      const bool busy = session.air().presence_slot(responders[s]);
      if (counts[s] != 1) continue;  // empty or unattributable collision
      // Expected singleton: one presence bit verifies one specific tag.
      const std::size_t i = occupant[s];
      if (busy)
        report.verified.push_back(active[i].tag->id());
      else
        report.missing.push_back(active[i].tag->id());
      done[i] = 1;
    }

    std::size_t write = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (done[i]) continue;
      if (write != i) active[write] = active[i];
      ++write;
    }
    active.resize(write);
  }
  std::sort(report.missing.begin(), report.missing.end());
  report.result = session.finish("BitmapID");
  return report;
}

}  // namespace rfid::protocols
