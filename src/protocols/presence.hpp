// Missing-tag protocols from the paper's application domain.
//
// The paper motivates 1-bit polling with anti-theft monitoring and cites
// two ALOHA-family alternatives it builds on conceptually:
//   * TRP (Tan, Sheng, Li — ICDCS 2008, paper ref [11]): *detect* whether
//     any expected tag is missing with a target confidence, without
//     identifying which. The reader precomputes the expected slot-occupancy
//     bitmap of a frame; present tags backscatter one bit in their slots;
//     an expected-busy slot that stays silent betrays a missing tag.
//   * Bitmap identification (in the spirit of Li, Chen, Ling — MobiHoc
//     2010, paper ref [12]): *identify* every missing tag by iterating
//     frames; a tag whose precomputed slot is an expected singleton is
//     verified by one presence bit — silent means missing, busy means
//     present (and the tag sleeps); tags in expected-collision slots try
//     again next frame.
// Both let the benches compare the paper's polling approach against the
// bitmap approach on the same missing-tag task.
#pragma once

#include <unordered_set>
#include <vector>

#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid::protocols {

/// TRP-style probabilistic missing-tag detection.
class TrustedReaderDetection final {
 public:
  struct Config final {
    double confidence = 0.99;          ///< target detection probability alpha
    double frame_factor = 1.0;         ///< f = factor * n
    std::size_t frame_command_bits = 32;
    std::size_t max_frames = 256;      ///< hard cap (also covers alpha -> 1)
  };

  struct Report final {
    bool missing_detected = false;
    std::size_t frames_run = 0;
    sim::RunResult result;
  };

  TrustedReaderDetection() : TrustedReaderDetection(Config()) {}
  explicit TrustedReaderDetection(Config config) : config_(config) {}

  /// Number of frames needed for the configured confidence (Tan et al.'s
  /// geometric argument: one frame catches a lone missing tag in an
  /// expected-singleton slot with probability ~e^{-1/factor}).
  [[nodiscard]] std::size_t planned_frames() const;

  /// Runs detection. `config.present` in the session decides which expected
  /// tags actually answer. Stops early on first detection.
  [[nodiscard]] Report detect(const tags::TagPopulation& expected,
                              const sim::SessionConfig& session_config) const;

 private:
  Config config_;
};

/// Polling-assisted missing-tag identification — the related-work class
/// the paper contrasts itself with ("by polling a part of tags in
/// collision slots, they can convert the useless collision slots into
/// useful singleton slots ... the polling vector during each polling still
/// adopts tedious tag IDs", Section VI). One bitmap frame verifies the
/// expected-singleton slots with presence bits; the tags stuck in
/// expected-collision slots are then polled conventionally with full 96-bit
/// IDs instead of waiting for later frames.
class PollingAssistedIdentification final {
 public:
  struct Config final {
    double frame_factor = 1.0;
    std::size_t frame_command_bits = 32;
  };

  struct Report final {
    std::vector<TagId> missing;  ///< identified missing tags, sorted
    sim::RunResult result;
  };

  PollingAssistedIdentification()
      : PollingAssistedIdentification(Config()) {}
  explicit PollingAssistedIdentification(Config config) : config_(config) {}

  [[nodiscard]] Report identify(const tags::TagPopulation& expected,
                                const sim::SessionConfig& session_config) const;

 private:
  Config config_;
};

/// Bitmap-based complete missing-tag identification.
class BitmapMissingIdentification final {
 public:
  struct Config final {
    double frame_factor = 1.0;
    std::size_t frame_command_bits = 32;
  };

  struct Report final {
    std::vector<TagId> missing;  ///< identified missing tags, sorted
    std::vector<TagId> verified; ///< tags confirmed present (unsorted)
    sim::RunResult result;
  };

  BitmapMissingIdentification() : BitmapMissingIdentification(Config()) {}
  explicit BitmapMissingIdentification(Config config) : config_(config) {}

  [[nodiscard]] Report identify(const tags::TagPopulation& expected,
                                const sim::SessionConfig& session_config) const;

 private:
  Config config_;
};

}  // namespace rfid::protocols
