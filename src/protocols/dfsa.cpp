#include "protocols/dfsa.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "protocols/hash_polling.hpp"

namespace rfid::protocols {

sim::RunResult Dfsa::run(const tags::TagPopulation& population,
                         const sim::SessionConfig& config) const {
  RFID_EXPECTS(config_.frame_factor > 0.0);
  // DFSA has no per-tag polls, so it cannot detect absent tags; a missing-tag
  // scenario would simply never terminate.
  RFID_EXPECTS(config.present == nullptr);
  sim::Session session(population, config);

  tags::TagSoA active = make_devices(session);

  // Backlog estimate for the unknown-population mode (Schoute: expected
  // 2.39 tags per collision slot at the ALOHA optimum).
  double estimated_backlog = static_cast<double>(config_.initial_frame);

  std::vector<std::vector<const tags::Tag*>> responders;
  while (!active.empty()) {
    session.begin_round();
    session.check_round_budget();

    const double sizing_base =
        config_.known_population ? static_cast<double>(active.size())
                                 : estimated_backlog;
    // Frames below two slots cannot separate colliding tags; floor at two
    // whenever more than one tag remains so small frame factors stay live.
    const long long floor_slots = active.size() > 1 ? 2 : 1;
    const auto f = static_cast<std::size_t>(std::max<long long>(
        floor_slots,
        std::llround(config_.frame_factor * sizing_base)));
    const std::uint64_t seed = session.protocol_rng()();
    session.downlink().broadcast_command_bits(config_.frame_command_bits);

    // Tag side: each unread tag picks its slot from the broadcast seed.
    responders.assign(f, {});
    std::vector<std::vector<std::size_t>> members(f);
    for (std::size_t i = 0; i < active.size(); ++i) {
      const tags::Tag* tag = active.tag(i);
      const auto slot =
          static_cast<std::uint32_t>(tag_hash(seed, tag->id()) % f);
      active.set_slot(i, slot);
      responders[slot].push_back(tag);
      members[slot].push_back(i);
    }

    // Walk the frame; the channel classifies each slot. Only decoded
    // singletons resolve a tag — garbled replies stay for the next frame.
    std::vector<char> done(active.size(), 0);
    std::size_t collision_slots = 0;
    for (std::size_t s = 0; s < f; ++s) {
      const air::SlotResult slot = session.air().frame_slot_aloha(responders[s]);
      collision_slots += slot.outcome == air::SlotOutcome::kCollision;
      if (slot.outcome != air::SlotOutcome::kSingleton || !slot.decoded)
        continue;
      // Identify which member was read: with the capture effect a
      // collision slot can decode as any one of its occupants.
      for (const std::size_t i : members[s]) {
        if (active.tag(i) == slot.responder) {
          done[i] = 1;
          break;
        }
      }
    }

    active.compact(done);

    // Schoute backlog estimate for the next frame; floor keeps progress
    // when a small frame happens to end with zero observed collisions.
    estimated_backlog =
        std::max(2.0, 2.39 * static_cast<double>(collision_slots));
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
