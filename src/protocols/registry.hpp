// Protocol registry: name <-> kind mapping and default-configured factory.
//
// The facade (rfid::core) and the CLI examples use this to instantiate any
// protocol from a string or enum; benches that need custom knobs construct
// the concrete classes directly.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "protocols/protocol.hpp"

namespace rfid::protocols {

enum class ProtocolKind {
  kCpp,
  kPrefixCpp,
  kCodedPolling,
  kHpp,
  kEhpp,
  kTpp,
  kAdaptive,
  kMic,
  kSic,
  kDfsa,
};

/// Display/parse name of a protocol kind ("CPP", "TPP", ...).
[[nodiscard]] std::string_view to_string(ProtocolKind kind) noexcept;

/// Case-insensitive parse of a protocol name.
[[nodiscard]] std::optional<ProtocolKind> parse_protocol(
    std::string_view name) noexcept;

/// All kinds, in the order the paper's tables list them.
[[nodiscard]] std::span<const ProtocolKind> all_protocols() noexcept;

/// Instantiates a protocol with its paper-default configuration.
[[nodiscard]] std::unique_ptr<PollingProtocol> make_protocol(ProtocolKind kind);

}  // namespace rfid::protocols
