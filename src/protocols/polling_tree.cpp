#include "protocols/polling_tree.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace rfid::protocols {

PollingTree::PollingTree(std::span<const std::uint32_t> indices, unsigned h)
    : height_(h) {
  RFID_EXPECTS(h <= 31);
  nodes_.emplace_back();  // virtual root
  for (const std::uint32_t index : indices) {
    RFID_EXPECTS(h == 31 || index < (1u << h));
    std::int32_t current = 0;
    for (unsigned depth = 0; depth < h; ++depth) {
      const unsigned bit = (index >> (h - 1 - depth)) & 1u;
      std::int32_t next = nodes_[static_cast<std::size_t>(current)].child[bit];
      if (next < 0) {
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
        nodes_[static_cast<std::size_t>(current)].child[bit] = next;
        ++node_count_;
        if (depth + 1 == h) ++leaf_count_;
      } else {
        // Revisiting a full-length path means a duplicate index.
        RFID_EXPECTS(depth + 1 < h && "duplicate singleton index");
      }
      current = next;
    }
    if (h == 0) {
      // Degenerate tree: a single remaining tag needs no vector bits; the
      // root itself stands for the empty index.
      leaf_count_ = 1;
    }
  }
}

std::vector<TreeSegment> PollingTree::segments() const {
  std::vector<TreeSegment> out;
  out.reserve(leaf_count_);
  if (height_ == 0) {
    if (leaf_count_ == 1) out.push_back(TreeSegment{0, 0, 0});
    return out;
  }
  // Iterative pre-order; right child pushed first so left is visited first.
  struct Frame final {
    std::int32_t node;
    unsigned depth;
    std::uint32_t prefix;
  };
  std::vector<Frame> stack;
  std::uint32_t pending_bits = 0;  // edge bits accumulated since last leaf
  unsigned pending_len = 0;
  stack.push_back(Frame{0, 0, 0});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.node != 0) {
      // Entering a non-root node contributes its edge bit to the current
      // segment; the edge bit is the lowest bit of the prefix so far.
      pending_bits = (pending_bits << 1) | (frame.prefix & 1u);
      ++pending_len;
    }
    if (frame.depth == height_) {
      out.push_back(TreeSegment{pending_bits, pending_len, frame.prefix});
      pending_bits = 0;
      pending_len = 0;
      continue;
    }
    const Node& node = nodes_[static_cast<std::size_t>(frame.node)];
    for (int bit = 1; bit >= 0; --bit) {
      const std::int32_t child = node.child[bit];
      if (child >= 0) {
        stack.push_back(Frame{child, frame.depth + 1,
                              (frame.prefix << 1) |
                                  static_cast<std::uint32_t>(bit)});
      }
    }
  }
  return out;
}

std::vector<TreeSegment> PollingTree::segments_from_indices(
    std::span<const std::uint32_t> indices, unsigned h) {
  std::vector<std::uint32_t> sorted_scratch;
  std::vector<TreeSegment> out;
  segments_from_indices_into(indices, h, sorted_scratch, out);
  return out;
}

void PollingTree::segments_from_indices_into(
    std::span<const std::uint32_t> indices, unsigned h,
    std::vector<std::uint32_t>& sorted_scratch, std::vector<TreeSegment>& out) {
  std::vector<std::uint32_t>& sorted = sorted_scratch;
  sorted.assign(indices.begin(), indices.end());
  std::sort(sorted.begin(), sorted.end());
  out.clear();
  out.reserve(sorted.size());
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    unsigned k = h;
    if (j > 0) {
      // k = h minus the common-prefix length with the previous index.
      const std::uint32_t diff = sorted[j] ^ sorted[j - 1];
      RFID_EXPECTS(diff != 0 && "duplicate singleton index");
      k = floor_log2(diff) + 1;
    }
    const std::uint32_t mask = (k >= 32) ? ~0u : ((1u << k) - 1u);
    out.push_back(TreeSegment{sorted[j] & mask, k, sorted[j]});
  }
  if (h == 0 && !sorted.empty()) {
    out.clear();
    out.push_back(TreeSegment{0, 0, 0});
  }
}

std::vector<std::uint32_t> PollingTree::decode_segment_stream(
    const BitVec& stream, std::span<const unsigned> lengths, unsigned h) {
  RFID_EXPECTS(h <= 31);
  std::size_t total = 0;
  for (const unsigned k : lengths) {
    RFID_EXPECTS(k <= h);
    total += k;
  }
  RFID_EXPECTS(total == stream.size());

  const std::uint32_t h_mask = (h == 0) ? 0u : ((1u << h) - 1u);
  std::vector<std::uint32_t> out;
  out.reserve(lengths.size());
  std::uint32_t reg = 0;
  BitReader reader(stream);
  for (const unsigned k : lengths) {
    const auto bits = static_cast<std::uint32_t>(reader.read_bits(k));
    const std::uint32_t keep_mask = (k >= 32) ? 0u : (~0u << k);
    reg = (reg & keep_mask & h_mask) | bits;
    out.push_back(reg);
  }
  return out;
}

std::size_t PollingTree::max_node_count(std::size_t m, unsigned h) {
  if (m == 0) return 0;
  if (m == 1) return h;  // a single leaf is one chain of h nodes
  // Eq. (7): the tree bifurcates as early as possible — complete binary tree
  // of k levels (2^{k+1} - 2 nodes) followed by m parallel chains of length
  // h - k, where 2^k < m <= 2^{k+1}.
  unsigned k = 0;
  while ((std::size_t{1} << (k + 1)) < m) ++k;
  const std::size_t full = (std::size_t{2} << k) - 2;
  const std::size_t chains =
      (h > k) ? m * static_cast<std::size_t>(h - k) : 0;
  return full + chains;
}

}  // namespace rfid::protocols
