#include "protocols/tree_polling.hpp"

#include <algorithm>
#include <vector>

#include "analysis/tpp_model.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "fault/recovery.hpp"
#include "common/math_util.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/polling_tree.hpp"

namespace rfid::protocols {

sim::RunResult Tpp::run(const tags::TagPopulation& population,
                        const sim::SessionConfig& config) const {
  sim::Session session(population, config);

  std::vector<HashDevice> active = make_devices(session);
  fault::RecoveryTracker recovery(config.recovery);
  const bool recovering = recovery.active();

  std::vector<std::uint32_t> counts;
  std::vector<std::size_t> occupant;
  std::vector<std::uint32_t> singleton_indices;
  std::vector<std::size_t> pending;

  while (!active.empty()) {
    session.begin_round();
    session.check_round_budget();

    const unsigned base_h = analysis::tpp_optimal_index_length(active.size());
    const int offset_h = static_cast<int>(base_h) + config_.index_length_offset;
    // h = 0 can only resolve a lone tag; with two or more active tags it
    // would never produce a singleton, so the ablation offset is floored.
    const int min_h = active.size() >= 2 ? 1 : 0;
    const unsigned h = static_cast<unsigned>(std::clamp(offset_h, min_h, 30));
    const std::uint64_t seed = session.rng()();
    session.broadcast_command_bits(config_.round_init_bits);

    // Phase 1 — picking index (tag side).
    for (HashDevice& device : active)
      device.index = tag_index_pow2(seed, device.tag->id(), h);

    // Reader precomputation: sift out the singleton indices.
    const std::size_t f = static_cast<std::size_t>(pow2(h));
    counts.assign(f, 0);
    occupant.assign(f, 0);
    for (std::size_t i = 0; i < active.size(); ++i) {
      ++counts[active[i].index];
      occupant[active[i].index] = i;
    }
    singleton_indices.clear();
    for (std::size_t idx = 0; idx < f; ++idx)
      if (counts[idx] == 1)
        singleton_indices.push_back(static_cast<std::uint32_t>(idx));

    if (singleton_indices.empty()) continue;  // rare; retry with a new seed

    // Phase 2 — building the polling tree. The sorted-index differential
    // encoding is the fast path; the explicit trie is the reference.
    std::vector<TreeSegment> segments =
        PollingTree::segments_from_indices(singleton_indices, h);
    if (config_.cross_check_tree) {
      const PollingTree tree(singleton_indices, h);
      const std::vector<TreeSegment> reference = tree.segments();
      RFID_ENSURES(reference.size() == segments.size());
      for (std::size_t j = 0; j < segments.size(); ++j) {
        RFID_ENSURES(reference[j].bits == segments[j].bits);
        RFID_ENSURES(reference[j].length == segments[j].length);
        RFID_ENSURES(reference[j].completed_index ==
                     segments[j].completed_index);
      }
      std::size_t broadcast_bits = 0;
      for (const TreeSegment& s : segments) broadcast_bits += s.length;
      RFID_ENSURES(broadcast_bits == tree.node_count());
    }

    // Phase 3 — tree-based polling. `reg` is the h-bit register A every
    // listening tag maintains; one shared value models all of them because
    // the updates are broadcast.
    std::uint32_t reg = 0;
    std::vector<char> done(active.size(), 0);
    pending.clear();
    for (const TreeSegment& segment : segments) {
      const std::uint32_t keep_mask =
          (segment.length >= 32) ? 0u : (~0u << segment.length);
      reg = (reg & keep_mask & ((f > 1) ? static_cast<std::uint32_t>(f - 1)
                                        : 0u)) |
            segment.bits;
      RFID_ENSURES(reg == segment.completed_index);

      // Tag side: every awake tag compares its index with A. Tags on
      // collision indices can never match (collision indices are not
      // leaves), so the responder set is the singleton occupant.
      const std::size_t i = occupant[reg];
      const HashDevice& device = active[i];
      const bool here = session.is_present(device.tag->id());
      const tags::Tag* responder = device.tag;
      const tags::Tag* read = session.poll(
          {&responder, here ? 1u : 0u}, device.tag, segment.length);
      if (read != nullptr)
        done[i] = 1;
      else if (recovering)
        pending.push_back(i);
      else
        done[i] = here ? 0 : 1;
    }
    // Mop-up re-polls carry the full h-bit index: the differential segment
    // encoding only addresses tags in sorted-index order, which a retry
    // breaks, so the reader falls back to absolute addressing.
    if (recovering)
      run_recovery_mop_up(session, active, done, pending, recovery, h);

    std::size_t write = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (done[i]) continue;
      if (write != i) active[write] = active[i];
      ++write;
    }
    active.resize(write);
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
