#include "protocols/tree_polling.hpp"

#include <algorithm>
#include <vector>

#include "analysis/tpp_model.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "fault/recovery.hpp"
#include "protocols/polling_tree.hpp"

namespace rfid::protocols {

RoundInit TppRoundPolicy::begin_round(sim::Session& session,
                                      std::size_t active_count) {
  const unsigned base_h = analysis::tpp_optimal_index_length(active_count);
  const int offset_h = static_cast<int>(base_h) + config_.index_length_offset;
  // h = 0 can only resolve a lone tag; with two or more active tags it
  // would never produce a singleton, so the ablation offset is floored.
  const int min_h = active_count >= 2 ? 1 : 0;
  const unsigned h = static_cast<unsigned>(std::clamp(offset_h, min_h, 30));
  const std::uint64_t seed = session.protocol_rng()();
  if (session.framing_enabled()) {
    if (!session.downlink().broadcast_framed(config_.round_init_bits,
                                             /*count_in_w=*/false))
      return RoundInit{false, h, seed};
  } else {
    session.downlink().broadcast_command_bits(config_.round_init_bits);
  }
  return RoundInit{true, h, seed};
}

void TppRoundPolicy::dispatch(RoundEngine& engine, tags::TagSoA& active) {
  sim::Session& session = engine.session();
  const bool recovering = engine.recovering();
  const unsigned h = engine.index_length();
  const std::size_t f = engine.counts().size();
  const std::vector<std::size_t>& occupant = engine.occupant();
  std::vector<char>& done = engine.done();
  std::vector<std::size_t>& pending = engine.pending();

  std::vector<std::uint32_t>& singleton_indices = engine.singleton_scratch();
  for (std::size_t idx = 0; idx < f; ++idx)
    if (engine.counts()[idx] == 1)
      singleton_indices.push_back(static_cast<std::uint32_t>(idx));

  if (singleton_indices.empty()) return;  // rare; retry with a new seed

  // Phase 2 — building the polling tree. The sorted-index differential
  // encoding is the fast path; the explicit trie is the reference.
  PollingTree::segments_from_indices_into(singleton_indices, h, sort_scratch_,
                                          segments_);
  const std::vector<TreeSegment>& segments = segments_;
  if (config_.cross_check_tree) {
    const PollingTree tree(singleton_indices, h);
    const std::vector<TreeSegment> reference = tree.segments();
    RFID_ENSURES(reference.size() == segments.size());
    for (std::size_t j = 0; j < segments.size(); ++j) {
      RFID_ENSURES(reference[j].bits == segments[j].bits);
      RFID_ENSURES(reference[j].length == segments[j].length);
      RFID_ENSURES(reference[j].completed_index ==
                   segments[j].completed_index);
    }
    std::size_t broadcast_bits = 0;
    for (const TreeSegment& s : segments) broadcast_bits += s.length;
    RFID_ENSURES(broadcast_bits == tree.node_count());
  }

  if (session.framing_enabled()) {
    // Phase 3, framed — chunked tree broadcast. Each chunk restarts from
    // the absolute h-bit index of its first leaf: a resync point, so a
    // chunk that exhausts its retransmission budget strands only its own
    // tags instead of desynchronizing the rest of the round. The resync
    // bits replace that leaf's differential segment and are counted into w
    // like it would have been — honest overhead against the Eq. 16 bound.
    const std::size_t cap = std::max<std::size_t>(
        session.config().framing.segment_payload_bits, h);
    std::vector<std::size_t>& chunk = engine.chunk_scratch();
    std::size_t j = 0;
    while (j < segments.size()) {
      chunk.clear();
      chunk.push_back(occupant[segments[j].completed_index]);
      std::size_t chunk_bits = h;
      std::size_t k = j + 1;
      while (k < segments.size() &&
             chunk_bits + segments[k].length <= cap) {
        chunk_bits += segments[k].length;
        chunk.push_back(occupant[segments[k].completed_index]);
        ++k;
      }
      const bool delivered =
          session.downlink().broadcast_framed(chunk_bits, /*count_in_w=*/true);
      for (const std::size_t i : chunk) {
        const tags::Tag* tag = active.tag(i);
        if (!delivered) {
          // The whole chunk stayed corrupt through its budget: its tags
          // never saw their indices. Recovery re-polls them with absolute
          // addressing; without recovery the reader gives up loudly.
          if (recovering)
            pending.push_back(i);
          else {
            session.mark_undelivered(tag->id());
            done[i] = 1;
          }
          continue;
        }
        const bool here = session.is_present(tag->id());
        const tags::Tag* responder = tag;
        const tags::Tag* read =
            session.air().poll_slot({&responder, here ? 1u : 0u}, tag);
        if (read != nullptr)
          done[i] = 1;
        else if (recovering)
          pending.push_back(i);
        else
          done[i] = here ? 0 : 1;
      }
      j = k;
    }
  } else {
    // Phase 3, unframed — tree-based polling. `reg` is the h-bit register A
    // every listening tag maintains; one shared value models all of them
    // because the updates are broadcast. That sharing is exactly why a
    // single BER flip is catastrophic here: once a segment is corrupted the
    // common register diverges from the reader's bookkeeping and every
    // later segment of the round polls an index nobody holds.
    std::uint32_t reg = 0;
    bool desynced = false;
    for (const TreeSegment& segment : segments) {
      const std::uint32_t keep_mask =
          (segment.length >= 32) ? 0u : (~0u << segment.length);
      reg = (reg & keep_mask & ((f > 1) ? static_cast<std::uint32_t>(f - 1)
                                        : 0u)) |
            segment.bits;
      RFID_ENSURES(reg == segment.completed_index);

      const std::size_t i = occupant[reg];
      const tags::Tag* tag = active.tag(i);
      if (desynced) {
        // Stranded: the reader transmits the segment and waits out the
        // silence; the tag (whose register is garbage) stays awake for the
        // next round or the mop-up.
        session.air().poll_unanswered(segment.length);
        if (recovering) pending.push_back(i);
        continue;
      }
      // Tag side: every awake tag compares its index with A. Tags on
      // collision indices can never match (collision indices are not
      // leaves), so the responder set is the singleton occupant.
      const bool here = session.is_present(tag->id());
      const tags::Tag* responder = tag;
      const tags::Tag* read = session.air().poll(
          {&responder, here ? 1u : 0u}, tag, segment.length);
      if (read != nullptr) {
        done[i] = 1;
      } else {
        if (session.air().last_poll_failure() ==
            sim::PollFailure::kDownlinkCorrupted)
          desynced = true;
        if (recovering)
          pending.push_back(i);
        else
          done[i] = here ? 0 : 1;
      }
    }
  }
}

sim::RunResult Tpp::run(const tags::TagPopulation& population,
                        const sim::SessionConfig& config) const {
  sim::Session session(population, config);
  tags::TagSoA active = make_devices(session);
  fault::RecoveryCoordinator recovery(config.recovery);
  RoundEngine engine(session, recovery);
  TppRoundPolicy policy(config_);
  engine.run_rounds(active, policy);
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
