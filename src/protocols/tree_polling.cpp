#include "protocols/tree_polling.hpp"

#include <algorithm>
#include <vector>

#include "analysis/tpp_model.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/math_util.hpp"
#include "fault/recovery.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/polling_tree.hpp"

namespace rfid::protocols {

bool run_tpp_round(sim::Session& session, std::vector<HashDevice>& active,
                   const Tpp::Config& config,
                   fault::RecoveryTracker* recovery) {
  if (active.empty()) return true;
  const bool recovering = recovery != nullptr && recovery->active();
  session.begin_round();
  session.check_round_budget();

  const unsigned base_h = analysis::tpp_optimal_index_length(active.size());
  const int offset_h = static_cast<int>(base_h) + config.index_length_offset;
  // h = 0 can only resolve a lone tag; with two or more active tags it
  // would never produce a singleton, so the ablation offset is floored.
  const int min_h = active.size() >= 2 ? 1 : 0;
  const unsigned h = static_cast<unsigned>(std::clamp(offset_h, min_h, 30));
  const std::uint64_t seed = session.rng()();
  if (session.framing_enabled()) {
    if (!session.broadcast_framed(config.round_init_bits,
                                  /*count_in_w=*/false))
      return false;
  } else {
    session.broadcast_command_bits(config.round_init_bits);
  }

  // Phase 1 — picking index (tag side).
  for (HashDevice& device : active)
    device.index = tag_index_pow2(seed, device.tag->id(), h);

  // Reader precomputation: sift out the singleton indices.
  const std::size_t f = static_cast<std::size_t>(pow2(h));
  std::vector<std::uint32_t> counts(f, 0);
  std::vector<std::size_t> occupant(f, 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    ++counts[active[i].index];
    occupant[active[i].index] = i;
  }
  std::vector<std::uint32_t> singleton_indices;
  for (std::size_t idx = 0; idx < f; ++idx)
    if (counts[idx] == 1)
      singleton_indices.push_back(static_cast<std::uint32_t>(idx));

  if (singleton_indices.empty()) return true;  // rare; retry with a new seed

  // Phase 2 — building the polling tree. The sorted-index differential
  // encoding is the fast path; the explicit trie is the reference.
  std::vector<TreeSegment> segments =
      PollingTree::segments_from_indices(singleton_indices, h);
  if (config.cross_check_tree) {
    const PollingTree tree(singleton_indices, h);
    const std::vector<TreeSegment> reference = tree.segments();
    RFID_ENSURES(reference.size() == segments.size());
    for (std::size_t j = 0; j < segments.size(); ++j) {
      RFID_ENSURES(reference[j].bits == segments[j].bits);
      RFID_ENSURES(reference[j].length == segments[j].length);
      RFID_ENSURES(reference[j].completed_index ==
                   segments[j].completed_index);
    }
    std::size_t broadcast_bits = 0;
    for (const TreeSegment& s : segments) broadcast_bits += s.length;
    RFID_ENSURES(broadcast_bits == tree.node_count());
  }

  std::vector<char> done(active.size(), 0);
  std::vector<std::size_t> pending;
  if (session.framing_enabled()) {
    // Phase 3, framed — chunked tree broadcast. Each chunk restarts from
    // the absolute h-bit index of its first leaf: a resync point, so a
    // chunk that exhausts its retransmission budget strands only its own
    // tags instead of desynchronizing the rest of the round. The resync
    // bits replace that leaf's differential segment and are counted into w
    // like it would have been — honest overhead against the Eq. 16 bound.
    const std::size_t cap = std::max<std::size_t>(
        session.config().framing.segment_payload_bits, h);
    std::vector<std::size_t> chunk;
    std::size_t j = 0;
    while (j < segments.size()) {
      chunk.clear();
      chunk.push_back(occupant[segments[j].completed_index]);
      std::size_t chunk_bits = h;
      std::size_t k = j + 1;
      while (k < segments.size() &&
             chunk_bits + segments[k].length <= cap) {
        chunk_bits += segments[k].length;
        chunk.push_back(occupant[segments[k].completed_index]);
        ++k;
      }
      const bool delivered =
          session.broadcast_framed(chunk_bits, /*count_in_w=*/true);
      for (const std::size_t i : chunk) {
        const HashDevice& device = active[i];
        if (!delivered) {
          // The whole chunk stayed corrupt through its budget: its tags
          // never saw their indices. Recovery re-polls them with absolute
          // addressing; without recovery the reader gives up loudly.
          if (recovering)
            pending.push_back(i);
          else {
            session.mark_undelivered(device.tag->id());
            done[i] = 1;
          }
          continue;
        }
        const bool here = session.is_present(device.tag->id());
        const tags::Tag* responder = device.tag;
        const tags::Tag* read =
            session.poll_slot({&responder, here ? 1u : 0u}, device.tag);
        if (read != nullptr)
          done[i] = 1;
        else if (recovering)
          pending.push_back(i);
        else
          done[i] = here ? 0 : 1;
      }
      j = k;
    }
  } else {
    // Phase 3, unframed — tree-based polling. `reg` is the h-bit register A
    // every listening tag maintains; one shared value models all of them
    // because the updates are broadcast. That sharing is exactly why a
    // single BER flip is catastrophic here: once a segment is corrupted the
    // common register diverges from the reader's bookkeeping and every
    // later segment of the round polls an index nobody holds.
    std::uint32_t reg = 0;
    bool desynced = false;
    for (const TreeSegment& segment : segments) {
      const std::uint32_t keep_mask =
          (segment.length >= 32) ? 0u : (~0u << segment.length);
      reg = (reg & keep_mask & ((f > 1) ? static_cast<std::uint32_t>(f - 1)
                                        : 0u)) |
            segment.bits;
      RFID_ENSURES(reg == segment.completed_index);

      const std::size_t i = occupant[reg];
      const HashDevice& device = active[i];
      if (desynced) {
        // Stranded: the reader transmits the segment and waits out the
        // silence; the tag (whose register is garbage) stays awake for the
        // next round or the mop-up.
        session.poll_unanswered(segment.length);
        if (recovering) pending.push_back(i);
        continue;
      }
      // Tag side: every awake tag compares its index with A. Tags on
      // collision indices can never match (collision indices are not
      // leaves), so the responder set is the singleton occupant.
      const bool here = session.is_present(device.tag->id());
      const tags::Tag* responder = device.tag;
      const tags::Tag* read = session.poll(
          {&responder, here ? 1u : 0u}, device.tag, segment.length);
      if (read != nullptr) {
        done[i] = 1;
      } else {
        if (session.last_poll_failure() ==
            sim::PollFailure::kDownlinkCorrupted)
          desynced = true;
        if (recovering)
          pending.push_back(i);
        else
          done[i] = here ? 0 : 1;
      }
    }
  }
  // Mop-up re-polls carry the full h-bit index: the differential segment
  // encoding only addresses tags in sorted-index order, which a retry
  // breaks, so the reader falls back to absolute addressing.
  if (recovering)
    run_recovery_mop_up(session, active, done, pending, *recovery, h);

  std::size_t write = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (done[i]) continue;
    if (write != i) active[write] = active[i];
    ++write;
  }
  active.resize(write);
  return true;
}

sim::RunResult Tpp::run(const tags::TagPopulation& population,
                        const sim::SessionConfig& config) const {
  sim::Session session(population, config);
  std::vector<HashDevice> active = make_devices(session);
  fault::RecoveryTracker recovery(config.recovery);

  std::uint32_t init_failures = 0;
  while (!active.empty()) {
    if (run_tpp_round(session, active, config_, &recovery)) {
      init_failures = 0;
      continue;
    }
    if (++init_failures > config.recovery.retry_budget)
      abandon_active(session, active);
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
