#include "protocols/hash_polling.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/math_util.hpp"

namespace rfid::protocols {

std::vector<HashDevice> make_devices(const sim::Session& session) {
  std::vector<HashDevice> devices;
  devices.reserve(session.population().size());
  for (const tags::Tag& tag : session.population())
    devices.push_back(HashDevice{&tag, 0, session.is_present(tag.id())});
  return devices;
}

void run_recovery_mop_up(sim::Session& session,
                         const std::vector<HashDevice>& active,
                         std::vector<char>& done,
                         std::vector<std::size_t>& pending,
                         fault::RecoveryTracker& recovery,
                         std::size_t vector_bits) {
  if (pending.empty()) return;
  const fault::RecoveryConfig& policy = session.config().recovery;
  sim::Session::RecoveryScope scope(session);
  std::vector<std::size_t> still;
  for (std::uint32_t pass = 0;
       pass < policy.mop_up_passes && !pending.empty(); ++pass) {
    still.clear();
    for (const std::size_t i : pending) {
      const HashDevice& device = active[i];
      if (!recovery.take_attempt(device.tag->id())) {
        session.mark_undelivered(device.tag->id());
        done[i] = 1;
        continue;
      }
      const bool here = session.is_present(device.tag->id());
      const tags::Tag* responder = device.tag;
      const tags::Tag* read =
          session.poll({&responder, here ? 1u : 0u}, device.tag, vector_bits);
      if (read != nullptr)
        done[i] = 1;
      else
        still.push_back(i);
    }
    pending.swap(still);
  }
  // A tag that burned its last attempt on the final pass has no budget left
  // for future rounds: give up now rather than keep scheduling it.
  for (const std::size_t i : pending) {
    if (!recovery.exhausted(active[i].tag->id())) continue;
    session.mark_undelivered(active[i].tag->id());
    done[i] = 1;
  }
}

void abandon_active(sim::Session& session, std::vector<HashDevice>& active) {
  for (const HashDevice& device : active)
    session.mark_undelivered(device.tag->id());
  active.clear();
}

bool run_hpp_single_round(sim::Session& session,
                          std::vector<HashDevice>& active,
                          const HppRoundConfig& config,
                          fault::RecoveryTracker* recovery) {
  if (active.empty()) return true;
  const bool recovering = recovery != nullptr && recovery->active();
  session.begin_round();
  session.check_round_budget();

  const unsigned h = ceil_log2(active.size());
  // The round command travels as a concrete 32-bit QueryRound frame; tags
  // act on the *decoded* parameters, so reader and tags can only agree
  // through the air interface.
  const phy::QueryRoundCommand init{
      h, static_cast<std::uint32_t>(session.rng()() & 0x3FFFFu)};
  const auto decoded = phy::QueryRoundCommand::decode(init.encode());
  RFID_ENSURES(decoded && decoded->index_length == h &&
               decoded->seed == init.seed);
  if (session.framing_enabled()) {
    // The round command rides the framed downlink; if it cannot be
    // delivered within the retransmission budget no tag knows <h, r> and
    // the round never runs.
    if (!session.broadcast_framed(config.round_init_bits,
                                  config.count_init_in_w))
      return false;
  } else if (config.count_init_in_w) {
    session.broadcast_vector_bits(config.round_init_bits);
  } else {
    session.broadcast_command_bits(config.round_init_bits);
  }

  // Tag side: every awake tag picks its index from the decoded seed.
  const std::uint64_t seed = decoded->seed;
  for (HashDevice& device : active)
    device.index = tag_index_pow2(seed, device.tag->id(), h);

  // Reader side: bucket the picked indices to find singletons.
  const std::size_t f = static_cast<std::size_t>(pow2(h));
  std::vector<std::uint32_t> counts(f, 0);
  std::vector<std::size_t> occupant(f, 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    ++counts[active[i].index];
    occupant[active[i].index] = i;
  }

  // Broadcast singleton indices in ascending order; each poll must elicit
  // exactly one reply (the channel enforces it). A device is done when it
  // was read or detected missing; a noise-garbled reply leaves it awake.
  // Under a recovery policy failed polls are parked for the mop-up
  // instead — including timeouts, since a churned-out tag may return. A
  // framed vector that exhausts its retransmission budget abandons the tag
  // loudly when no recovery policy is there to keep retrying.
  std::vector<char> done(active.size(), 0);
  std::vector<std::size_t> pending;
  for (std::size_t idx = 0; idx < f; ++idx) {
    if (counts[idx] != 1) continue;
    const std::size_t i = occupant[idx];
    const HashDevice& device = active[i];
    const bool here = session.is_present(device.tag->id());
    const tags::Tag* responder = device.tag;
    const tags::Tag* read =
        session.poll({&responder, here ? 1u : 0u}, device.tag, h);
    if (read != nullptr)
      done[i] = 1;
    else if (recovering)
      pending.push_back(i);
    else if (session.last_poll_failure() ==
             sim::PollFailure::kDownlinkExhausted) {
      session.mark_undelivered(device.tag->id());
      done[i] = 1;
    } else
      done[i] = here ? 0 : 1;
  }
  if (recovering)
    run_recovery_mop_up(session, active, done, pending, *recovery, h);

  // Finished tags sleep; collision-index and garbled tags stay active.
  std::size_t write = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (done[i]) continue;
    if (write != i) active[write] = active[i];
    ++write;
  }
  active.resize(write);
  return true;
}

void run_hpp_rounds(sim::Session& session, std::vector<HashDevice>& active,
                    const HppRoundConfig& config,
                    fault::RecoveryTracker* recovery) {
  std::uint32_t init_failures = 0;
  while (!active.empty()) {
    if (run_hpp_single_round(session, active, config, recovery)) {
      init_failures = 0;
      continue;
    }
    // Framed round-init exhausted its budget. Retry a bounded number of
    // rounds (each already paid the full retransmission ladder), then give
    // up on everything still unread — loudly, never silently.
    if (++init_failures > session.config().recovery.retry_budget)
      abandon_active(session, active);
  }
}

sim::RunResult Hpp::run(const tags::TagPopulation& population,
                        const sim::SessionConfig& config) const {
  sim::Session session(population, config);
  std::vector<HashDevice> active = make_devices(session);
  fault::RecoveryTracker recovery(config.recovery);
  run_hpp_rounds(session, active, config_, &recovery);
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
