#include "protocols/hash_polling.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace rfid::protocols {

RoundInit HppRoundPolicy::begin_round(sim::Session& session,
                                      std::size_t active_count) {
  const unsigned h = ceil_log2(active_count);
  // The round command travels as a concrete 32-bit QueryRound frame; tags
  // act on the *decoded* parameters, so reader and tags can only agree
  // through the air interface.
  const phy::QueryRoundCommand init{
      h, static_cast<std::uint32_t>(session.protocol_rng()() & 0x3FFFFu)};
  init.encode_into(frame_);
  const auto decoded = phy::QueryRoundCommand::decode(frame_);
  RFID_ENSURES(decoded && decoded->index_length == h &&
               decoded->seed == init.seed);
  if (session.framing_enabled()) {
    // The round command rides the framed downlink; if it cannot be
    // delivered within the retransmission budget no tag knows <h, r> and
    // the round never runs.
    if (!session.downlink().broadcast_framed(config_.round_init_bits,
                                             config_.count_init_in_w))
      return RoundInit{false, h, decoded->seed};
  } else if (config_.count_init_in_w) {
    session.downlink().broadcast_vector_bits(config_.round_init_bits);
  } else {
    session.downlink().broadcast_command_bits(config_.round_init_bits);
  }
  return RoundInit{true, h, decoded->seed};
}

sim::RunResult Hpp::run(const tags::TagPopulation& population,
                        const sim::SessionConfig& config) const {
  sim::Session session(population, config);
  tags::TagSoA active = make_devices(session);
  fault::RecoveryCoordinator recovery(config.recovery);
  RoundEngine engine(session, recovery);
  HppRoundPolicy policy(config_);
  engine.run_rounds(active, policy);
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
