#include "protocols/coded_polling.hpp"

#include <unordered_map>
#include <vector>

#include "common/hash.hpp"

namespace rfid::protocols {

namespace {

/// The 16-bit nonlinear role validator V (see the header for why a linear
/// CRC cannot serve here).
std::uint16_t validator16(const TagId& id) noexcept {
  return static_cast<std::uint16_t>(tag_hash(0xc0ded0011ULL, id));
}

/// All tags whose tag-side check makes them claim a role: their own
/// validator equals `own_v` and their recovered partner's equals
/// `partner_v`. The index narrows the scan to tags sharing the own-V bucket.
std::vector<const tags::Tag*> claimants(
    const std::unordered_multimap<std::uint16_t, const tags::Tag*>& v_index,
    const TagId& coded, std::uint16_t own_v, std::uint16_t partner_v) {
  std::vector<const tags::Tag*> out;
  auto [begin, end] = v_index.equal_range(own_v);
  for (auto it = begin; it != end; ++it) {
    const TagId partner = coded ^ it->second->id();
    if (validator16(partner) == partner_v) out.push_back(it->second);
  }
  return out;
}

}  // namespace

sim::RunResult CodedPolling::run(const tags::TagPopulation& population,
                                 const sim::SessionConfig& config) const {
  sim::Session session(population, config);
  const std::size_t n = population.size();

  // Index over the full expected population: the reader screens coded
  // frames against every ID it knows, whether or not the tag turns out to
  // be present. Actual responders are filtered by presence afterwards.
  std::unordered_multimap<std::uint16_t, const tags::Tag*> v_index;
  v_index.reserve(n);
  for (const tags::Tag& tag : population)
    v_index.emplace(validator16(tag.id()), &tag);

  const auto present_only = [&session](std::vector<const tags::Tag*> list) {
    std::erase_if(list, [&session](const tags::Tag* t) {
      return !session.is_present(t->id());
    });
    return list;
  };

  // Conventional poll with retry until read or detected missing; also the
  // recovery path for a coded reply garbled by channel noise.
  const auto poll_conventionally = [&session](const tags::Tag& t) {
    const tags::Tag* responder = &t;
    const bool present = session.is_present(t.id());
    while (session.air().poll_bare({&responder, present ? 1u : 0u}, &t,
                             kTagIdBits) == nullptr &&
           present) {
    }
  };

  // Pair consecutive tags; an odd population leaves one conventional poll.
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) {
    const tags::Tag& a = population[i];
    const tags::Tag& b = population[i + 1];
    const TagId coded = a.id() ^ b.id();
    const std::uint16_t v_a = validator16(a.id());
    const std::uint16_t v_b = validator16(b.id());

    // Tag-side role resolution, computed for the whole population through
    // the CRC bucket index.
    const auto role_a = claimants(v_index, coded, v_a, v_b);
    const auto role_b = claimants(v_index, coded, v_b, v_a);

    const bool unambiguous = role_a.size() == 1 && role_b.size() == 1 &&
                             role_a.front() == &a && role_b.front() == &b;
    if (!unambiguous) {
      // A validator double-collision with a third tag would garble the coded
      // frame (and an absent pair member leaves its role unclaimed); the
      // reader detects either ahead of time and polls both conventionally.
      poll_conventionally(a);
      poll_conventionally(b);
      continue;
    }

    // Coded frame: 96 XOR bits are the polling payload (48 per tag); the
    // two validator fields are framing overhead outside the w accounting.
    session.downlink().broadcast_command_bits(2 * 16);
    const tags::Tag* read_a =
        session.air().poll_bare(present_only(role_a), &a, kTagIdBits);
    const tags::Tag* read_b =
        session.air().await_extra_reply(present_only(role_b), &b);
    if (read_a == nullptr && session.is_present(a.id()))
      poll_conventionally(a);
    if (read_b == nullptr && session.is_present(b.id()))
      poll_conventionally(b);
  }
  if (i < n) poll_conventionally(population[i]);
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
