// The protocol interface.
//
// A polling protocol is a stateless algorithm: given a tag population and a
// session configuration it drives reader broadcasts and tag replies through
// a sim::Session and returns the accounted result. All mutable state lives
// in the Session and in per-run device structs, so one protocol object can
// safely serve concurrent trials (the parallel runner relies on this).
#pragma once

#include <string_view>

#include "sim/session.hpp"

namespace rfid::protocols {

class PollingProtocol {
 public:
  virtual ~PollingProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Runs one complete session: every tag in `population` is interrogated
  /// exactly once and its info_bits-long payload collected.
  [[nodiscard]] virtual sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const = 0;
};

}  // namespace rfid::protocols
