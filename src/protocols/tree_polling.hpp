// Tree-based Polling Protocol (TPP), paper Section IV.
//
// TPP removes the redundancy HPP leaves on the air: consecutive singleton
// indices share prefixes that HPP broadcasts repeatedly. Each round the
// reader (1) has tags pick h-bit indices with h chosen so the load factor
// n_i / 2^h lies in [ln2, 2 ln2) — the singleton-maximizing setting of
// Eq. (15); (2) builds the binary polling tree over the singleton indices;
// (3) broadcasts the tree's pre-order segments. Every tag maintains an h-bit
// register A and overwrites its last k bits with each received k-bit
// segment; a tag replies when A equals its own index. Since all tags apply
// identical updates, A is common knowledge — the simulator models it as one
// shared register plus a per-tag comparison, which is exactly the physical
// behaviour.
//
// Only singleton indices ever appear as completed register values (collision
// indices are not leaves of the tree), so every segment elicits exactly one
// reply — the channel enforces this each poll.
#pragma once

#include "fault/recovery.hpp"
#include "phy/commands.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/polling_tree.hpp"
#include "protocols/protocol.hpp"
#include "protocols/round_engine.hpp"

namespace rfid::protocols {

class Tpp final : public PollingProtocol {
 public:
  struct Config final {
    /// Cost of the <h, r> round command (32-bit QueryRound frame).
    std::size_t round_init_bits = phy::QueryRoundCommand::kBits;
    /// Build an explicit trie each round and cross-check it against the
    /// sorted-index fast path (costs time; enabled in tests).
    bool cross_check_tree = false;
    /// Optional index-length offset from the Eq. (15) optimum; non-zero
    /// values are used by the ablation bench to show the optimum is real.
    int index_length_offset = 0;
  };

  Tpp();
  explicit Tpp(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "TPP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

 private:
  Config config_;
};

inline Tpp::Tpp() : config_(Config()) {}

/// The TPP round policy: Eq. (15)-optimal index length, raw 64-bit seed,
/// and the differential polling-tree dispatch (run as one RoundEngine round
/// by Tpp::run and by ADAPT's fastest tier).
///
/// With the session's framing layer on, the pre-order tree is packed into
/// CRC-framed chunks of at most segment_payload_bits; each chunk opens with
/// the absolute h-bit index of its first leaf (a resync point — honest
/// extra cost against the Eq. 16 bound) so an undeliverable chunk strands
/// only its own tags, never the rest of the round. Without framing, a
/// BER-corrupted segment desynchronizes the shared register and strands
/// every tag after the flip point — the failure mode the regression test in
/// tests/test_polling_tree.cpp demonstrates.
class TppRoundPolicy final : public RoundPolicy {
 public:
  explicit TppRoundPolicy(Tpp::Config config) noexcept : config_(config) {}

  RoundInit begin_round(sim::Session& session,
                        std::size_t active_count) override;
  void dispatch(RoundEngine& engine, tags::TagSoA& active) override;

  /// The differential tree varies the vector length per poll, so the
  /// engine's identical-polls fast path cannot represent a TPP round.
  [[nodiscard]] bool batchable_dispatch() const noexcept override {
    return false;
  }

 private:
  Tpp::Config config_;
  /// Tree-build scratch (sort buffer + pre-order segments); reused across
  /// rounds so steady-state dispatch stays allocation-free (measured by
  /// bench/bench_round_engine).
  std::vector<std::uint32_t> sort_scratch_;
  std::vector<TreeSegment> segments_;
};

}  // namespace rfid::protocols
