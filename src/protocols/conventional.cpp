#include "protocols/conventional.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace rfid::protocols {

sim::RunResult Cpp::run(const tags::TagPopulation& population,
                        const sim::SessionConfig& config) const {
  sim::Session session(population, config);
  for (const tags::Tag& target : population) {
    // Tag-side predicate: a tag answers iff the broadcast ID equals its own
    // and it is physically present. With unique IDs the responder set is at
    // most { target }; the channel still arbitrates so a duplicate-ID bug
    // would surface here. A garbled reply is simply re-polled.
    const tags::Tag* responder = &target;
    const bool present = session.is_present(target.id());
    while (session.air().poll_bare({&responder, present ? 1u : 0u}, &target,
                             kTagIdBits) == nullptr &&
           present) {
    }
  }
  return session.finish(std::string(name()));
}

sim::RunResult PrefixCpp::run(const tags::TagPopulation& population,
                              const sim::SessionConfig& config) const {
  RFID_EXPECTS(config_.prefix_bits <= kTagIdBits);
  sim::Session session(population, config);
  const std::size_t suffix_bits = kTagIdBits - config_.prefix_bits;

  // Group tags by their actual category prefix (reader knows all IDs).
  // std::map keeps groups in prefix order for deterministic traversal.
  const auto masked_prefix = [this](const TagId& id) {
    TagId out = id;
    for (std::size_t b = config_.prefix_bits; b < kTagIdBits; ++b)
      out.set_bit(b, false);
    return out;
  };
  std::map<TagId, std::vector<const tags::Tag*>> groups;
  for (const tags::Tag& tag : population)
    groups[masked_prefix(tag.id())].push_back(&tag);

  for (const auto& [prefix, members] : groups) {
    // Select command: framing overhead plus the mask itself. Tags matching
    // the mask stay active for the suffix polls; others ignore them.
    session.downlink().broadcast_command_bits(config_.select_overhead_bits +
                                   config_.prefix_bits);
    for (const tags::Tag* target : members) {
      const tags::Tag* responder = target;
      const bool present = session.is_present(target->id());
      while (session.air().poll_bare({&responder, present ? 1u : 0u}, target,
                               suffix_bits) == nullptr &&
             present) {
      }
    }
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
