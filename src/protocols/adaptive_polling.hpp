// Adaptive degradation protocol (ADAPT).
//
// TPP is the paper's fastest protocol on a clean channel, but its densely
// packed differential tree is the most fragile under downlink bit errors:
// one corrupted chunk strands many tags at once. ADAPT starts as TPP and
// monitors the observed corruption rate through the session's framing
// layer; when the analytical cost-per-delivered-tag model
// (analysis/degradation.hpp) says a simpler protocol is cheaper on the
// estimated channel, it falls back TPP -> EHPP -> HPP mid-session. The
// ladder is downgrade-only with hysteresis, and at BER 0 the policy never
// triggers, so a clean-channel ADAPT run is byte-identical to TPP.
#pragma once

#include "protocols/enhanced_hash_polling.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/protocol.hpp"
#include "protocols/tree_polling.hpp"

namespace rfid::protocols {

class AdaptivePolling final : public PollingProtocol {
 public:
  struct Config final {
    Tpp::Config tpp{};
    Ehpp::Config ehpp{};
    HppRoundConfig hpp{};
  };

  AdaptivePolling();
  explicit AdaptivePolling(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ADAPT";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

 private:
  Config config_;
};

inline AdaptivePolling::AdaptivePolling() : config_(Config()) {}

}  // namespace rfid::protocols
