// Dynamic Framed Slotted ALOHA (DFSA) — the classic anti-collision baseline
// (Lee et al., MobiQuitous 2005; paper reference [24]).
//
// Per frame every unread tag picks a uniformly random slot; singleton slots
// collect one tag each, empty and collision slots are wasted air time.
// Since this library's setting gives the reader exact knowledge of the
// remaining population, the frame size is set to frame_factor * n_remaining
// (factor 1.0 is throughput-optimal for slotted ALOHA). DFSA is included to
// quantify how much the slot waste — 63.2% per frame at the optimum — costs
// compared with polling, which has none.
#pragma once

#include "protocols/protocol.hpp"

namespace rfid::protocols {

class Dfsa final : public PollingProtocol {
 public:
  struct Config final {
    double frame_factor = 1.0;
    std::size_t frame_command_bits = 32;  ///< per-frame <f, r> command
    /// When false, the reader does NOT use its tag-ID knowledge to size
    /// frames; it estimates the backlog from the previous frame's outcome
    /// with Schoute's estimator (backlog ~= 2.39 * collision slots) — the
    /// classic DFSA the paper's reference [24] builds on. The first frame
    /// starts from `initial_frame` slots.
    bool known_population = true;
    std::size_t initial_frame = 128;
  };

  Dfsa();
  explicit Dfsa(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "DFSA";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

 private:
  Config config_;
};

inline Dfsa::Dfsa() : config_(Config()) {}

}  // namespace rfid::protocols
