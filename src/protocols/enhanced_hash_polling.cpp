#include "protocols/enhanced_hash_polling.hpp"

#include <vector>

#include "analysis/ehpp_model.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "fault/recovery.hpp"
#include "protocols/hash_polling.hpp"

namespace rfid::protocols {

std::size_t Ehpp::effective_subset_size() const {
  if (config_.subset_size != 0) return config_.subset_size;
  return analysis::ehpp_optimal_subset_size(
      static_cast<double>(config_.circle_command_bits),
      static_cast<double>(config_.round_init_bits));
}

bool run_ehpp_circle(sim::Session& session, RoundEngine& engine,
                     tags::TagSoA& active, const Ehpp::Config& config,
                     std::size_t subset_target) {
  HppRoundPolicy round_policy(HppRoundConfig{config.round_init_bits,
                                             /*count_init_in_w=*/true});
  if (active.size() <= subset_target) {
    // Small remainders skip the circle machinery: plain HPP (this is why
    // EHPP matches HPP exactly at n = 100 in the paper's tables).
    engine.run_rounds(active, round_policy);
    return true;
  }

  // Circle command <f, F, r>: counted into w per the paper's accounting.
  // The parameters travel as a concrete 128-bit frame; tags act on the
  // decoded values.
  session.begin_circle();
  if (session.framing_enabled()) {
    // The long circle frame spans several CRC segments; all of them must
    // survive or no tag knows the membership rule and the circle is off.
    if (!session.downlink().broadcast_framed(config.circle_command_bits,
                                             /*count_in_w=*/true))
      return false;
  } else {
    session.downlink().broadcast_vector_bits(config.circle_command_bits);
  }
  RFID_EXPECTS(config.selection_modulus < (1u << 30));
  const phy::CircleCommand frame{
      static_cast<std::uint32_t>(config.selection_modulus * subset_target /
                                 active.size()),  // f = F * n* / n_rem
      static_cast<std::uint32_t>(config.selection_modulus),
      session.protocol_rng()() & 0xFFFFFFFFFFFFull};
  const auto decoded = phy::CircleCommand::decode(frame.encode());
  RFID_ENSURES(decoded && decoded->threshold == frame.threshold &&
               decoded->modulus == frame.modulus &&
               decoded->seed == frame.seed);
  const std::uint64_t circle_seed = decoded->seed;
  const std::uint64_t modulus = decoded->modulus;
  const std::uint64_t threshold = decoded->threshold;

  // Tag side: each awake tag decides membership from the decoded seed.
  // Stable partition into `joined` / kept-in-`active`, preserving relative
  // order on both sides (exactly what std::erase_if + push_back did on the
  // old AoS layout). One up-front reserve keeps the circle's allocation
  // count bounded by the SoA's column count.
  tags::TagSoA joined;
  joined.reserve(active.size());
  const std::size_t n = active.size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (tag_index_mod(circle_seed, active.tag(i)->id(), modulus) < threshold) {
      joined.push_back_from(active, i);
    } else {
      if (kept != i) active.move_element(kept, i);
      ++kept;
    }
  }
  active.resize_down(kept);

  // Query the subset to exhaustion; unselected tags wait for later
  // circles. An unlucky empty subset just costs the circle command.
  engine.run_rounds(joined, round_policy);
  return true;
}

sim::RunResult Ehpp::run(const tags::TagPopulation& population,
                         const sim::SessionConfig& config) const {
  sim::Session session(population, config);
  const std::size_t subset_target = effective_subset_size();
  RFID_ENSURES(subset_target >= 1);

  tags::TagSoA active = make_devices(session);
  // One coordinator (and hence one engine) spans every circle: a tag's
  // retry budget is a per-run quantity no matter which subset it happens
  // to land in.
  fault::RecoveryCoordinator recovery(config.recovery);
  RoundEngine engine(session, recovery);

  // Circle-level init ladder, independent of the per-round ladder inside
  // engine.run_rounds: an undeliverable circle command and an undeliverable
  // round command are separate failure chains.
  fault::RecoveryCoordinator::InitLadder ladder(config.recovery.retry_budget);
  while (!active.empty()) {
    session.check_round_budget();
    if (run_ehpp_circle(session, engine, active, config_, subset_target)) {
      ladder.note_success();
      continue;
    }
    // Framed circle command exhausted its budget. Retry a bounded number of
    // circles (each already paid the full retransmission ladder), then give
    // up on everything still unread — loudly, never silently.
    if (ladder.note_failure()) engine.abandon_active(active);
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
