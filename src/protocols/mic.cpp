#include "protocols/mic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/math_util.hpp"

namespace rfid::protocols {

namespace {

constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

struct MicDevice final {
  const tags::Tag* tag = nullptr;
  bool present = true;
  /// The device's k candidate slots for the current frame, H_j(id) mod f.
  std::vector<std::uint32_t> slots;
};

}  // namespace

sim::RunResult Mic::run(const tags::TagPopulation& population,
                        const sim::SessionConfig& config) const {
  RFID_EXPECTS(config_.num_hashes >= 1);
  RFID_EXPECTS(config_.frame_factor > 0.0);
  sim::Session session(population, config);
  const unsigned k = config_.num_hashes;
  const unsigned entry_bits = ceil_log2(k + 1);

  std::vector<MicDevice> active;
  active.reserve(population.size());
  for (const tags::Tag& tag : population) {
    MicDevice device;
    device.tag = &tag;
    device.present = session.is_present(tag.id());
    device.slots.resize(k);
    active.push_back(std::move(device));
  }

  while (!active.empty()) {
    session.begin_round();
    session.check_round_budget();

    // Frames below two slots cannot separate colliding tags; floor at two
    // whenever more than one tag remains so small frame factors stay live.
    const long long floor_slots = active.size() > 1 ? 2 : 1;
    const auto f = static_cast<std::size_t>(std::max<long long>(
        floor_slots, std::llround(config_.frame_factor *
                                  static_cast<double>(active.size()))));
    const std::uint64_t seed = session.protocol_rng()();

    // Frame command <f, r>, then the indicator vector (entry_bits per slot).
    session.downlink().broadcast_command_bits(config_.frame_command_bits);
    session.downlink().broadcast_vector_bits(f * entry_bits);

    // Tag side hash evaluation (the reader computes the same values).
    for (MicDevice& device : active)
      for (unsigned j = 0; j < k; ++j)
        device.slots[j] = static_cast<std::uint32_t>(
            tag_hash_family(seed, j, device.tag->id()) % f);

    // Reader assignment, layered as published: hash functions are applied
    // one after another. In layer j every still-unassigned tag is a
    // candidate for its slot H_j(id); an *unmarked* slot with exactly one
    // candidate is marked <j> and that tag assigned to it. Tags assigned in
    // layer j are out of the candidate pool from layer j+1 on.
    //
    // This layering is what makes the tag decoding rule — reply at the
    // smallest j with vector[H_j(id)] = j — collision-free: a slot marked
    // in layer j had exactly one layer-j candidate, and every tag still
    // unassigned at layer j that lands on a marked slot keeps it from being
    // marked in the first place. Hence every marked slot is answered by
    // exactly one tag and the waste is exactly the unmarked slots: ~13.9%
    // of the frame at k = 7 and f = n (the figure MIC's authors report).
    std::vector<unsigned> indicator(f, 0);  // 0 = unmarked (wasted)
    std::vector<std::size_t> assignment(f, kUnassigned);
    std::vector<bool> assigned(active.size(), false);
    std::vector<std::uint32_t> layer_count(f, 0);
    for (unsigned j = 0; j < k; ++j) {
      std::fill(layer_count.begin(), layer_count.end(), 0u);
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (assigned[i]) continue;
        const std::uint32_t s = active[i].slots[j];
        if (indicator[s] == 0) {
          ++layer_count[s];
          if (layer_count[s] == 1) assignment[s] = i;
        }
      }
      for (std::size_t s = 0; s < f; ++s) {
        if (indicator[s] != 0) continue;
        if (layer_count[s] == 1) {
          indicator[s] = j + 1;
          assigned[assignment[s]] = true;
        } else {
          assignment[s] = kUnassigned;
        }
      }
    }

    // Tag side decoding: each tag replies at its first hash j with
    // vector[H_j(id)] = j, independently of the reader's plan.
    std::vector<std::vector<const tags::Tag*>> responders(f);
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (unsigned j = 0; j < k; ++j) {
        const std::uint32_t s = active[i].slots[j];
        if (indicator[s] == j + 1) {
          if (active[i].present) responders[s].push_back(active[i].tag);
          break;
        }
      }
    }

    // Execute the frame slot by slot. MIC runs fixed-length slots, so a
    // wasted slot still occupies the full reply window (this is the
    // accounting under which the published execution times reproduce).
    std::vector<bool> resolved(active.size(), false);
    for (std::size_t s = 0; s < f; ++s) {
      if (indicator[s] == 0) {
        session.air().expect_empty_slot(responders[s], /*full_duration=*/true);
      } else {
        const std::size_t owner = assignment[s];
        const tags::Tag* expected = active[owner].tag;
        const tags::Tag* read = session.air().poll_slot(responders[s], expected);
        // Done when read or detected missing; a garbled reply leaves the
        // tag unresolved for the next frame.
        resolved[owner] = (read != nullptr || !active[owner].present);
      }
    }

    std::size_t write = 0;
    for (std::size_t i = 0; i < active.size(); ++i)
      if (!resolved[i]) {
        if (write != i) active[write] = std::move(active[i]);
        ++write;
      }
    active.resize(write);
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
