// Hash Polling Protocol (HPP), paper Section III.
//
// Each round the reader broadcasts <h, r>; every unread tag picks the h-bit
// index H(r, id) mod 2^h. The reader — which knows all IDs — precomputes the
// picked indices, keeps only the *singleton* ones (picked by exactly one
// tag) and broadcasts them in ascending order; the unique tag whose index
// matches replies and goes to sleep. Tags on collision indices stay awake
// for the next round. The index length satisfies 2^{h-1} < n' <= 2^h for n'
// unread tags, so each round reads 36.8%-60.7% of the survivors and every
// broadcast slot is a useful singleton.
//
// The round skeleton (bucket, dispatch, mop-up, compact) lives in
// protocols::RoundEngine; this header contributes the HPP round policy —
// ceil_log2 index length, the 32-bit QueryRound init frame, ascending
// singleton dispatch — which EHPP reuses over subsets and ADAPT as its
// most-robust tier.
#pragma once

#include <vector>

#include "fault/recovery.hpp"
#include "phy/commands.hpp"
#include "protocols/protocol.hpp"
#include "protocols/round_engine.hpp"

namespace rfid::protocols {

/// Knobs shared by HPP proper and the HPP rounds inside EHPP.
struct HppRoundConfig final {
  /// Cost of the <h, r> round command (the 32-bit QueryRound frame).
  std::size_t round_init_bits = phy::QueryRoundCommand::kBits;
  bool count_init_in_w = false;      ///< EHPP folds init bits into w (Sec. V-B)
};

/// The HPP round policy: h = ceil_log2(n'), seed drawn through the 32-bit
/// QueryRound frame (tags act on the *decoded* parameters), default
/// ascending-singleton dispatch.
class HppRoundPolicy final : public RoundPolicy {
 public:
  explicit HppRoundPolicy(HppRoundConfig config) noexcept : config_(config) {}

  RoundInit begin_round(sim::Session& session,
                        std::size_t active_count) override;

 private:
  HppRoundConfig config_;
  /// Scratch for the QueryRound frame; reused so steady-state rounds stay
  /// allocation-free (measured by bench/bench_round_engine).
  BitVec frame_;
};

class Hpp final : public PollingProtocol {
 public:
  explicit Hpp(HppRoundConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "HPP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

 private:
  HppRoundConfig config_;
};

}  // namespace rfid::protocols
