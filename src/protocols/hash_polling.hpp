// Hash Polling Protocol (HPP), paper Section III.
//
// Each round the reader broadcasts <h, r>; every unread tag picks the h-bit
// index H(r, id) mod 2^h. The reader — which knows all IDs — precomputes the
// picked indices, keeps only the *singleton* ones (picked by exactly one
// tag) and broadcasts them in ascending order; the unique tag whose index
// matches replies and goes to sleep. Tags on collision indices stay awake
// for the next round. The index length satisfies 2^{h-1} < n' <= 2^h for n'
// unread tags, so each round reads 36.8%-60.7% of the survivors and every
// broadcast slot is a useful singleton.
//
// The round engine is shared with EHPP, which runs it over subsets.
#pragma once

#include <vector>

#include "fault/recovery.hpp"
#include "phy/commands.hpp"
#include "protocols/protocol.hpp"

namespace rfid::protocols {

/// Per-tag runtime state for the hash-polling family. The picked index is
/// genuine tag-side state: it is computed from the broadcast seed by the
/// same hash the reader uses, never copied from reader bookkeeping.
struct HashDevice final {
  const tags::Tag* tag = nullptr;
  std::uint32_t index = 0;
  /// Presence snapshot taken at construction (missing-tag scenarios): an
  /// absent tag is still scheduled, but it can never respond. The polling
  /// loops re-evaluate sim::Session::is_present per poll so a churn
  /// schedule is honoured live; without churn the live value equals this
  /// snapshot.
  bool present = true;
};

/// Builds the device list for a session, honouring its presence filter.
[[nodiscard]] std::vector<HashDevice> make_devices(
    const sim::Session& session);

/// Knobs shared by HPP proper and the HPP rounds inside EHPP.
struct HppRoundConfig final {
  /// Cost of the <h, r> round command (the 32-bit QueryRound frame).
  std::size_t round_init_bits = phy::QueryRoundCommand::kBits;
  bool count_init_in_w = false;      ///< EHPP folds init bits into w (Sec. V-B)
};

/// Runs HPP rounds over `active` until every device is interrogated.
/// Devices are erased from `active` as they are read. With an active
/// `recovery` tracker, failed polls (garbled reply or timeout) are parked
/// and retried in an end-of-round mop-up instead of being rescheduled
/// silently; budget-exhausted tags are reported undelivered. When the
/// framed downlink repeatedly fails to deliver even the round-init command,
/// the remaining tags are abandoned loudly (see abandon_active).
void run_hpp_rounds(sim::Session& session, std::vector<HashDevice>& active,
                    const HppRoundConfig& config,
                    fault::RecoveryTracker* recovery = nullptr);

/// One HPP round (index pick, singleton sift, polls, recovery mop-up,
/// compaction of `active`). Factored out of run_hpp_rounds so the adaptive
/// protocol can interleave rounds with degradation decisions. Returns false
/// when the framed round-init broadcast exhausted its retransmission budget
/// — the tags never learned <h, r> and the round did not run.
bool run_hpp_single_round(sim::Session& session,
                          std::vector<HashDevice>& active,
                          const HppRoundConfig& config,
                          fault::RecoveryTracker* recovery = nullptr);

/// The terminal give-up-loudly outcome when the downlink cannot even
/// deliver protocol commands: every still-active device is reported via
/// sim::Session::mark_undelivered and `active` is cleared.
void abandon_active(sim::Session& session, std::vector<HashDevice>& active);

/// End-of-round recovery mop-up, shared by the hash-polling family
/// (HPP/EHPP rounds and TPP's tree rounds). Re-polls the devices whose
/// indices are listed in `pending` for up to
/// session.config().recovery.mop_up_passes sweeps inside a recovery scope
/// (airtime lands in obs::Phase::kRecovery); every re-poll first consumes
/// one unit of the tag's retry budget, and a tag that runs out is reported
/// via sim::Session::mark_undelivered and marked done. `vector_bits` is the
/// re-poll vector length — the full h-bit index, since differential
/// encodings (TPP) cannot address an out-of-order retry. On return
/// `pending` holds the tags still failed but within budget; they stay
/// active for the next round.
void run_recovery_mop_up(sim::Session& session,
                         const std::vector<HashDevice>& active,
                         std::vector<char>& done,
                         std::vector<std::size_t>& pending,
                         fault::RecoveryTracker& recovery,
                         std::size_t vector_bits);

class Hpp final : public PollingProtocol {
 public:
  explicit Hpp(HppRoundConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "HPP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

 private:
  HppRoundConfig config_;
};

}  // namespace rfid::protocols
