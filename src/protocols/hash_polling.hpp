// Hash Polling Protocol (HPP), paper Section III.
//
// Each round the reader broadcasts <h, r>; every unread tag picks the h-bit
// index H(r, id) mod 2^h. The reader — which knows all IDs — precomputes the
// picked indices, keeps only the *singleton* ones (picked by exactly one
// tag) and broadcasts them in ascending order; the unique tag whose index
// matches replies and goes to sleep. Tags on collision indices stay awake
// for the next round. The index length satisfies 2^{h-1} < n' <= 2^h for n'
// unread tags, so each round reads 36.8%-60.7% of the survivors and every
// broadcast slot is a useful singleton.
//
// The round engine is shared with EHPP, which runs it over subsets.
#pragma once

#include <vector>

#include "phy/commands.hpp"
#include "protocols/protocol.hpp"

namespace rfid::protocols {

/// Per-tag runtime state for the hash-polling family. The picked index is
/// genuine tag-side state: it is computed from the broadcast seed by the
/// same hash the reader uses, never copied from reader bookkeeping.
struct HashDevice final {
  const tags::Tag* tag = nullptr;
  std::uint32_t index = 0;
  /// False when the tag is physically absent (missing-tag scenarios): the
  /// reader still schedules it, but it can never respond.
  bool present = true;
};

/// Builds the device list for a session, honouring its presence filter.
[[nodiscard]] std::vector<HashDevice> make_devices(
    const sim::Session& session);

/// Knobs shared by HPP proper and the HPP rounds inside EHPP.
struct HppRoundConfig final {
  /// Cost of the <h, r> round command (the 32-bit QueryRound frame).
  std::size_t round_init_bits = phy::QueryRoundCommand::kBits;
  bool count_init_in_w = false;      ///< EHPP folds init bits into w (Sec. V-B)
};

/// Runs HPP rounds over `active` until every device is interrogated.
/// Devices are erased from `active` as they are read.
void run_hpp_rounds(sim::Session& session, std::vector<HashDevice>& active,
                    const HppRoundConfig& config);

class Hpp final : public PollingProtocol {
 public:
  explicit Hpp(HppRoundConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "HPP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

 private:
  HppRoundConfig config_;
};

}  // namespace rfid::protocols
