// Coded Polling (CP), Qiao et al., MobiHoc 2011 — the closest prior work the
// paper measures itself against (Sections I and VI).
//
// CP addresses two tags with one coded frame: the reader broadcasts
// X = ID_a XOR ID_b together with two 16-bit validators V(ID_a) and
// V(ID_b). A listening tag t recovers the putative partner P = X XOR ID_t
// and claims role a when (V(ID_t), V(P)) matches the broadcast pair in
// order, role b when it matches in reverse; role a replies first, role b
// second. The 96 coded bits serve two tags, so the per-tag polling vector
// is 48 bits — the "half of CPP" property the ICPP paper cites; the
// validator fields are framing overhead.
//
// Design note: the validator must be NONLINEAR. A CRC is linear over GF(2),
// so CRC(t) == CRC(a) implies CRC(t XOR X) == CRC(b) for free — the second
// check adds nothing and every 16-bit CRC collision (about 3% of pairs at
// n = 2000) garbles a coded frame. V is therefore 16 bits of the seeded tag
// hash, making a spoofed role a genuine 2^-32 event.
//
// The reader, which knows every ID, still screens each pair against the
// population and falls back to two conventional polls for the (now
// vanishingly rare) ambiguous pairs, so a deployment never sees a coded
// collision.
#pragma once

#include "protocols/protocol.hpp"

namespace rfid::protocols {

class CodedPolling final : public PollingProtocol {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;
};

}  // namespace rfid::protocols
