// The shared round engine of the hash-polling family.
//
// HPP, EHPP and TPP (and ADAPT, which switches between them) all run the
// same round skeleton: broadcast a round-init command carrying <h, seed>,
// have every awake tag pick an h-bit index, bucket the picked indices to
// find the singletons, dispatch polls to them, mop up failures under the
// recovery policy, and compact the active list. Before this engine existed
// each protocol carried its own copy of that loop; now the per-protocol
// variation is expressed as a RoundPolicy — how <h, seed> are chosen and
// broadcast, and how the singleton set is dispatched (ascending singleton
// polls for HPP/EHPP, the differential polling tree for TPP) — while the
// engine owns the skeleton and all the scratch buffers, which are reused
// across rounds so steady-state rounds allocate nothing.
//
// The active population lives in a structure-of-arrays view (tags::TagSoA)
// so the tag-side index pick runs as one batched kernel over contiguous ID
// words (common/simd.hpp; AVX2/NEON behind a scalar reference). On top of
// that, rounds whose polls cannot fail (sim::Session::clean_poll_fast_path)
// skip the per-poll dispatch machinery entirely: the engine counts the
// singleton buckets, folds their accounting in one batched call, and
// compacts straight off the bucket histogram — byte-identical results,
// an order of magnitude less work per round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "fault/recovery.hpp"
#include "sim/session.hpp"
#include "tags/soa.hpp"

namespace rfid::protocols {

/// Builds the structure-of-arrays device view for a session's whole
/// population (presence is evaluated live per poll, not snapshotted). The
/// picked slot is genuine tag-side state: it is computed from the
/// broadcast seed by the same hash the reader uses, never copied from
/// reader bookkeeping.
[[nodiscard]] tags::TagSoA make_devices(const sim::Session& session);

class RoundEngine;

/// What a round-init broadcast established. `delivered` is false when the
/// framed command exhausted its retransmission budget — no tag knows
/// <index_length, seed> and the round must not run.
struct RoundInit final {
  bool delivered = true;
  unsigned index_length = 0;  ///< h: bits per picked index
  std::uint64_t seed = 0;     ///< hash seed the tags decoded
};

/// Per-protocol variation points of one polling round.
class RoundPolicy {
 public:
  virtual ~RoundPolicy() = default;

  /// Chooses <h, seed> for `active_count` unread tags and broadcasts the
  /// round-init command (framed or unframed). Called after the engine has
  /// opened the round (begin_round + round-budget check); this is where the
  /// protocol draws from the session RNG.
  virtual RoundInit begin_round(sim::Session& session,
                                std::size_t active_count) = 0;

  /// Polls the singleton buckets, recording outcomes through the engine's
  /// done()/pending() state. The default is the HPP dispatch: singleton
  /// indices in ascending order, each poll carrying the full h-bit index.
  virtual void dispatch(RoundEngine& engine, tags::TagSoA& active);

  /// True when every singleton poll this dispatch issues on a clean
  /// channel is an identical full-h-bit-vector poll — the precondition for
  /// the engine's batched clean-round fast path. The default (HPP-shaped)
  /// dispatch qualifies; TPP's differential tree does not (its per-poll
  /// vector length varies with the tree segment).
  [[nodiscard]] virtual bool batchable_dispatch() const noexcept {
    return true;
  }
};

class RoundEngine final {
 public:
  /// Both references are borrowed and must outlive the engine. One engine
  /// instance spans a whole protocol run so its scratch capacity is paid
  /// once (in the first round) and reused thereafter.
  RoundEngine(sim::Session& session,
              fault::RecoveryCoordinator& recovery) noexcept
      : session_(session), recovery_(recovery) {}

  /// Runs one complete round over `active` (round bookkeeping, policy init,
  /// batched tag-side index pick, singleton sift, dispatch, recovery
  /// mop-up, compaction). Devices that were read or abandoned are erased
  /// from `active`. Returns false when the round-init broadcast was
  /// undeliverable — the round did not run and the caller decides between
  /// retrying and abandoning (see run_rounds).
  bool run_round(tags::TagSoA& active, RoundPolicy& policy);

  /// Runs rounds until `active` drains, retrying undeliverable round-init
  /// broadcasts through the bounded InitLadder and abandoning everything
  /// still unread — loudly, never silently — once it is exhausted.
  void run_rounds(tags::TagSoA& active, RoundPolicy& policy);

  /// The terminal give-up-loudly outcome when the downlink cannot even
  /// deliver protocol commands: every still-active device is reported via
  /// sim::Session::mark_undelivered and `active` is cleared.
  void abandon_active(tags::TagSoA& active);

  /// Selects the kernel backend for the batched index pick. Any backend
  /// produces identical picks (the lane->tag rule in common/simd.hpp);
  /// the bench pins kScalar to measure the per-width speedup.
  void set_hash_backend(simd::Backend backend) noexcept {
    hash_backend_ = backend;
  }
  [[nodiscard]] simd::Backend hash_backend() const noexcept {
    return hash_backend_;
  }

  // --- Surface for RoundPolicy::dispatch implementations --------------------

  [[nodiscard]] sim::Session& session() noexcept { return session_; }
  [[nodiscard]] fault::RecoveryCoordinator& recovery() noexcept {
    return recovery_;
  }
  /// True when failed polls are parked for the mop-up instead of being
  /// rescheduled silently.
  [[nodiscard]] bool recovering() const noexcept { return recovery_.active(); }
  /// h of the running round.
  [[nodiscard]] unsigned index_length() const noexcept { return h_; }
  /// Per-index pick counts (size 2^h) of the running round.
  [[nodiscard]] const std::vector<std::uint32_t>& counts() const noexcept {
    return counts_;
  }
  /// Last device index that picked each bucket; meaningful where the
  /// count is 1 (the singleton's occupant). Filled only on the per-poll
  /// dispatch path — the clean-round fast path never consults it.
  [[nodiscard]] const std::vector<std::size_t>& occupant() const noexcept {
    return occupant_;
  }
  /// done[i] != 0 once active[i] was read, detected missing, or abandoned.
  [[nodiscard]] std::vector<char>& done() noexcept { return done_; }
  /// Device indices parked for the end-of-round recovery mop-up.
  [[nodiscard]] std::vector<std::size_t>& pending() noexcept {
    return pending_;
  }
  /// Round-scoped scratch for policies that need the singleton index list
  /// (TPP's tree build). Cleared by the engine at round start.
  [[nodiscard]] std::vector<std::uint32_t>& singleton_scratch() noexcept {
    return singleton_scratch_;
  }
  /// Round-scoped scratch for policies that chunk the dispatch (TPP's
  /// framed tree chunks). Cleared by the engine at round start.
  [[nodiscard]] std::vector<std::size_t>& chunk_scratch() noexcept {
    return chunk_scratch_;
  }

  /// The HPP dispatch: singleton indices in ascending order, each poll
  /// carrying the full h-bit index. Shared by HPP proper, the HPP rounds
  /// inside EHPP circles, and ADAPT's degraded tier.
  void dispatch_singletons_ascending(tags::TagSoA& active);

 private:
  /// End-of-round mop-up: hands the parked device indices to the recovery
  /// coordinator, re-polling each with the full h_-bit absolute index
  /// (differential encodings cannot address an out-of-order retry).
  void mop_up(tags::TagSoA& active);

  sim::Session& session_;
  fault::RecoveryCoordinator& recovery_;
  unsigned h_ = 0;
  simd::Backend hash_backend_ = simd::best_backend();
  // Round-scoped scratch, reused via assign/clear so capacity peaks in the
  // first round and steady-state rounds perform no heap allocation.
  std::vector<std::uint32_t> counts_;
  std::vector<std::size_t> occupant_;
  std::vector<char> done_;
  std::vector<std::size_t> pending_;
  std::vector<std::uint32_t> singleton_scratch_;
  std::vector<std::size_t> chunk_scratch_;
};

}  // namespace rfid::protocols
