#include "protocols/registry.hpp"

#include <array>
#include <cctype>
#include <string>

#include "common/error.hpp"
#include "protocols/adaptive_polling.hpp"
#include "protocols/coded_polling.hpp"
#include "protocols/conventional.hpp"
#include "protocols/dfsa.hpp"
#include "protocols/enhanced_hash_polling.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/mic.hpp"
#include "protocols/tree_polling.hpp"

namespace rfid::protocols {

std::string_view to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kCpp: return "CPP";
    case ProtocolKind::kPrefixCpp: return "PrefixCPP";
    case ProtocolKind::kCodedPolling: return "CP";
    case ProtocolKind::kHpp: return "HPP";
    case ProtocolKind::kEhpp: return "EHPP";
    case ProtocolKind::kTpp: return "TPP";
    case ProtocolKind::kAdaptive: return "ADAPT";
    case ProtocolKind::kMic: return "MIC";
    case ProtocolKind::kSic: return "SIC";
    case ProtocolKind::kDfsa: return "DFSA";
  }
  return "unknown";
}

std::optional<ProtocolKind> parse_protocol(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  for (const ProtocolKind kind : all_protocols()) {
    std::string candidate;
    for (const char c : to_string(kind))
      candidate.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    if (candidate == lower) return kind;
  }
  return std::nullopt;
}

std::span<const ProtocolKind> all_protocols() noexcept {
  static constexpr std::array<ProtocolKind, 10> kAll = {
      ProtocolKind::kCpp,      ProtocolKind::kPrefixCpp,
      ProtocolKind::kCodedPolling, ProtocolKind::kHpp,
      ProtocolKind::kEhpp,     ProtocolKind::kTpp,
      ProtocolKind::kAdaptive, ProtocolKind::kMic,
      ProtocolKind::kSic,      ProtocolKind::kDfsa,
  };
  return kAll;
}

std::unique_ptr<PollingProtocol> make_protocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kCpp: return std::make_unique<Cpp>();
    case ProtocolKind::kPrefixCpp: return std::make_unique<PrefixCpp>();
    case ProtocolKind::kCodedPolling: return std::make_unique<CodedPolling>();
    case ProtocolKind::kHpp: return std::make_unique<Hpp>();
    case ProtocolKind::kEhpp: return std::make_unique<Ehpp>();
    case ProtocolKind::kTpp: return std::make_unique<Tpp>();
    case ProtocolKind::kAdaptive: return std::make_unique<AdaptivePolling>();
    case ProtocolKind::kMic: return std::make_unique<Mic>();
    case ProtocolKind::kSic: return std::make_unique<Mic>(make_sic());
    case ProtocolKind::kDfsa: return std::make_unique<Dfsa>();
  }
  throw ContractViolation("unknown protocol kind");
}

}  // namespace rfid::protocols
