#include "protocols/round_engine.hpp"

#include "common/hash.hpp"
#include "common/math_util.hpp"

namespace rfid::protocols {

std::vector<HashDevice> make_devices(const sim::Session& session) {
  std::vector<HashDevice> devices;
  devices.reserve(session.population().size());
  for (const tags::Tag& tag : session.population())
    devices.push_back(HashDevice{&tag, 0, session.is_present(tag.id())});
  return devices;
}

void RoundPolicy::dispatch(RoundEngine& engine,
                           std::vector<HashDevice>& active) {
  engine.dispatch_singletons_ascending(active);
}

bool RoundEngine::run_round(std::vector<HashDevice>& active,
                            RoundPolicy& policy) {
  if (active.empty()) return true;
  session_.begin_round();
  session_.check_round_budget();

  const RoundInit init = policy.begin_round(session_, active.size());
  if (!init.delivered) return false;
  h_ = init.index_length;

  // Tag side: every awake tag picks its index from the decoded seed.
  for (HashDevice& device : active)
    device.index = tag_index_pow2(init.seed, device.tag->id(), h_);

  // Reader side: bucket the picked indices to find singletons.
  const std::size_t f = static_cast<std::size_t>(pow2(h_));
  counts_.assign(f, 0);
  occupant_.assign(f, 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    ++counts_[active[i].index];
    occupant_[active[i].index] = i;
  }

  done_.assign(active.size(), 0);
  pending_.clear();
  singleton_scratch_.clear();
  chunk_scratch_.clear();
  policy.dispatch(*this, active);

  if (recovering()) mop_up(active);
  compact(active);
  return true;
}

void RoundEngine::dispatch_singletons_ascending(
    std::vector<HashDevice>& active) {
  // Broadcast singleton indices in ascending order; each poll must elicit
  // exactly one reply (the channel enforces it). A device is done when it
  // was read or detected missing; a noise-garbled reply leaves it awake.
  // Under a recovery policy failed polls are parked for the mop-up
  // instead — including timeouts, since a churned-out tag may return. A
  // framed vector that exhausts its retransmission budget abandons the tag
  // loudly when no recovery policy is there to keep retrying.
  const bool recovering = this->recovering();
  const std::size_t f = counts_.size();
  for (std::size_t idx = 0; idx < f; ++idx) {
    if (counts_[idx] != 1) continue;
    const std::size_t i = occupant_[idx];
    const HashDevice& device = active[i];
    const bool here = session_.is_present(device.tag->id());
    const tags::Tag* responder = device.tag;
    const tags::Tag* read =
        session_.air().poll({&responder, here ? 1u : 0u}, device.tag, h_);
    if (read != nullptr)
      done_[i] = 1;
    else if (recovering)
      pending_.push_back(i);
    else if (session_.air().last_poll_failure() ==
             sim::PollFailure::kDownlinkExhausted) {
      session_.mark_undelivered(device.tag->id());
      done_[i] = 1;
    } else
      done_[i] = here ? 0 : 1;
  }
}

void RoundEngine::mop_up(std::vector<HashDevice>& active) {
  // Mop-up re-polls carry the full h-bit index: differential segment
  // encodings (TPP) only address tags in sorted-index order, which a retry
  // breaks, so the reader falls back to absolute addressing.
  recovery_.mop_up(
      session_, done_, pending_,
      [&](std::size_t i) { return active[i].tag->id(); },
      [&](std::size_t i) {
        const HashDevice& device = active[i];
        const bool here = session_.is_present(device.tag->id());
        const tags::Tag* responder = device.tag;
        return session_.air().poll({&responder, here ? 1u : 0u}, device.tag,
                                   h_) != nullptr;
      });
}

void RoundEngine::compact(std::vector<HashDevice>& active) {
  // Finished tags sleep; collision-index and garbled tags stay active.
  std::size_t write = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (done_[i]) continue;
    if (write != i) active[write] = active[i];
    ++write;
  }
  active.resize(write);
}

void RoundEngine::run_rounds(std::vector<HashDevice>& active,
                             RoundPolicy& policy) {
  fault::RecoveryCoordinator::InitLadder ladder(
      session_.config().recovery.retry_budget);
  while (!active.empty()) {
    if (run_round(active, policy)) {
      ladder.note_success();
      continue;
    }
    // Framed round-init exhausted its budget. Retry a bounded number of
    // rounds (each already paid the full retransmission ladder), then give
    // up on everything still unread — loudly, never silently.
    if (ladder.note_failure()) abandon_active(active);
  }
}

void RoundEngine::abandon_active(std::vector<HashDevice>& active) {
  for (const HashDevice& device : active)
    session_.mark_undelivered(device.tag->id());
  active.clear();
}

}  // namespace rfid::protocols
