#include "protocols/round_engine.hpp"

#include "common/hash.hpp"
#include "common/math_util.hpp"

namespace rfid::protocols {

tags::TagSoA make_devices(const sim::Session& session) {
  tags::TagSoA devices;
  devices.reserve(session.population().size());
  for (const tags::Tag& tag : session.population()) devices.push_back(&tag);
  return devices;
}

void RoundPolicy::dispatch(RoundEngine& engine, tags::TagSoA& active) {
  engine.dispatch_singletons_ascending(active);
}

// rfidlint: hotpath(round-engine-run-round)
bool RoundEngine::run_round(tags::TagSoA& active, RoundPolicy& policy) {
  if (active.empty()) return true;
  session_.begin_round();
  session_.check_round_budget();

  const RoundInit init = policy.begin_round(session_, active.size());
  if (!init.delivered) return false;
  h_ = init.index_length;

  // Tag side: every awake tag picks its index from the decoded seed. The
  // SoA's contiguous ID words feed the batched kernel; each lane computes
  // exactly the scalar tag_index_pow2 chain for its own tag, so the picks
  // are independent of the backend and its width.
  simd::hash_indices(init.seed, active.id_hi_data(), active.id_lo_data(),
                     active.slot_data(), active.size(), h_, hash_backend_);

  // Reader side: bucket the picked indices to find singletons.
  const std::size_t f = static_cast<std::size_t>(pow2(h_));
  const std::size_t n = active.size();
  // rfidlint: allow(hotpath-alloc) — scratch reaches steady capacity in round 1; test_alloc_guard pins zero steady-state allocs
  counts_.assign(f, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts_[active.slot(i)];

  if (policy.batchable_dispatch() && session_.clean_poll_fast_path()) {
    // Clean-round fast path: every singleton poll is an identical h_-bit
    // poll that deterministically succeeds (no noise, no churn, no per-
    // poll output), so the whole dispatch reduces to compacting straight
    // off the histogram plus one batched accounting call. A singleton
    // bucket holds exactly one tag and exactly the singleton-bucket tags
    // get erased, so the compaction delta IS the singleton count — no
    // separate scan over the f buckets. Occupant/done/pending bookkeeping
    // is skipped — with recovery enabled nothing can be parked, and mop_up
    // over an empty pending list is a no-op by contract.
    active.compact_singletons(counts_, hash_backend_);
    const std::size_t singletons = n - active.size();
    if (singletons > 0) session_.air().clean_singleton_replies(singletons, h_);
    return true;
  }

  // rfidlint: allow(hotpath-alloc) — scratch reaches steady capacity in round 1; test_alloc_guard pins zero steady-state allocs
  occupant_.assign(f, 0);
  for (std::size_t i = 0; i < n; ++i) occupant_[active.slot(i)] = i;

  // rfidlint: allow(hotpath-alloc) — shrinks with the active set after round 1; test_alloc_guard pins zero steady-state allocs
  done_.assign(active.size(), 0);
  pending_.clear();
  singleton_scratch_.clear();
  chunk_scratch_.clear();
  policy.dispatch(*this, active);

  if (recovering()) mop_up(active);
  active.compact(done_);
  return true;
}

void RoundEngine::dispatch_singletons_ascending(tags::TagSoA& active) {
  // Broadcast singleton indices in ascending order; each poll must elicit
  // exactly one reply (the channel enforces it). A device is done when it
  // was read or detected missing; a noise-garbled reply leaves it awake.
  // Under a recovery policy failed polls are parked for the mop-up
  // instead — including timeouts, since a churned-out tag may return. A
  // framed vector that exhausts its retransmission budget abandons the tag
  // loudly when no recovery policy is there to keep retrying.
  const bool recovering = this->recovering();
  const std::size_t f = counts_.size();
  for (std::size_t idx = 0; idx < f; ++idx) {
    if (counts_[idx] != 1) continue;
    const std::size_t i = occupant_[idx];
    const tags::Tag* tag = active.tag(i);
    const bool here = session_.is_present(tag->id());
    const tags::Tag* responder = tag;
    const tags::Tag* read =
        session_.air().poll({&responder, here ? 1u : 0u}, tag, h_);
    if (read != nullptr)
      done_[i] = 1;
    else if (recovering)
      pending_.push_back(i);
    else if (session_.air().last_poll_failure() ==
             sim::PollFailure::kDownlinkExhausted) {
      session_.mark_undelivered(tag->id());
      done_[i] = 1;
    } else
      done_[i] = here ? 0 : 1;
  }
}

void RoundEngine::mop_up(tags::TagSoA& active) {
  // Mop-up re-polls carry the full h-bit index: differential segment
  // encodings (TPP) only address tags in sorted-index order, which a retry
  // breaks, so the reader falls back to absolute addressing.
  recovery_.mop_up(
      session_, done_, pending_,
      [&](std::size_t i) { return active.tag(i)->id(); },
      [&](std::size_t i) {
        const tags::Tag* tag = active.tag(i);
        const bool here = session_.is_present(tag->id());
        const tags::Tag* responder = tag;
        return session_.air().poll({&responder, here ? 1u : 0u}, tag, h_) !=
               nullptr;
      });
}

void RoundEngine::run_rounds(tags::TagSoA& active, RoundPolicy& policy) {
  fault::RecoveryCoordinator::InitLadder ladder(
      session_.config().recovery.retry_budget);
  while (!active.empty()) {
    if (run_round(active, policy)) {
      ladder.note_success();
      continue;
    }
    // Framed round-init exhausted its budget. Retry a bounded number of
    // rounds (each already paid the full retransmission ladder), then give
    // up on everything still unread — loudly, never silently.
    if (ladder.note_failure()) abandon_active(active);
  }
}

void RoundEngine::abandon_active(tags::TagSoA& active) {
  const std::size_t n = active.size();
  for (std::size_t i = 0; i < n; ++i)
    session_.mark_undelivered(active.tag(i)->id());
  active.clear();
}

}  // namespace rfid::protocols
