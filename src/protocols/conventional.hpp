// Conventional polling baselines (paper Section II-B).
//
// CPP broadcasts the full 96-bit tag ID per poll — the baseline every table
// of the paper compares against. PrefixCpp is the "enhanced CPP" sketch of
// Section II-B: tags sharing a category prefix are first masked by a Select
// command, then polled with only their differential suffix bits; it helps
// only when the ID distribution actually clusters.
#pragma once

#include "protocols/protocol.hpp"

namespace rfid::protocols {

/// Conventional Polling Protocol: one bare 96-bit ID broadcast per tag.
class Cpp final : public PollingProtocol {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CPP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;
};

/// Enhanced CPP: Select-mask a shared `prefix_bits`-bit category prefix,
/// then poll each masked tag with its (96 - prefix_bits)-bit suffix.
class PrefixCpp final : public PollingProtocol {
 public:
  struct Config final {
    std::size_t prefix_bits = 32;  ///< category-ID length to mask
    /// Select frame framing cost beyond the mask itself (16-bit header of
    /// phy::SelectCommand: opcode + length field + CRC-5).
    std::size_t select_overhead_bits = 16;
  };

  PrefixCpp();
  explicit PrefixCpp(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "PrefixCPP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

 private:
  Config config_;
};

inline PrefixCpp::PrefixCpp() : config_(Config()) {}

}  // namespace rfid::protocols
