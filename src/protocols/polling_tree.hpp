// The binary polling tree of TPP (paper Section IV-C).
//
// Given the singleton indices of a round, the reader builds a binary trie
// (left edge = 0, right edge = 1, all leaves at depth h) and broadcasts its
// pre-order traversal. Each leaf is completed by the segment of nodes since
// the previous leaf, so common prefixes of consecutive singleton indices are
// transmitted exactly once; the total broadcast of a round equals the node
// count of the trie (excluding the virtual root).
//
// Because the trie's pre-order leaf sequence is the singleton indices in
// ascending order, the segment lengths are also computable directly from the
// sorted indices (h minus the common-prefix length with the predecessor).
// Both constructions are implemented; the property tests require them to
// agree on every input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.hpp"

namespace rfid::protocols {

/// One pre-order broadcast segment; transmitting it completes one leaf.
struct TreeSegment final {
  std::uint32_t bits = 0;            ///< segment payload, MSB-first in `length`
  unsigned length = 0;               ///< k: number of bits in this segment
  /// The singleton index the segment completes.
  std::uint32_t completed_index = 0;
};

/// Explicit node-based binary trie over fixed-length indices.
class PollingTree final {
 public:
  /// Builds the trie from `indices` (each h bits). Duplicate indices are a
  /// precondition violation — only *singleton* indices enter the tree.
  PollingTree(std::span<const std::uint32_t> indices, unsigned h);

  /// Number of nodes excluding the virtual root == total broadcast bits.
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

  [[nodiscard]] unsigned height() const noexcept { return height_; }

  /// Pre-order traversal segments (Section IV-C3).
  [[nodiscard]] std::vector<TreeSegment> segments() const;

  /// Independent construction of the same segments straight from the sorted
  /// index list, without building a trie. Used to cross-validate segments()
  /// and as the fast path inside the TPP protocol.
  [[nodiscard]] static std::vector<TreeSegment> segments_from_indices(
      std::span<const std::uint32_t> indices, unsigned h);

  /// Same construction writing into caller-owned scratch (`sorted_scratch`
  /// and `out` are cleared, refilled, and keep their capacity), so a
  /// per-round caller allocates nothing in steady state.
  static void segments_from_indices_into(
      std::span<const std::uint32_t> indices, unsigned h,
      std::vector<std::uint32_t>& sorted_scratch,
      std::vector<TreeSegment>& out);

  /// The paper's Eq. (7): maximal node count of a trie with m leaves of
  /// height h (tree bifurcates as early as possible).
  [[nodiscard]] static std::size_t max_node_count(std::size_t m, unsigned h);

  /// Tag-side replay of a pre-order segment stream: every tag keeps an h-bit
  /// register A and overwrites its last k bits with each received k-bit
  /// segment; the value A takes after each segment (the index that segment
  /// completes) is returned, one entry per element of `lengths`. Segment
  /// boundaries arrive out-of-band (the tag counts bits), so a flipped
  /// payload bit in `stream` corrupts the *values* the register takes — and,
  /// because the untouched high bits of A carry state forward, indices
  /// decoded after the flip too — while the framing stays intact. This is
  /// the failure mode the unframed-corruption regression test demonstrates.
  [[nodiscard]] static std::vector<std::uint32_t> decode_segment_stream(
      const BitVec& stream, std::span<const unsigned> lengths, unsigned h);

 private:
  struct Node final {
    std::int32_t child[2] = {-1, -1};
  };

  std::vector<Node> nodes_;  ///< nodes_[0] is the virtual root
  std::size_t node_count_ = 0;
  std::size_t leaf_count_ = 0;
  unsigned height_ = 0;
};

}  // namespace rfid::protocols
