#include "protocols/adaptive_polling.hpp"

#include <vector>

#include "analysis/degradation.hpp"
#include "fault/recovery.hpp"
#include "protocols/round_engine.hpp"

namespace rfid::protocols {

sim::RunResult AdaptivePolling::run(const tags::TagPopulation& population,
                                    const sim::SessionConfig& config) const {
  // The degradation monitor lives in the session (it sees every downlink
  // attempt); ADAPT is the only protocol that switches it on.
  sim::SessionConfig session_config = config;
  session_config.degradation.enabled = true;
  sim::Session session(population, session_config);

  tags::TagSoA active = make_devices(session);
  fault::RecoveryCoordinator recovery(config.recovery);
  RoundEngine engine(session, recovery);
  TppRoundPolicy tpp_policy(config_.tpp);
  HppRoundPolicy hpp_policy(config_.hpp);
  const std::size_t subset_target = Ehpp(config_.ehpp).effective_subset_size();

  fault::RecoveryCoordinator::InitLadder ladder(config.recovery.retry_budget);
  while (!active.empty()) {
    bool round_ran = true;
    switch (session.degradation_tier(active.size())) {
      case analysis::PollingTier::kTpp:
        round_ran = engine.run_round(active, tpp_policy);
        break;
      case analysis::PollingTier::kEhpp:
        session.check_round_budget();
        round_ran = run_ehpp_circle(session, engine, active, config_.ehpp,
                                    subset_target);
        break;
      case analysis::PollingTier::kHpp:
        round_ran = engine.run_round(active, hpp_policy);
        break;
    }
    if (round_ran) {
      ladder.note_success();
      continue;
    }
    // The framed init/circle command exhausted its retransmission budget;
    // same bounded give-up-loudly policy as the static protocols.
    if (ladder.note_failure()) engine.abandon_active(active);
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
