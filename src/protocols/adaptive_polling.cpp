#include "protocols/adaptive_polling.hpp"

#include <vector>

#include "analysis/degradation.hpp"
#include "fault/recovery.hpp"

namespace rfid::protocols {

sim::RunResult AdaptivePolling::run(const tags::TagPopulation& population,
                                    const sim::SessionConfig& config) const {
  // The degradation monitor lives in the session (it sees every downlink
  // attempt); ADAPT is the only protocol that switches it on.
  sim::SessionConfig session_config = config;
  session_config.degradation.enabled = true;
  sim::Session session(population, session_config);

  std::vector<HashDevice> active = make_devices(session);
  fault::RecoveryTracker recovery(config.recovery);
  const std::size_t subset_target = Ehpp(config_.ehpp).effective_subset_size();

  std::uint32_t init_failures = 0;
  while (!active.empty()) {
    bool round_ran = true;
    switch (session.degradation_tier(active.size())) {
      case analysis::PollingTier::kTpp:
        round_ran = run_tpp_round(session, active, config_.tpp, &recovery);
        break;
      case analysis::PollingTier::kEhpp:
        session.check_round_budget();
        round_ran = run_ehpp_circle(session, active, config_.ehpp,
                                    subset_target, &recovery);
        break;
      case analysis::PollingTier::kHpp:
        round_ran = run_hpp_single_round(session, active, config_.hpp,
                                         &recovery);
        break;
    }
    if (round_ran) {
      init_failures = 0;
      continue;
    }
    // The framed init/circle command exhausted its retransmission budget;
    // same bounded give-up-loudly policy as the static protocols.
    if (++init_failures > config.recovery.retry_budget)
      abandon_active(session, active);
  }
  return session.finish(std::string(name()));
}

}  // namespace rfid::protocols
