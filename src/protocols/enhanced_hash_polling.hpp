// Enhanced HPP (EHPP), paper Section III-D.
//
// HPP's vector grows like log2(n); EHPP flattens it by splitting the
// population into subsets of the Theorem-1-optimal size n* and running HPP
// over one subset per "circle". Subset selection uses the paper's
// probability variant: the circle command carries <f, F, r>; a tag joins the
// circle iff H(r, id) mod F < f, so the expected subset size is
// n_remaining * f / F and no assumption on the ID distribution is needed.
//
// Per the paper's simulation setting (Section V-B) the circle command
// (128 bits) and the 32-bit per-round HPP initialization are counted into
// the reported vector length w.
#pragma once

#include "fault/recovery.hpp"
#include "phy/commands.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/protocol.hpp"
#include "protocols/round_engine.hpp"

namespace rfid::protocols {

class Ehpp final : public PollingProtocol {
 public:
  struct Config final {
    /// l_c: the <f, F, r> circle frame (128 bits, as in Section V-B).
    std::size_t circle_command_bits = phy::CircleCommand::kBits;
    /// Per-HPP-round <h, r> cost (32-bit QueryRound frame).
    std::size_t round_init_bits = phy::QueryRoundCommand::kBits;
    /// Subset size n*; 0 derives the optimum from the analytical model for
    /// the configured l_c and init cost.
    std::size_t subset_size = 0;
    /// F of the circle command; must fit the frame's 30-bit field.
    std::uint64_t selection_modulus = 1u << 20;
  };

  Ehpp();
  explicit Ehpp(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "EHPP";
  }

  [[nodiscard]] sim::RunResult run(
      const tags::TagPopulation& population,
      const sim::SessionConfig& config) const override;

  /// The subset size a run with this configuration will use.
  [[nodiscard]] std::size_t effective_subset_size() const;

 private:
  Config config_;
};

inline Ehpp::Ehpp() : config_(Config()) {}

/// One EHPP circle (circle command, membership selection, HPP rounds over
/// the joined subset — or plain HPP when `active` is already at most
/// `subset_target`, which drains it and ends the run). Factored out of
/// Ehpp::run so the adaptive protocol can interleave circles with
/// degradation decisions. The HPP rounds inside the circle run on `engine`
/// (whose recovery coordinator spans the whole run: a tag's retry budget is
/// a per-run quantity no matter which subset it lands in). Returns false
/// when the framed circle command exhausted its retransmission budget — no
/// tag learned <f, F, r> and the circle never formed.
bool run_ehpp_circle(sim::Session& session, RoundEngine& engine,
                     tags::TagSoA& active, const Ehpp::Config& config,
                     std::size_t subset_target);

}  // namespace rfid::protocols
