#include "fault/fault_model.hpp"

namespace rfid::fault {

const char* to_string(LinkModel model) noexcept {
  switch (model) {
    case LinkModel::kNone:
      return "none";
    case LinkModel::kBernoulli:
      return "bernoulli";
    case LinkModel::kGilbertElliott:
      return "gilbert_elliott";
  }
  return "unknown";
}

const char* to_string(ReaderFaultKind kind) noexcept {
  switch (kind) {
    case ReaderFaultKind::kCrash:
      return "crash";
    case ReaderFaultKind::kStall:
      return "stall";
    case ReaderFaultKind::kRestart:
      return "restart";
  }
  return "unknown";
}

double GilbertElliottParams::stationary_bad() const noexcept {
  const double denom = p_good_to_bad + p_bad_to_good;
  if (denom <= 0.0) return 0.0;  // absorbing chain: stays in the good state
  return p_good_to_bad / denom;
}

double GilbertElliottParams::stationary_loss() const noexcept {
  const double pi_bad = stationary_bad();
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

}  // namespace rfid::fault
