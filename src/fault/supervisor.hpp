// Fleet-level reader supervision: deadline detection, bounded-backoff
// restarts, and the per-reader health state machine.
//
// The paper assumes the reader survives the whole inventory. A warehouse
// deployment does not get that luxury: readers crash, stall behind RF
// interference, and reboot. The supervisor is the deterministic control
// loop that watches a fleet of readers and decides *when* each one is
// healthy, degraded, down, or recovering — it never touches a clock or an
// RNG, only the scheduling-tick counter its caller advances, so the whole
// state machine is unit-testable tick by tick and byte-identical across
// serial and pooled fleet runs.
//
// Responsibilities and non-responsibilities:
//   * detects missed round deadlines (a reader that last made progress more
//     than `degraded_after_ticks` ago degrades; `down_after_ticks` escalates
//     to down) and schedules restarts with bounded exponential backoff;
//   * accepts fault-injector verdicts (note_crash / note_stall /
//     note_spontaneous_restart) from the fleet engine;
//   * records every health transition in a drainable log so the obs layer
//     can synthesize events without the supervisor depending on obs sinks;
//   * does NOT move tags: handoff of a downed reader's undelivered tags is
//     the fleet engine's job (core/multi_reader.hpp), budget-gated by the
//     shared RecoveryCoordinator.
//
// Hot-path contract: with no faults firing, note_round_complete + advance
// allocate nothing (tests/test_alloc_guard.cpp); the transition log only
// grows when health actually changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/health.hpp"

namespace rfid::fault {

/// Deadline and restart policy, in scheduling ticks (one tick = one fleet
/// scheduling step; the fleet engine gives every live reader one round per
/// tick, so ticks are the natural deadline unit).
struct SupervisorConfig final {
  /// Ticks without a completed round before kHealthy -> kDegraded.
  std::uint64_t degraded_after_ticks = 2;
  /// Ticks without a completed round before escalation to kDown.
  std::uint64_t down_after_ticks = 6;
  /// First restart is scheduled this many ticks after going down...
  std::uint64_t backoff_initial_ticks = 1;
  /// ...and each subsequent restart waits multiplier times longer...
  std::uint64_t backoff_multiplier = 2;
  /// ...capped here, so a flapping reader retries forever but slowly.
  std::uint64_t backoff_max_ticks = 16;
  /// Restarts allowed per reader before the supervisor declares it
  /// permanently down and stops scheduling (its tags must be handed off).
  std::uint32_t max_restarts = 8;
};

/// One health-state change, in the order it happened. `tick` is the
/// scheduling tick that triggered the transition.
struct HealthTransition final {
  std::size_t reader = 0;
  std::uint64_t tick = 0;
  obs::ReaderHealth from = obs::ReaderHealth::kHealthy;
  obs::ReaderHealth to = obs::ReaderHealth::kHealthy;
};

class ReaderSupervisor final {
 public:
  ReaderSupervisor(std::size_t readers, const SupervisorConfig& config);

  [[nodiscard]] std::size_t reader_count() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] const SupervisorConfig& config() const noexcept {
    return config_;
  }

  // --- Reader progress and fault-injector verdicts --------------------------

  /// A completed round at `tick` proves liveness: clears the deadline clock,
  /// heals kDegraded back to kHealthy, and confirms kRecovering -> kHealthy.
  void note_round_complete(std::size_t reader, std::uint64_t tick);

  /// Crash fault: the reader goes kDown immediately and a restart is
  /// scheduled with the current backoff (or the reader goes permanently
  /// down once its restart budget is spent).
  void note_crash(std::size_t reader, std::uint64_t tick);

  /// Stall fault applied by the injector (accounting only — the stalled
  /// reader simply stops completing rounds and the deadline machinery
  /// degrades/escalates it like any other silence).
  void note_stall(std::size_t reader);

  /// Spontaneous reboot fault: the reader keeps its tags but loses its
  /// session; health goes kRecovering and the restart counts against the
  /// same bounded budget as supervisor-driven restarts.
  void note_spontaneous_restart(std::size_t reader, std::uint64_t tick);

  // --- Supervisor heartbeat -------------------------------------------------

  /// Deadline sweep at `tick`: degrades silent readers, escalates long
  /// silences to kDown (scheduling a restart), and re-downs a kRecovering
  /// reader whose restart never produced a round. Call once per tick after
  /// the readers ran.
  void advance(std::uint64_t tick);

  /// True when `reader` is kDown with a scheduled restart due at or before
  /// `tick`. The fleet engine then rebuilds the reader and confirms with
  /// begin_restart().
  [[nodiscard]] bool restart_due(std::size_t reader,
                                 std::uint64_t tick) const;

  /// kDown -> kRecovering: consumes one restart from the budget and doubles
  /// the backoff for the next failure (capped). Precondition: restart_due.
  void begin_restart(std::size_t reader, std::uint64_t tick);

  /// True once the reader spent its restart budget: it will never be
  /// scheduled again and its tags must be rehomed.
  [[nodiscard]] bool permanently_down(std::size_t reader) const {
    return slots_[reader].permanent;
  }

  // --- Queries --------------------------------------------------------------

  [[nodiscard]] obs::ReaderHealth health(std::size_t reader) const {
    return slots_[reader].health;
  }
  [[nodiscard]] std::uint64_t crashes(std::size_t reader) const {
    return slots_[reader].crashes;
  }
  [[nodiscard]] std::uint64_t stalls(std::size_t reader) const {
    return slots_[reader].stalls;
  }
  [[nodiscard]] std::uint64_t restarts(std::size_t reader) const {
    return slots_[reader].restarts;
  }

  /// Every transition since the last clear_transitions(), in order.
  [[nodiscard]] const std::vector<HealthTransition>& transitions()
      const noexcept {
    return transitions_;
  }
  void clear_transitions() noexcept { transitions_.clear(); }

 private:
  struct Slot final {
    obs::ReaderHealth health = obs::ReaderHealth::kHealthy;
    std::uint64_t last_progress_tick = 0;
    std::uint64_t restart_at_tick = 0;
    std::uint64_t backoff_ticks = 0;  ///< wait before the *next* restart
    std::uint64_t crashes = 0;
    std::uint64_t stalls = 0;
    std::uint64_t restarts = 0;
    bool restart_scheduled = false;
    bool permanent = false;
  };

  void transition(std::size_t reader, std::uint64_t tick,
                  obs::ReaderHealth to);
  /// Enters kDown and either schedules a restart after the current backoff
  /// or, with the budget spent, marks the reader permanently down.
  void go_down(std::size_t reader, std::uint64_t tick);

  SupervisorConfig config_;
  std::vector<Slot> slots_;
  std::vector<HealthTransition> transitions_;
};

}  // namespace rfid::fault
