#include "fault/supervisor.hpp"

#include <stdexcept>

#include "common/error.hpp"

namespace rfid::fault {

using obs::ReaderHealth;

ReaderSupervisor::ReaderSupervisor(std::size_t readers,
                                   const SupervisorConfig& config)
    : config_(config), slots_(readers) {
  if (readers == 0)
    throw std::invalid_argument("ReaderSupervisor: need >= 1 reader");
  for (Slot& slot : slots_) slot.backoff_ticks = config_.backoff_initial_ticks;
  // Transition bursts are bounded by the fleet size; reserving here keeps
  // the per-tick hot path allocation-free until health actually changes.
  transitions_.reserve(readers * 4);
}

void ReaderSupervisor::transition(std::size_t reader, std::uint64_t tick,
                                  ReaderHealth to) {
  Slot& slot = slots_[reader];
  if (slot.health == to) return;
  transitions_.push_back(HealthTransition{reader, tick, slot.health, to});
  slot.health = to;
}

void ReaderSupervisor::go_down(std::size_t reader, std::uint64_t tick) {
  Slot& slot = slots_[reader];
  transition(reader, tick, ReaderHealth::kDown);
  if (slot.restarts >= config_.max_restarts) {
    slot.permanent = true;
    slot.restart_scheduled = false;
    return;
  }
  slot.restart_scheduled = true;
  slot.restart_at_tick = tick + slot.backoff_ticks;
}

void ReaderSupervisor::note_round_complete(std::size_t reader,
                                           std::uint64_t tick) {
  Slot& slot = slots_[reader];
  slot.last_progress_tick = tick;
  if (slot.health == ReaderHealth::kDegraded ||
      slot.health == ReaderHealth::kRecovering) {
    transition(reader, tick, ReaderHealth::kHealthy);
    // A confirmed recovery resets the backoff ladder: the next failure is a
    // fresh incident, not a continuation of the last flap.
    slot.backoff_ticks = config_.backoff_initial_ticks;
  }
}

void ReaderSupervisor::note_crash(std::size_t reader, std::uint64_t tick) {
  Slot& slot = slots_[reader];
  ++slot.crashes;
  go_down(reader, tick);
}

void ReaderSupervisor::note_stall(std::size_t reader) {
  ++slots_[reader].stalls;
}

void ReaderSupervisor::note_spontaneous_restart(std::size_t reader,
                                                std::uint64_t tick) {
  Slot& slot = slots_[reader];
  if (slot.permanent) return;
  ++slot.restarts;
  slot.last_progress_tick = tick;  // reboot grace: deadline restarts too
  transition(reader, tick, ReaderHealth::kRecovering);
}

// rfidlint: hotpath(supervisor-advance)
void ReaderSupervisor::advance(std::uint64_t tick) {
  for (std::size_t r = 0; r < slots_.size(); ++r) {
    Slot& slot = slots_[r];
    if (slot.permanent) continue;
    const std::uint64_t silent = tick >= slot.last_progress_tick
                                     ? tick - slot.last_progress_tick
                                     : 0;
    switch (slot.health) {
      case ReaderHealth::kHealthy:
        if (silent >= config_.down_after_ticks)
          go_down(r, tick);
        else if (silent >= config_.degraded_after_ticks)
          transition(r, tick, ReaderHealth::kDegraded);
        break;
      case ReaderHealth::kDegraded:
        if (silent >= config_.down_after_ticks) go_down(r, tick);
        break;
      case ReaderHealth::kRecovering:
        // The restart never produced a round: treat it as a failed attempt
        // and go back down, consuming another slice of the backoff ladder.
        if (silent >= config_.down_after_ticks) go_down(r, tick);
        break;
      case ReaderHealth::kDown:
        break;  // waiting on restart_due / begin_restart
    }
  }
}

bool ReaderSupervisor::restart_due(std::size_t reader,
                                   std::uint64_t tick) const {
  const Slot& slot = slots_[reader];
  return slot.health == ReaderHealth::kDown && slot.restart_scheduled &&
         !slot.permanent && tick >= slot.restart_at_tick;
}

void ReaderSupervisor::begin_restart(std::size_t reader, std::uint64_t tick) {
  Slot& slot = slots_[reader];
  RFID_EXPECTS(restart_due(reader, tick));
  slot.restart_scheduled = false;
  ++slot.restarts;
  slot.last_progress_tick = tick;  // fresh deadline window for the reboot
  slot.backoff_ticks = slot.backoff_ticks * config_.backoff_multiplier;
  if (slot.backoff_ticks > config_.backoff_max_ticks ||
      slot.backoff_ticks == 0)
    slot.backoff_ticks = config_.backoff_max_ticks;
  transition(reader, tick, ReaderHealth::kRecovering);
}

}  // namespace rfid::fault
