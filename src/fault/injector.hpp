// Deterministic executor of a FaultConfig.
//
// The injector sits between the channel and the session: the session asks it
// two questions — "is this reply garbled?" (once per decode attempt) and
// "is this tag currently in the field?" (once per presence check) — and
// advances it at round boundaries so scheduled churn takes effect. All
// randomness comes from a private xoshiro stream derived from the session
// seed, never from the session's own stream; a disabled injector draws
// nothing, which is what keeps zero-fault runs byte-identical to builds
// without the fault layer.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/tag_id.hpp"
#include "fault/fault_model.hpp"

namespace rfid::fault {

class FaultInjector final {
 public:
  /// Disabled injector: never corrupts, never hides a tag, draws nothing.
  FaultInjector() = default;

  /// Builds the injector for `config`, seeding its private RNG stream with
  /// `seed` (callers derive it from the session seed; see derive_seed).
  FaultInjector(FaultConfig config, std::uint64_t seed);

  [[nodiscard]] bool link_active() const noexcept {
    return config_.link_enabled();
  }
  [[nodiscard]] bool ber_active() const noexcept {
    return config_.ber_enabled();
  }
  [[nodiscard]] bool churn_active() const noexcept {
    return config_.churn_enabled();
  }

  /// One decode attempt: samples the configured link model (stepping the
  /// Gilbert–Elliott chain) and returns true when the reply is garbled.
  [[nodiscard]] bool corrupt_reply() noexcept;

  /// One downlink transmission of `bits` payload bits: returns true when at
  /// least one bit flips. A single aggregate draw against
  /// 1 - (1 - ber)^bits — the detect/retransmit machinery only needs the
  /// any-flip event, and one draw per frame keeps the fault stream cheap and
  /// its consumption independent of frame length. Draws nothing at BER 0.
  [[nodiscard]] bool corrupt_downlink(std::size_t bits) noexcept;

  /// Applies every churn event scheduled at or before `round` (1-based
  /// session rounds; the session calls this from begin_round).
  void advance_to_round(std::uint64_t round);

  /// False while churn currently has the tag outside the field. Tags whose
  /// first scheduled event is an arrival start absent.
  [[nodiscard]] bool present(const TagId& id) const {
    return !churn_active() || !absent_.contains(id);
  }

  /// Current Gilbert–Elliott state (tests/diagnostics).
  [[nodiscard]] bool in_bad_state() const noexcept { return bad_state_; }

  // --- Reader-level faults (fleet runs; see core/multi_reader.hpp) ----------

  /// Arms the reader-fault process for one reader, seeding its dedicated
  /// stream with `seed` (callers derive it per reader so fleet schedules are
  /// independent of channel-fault consumption). A config with all
  /// probabilities zero never draws.
  void arm_reader_faults(const ReaderFaultConfig& config, std::uint64_t seed);

  [[nodiscard]] bool reader_faults_active() const noexcept {
    return reader_faults_.enabled();
  }

  /// One scheduling tick of the reader-fault process: at most one fault per
  /// tick, most severe wins (crash > restart > stall). Exactly one draw per
  /// armed probability per tick regardless of outcome, so the stream's
  /// consumption — and therefore every later draw — is a pure function of
  /// the tick count, never of which faults happened to fire.
  [[nodiscard]] std::optional<ReaderFaultEvent> sample_reader_fault();

 private:
  FaultConfig config_{};  ///< churn sorted by round (stable) at construction
  Xoshiro256ss fault_rng_{0};
  ReaderFaultConfig reader_faults_{};
  Xoshiro256ss reader_fault_rng_{0};
  bool bad_state_ = false;  ///< Gilbert–Elliott chain starts good
  std::size_t next_event_ = 0;
  /// Membership-only (insert/erase/contains) and never iterated, so a hash
  /// set is safe here — see the unordered-iteration rule in tools/rfidlint.
  std::unordered_set<TagId, TagIdHash> absent_;
};

}  // namespace rfid::fault
