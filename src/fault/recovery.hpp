// Reader-side recovery coordination: retry budgets, recovery scopes, the
// end-of-round mop-up loop, and the bounded init-failure ladder.
//
// Everything stateful about "how often may the reader keep trying" lives
// here, in one coordinator, so the hash-polling family shares a single
// implementation instead of each protocol re-growing its own copy:
//   - the per-tag retry budget (formerly RecoveryTracker),
//   - the recovery scope that redirects phase accounting to
//     obs::Phase::kRecovery (formerly sim::Session::RecoveryScope),
//   - the multi-pass mop-up sweep (formerly protocols::run_recovery_mop_up),
//   - the init-failure ladder that bounds consecutive undeliverable round
//     commands before abandoning loudly (formerly copy-pasted across
//     HPP/EHPP/TPP/ADAPT).
// The coordinator stays protocol- and session-agnostic: airtime and result
// reporting go through the narrow RecoveryHost interface the session
// implements, and the mop-up is a template over "identify tag i" and
// "re-poll tag i" callables supplied by the round engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/tag_id.hpp"
#include "fault/fault_model.hpp"

namespace rfid::fault {

/// What the coordinator needs from the session: toggling the
/// recovery-phase attribution and reporting budget-exhausted tags.
/// Implemented by sim::Session.
class RecoveryHost {
 public:
  /// Begins/ends attributing all airtime to obs::Phase::kRecovery.
  virtual void recovery_phase_begin() = 0;
  virtual void recovery_phase_end() = 0;
  /// Records that the recovery policy abandoned `id` (budget exhausted).
  virtual void mark_undelivered(const TagId& id) = 0;

 protected:
  ~RecoveryHost() = default;
};

class RecoveryCoordinator final {
 public:
  explicit RecoveryCoordinator(const RecoveryConfig& config)
      : config_(config) {}

  [[nodiscard]] bool active() const noexcept { return config_.enabled; }
  [[nodiscard]] const RecoveryConfig& config() const noexcept {
    return config_;
  }

  /// Consumes one retry attempt for `id`. Returns true while the tag's
  /// budget allows another re-poll; false once it is exhausted (the caller
  /// must then report the tag undelivered). Attempts are counted per tag
  /// over the whole run, so a tag that fails across several rounds exhausts
  /// the same budget a tag failing repeatedly within one mop-up would.
  [[nodiscard]] bool take_attempt(const TagId& id) {
    std::uint32_t& used = attempts_[id];
    if (used >= config_.retry_budget) return false;
    ++used;
    return true;
  }

  /// Recovery attempts consumed by `id` so far.
  [[nodiscard]] std::uint32_t attempts(const TagId& id) const {
    const auto it = attempts_.find(id);
    return it == attempts_.end() ? 0u : it->second;
  }

  [[nodiscard]] bool exhausted(const TagId& id) const {
    return attempts(id) >= config_.retry_budget;
  }

  /// While a scope is open every phase increment on the host — vector,
  /// turn-around, reply, timeout — is attributed to obs::Phase::kRecovery
  /// and every poll counts as a retry; the clock itself advances exactly as
  /// it would outside the scope. Scopes must not nest: the destructor
  /// unconditionally ends the recovery phase, so a nested scope would
  /// silently stop the attribution when the inner scope closes. Nesting
  /// therefore trips an RFID_EXPECTS contract violation at construction.
  class Scope final {
   public:
    Scope(RecoveryCoordinator& coordinator, RecoveryHost& host)
        : coordinator_(coordinator), host_(host) {
      RFID_EXPECTS(coordinator_.scope_depth_ == 0);
      ++coordinator_.scope_depth_;
      host_.recovery_phase_begin();
    }
    ~Scope() {
      --coordinator_.scope_depth_;
      host_.recovery_phase_end();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RecoveryCoordinator& coordinator_;
    RecoveryHost& host_;
  };

  /// End-of-round recovery mop-up, shared by the hash-polling family
  /// (HPP/EHPP rounds and TPP's tree rounds). Re-polls the device indices
  /// listed in `pending` for up to config().mop_up_passes sweeps inside a
  /// recovery Scope (airtime lands in obs::Phase::kRecovery); every re-poll
  /// first consumes one unit of the tag's retry budget, and a tag that runs
  /// out is reported via RecoveryHost::mark_undelivered and marked done.
  /// `id_of(i)` maps a device index to its TagId; `poll_one(i)` issues one
  /// re-poll and returns true when the tag was read. On return `pending`
  /// holds the tags still failed but within budget; they stay active for
  /// the next round. The pass-local scratch is a coordinator member so
  /// steady-state mop-ups allocate nothing.
  template <typename IdOf, typename PollOne>
  void mop_up(RecoveryHost& host, std::vector<char>& done,
              std::vector<std::size_t>& pending, IdOf&& id_of,
              PollOne&& poll_one) {
    if (pending.empty()) return;
    Scope scope(*this, host);
    for (std::uint32_t pass = 0;
         pass < config_.mop_up_passes && !pending.empty(); ++pass) {
      still_.clear();
      for (const std::size_t i : pending) {
        const TagId id = id_of(i);
        if (!take_attempt(id)) {
          host.mark_undelivered(id);
          done[i] = 1;
          continue;
        }
        if (poll_one(i))
          done[i] = 1;
        else
          still_.push_back(i);
      }
      pending.swap(still_);
    }
    // A tag that burned its last attempt on the final pass has no budget
    // left for future rounds: give up now rather than keep scheduling it.
    for (const std::size_t i : pending) {
      const TagId id = id_of(i);
      if (!exhausted(id)) continue;
      host.mark_undelivered(id);
      done[i] = 1;
    }
  }

  /// Bounded give-up-loudly ladder for undeliverable framed init commands
  /// (round init, circle command). One instance per round/circle loop; EHPP
  /// runs two independent ladders (circle-level and the inner HPP rounds).
  /// Usage: note_success() after a round that ran; note_failure() after one
  /// whose init broadcast exhausted its retransmission budget — it returns
  /// true once the number of consecutive failures exceeds the budget and
  /// the caller must abandon everything still unread.
  class InitLadder final {
   public:
    explicit InitLadder(std::uint32_t budget) noexcept : budget_(budget) {}

    void note_success() noexcept { failures_ = 0; }

    [[nodiscard]] bool note_failure() noexcept {
      return ++failures_ > budget_;
    }

   private:
    std::uint32_t budget_;
    std::uint32_t failures_ = 0;
  };

 private:
  RecoveryConfig config_;
  /// Ordered on purpose: should a future diagnostic ever walk the retry
  /// ledger (dumping per-tag attempts into a report), the iteration order
  /// is the ID order, not the hash order — deterministic by construction.
  std::map<TagId, std::uint32_t> attempts_;
  std::vector<std::size_t> still_;  ///< mop-up pass scratch (reused)
  std::uint32_t scope_depth_ = 0;
};

}  // namespace rfid::fault
