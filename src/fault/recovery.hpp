// Per-tag retry bookkeeping for reader-side recovery.
//
// The recovery policy itself (when to re-poll, how the airtime is charged)
// lives in the protocols and the session; this tracker answers the one
// stateful question they share: "may this tag be retried again, and if not,
// who ran out of budget?". Attempts are counted per tag over the whole run,
// so a tag that fails across several rounds exhausts the same budget a
// tag failing repeatedly within one mop-up would.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/tag_id.hpp"
#include "fault/fault_model.hpp"

namespace rfid::fault {

class RecoveryTracker final {
 public:
  explicit RecoveryTracker(const RecoveryConfig& config) : config_(config) {}

  [[nodiscard]] bool active() const noexcept { return config_.enabled; }
  [[nodiscard]] const RecoveryConfig& config() const noexcept {
    return config_;
  }

  /// Consumes one retry attempt for `id`. Returns true while the tag's
  /// budget allows another re-poll; false once it is exhausted (the caller
  /// must then report the tag undelivered).
  [[nodiscard]] bool take_attempt(const TagId& id) {
    std::uint32_t& used = attempts_[id];
    if (used >= config_.retry_budget) return false;
    ++used;
    return true;
  }

  /// Recovery attempts consumed by `id` so far.
  [[nodiscard]] std::uint32_t attempts(const TagId& id) const {
    const auto it = attempts_.find(id);
    return it == attempts_.end() ? 0u : it->second;
  }

  [[nodiscard]] bool exhausted(const TagId& id) const {
    return attempts(id) >= config_.retry_budget;
  }

 private:
  RecoveryConfig config_;
  std::unordered_map<TagId, std::uint32_t, TagIdHash> attempts_;
};

}  // namespace rfid::fault
