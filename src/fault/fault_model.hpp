// Structured fault models for the air interface.
//
// The paper proves its guarantees over a clean channel: every broadcast
// vector elicits exactly one decoded reply. Real C1G2 links break that
// assumption in two structured ways that a per-slot Bernoulli flip cannot
// express: decode errors arrive in *bursts* (a reader next to a conveyor or
// a forklift sees whole seconds of bad SNR), and the population itself
// *churns* — tags leave the interrogation zone mid-run and new ones arrive.
// This header declares the fault plan a session executes:
//
//   * LinkModel       — per-reply decode errors: none, i.i.d. Bernoulli, or
//                       a two-state Gilbert–Elliott burst process;
//   * ChurnEvent      — a tag departing or (re)entering the field at a
//                       configured round boundary;
//   * FaultConfig     — the declarative plan (link model + churn schedule);
//   * RecoveryConfig  — the reader-side answer: bounded re-polls with a
//                       per-tag retry budget and end-of-round mop-up passes.
//
// The plan is executed by fault::FaultInjector, which draws from a dedicated
// RNG stream derived from the session seed. A disabled plan never touches
// any RNG, so zero-fault runs stay byte-identical to a build without the
// fault layer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/tag_id.hpp"

namespace rfid::fault {

/// Per-reply decode-error process applied by the injector.
enum class LinkModel : std::uint8_t {
  kNone,            ///< clean channel (the paper's assumption)
  kBernoulli,       ///< i.i.d. loss with probability `bernoulli_loss`
  kGilbertElliott,  ///< two-state burst-error channel (good/bad)
};

[[nodiscard]] const char* to_string(LinkModel model) noexcept;

/// Two-state Markov burst-error channel (Gilbert 1960, Elliott 1963). The
/// chain steps once per decode attempt; each state garbles the reply with
/// its own loss probability. Defaults model occasional multi-reply fades.
struct GilbertElliottParams final {
  double p_good_to_bad = 0.05;  ///< P(good -> bad) per decode attempt
  double p_bad_to_good = 0.40;  ///< P(bad -> good) per decode attempt
  double loss_good = 0.0;       ///< P(reply garbled | good state)
  double loss_bad = 0.75;       ///< P(reply garbled | bad state)

  /// Stationary probability of the bad state: p / (p + r).
  [[nodiscard]] double stationary_bad() const noexcept;

  /// Closed-form long-run loss rate:
  ///   (1 - pi_bad) * loss_good + pi_bad * loss_bad.
  [[nodiscard]] double stationary_loss() const noexcept;
};

/// One population-churn event, applied when the session begins the first
/// round with number >= `round` (session rounds are 1-based). A tag whose
/// *first* scheduled event is an arrival starts the run outside the field.
struct ChurnEvent final {
  enum class Kind : std::uint8_t { kDepart, kArrive };

  std::uint64_t round = 0;
  TagId id{};
  Kind kind = Kind::kDepart;
};

/// Declarative fault plan for one session. Value type: copying a
/// SessionConfig copies the plan, so parallel trials replay identically.
struct FaultConfig final {
  LinkModel link = LinkModel::kNone;
  double bernoulli_loss = 0.0;      ///< used when link == kBernoulli
  /// Used when link == kGilbertElliott.
  GilbertElliottParams gilbert_elliott{};
  /// Per-bit flip probability on the reader->tag *downlink* payload. Unlike
  /// the uplink link models above (whole-reply decode errors), this corrupts
  /// the broadcast vector itself: without framing a single flipped bit
  /// desynchronizes TPP's differential tree for the rest of the round. Drawn
  /// from the injector's private stream, so 0.0 draws nothing.
  double downlink_ber = 0.0;
  /// Churn schedule; order-insensitive (the injector sorts by round,
  /// stable). Honoured by protocols that re-evaluate presence per poll
  /// (the hash-polling family: HPP/EHPP/TPP); snapshot-based baselines see
  /// only the initial state.
  std::vector<ChurnEvent> churn;

  [[nodiscard]] bool link_enabled() const noexcept {
    return link != LinkModel::kNone;
  }
  [[nodiscard]] bool ber_enabled() const noexcept {
    return downlink_ber > 0.0;
  }
  [[nodiscard]] bool churn_enabled() const noexcept { return !churn.empty(); }
  [[nodiscard]] bool enabled() const noexcept {
    return link_enabled() || ber_enabled() || churn_enabled();
  }
};

/// Reader-level fault taxonomy for fleet runs (core/multi_reader.hpp).
/// These faults hit the *reader*, not the channel: the link models above
/// garble individual replies, these take a whole interrogator out.
enum class ReaderFaultKind : std::uint8_t {
  kCrash,    ///< reader dies; volatile session state lost, tags need rehoming
  kStall,    ///< latency spike: alive but missing round deadlines for a while
  kRestart,  ///< spontaneous reboot: keeps its tag assignment, loses session
};

[[nodiscard]] const char* to_string(ReaderFaultKind kind) noexcept;

/// One sampled reader fault, returned by FaultInjector::sample_reader_fault
/// at a scheduling tick. `stall_ticks` is meaningful only for kStall.
struct ReaderFaultEvent final {
  ReaderFaultKind kind = ReaderFaultKind::kCrash;
  std::uint64_t stall_ticks = 0;
};

/// Per-reader fault process, sampled once per scheduling tick from the
/// injector's dedicated reader-fault stream. All probabilities are per tick;
/// a disabled config (all zero) never draws, so fault-free fleet runs stay
/// byte-identical to builds without reader faults. When several faults fire
/// on the same tick the most severe wins: crash > restart > stall.
struct ReaderFaultConfig final {
  double crash_per_tick = 0.0;    ///< P(crash) per scheduling tick
  double stall_per_tick = 0.0;    ///< P(stall begins) per scheduling tick
  double restart_per_tick = 0.0;  ///< P(spontaneous reboot) per tick
  /// Stall duration drawn uniformly from [stall_ticks_min, stall_ticks_max].
  std::uint64_t stall_ticks_min = 2;
  std::uint64_t stall_ticks_max = 6;

  [[nodiscard]] bool enabled() const noexcept {
    return crash_per_tick > 0.0 || stall_per_tick > 0.0 ||
           restart_per_tick > 0.0;
  }
};

/// Reader-side recovery policy for the hash-polling family. When enabled,
/// a failed poll (garbled reply or timeout) parks the tag for the current
/// round's mop-up instead of abandoning it; each mop-up re-poll consumes
/// one unit of the tag's retry budget and is charged to the recovery phase
/// of the time breakdown. A tag whose budget runs out is reported in the
/// run's undelivered set — the reader gives up loudly, never silently.
struct RecoveryConfig final {
  bool enabled = false;
  /// Total recovery re-polls allowed per tag over the whole run.
  std::uint32_t retry_budget = 8;
  /// Sweeps over this round's failed tags before the next round starts.
  std::uint32_t mop_up_passes = 2;
};

}  // namespace rfid::fault
