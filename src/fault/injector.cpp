#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

namespace rfid::fault {

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t seed)
    : config_(std::move(config)), fault_rng_(seed) {
  // Stable sort keeps same-round events in schedule order, so "depart at 5,
  // re-arrive at 5" behaves as written.
  std::stable_sort(config_.churn.begin(), config_.churn.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.round < b.round;
                   });
  // A tag whose first scheduled event is an arrival starts outside the
  // field; one that departs first starts inside it. Decided in schedule
  // order with an ordered seen-set: no hash-order iteration feeds state.
  TagIdSet seen;
  for (const ChurnEvent& event : config_.churn) {
    if (!seen.insert(event.id).second) continue;
    if (event.kind == ChurnEvent::Kind::kArrive) absent_.insert(event.id);
  }
}

// rfidlint: rng-position-pure(corrupt-reply)
bool FaultInjector::corrupt_reply() noexcept {
  switch (config_.link) {
    case LinkModel::kNone:
      return false;
    case LinkModel::kBernoulli:
      return config_.bernoulli_loss > 0.0 &&
             fault_rng_.bernoulli(config_.bernoulli_loss);
    case LinkModel::kGilbertElliott: {
      const GilbertElliottParams& ge = config_.gilbert_elliott;
      // The current state decides this reply's fate; then the chain steps,
      // so burst lengths are geometric in decode attempts.
      const double loss = bad_state_ ? ge.loss_bad : ge.loss_good;
      const bool lost = loss > 0.0 && fault_rng_.bernoulli(loss);
      const double flip = bad_state_ ? ge.p_bad_to_good : ge.p_good_to_bad;
      if (flip > 0.0 && fault_rng_.bernoulli(flip)) bad_state_ = !bad_state_;
      return lost;
    }
  }
  return false;
}

// rfidlint: rng-position-pure(corrupt-downlink)
bool FaultInjector::corrupt_downlink(std::size_t bits) noexcept {
  if (config_.downlink_ber <= 0.0 || bits == 0) return false;
  if (config_.downlink_ber >= 1.0) return true;
  const double p_clean =
      std::pow(1.0 - config_.downlink_ber, static_cast<double>(bits));
  return fault_rng_.bernoulli(1.0 - p_clean);
}

void FaultInjector::arm_reader_faults(const ReaderFaultConfig& config,
                                      std::uint64_t seed) {
  reader_faults_ = config;
  reader_fault_rng_.reseed(seed);
}

// rfidlint: rng-position-pure(sample-reader-fault)
std::optional<ReaderFaultEvent> FaultInjector::sample_reader_fault() {
  if (!reader_faults_.enabled()) return std::nullopt;
  // Fixed draw order and one draw per armed probability per tick: the
  // stream position after N ticks depends only on N and the config, so a
  // resumed run's schedule matches an uninterrupted one's exactly.
  const bool crash = reader_faults_.crash_per_tick > 0.0 &&
                     reader_fault_rng_.bernoulli(reader_faults_.crash_per_tick);
  const bool restart =
      reader_faults_.restart_per_tick > 0.0 &&
      reader_fault_rng_.bernoulli(reader_faults_.restart_per_tick);
  const bool stall = reader_faults_.stall_per_tick > 0.0 &&
                     reader_fault_rng_.bernoulli(reader_faults_.stall_per_tick);
  std::uint64_t stall_ticks = 0;
  if (reader_faults_.stall_per_tick > 0.0) {
    // Duration is drawn whenever stalls are armed — even on no-stall ticks —
    // so the invariant above stays exact.
    const std::uint64_t lo = reader_faults_.stall_ticks_min;
    const std::uint64_t hi = reader_faults_.stall_ticks_max < lo
                                 ? lo
                                 : reader_faults_.stall_ticks_max;
    stall_ticks = lo + (hi == lo ? 0 : reader_fault_rng_.below(hi - lo + 1));
  }
  if (crash) return ReaderFaultEvent{ReaderFaultKind::kCrash, 0};
  if (restart) return ReaderFaultEvent{ReaderFaultKind::kRestart, 0};
  if (stall) return ReaderFaultEvent{ReaderFaultKind::kStall, stall_ticks};
  return std::nullopt;
}

void FaultInjector::advance_to_round(std::uint64_t round) {
  while (next_event_ < config_.churn.size() &&
         config_.churn[next_event_].round <= round) {
    const ChurnEvent& event = config_.churn[next_event_];
    if (event.kind == ChurnEvent::Kind::kDepart)
      absent_.insert(event.id);
    else
      absent_.erase(event.id);
    ++next_event_;
  }
}

}  // namespace rfid::fault
