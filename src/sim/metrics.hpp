// Forwarding header: the Metrics struct moved down into the obs layer
// (obs/metrics.hpp) so the streaming telemetry path can fold per-round
// deltas without an upward dependency on sim. Everything above keeps
// spelling it sim::Metrics; the alias below makes that spelling exact —
// sim::Metrics and obs::Metrics are one type, not a copy.
#pragma once

#include "obs/metrics.hpp"

namespace rfid::sim {

using Metrics = obs::Metrics;

}  // namespace rfid::sim
