#include "sim/session.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rfid::sim {

// Accounting discipline: every site computes its clock increment as a named
// `dt` built from the exact expression the metrics always used (evaluation
// order preserved, so seeded runs are byte-identical to the pre-tracing
// code), adds it once to metrics_.time_us, splits it across phases, and —
// only behind a branch on the null tracer pointer — emits one trace event
// whose duration_us is that same double. A trace therefore replays into the
// Metrics totals exactly (see docs/observability.md).

namespace {
/// Domain-separation index for the fault injector's RNG stream: far outside
/// any realistic trial index, so the injector's stream never collides with
/// the per-trial seeds derive_seed hands out.
constexpr std::uint64_t kFaultStreamIndex = 0xFA17'0000'0000'0001ull;
}  // namespace

Session::Session(const tags::TagPopulation& population, SessionConfig config)
    : population_(&population),
      config_(std::move(config)),
      rng_(config_.seed),
      injector_(config_.fault, derive_seed(config_.seed, kFaultStreamIndex)) {
  // A recovery policy with no mop-up passes can never consume any retry
  // budget, so an absent tag would be rescheduled forever; reject the
  // configuration up front instead of spinning until the round cap trips.
  RFID_EXPECTS(!config_.recovery.enabled || config_.recovery.mop_up_passes > 0);
  if (config_.keep_records) records_.reserve(population.size());
}

void Session::trace_event(obs::EventKind kind, double duration_us,
                          std::uint64_t vector_bits,
                          std::uint64_t command_bits, std::uint64_t tag_bits,
                          double reader_us, double tag_us,
                          std::uint64_t detail) {
  obs::Event event;
  event.kind = kind;
  event.round = metrics_.rounds;
  event.circle = metrics_.circles;
  event.vector_bits = vector_bits;
  event.command_bits = command_bits;
  event.tag_bits = tag_bits;
  event.time_us = metrics_.time_us;
  event.duration_us = duration_us;
  event.reader_us = reader_us;
  event.tag_us = tag_us;
  event.detail = detail;
  config_.tracer->emit(event);
}

void Session::broadcast_vector_bits(std::size_t bits) {
  const double dt = config_.timing.reader_tx_us(bits);
  metrics_.vector_bits += bits;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kReaderVector, dt);
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kReaderBroadcast, dt, bits, 0, 0, dt, 0.0);
}

void Session::broadcast_command_bits(std::size_t bits) {
  const double dt = config_.timing.reader_tx_us(bits);
  metrics_.command_bits += bits;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kCommand, dt);
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kReaderBroadcast, dt, 0, bits, 0, dt, 0.0);
}

bool Session::is_present(const TagId& id) const noexcept {
  return (config_.present == nullptr || config_.present->contains(id)) &&
         injector_.present(id);
}

const tags::Tag* Session::complete_reply(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected,
    double reader_time_us) {
  if (in_recovery_) ++metrics_.retries;
  const air::SlotResult slot = channel_.arbitrate(responders);
  if (slot.outcome == air::SlotOutcome::kEmpty && expected != nullptr &&
      !is_present(expected->id())) {
    // The addressed tag is physically absent: the reader waits out the
    // turn-arounds, decodes nothing, and flags the tag missing. Under a
    // recovery policy the verdict is deferred — the tag may churn back into
    // the field — so the per-poll missing record is suppressed and the
    // protocol's tracker decides between re-poll and undelivered.
    const double dt =
        reader_time_us + config_.timing.t1_us + config_.timing.t2_us;
    metrics_.time_us += dt;
    add_phase(obs::Phase::kWastedSlot, dt);
    ++metrics_.missing;
    ++metrics_.slots_total;
    ++metrics_.slots_wasted;
    if (config_.keep_records && !config_.recovery.enabled)
      missing_ids_.push_back(expected->id());
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kTimeout, dt, 0, 0, 0, reader_time_us, 0.0);
    last_failure_ = PollFailure::kAbsent;
    return nullptr;
  }
  if (slot.outcome != air::SlotOutcome::kSingleton) {
    throw ProtocolError(
        "poll did not elicit exactly one reply (responders: " +
        std::to_string(slot.responder_count) + ")");
  }
  if (expected != nullptr && slot.responder != expected) {
    throw ProtocolError("responding tag differs from the reader's target: " +
                        slot.responder->id().to_hex() + " vs " +
                        expected->id().to_hex());
  }
  const double tag_us = config_.timing.tag_tx_us(config_.info_bits);
  // Decode-error decision. The legacy Bernoulli knob draws from the session
  // stream exactly as it always has; the structured link models draw from
  // the injector's private stream, so enabling them (or leaving everything
  // off) does not perturb the session's own sequence of draws.
  bool garbled = config_.reply_error_rate > 0.0 &&
                 rng_.bernoulli(config_.reply_error_rate);
  if (!garbled && injector_.link_active()) garbled = injector_.corrupt_reply();
  if (garbled) {
    // Reply garbled in flight: the full interaction airtime is spent, the
    // PHY CRC rejects the decode, and with no ACK the tag stays awake for
    // a later round.
    const double dt = reader_time_us + config_.timing.t1_us +
                      config_.timing.tag_tx_us(config_.info_bits) +
                      config_.timing.t2_us;
    metrics_.time_us += dt;
    add_phase(obs::Phase::kWastedSlot, dt);
    ++metrics_.corrupted;
    ++metrics_.slots_total;
    ++metrics_.slots_wasted;
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kCorrupted, dt, 0, 0, 0, reader_time_us,
                  tag_us);
    last_failure_ = PollFailure::kGarbledReply;
    return nullptr;
  }
  const double dt = reader_time_us + config_.timing.t1_us +
                    config_.timing.tag_tx_us(config_.info_bits) +
                    config_.timing.t2_us;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kReaderVector, reader_time_us);
  add_phase(obs::Phase::kTurnaround,
            config_.timing.t1_us + config_.timing.t2_us);
  add_phase(obs::Phase::kTagReply, tag_us);
  metrics_.tag_bits += config_.info_bits;
  ++metrics_.polls;
  ++metrics_.slots_total;
  ++metrics_.slots_useful;
  if (config_.keep_records) {
    records_.push_back(
        CollectedRecord{slot.responder->id(),
                        slot.responder->reply_payload(config_.info_bits)});
  }
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kReply, dt, 0, 0, config_.info_bits,
                reader_time_us, tag_us);
  last_failure_ = PollFailure::kNone;
  return slot.responder;
}

const tags::Tag* Session::poll(std::span<const tags::Tag* const> responders,
                               const tags::Tag* expected,
                               std::size_t vector_bits) {
  if (config_.framing.enabled && vector_bits > 0) {
    // The vector travels through the framed downlink (its own bit and time
    // accounting); the poll itself then carries only the QueryRep.
    if (!broadcast_framed(vector_bits, /*count_in_w=*/true)) {
      last_failure_ = PollFailure::kDownlinkExhausted;
      return nullptr;
    }
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kPoll, 0.0, 0, 0, 0, 0.0, 0.0);
    return complete_reply(
        responders, expected,
        config_.timing.reader_tx_us(config_.timing.query_rep_bits));
  }
  metrics_.vector_bits += vector_bits;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, vector_bits, 0, 0, 0.0, 0.0);
  const double reader_us = config_.timing.reader_tx_us(
      config_.timing.query_rep_bits + vector_bits);
  if (unframed_downlink_corrupts(vector_bits)) {
    downlink_corrupt_timeout(reader_us);
    return nullptr;
  }
  return complete_reply(responders, expected, reader_us);
}

const tags::Tag* Session::poll_bare(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected,
    std::size_t vector_bits) {
  if (config_.framing.enabled && vector_bits > 0) {
    if (!broadcast_framed(vector_bits, /*count_in_w=*/true)) {
      last_failure_ = PollFailure::kDownlinkExhausted;
      return nullptr;
    }
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kPoll, 0.0, 0, 0, 0, 0.0, 0.0);
    return complete_reply(responders, expected, /*reader_time_us=*/0.0);
  }
  metrics_.vector_bits += vector_bits;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, vector_bits, 0, 0, 0.0, 0.0);
  const double reader_us = config_.timing.reader_tx_us(vector_bits);
  if (unframed_downlink_corrupts(vector_bits)) {
    downlink_corrupt_timeout(reader_us);
    return nullptr;
  }
  return complete_reply(responders, expected, reader_us);
}

bool Session::unframed_downlink_corrupts(std::size_t vector_bits) {
  if (vector_bits == 0 || !injector_.ber_active()) return false;
  ++downlink_attempts_;
  downlink_attempt_bits_ += vector_bits;
  if (!injector_.corrupt_downlink(vector_bits)) return false;
  ++downlink_failures_;
  return true;
}

void Session::downlink_corrupt_timeout(double reader_time_us) {
  if (in_recovery_) ++metrics_.retries;
  const double dt =
      reader_time_us + config_.timing.t1_us + config_.timing.t2_us;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kWastedSlot, dt);
  ++metrics_.downlink_corrupted;
  ++metrics_.slots_total;
  ++metrics_.slots_wasted;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kTimeout, dt, 0, 0, 0, reader_time_us, 0.0,
                /*detail=*/1);
  last_failure_ = PollFailure::kDownlinkCorrupted;
}

void Session::poll_unanswered(std::size_t vector_bits) {
  metrics_.vector_bits += vector_bits;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, vector_bits, 0, 0, 0.0, 0.0);
  const double reader_us = config_.timing.reader_tx_us(
      config_.timing.query_rep_bits + vector_bits);
  const double dt = reader_us + config_.timing.t1_us + config_.timing.t2_us;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kWastedSlot, dt);
  ++metrics_.slots_total;
  ++metrics_.slots_wasted;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kTimeout, dt, 0, 0, 0, reader_us, 0.0,
                /*detail=*/2);
}

bool Session::broadcast_framed(std::size_t payload_bits, bool count_in_w) {
  RFID_EXPECTS(config_.framing.enabled);
  const phy::FramingConfig& framing = config_.framing;
  RFID_EXPECTS(framing.segment_payload_bits >= 1);
  const unsigned max_attempts = 1 + framing.max_retransmissions;
  std::size_t remaining = payload_bits;
  std::uint64_t seq = 0;
  while (remaining > 0) {
    const std::size_t seg =
        std::min<std::size_t>(remaining, framing.segment_payload_bits);
    const std::size_t frame_bits = seg + phy::kSegmentOverheadBits;
    bool delivered = false;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt == 1) {
        // First attempt: payload accounted as the unframed broadcast would
        // have been, the <seq><crc16> wrapper as command overhead.
        const double dt = config_.timing.reader_tx_us(frame_bits);
        const double payload_us = config_.timing.reader_tx_us(seg);
        if (count_in_w)
          metrics_.vector_bits += seg;
        else
          metrics_.command_bits += seg;
        metrics_.command_bits += phy::kSegmentOverheadBits;
        metrics_.framing_overhead_bits += phy::kSegmentOverheadBits;
        ++metrics_.segments_sent;
        metrics_.time_us += dt;
        add_phase(count_in_w ? obs::Phase::kReaderVector : obs::Phase::kCommand,
                  payload_us);
        add_phase(obs::Phase::kCommand, dt - payload_us);
        if (config_.tracer != nullptr)
          trace_event(obs::EventKind::kReaderBroadcast, dt,
                      count_in_w ? seg : 0,
                      (count_in_w ? 0 : seg) + phy::kSegmentOverheadBits, 0,
                      dt, 0.0, seq);
      } else {
        // Retransmission: exponential backoff, then the whole frame again.
        // Everything here is corruption-recovery cost — bits land in
        // command/framing overhead, time in obs::Phase::kRecovery.
        const double tx_us = config_.timing.reader_tx_us(frame_bits);
        const double dt = framing.backoff_us(attempt - 1) + tx_us;
        metrics_.command_bits += frame_bits;
        metrics_.framing_overhead_bits += frame_bits;
        ++metrics_.segments_retransmitted;
        metrics_.time_us += dt;
        metrics_.phases.add(obs::Phase::kRecovery, dt);
        if (config_.tracer != nullptr)
          trace_event(obs::EventKind::kReaderBroadcast, dt, 0, frame_bits, 0,
                      tx_us, 0.0, seq);
      }
      ++downlink_attempts_;
      downlink_attempt_bits_ += frame_bits;
      if (!injector_.corrupt_downlink(frame_bits)) {
        delivered = true;
        break;
      }
      ++downlink_failures_;
      ++metrics_.segments_corrupted;
      // The reader learns of the CRC failure from the tags' NACK burst in
      // the T1 listen window that follows every segment of a corrupted
      // frame; recovery cost, like the retransmission it triggers.
      const double listen_us = config_.timing.t1_us;
      metrics_.time_us += listen_us;
      metrics_.phases.add(obs::Phase::kRecovery, listen_us);
      if (config_.tracer != nullptr)
        trace_event(obs::EventKind::kSegmentCorrupted, listen_us, 0, 0, 0,
                    0.0, 0.0, seq);
    }
    if (!delivered) return false;
    remaining -= seg;
    seq = (seq + 1) & 0xF;
  }
  return true;
}

analysis::PollingTier Session::degradation_tier(std::size_t active_count) {
  if (!config_.degradation.enabled) return tier_;
  if (downlink_attempts_ < config_.degradation.min_observations) return tier_;
  analysis::ChannelModel channel;
  channel.ber = estimated_ber();
  channel.segment_payload_bits = config_.framing.segment_payload_bits;
  channel.max_attempts = 1 + config_.framing.max_retransmissions;
  const analysis::PollingTier next = analysis::select_tier(
      tier_, active_count, channel, config_.degradation.hysteresis);
  if (next != tier_) {
    ++metrics_.degradations;
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kDegrade, 0.0, 0, 0, 0, 0.0, 0.0,
                  (static_cast<std::uint64_t>(tier_) << 8) |
                      static_cast<std::uint64_t>(next));
    tier_ = next;
  }
  return tier_;
}

double Session::estimated_ber() const noexcept {
  if (downlink_attempts_ == 0 || downlink_failures_ == 0) return 0.0;
  const double p_corrupt = static_cast<double>(downlink_failures_) /
                           static_cast<double>(downlink_attempts_);
  const double avg_bits = static_cast<double>(downlink_attempt_bits_) /
                          static_cast<double>(downlink_attempts_);
  if (p_corrupt >= 1.0) return 1.0;
  // Invert P(frame corrupt) = 1 - (1 - ber)^bits at the mean frame length.
  return 1.0 - std::pow(1.0 - p_corrupt, 1.0 / avg_bits);
}

const tags::Tag* Session::poll_slot(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected) {
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, 0, 0, 0, 0.0, 0.0);
  return complete_reply(
      responders, expected,
      config_.timing.reader_tx_us(config_.timing.query_rep_bits));
}

const tags::Tag* Session::await_extra_reply(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected) {
  return complete_reply(responders, expected, /*reader_time_us=*/0.0);
}

void Session::expect_empty_slot(
    std::span<const tags::Tag* const> responders, bool full_duration) {
  const air::SlotResult slot = channel_.arbitrate(responders);
  if (slot.outcome != air::SlotOutcome::kEmpty) {
    throw ProtocolError("slot marked wasted was answered by " +
                        std::to_string(slot.responder_count) + " tag(s)");
  }
  const double dt = full_duration
                        ? config_.timing.poll_us(0, config_.info_bits)
                        : config_.timing.idle_slot_us();
  metrics_.time_us += dt;
  add_phase(obs::Phase::kWastedSlot, dt);
  ++metrics_.slots_total;
  ++metrics_.slots_wasted;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kSlotEmpty, dt, 0, 0, 0, 0.0, 0.0);
}

air::SlotResult Session::frame_slot_aloha(
    std::span<const tags::Tag* const> responders) {
  air::SlotResult slot = channel_.arbitrate(responders);
  if (slot.outcome == air::SlotOutcome::kCollision &&
      config_.capture_probability > 0.0 &&
      rng_.bernoulli(config_.capture_probability)) {
    // Capture effect: one reply dominates the superposition and decodes.
    // The "strongest" tag is drawn uniformly (the simulator has no power
    // model); the losers stay unread, exactly as if they had been silent.
    slot.outcome = air::SlotOutcome::kSingleton;
    slot.responder = responders[rng_.below(responders.size())];
  }
  bool slot_garbled = false;
  if (slot.outcome == air::SlotOutcome::kSingleton) {
    slot_garbled = config_.reply_error_rate > 0.0 &&
                   rng_.bernoulli(config_.reply_error_rate);
    if (!slot_garbled && injector_.link_active())
      slot_garbled = injector_.corrupt_reply();
  }
  if (slot_garbled) {
    // A garbled singleton wastes the slot exactly like a collision.
    slot.decoded = false;
    const double dt = config_.timing.collision_slot_us(config_.info_bits);
    metrics_.time_us += dt;
    add_phase(obs::Phase::kWastedSlot, dt);
    ++metrics_.corrupted;
    ++metrics_.slots_total;
    ++metrics_.slots_wasted;
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kCorrupted, dt, 0, 0, 0, 0.0,
                  config_.timing.tag_tx_us(config_.info_bits));
    return slot;
  }
  switch (slot.outcome) {
    case air::SlotOutcome::kEmpty: {
      const double dt = config_.timing.idle_slot_us();
      metrics_.time_us += dt;
      add_phase(obs::Phase::kWastedSlot, dt);
      ++metrics_.slots_total;
      ++metrics_.slots_wasted;
      if (config_.tracer != nullptr)
        trace_event(obs::EventKind::kSlotEmpty, dt, 0, 0, 0, 0.0, 0.0);
      break;
    }
    case air::SlotOutcome::kCollision: {
      const double dt =
          config_.timing.collision_slot_us(config_.info_bits);
      metrics_.time_us += dt;
      add_phase(obs::Phase::kWastedSlot, dt);
      ++metrics_.slots_total;
      ++metrics_.slots_wasted;
      if (config_.tracer != nullptr)
        trace_event(obs::EventKind::kSlotCollision, dt, 0, 0, 0, 0.0, 0.0);
      break;
    }
    case air::SlotOutcome::kSingleton: {
      const double dt = config_.timing.poll_us(0, config_.info_bits);
      const double reader_us =
          config_.timing.reader_tx_us(config_.timing.query_rep_bits);
      const double tag_us = config_.timing.tag_tx_us(config_.info_bits);
      metrics_.time_us += dt;
      add_phase(obs::Phase::kReaderVector, reader_us);
      add_phase(obs::Phase::kTurnaround,
                config_.timing.t1_us + config_.timing.t2_us);
      add_phase(obs::Phase::kTagReply, tag_us);
      metrics_.tag_bits += config_.info_bits;
      ++metrics_.polls;
      ++metrics_.slots_total;
      ++metrics_.slots_useful;
      if (config_.keep_records) {
        records_.push_back(
            CollectedRecord{slot.responder->id(),
                            slot.responder->reply_payload(config_.info_bits)});
      }
      if (config_.tracer != nullptr)
        trace_event(obs::EventKind::kReply, dt, 0, 0, config_.info_bits,
                    reader_us, tag_us);
      break;
    }
  }
  return slot;
}

void Session::begin_round() {
  ++metrics_.rounds;
  if (injector_.churn_active()) injector_.advance_to_round(metrics_.rounds);
  if (config_.keep_trace) {
    trace_.push_back(RoundSnapshot{metrics_.rounds, metrics_.polls,
                                   metrics_.vector_bits, metrics_.time_us,
                                   metrics_.phases});
  }
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kRoundBegin, 0.0, 0, 0, 0, 0.0, 0.0);
}

void Session::begin_circle() {
  ++metrics_.circles;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kCircleBegin, 0.0, 0, 0, 0, 0.0, 0.0);
}

bool Session::presence_slot(std::span<const tags::Tag* const> responders) {
  const air::SlotResult slot = channel_.arbitrate(responders);
  const bool busy = slot.outcome != air::SlotOutcome::kEmpty;
  // Energy sensing: a busy slot carries one bit of backscatter; an empty
  // slot only the turn-arounds. Noise is irrelevant at this granularity —
  // the reader detects power, not payload.
  const double reader_us =
      config_.timing.reader_tx_us(config_.timing.query_rep_bits);
  const double dt =
      config_.timing.reader_tx_us(config_.timing.query_rep_bits) +
      config_.timing.t1_us + (busy ? config_.timing.tag_tx_us(1) : 0.0) +
      config_.timing.t2_us;
  metrics_.time_us += dt;
  if (busy) {
    add_phase(obs::Phase::kReaderVector, reader_us);
    add_phase(obs::Phase::kTurnaround,
              config_.timing.t1_us + config_.timing.t2_us);
    add_phase(obs::Phase::kTagReply, config_.timing.tag_tx_us(1));
    metrics_.tag_bits += slot.responder_count;
  } else {
    add_phase(obs::Phase::kWastedSlot, dt);
  }
  ++metrics_.slots_total;
  if (config_.tracer != nullptr) {
    if (busy)
      trace_event(obs::EventKind::kReply, dt, 0, 0, slot.responder_count,
                  reader_us, config_.timing.tag_tx_us(1));
    else
      trace_event(obs::EventKind::kSlotEmpty, dt, 0, 0, 0, reader_us, 0.0);
  }
  return busy;
}

void Session::mark_undelivered(const TagId& id) {
  ++metrics_.undelivered;
  if (config_.keep_records) undelivered_ids_.push_back(id);
}

void Session::check_round_budget() const {
  if (metrics_.rounds + metrics_.circles > config_.max_rounds) {
    throw ProtocolError("round budget exceeded (" +
                        std::to_string(config_.max_rounds) +
                        "): protocol is not converging");
  }
}

RunResult Session::finish(std::string protocol_name) {
  if (config_.tracer != nullptr) config_.tracer->finish();
  RunResult result;
  result.protocol = std::move(protocol_name);
  result.population = population_->size();
  result.metrics = metrics_;
  result.channel = channel_.stats();
  result.records = std::move(records_);
  result.missing_ids = std::move(missing_ids_);
  result.undelivered_ids = std::move(undelivered_ids_);
  result.trace = std::move(trace_);
  result.fault_layer = config_.fault.enabled() || config_.recovery.enabled ||
                       config_.framing.enabled;
  return result;
}

}  // namespace rfid::sim
