#include "sim/session.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace rfid::sim {

namespace {
/// Domain-separation index for the fault injector's RNG stream: far outside
/// any realistic trial index, so the injector's stream never collides with
/// the per-trial seeds derive_seed hands out.
constexpr std::uint64_t kFaultStreamIndex = 0xFA17'0000'0000'0001ull;
}  // namespace

Session::Session(const tags::TagPopulation& population, SessionConfig config)
    : population_(&population),
      config_(std::move(config)),
      protocol_rng_(config_.seed),
      injector_(config_.fault, derive_seed(config_.seed, kFaultStreamIndex)),
      downlink_(config_.timing, config_.framing, injector_, *this),
      air_(config_, protocol_rng_, channel_, injector_, downlink_, metrics_, records_,
           missing_ids_) {
  // A recovery policy with no mop-up passes can never consume any retry
  // budget, so an absent tag would be rescheduled forever; reject the
  // configuration up front instead of spinning until the round cap trips.
  RFID_EXPECTS(!config_.recovery.enabled || config_.recovery.mop_up_passes > 0);
  if (config_.keep_records) records_.reserve(population.size());
}

analysis::PollingTier Session::degradation_tier(std::size_t active_count) {
  if (!config_.degradation.enabled) return tier_;
  if (downlink_.attempts() < config_.degradation.min_observations)
    return tier_;
  analysis::ChannelModel channel;
  channel.ber = downlink_.estimated_ber();
  channel.segment_payload_bits = config_.framing.segment_payload_bits;
  channel.max_attempts = 1 + config_.framing.max_retransmissions;
  const analysis::PollingTier next = analysis::select_tier(
      tier_, active_count, channel, config_.degradation.hysteresis);
  if (next != tier_) {
    ++metrics_.degradations;
    if (config_.tracer != nullptr)
      air_.trace_event(obs::EventKind::kDegrade, 0.0, 0, 0, 0, 0.0, 0.0,
                       (static_cast<std::uint64_t>(tier_) << 8) |
                           static_cast<std::uint64_t>(next));
    tier_ = next;
  }
  return tier_;
}

void Session::begin_round() {
  ++metrics_.rounds;
  if (injector_.churn_active()) injector_.advance_to_round(metrics_.rounds);
  if (config_.keep_trace) {
    trace_.push_back(RoundSnapshot{metrics_.rounds, metrics_.polls,
                                   metrics_.vector_bits, metrics_.time_us,
                                   metrics_.phases});
  }
  if (config_.tracer != nullptr)
    air_.trace_event(obs::EventKind::kRoundBegin, 0.0, 0, 0, 0, 0.0, 0.0);
}

void Session::begin_circle() {
  ++metrics_.circles;
  if (config_.tracer != nullptr)
    air_.trace_event(obs::EventKind::kCircleBegin, 0.0, 0, 0, 0, 0.0, 0.0);
}

void Session::mark_undelivered(const TagId& id) {
  ++metrics_.undelivered;
  if (config_.keep_records) undelivered_ids_.push_back(id);
}

void Session::check_round_budget() const {
  if (metrics_.rounds + metrics_.circles > config_.max_rounds) {
    throw ProtocolError("round budget exceeded (" +
                        std::to_string(config_.max_rounds) +
                        "): protocol is not converging");
  }
}

RunResult Session::finish(std::string protocol_name) {
  if (config_.tracer != nullptr) config_.tracer->finish();
  RunResult result;
  result.protocol = std::move(protocol_name);
  result.population = population_->size();
  result.metrics = metrics_;
  result.channel = channel_.stats();
  result.records = std::move(records_);
  result.missing_ids = std::move(missing_ids_);
  result.undelivered_ids = std::move(undelivered_ids_);
  result.trace = std::move(trace_);
  result.fault_layer = config_.fault.enabled() || config_.recovery.enabled ||
                       config_.framing.enabled;
  return result;
}

}  // namespace rfid::sim
