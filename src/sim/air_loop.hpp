// The reader's air-interface loop: poll/reply/turn-around primitives.
//
// One layer above phy::Downlink and one below sim::Session: the AirLoop
// owns every interaction that involves a tag reply — singleton polls, frame
// slots, presence slots — applying the C1G2 timing model, arbitrating the
// shared channel, drawing reply-corruption fates, and classifying every
// failed poll (PollFailure) so protocols can choose between rescheduling,
// recovery parking, and loud abandonment. It mutates the session's Metrics,
// record and missing-id stores through references handed in by the
// composition root; it holds no protocol state of its own beyond the
// last-failure classification and the recovery-phase flag.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "air/channel.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "phy/downlink.hpp"
#include "sim/session_types.hpp"
#include "tags/population.hpp"

namespace rfid::sim {

/// Why the last poll returned no tag. Protocols branch on this to decide
/// between rescheduling (the tag is awake and reachable), recovery parking,
/// and loud abandonment.
enum class PollFailure : std::uint8_t {
  kNone,               ///< last poll succeeded
  kAbsent,             ///< addressed tag is outside the field (timeout)
  kGarbledReply,       ///< uplink reply corrupted; tag stays awake
  kDownlinkCorrupted,  ///< unframed vector hit by BER; tag never addressed
  kDownlinkExhausted,  ///< framed vector undeliverable within retry budget
};

class AirLoop final {
 public:
  /// All references are borrowed from the owning session and must outlive
  /// the loop. `missing_ids` and `records` are the session's result stores;
  /// the loop appends to them under the same conditions Session always did.
  AirLoop(const SessionConfig& config, Xoshiro256ss& protocol_rng, air::Channel& channel,
          fault::FaultInjector& injector, phy::Downlink& downlink,
          Metrics& metrics, std::vector<CollectedRecord>& records,
          std::vector<TagId>& missing_ids) noexcept
      : config_(config),
        protocol_rng_(protocol_rng),
        channel_(channel),
        injector_(injector),
        downlink_(downlink),
        metrics_(metrics),
        records_(records),
        missing_ids_(missing_ids) {}

  // --- Poll interactions ----------------------------------------------------

  /// True unless a `present` filter excludes `id` or the fault plan's churn
  /// schedule currently has it outside the field. Protocols that support
  /// churn re-evaluate this per poll rather than snapshotting it.
  [[nodiscard]] bool is_present(const TagId& id) const noexcept;

  /// One complete poll: QueryRep + `vector_bits` vector, turn-arounds, reply.
  /// `responders` are the tags whose tag-side predicate fired; `expected` is
  /// the reader's precomputed target. Returns the interrogated tag, or
  /// nullptr in two recoverable cases: the expected tag is configured
  /// absent (poll times out; tag recorded missing) or the reply was garbled
  /// by channel noise (airtime spent; tag stays awake — the caller must
  /// keep scheduling it). Protocols distinguish the two via the device's
  /// presence flag. Any other deviation from a singleton reply throws
  /// ProtocolError.
  const tags::Tag* poll(std::span<const tags::Tag* const> responders,
                        const tags::Tag* expected, std::size_t vector_bits);

  /// Why the most recent poll/poll_bare/poll_slot returned nullptr
  /// (kNone after a success). Valid until the next poll.
  [[nodiscard]] PollFailure last_poll_failure() const noexcept {
    return last_failure_;
  }

  /// Batched accounting for `count` > 0 unframed singleton polls of
  /// `vector_bits` bits each whose success is predetermined
  /// (sim::Session::clean_poll_fast_path). Every poll in the batch spends
  /// identical airtime, so the floating-point clock and phase totals are
  /// replayed add-by-add — byte-identical to `count` sequential successful
  /// poll() calls — while the integer counters and channel statistics
  /// batch exactly.
  void clean_singleton_replies(std::size_t count, std::size_t vector_bits);

  /// Conventional-polling variant: bare broadcast without the QueryRep
  /// prefix (see phy::C1G2Timing::poll_bare_us).
  const tags::Tag* poll_bare(std::span<const tags::Tag* const> responders,
                             const tags::Tag* expected,
                             std::size_t vector_bits);

  /// A reply phase with no further reader vector (the vector or frame
  /// position was already transmitted): QueryRep + turn-arounds + reply.
  const tags::Tag* poll_slot(std::span<const tags::Tag* const> responders,
                             const tags::Tag* expected);

  /// A reply phase appended to an already-transmitted reader frame with no
  /// QueryRep of its own (coded polling's second responder).
  const tags::Tag* await_extra_reply(
      std::span<const tags::Tag* const> responders, const tags::Tag* expected);

  /// A poll the reader issues that no tag can answer (register
  /// desynchronized by an earlier unframed downlink corruption): the
  /// vector, QueryRep and both turn-arounds elapse, nothing decodes. The
  /// vector bits still count into w — the reader transmitted them.
  void poll_unanswered(std::size_t vector_bits);

  // --- Frame slots (ALOHA-family baselines) ---------------------------------

  /// A frame slot the reader expects to be empty (MIC's wasted slots).
  /// Throws ProtocolError if any tag answers. With `full_duration` the
  /// reader waits out the entire fixed-length slot (QueryRep, turn-arounds
  /// and the reply airtime) — the slotted-frame accounting under which the
  /// published MIC numbers reproduce; without it only the QueryRep and
  /// turn-arounds elapse (early empty-slot termination).
  void expect_empty_slot(std::span<const tags::Tag* const> responders,
                         bool full_duration = false);

  /// A frame slot whose outcome is not predetermined (classic framed-slotted
  /// ALOHA): empty, singleton (collected), or collision (airtime wasted).
  air::SlotResult frame_slot_aloha(
      std::span<const tags::Tag* const> responders);

  /// A 1-bit presence slot (missing-tag detection protocols): the reader
  /// only senses whether any energy was backscattered. Returns true when at
  /// least one tag replied; collisions are indistinguishable from single
  /// replies and equally useful. No payload is collected.
  bool presence_slot(std::span<const tags::Tag* const> responders);

  // --- Recovery-phase attribution -------------------------------------------

  /// While the flag is set every phase increment — vector, turn-around,
  /// reply, timeout — is attributed to obs::Phase::kRecovery and every poll
  /// counts as a retry; the clock itself advances exactly as it would
  /// outside a recovery phase. Toggled by the session on behalf of
  /// fault::RecoveryCoordinator::Scope; never nested.
  void set_in_recovery(bool value) noexcept { in_recovery_ = value; }
  [[nodiscard]] bool in_recovery() const noexcept { return in_recovery_; }

  /// Phase attribution honouring an open recovery phase: inside one, the
  /// whole increment lands in kRecovery regardless of `phase`. Public so
  /// the session's AirtimeSink forwards downlink phase charges through the
  /// same recovery-aware gate.
  void add_phase(obs::Phase phase, double delta_us) noexcept {
    metrics_.phases.add(in_recovery_ ? obs::Phase::kRecovery : phase,
                        delta_us);
  }

  /// Builds and emits one trace event stamped with the current clock and
  /// round/circle counters. Callers must have applied the metric updates
  /// first and must guard on config().tracer themselves (keeps the disabled
  /// path to one branch).
  void trace_event(obs::EventKind kind, double duration_us,
                   std::uint64_t vector_bits, std::uint64_t command_bits,
                   std::uint64_t tag_bits, double reader_us, double tag_us,
                   std::uint64_t detail = 0);

 private:
  const tags::Tag* complete_reply(
      std::span<const tags::Tag* const> responders, const tags::Tag* expected,
      double reader_time_us);

  /// Accounting for a poll whose unframed vector was corrupted in flight:
  /// the addressed tag never decoded its index, so the reader waits out the
  /// turn-arounds in silence. Sets last_failure_ = kDownlinkCorrupted.
  void downlink_corrupt_timeout(double reader_time_us);

  const SessionConfig& config_;
  Xoshiro256ss& protocol_rng_;
  air::Channel& channel_;
  fault::FaultInjector& injector_;
  phy::Downlink& downlink_;
  Metrics& metrics_;
  std::vector<CollectedRecord>& records_;
  std::vector<TagId>& missing_ids_;
  bool in_recovery_ = false;
  PollFailure last_failure_ = PollFailure::kNone;
};

}  // namespace rfid::sim
