#include "sim/air_loop.hpp"

#include <string>

#include "common/error.hpp"

namespace rfid::sim {

// Accounting discipline: every site computes its clock increment as a named
// `dt` built from the exact expression the metrics always used (evaluation
// order preserved, so seeded runs are byte-identical to the pre-tracing
// code), adds it once to metrics_.time_us, splits it across phases, and —
// only behind a branch on the null tracer pointer — emits one trace event
// whose duration_us is that same double. A trace therefore replays into the
// Metrics totals exactly (see docs/observability.md).

void AirLoop::trace_event(obs::EventKind kind, double duration_us,
                          std::uint64_t vector_bits,
                          std::uint64_t command_bits, std::uint64_t tag_bits,
                          double reader_us, double tag_us,
                          std::uint64_t detail) {
  obs::Event event;
  event.kind = kind;
  event.round = metrics_.rounds;
  event.circle = metrics_.circles;
  event.vector_bits = vector_bits;
  event.command_bits = command_bits;
  event.tag_bits = tag_bits;
  event.time_us = metrics_.time_us;
  event.duration_us = duration_us;
  event.reader_us = reader_us;
  event.tag_us = tag_us;
  event.detail = detail;
  config_.tracer->emit(event);
}

bool AirLoop::is_present(const TagId& id) const noexcept {
  return (config_.present == nullptr || config_.present->contains(id)) &&
         injector_.present(id);
}

const tags::Tag* AirLoop::complete_reply(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected,
    double reader_time_us) {
  if (in_recovery_) ++metrics_.retries;
  const air::SlotResult slot = channel_.arbitrate(responders);
  if (slot.outcome == air::SlotOutcome::kEmpty && expected != nullptr &&
      !is_present(expected->id())) {
    // The addressed tag is physically absent: the reader waits out the
    // turn-arounds, decodes nothing, and flags the tag missing. Under a
    // recovery policy the verdict is deferred — the tag may churn back into
    // the field — so the per-poll missing record is suppressed and the
    // protocol's tracker decides between re-poll and undelivered.
    const double dt =
        reader_time_us + config_.timing.t1_us + config_.timing.t2_us;
    metrics_.time_us += dt;
    add_phase(obs::Phase::kWastedSlot, dt);
    ++metrics_.missing;
    ++metrics_.slots_total;
    ++metrics_.slots_wasted;
    if (config_.keep_records && !config_.recovery.enabled)
      missing_ids_.push_back(expected->id());
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kTimeout, dt, 0, 0, 0, reader_time_us, 0.0);
    last_failure_ = PollFailure::kAbsent;
    return nullptr;
  }
  if (slot.outcome != air::SlotOutcome::kSingleton) {
    throw ProtocolError(
        "poll did not elicit exactly one reply (responders: " +
        std::to_string(slot.responder_count) + ")");
  }
  if (expected != nullptr && slot.responder != expected) {
    throw ProtocolError("responding tag differs from the reader's target: " +
                        slot.responder->id().to_hex() + " vs " +
                        expected->id().to_hex());
  }
  const double tag_us = config_.timing.tag_tx_us(config_.info_bits);
  // Decode-error decision. The legacy Bernoulli knob draws from the session
  // stream exactly as it always has; the structured link models draw from
  // the injector's private stream, so enabling them (or leaving everything
  // off) does not perturb the session's own sequence of draws.
  bool garbled = config_.reply_error_rate > 0.0 &&
                 protocol_rng_.bernoulli(config_.reply_error_rate);
  if (!garbled && injector_.link_active()) garbled = injector_.corrupt_reply();
  if (garbled) {
    // Reply garbled in flight: the full interaction airtime is spent, the
    // PHY CRC rejects the decode, and with no ACK the tag stays awake for
    // a later round.
    const double dt = reader_time_us + config_.timing.t1_us +
                      config_.timing.tag_tx_us(config_.info_bits) +
                      config_.timing.t2_us;
    metrics_.time_us += dt;
    add_phase(obs::Phase::kWastedSlot, dt);
    ++metrics_.corrupted;
    ++metrics_.slots_total;
    ++metrics_.slots_wasted;
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kCorrupted, dt, 0, 0, 0, reader_time_us,
                  tag_us);
    last_failure_ = PollFailure::kGarbledReply;
    return nullptr;
  }
  const double dt = reader_time_us + config_.timing.t1_us +
                    config_.timing.tag_tx_us(config_.info_bits) +
                    config_.timing.t2_us;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kReaderVector, reader_time_us);
  add_phase(obs::Phase::kTurnaround,
            config_.timing.t1_us + config_.timing.t2_us);
  add_phase(obs::Phase::kTagReply, tag_us);
  metrics_.tag_bits += config_.info_bits;
  ++metrics_.polls;
  ++metrics_.slots_total;
  ++metrics_.slots_useful;
  if (config_.keep_records) {
    records_.push_back(
        CollectedRecord{slot.responder->id(),
                        slot.responder->reply_payload(config_.info_bits)});
  }
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kReply, dt, 0, 0, config_.info_bits,
                reader_time_us, tag_us);
  last_failure_ = PollFailure::kNone;
  return slot.responder;
}

const tags::Tag* AirLoop::poll(std::span<const tags::Tag* const> responders,
                               const tags::Tag* expected,
                               std::size_t vector_bits) {
  if (config_.framing.enabled && vector_bits > 0) {
    // The vector travels through the framed downlink (its own bit and time
    // accounting); the poll itself then carries only the QueryRep.
    if (!downlink_.broadcast_framed(vector_bits, /*count_in_w=*/true)) {
      last_failure_ = PollFailure::kDownlinkExhausted;
      return nullptr;
    }
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kPoll, 0.0, 0, 0, 0, 0.0, 0.0);
    return complete_reply(
        responders, expected,
        config_.timing.reader_tx_us(config_.timing.query_rep_bits));
  }
  metrics_.vector_bits += vector_bits;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, vector_bits, 0, 0, 0.0, 0.0);
  const double reader_us = config_.timing.reader_tx_us(
      config_.timing.query_rep_bits + vector_bits);
  if (downlink_.unframed_corrupts(vector_bits)) {
    downlink_corrupt_timeout(reader_us);
    return nullptr;
  }
  return complete_reply(responders, expected, reader_us);
}

void AirLoop::clean_singleton_replies(std::size_t count,
                                      std::size_t vector_bits) {
  // Mirrors the success branch of poll() -> complete_reply() exactly:
  // vector bits into w, then per poll one clock add of the identical dt
  // (same expression, same association) and the three phase adds. The
  // per-poll loop is deliberate — collapsing the clock adds into count*dt
  // would change the floating-point rounding and break byte-identity with
  // the unbatched path.
  metrics_.vector_bits += static_cast<std::uint64_t>(count) * vector_bits;
  const double reader_us = config_.timing.reader_tx_us(
      config_.timing.query_rep_bits + vector_bits);
  const double tag_us = config_.timing.tag_tx_us(config_.info_bits);
  const double turnaround_us = config_.timing.t1_us + config_.timing.t2_us;
  const double dt =
      reader_us + config_.timing.t1_us + tag_us + config_.timing.t2_us;
  for (std::size_t i = 0; i < count; ++i) {
    metrics_.time_us += dt;
    add_phase(obs::Phase::kReaderVector, reader_us);
    add_phase(obs::Phase::kTurnaround, turnaround_us);
    add_phase(obs::Phase::kTagReply, tag_us);
  }
  metrics_.tag_bits += static_cast<std::uint64_t>(count) * config_.info_bits;
  metrics_.polls += count;
  metrics_.slots_total += count;
  metrics_.slots_useful += count;
  channel_.record_clean_singletons(count);
  last_failure_ = PollFailure::kNone;
}

const tags::Tag* AirLoop::poll_bare(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected,
    std::size_t vector_bits) {
  if (config_.framing.enabled && vector_bits > 0) {
    if (!downlink_.broadcast_framed(vector_bits, /*count_in_w=*/true)) {
      last_failure_ = PollFailure::kDownlinkExhausted;
      return nullptr;
    }
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kPoll, 0.0, 0, 0, 0, 0.0, 0.0);
    return complete_reply(responders, expected, /*reader_time_us=*/0.0);
  }
  metrics_.vector_bits += vector_bits;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, vector_bits, 0, 0, 0.0, 0.0);
  const double reader_us = config_.timing.reader_tx_us(vector_bits);
  if (downlink_.unframed_corrupts(vector_bits)) {
    downlink_corrupt_timeout(reader_us);
    return nullptr;
  }
  return complete_reply(responders, expected, reader_us);
}

void AirLoop::downlink_corrupt_timeout(double reader_time_us) {
  if (in_recovery_) ++metrics_.retries;
  const double dt =
      reader_time_us + config_.timing.t1_us + config_.timing.t2_us;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kWastedSlot, dt);
  ++metrics_.downlink_corrupted;
  ++metrics_.slots_total;
  ++metrics_.slots_wasted;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kTimeout, dt, 0, 0, 0, reader_time_us, 0.0,
                /*detail=*/1);
  last_failure_ = PollFailure::kDownlinkCorrupted;
}

void AirLoop::poll_unanswered(std::size_t vector_bits) {
  metrics_.vector_bits += vector_bits;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, vector_bits, 0, 0, 0.0, 0.0);
  const double reader_us = config_.timing.reader_tx_us(
      config_.timing.query_rep_bits + vector_bits);
  const double dt = reader_us + config_.timing.t1_us + config_.timing.t2_us;
  metrics_.time_us += dt;
  add_phase(obs::Phase::kWastedSlot, dt);
  ++metrics_.slots_total;
  ++metrics_.slots_wasted;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kTimeout, dt, 0, 0, 0, reader_us, 0.0,
                /*detail=*/2);
}

const tags::Tag* AirLoop::poll_slot(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected) {
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kPoll, 0.0, 0, 0, 0, 0.0, 0.0);
  return complete_reply(
      responders, expected,
      config_.timing.reader_tx_us(config_.timing.query_rep_bits));
}

const tags::Tag* AirLoop::await_extra_reply(
    std::span<const tags::Tag* const> responders, const tags::Tag* expected) {
  return complete_reply(responders, expected, /*reader_time_us=*/0.0);
}

void AirLoop::expect_empty_slot(
    std::span<const tags::Tag* const> responders, bool full_duration) {
  const air::SlotResult slot = channel_.arbitrate(responders);
  if (slot.outcome != air::SlotOutcome::kEmpty) {
    throw ProtocolError("slot marked wasted was answered by " +
                        std::to_string(slot.responder_count) + " tag(s)");
  }
  const double dt = full_duration
                        ? config_.timing.poll_us(0, config_.info_bits)
                        : config_.timing.idle_slot_us();
  metrics_.time_us += dt;
  add_phase(obs::Phase::kWastedSlot, dt);
  ++metrics_.slots_total;
  ++metrics_.slots_wasted;
  if (config_.tracer != nullptr)
    trace_event(obs::EventKind::kSlotEmpty, dt, 0, 0, 0, 0.0, 0.0);
}

air::SlotResult AirLoop::frame_slot_aloha(
    std::span<const tags::Tag* const> responders) {
  air::SlotResult slot = channel_.arbitrate(responders);
  if (slot.outcome == air::SlotOutcome::kCollision &&
      config_.capture_probability > 0.0 &&
      protocol_rng_.bernoulli(config_.capture_probability)) {
    // Capture effect: one reply dominates the superposition and decodes.
    // The "strongest" tag is drawn uniformly (the simulator has no power
    // model); the losers stay unread, exactly as if they had been silent.
    slot.outcome = air::SlotOutcome::kSingleton;
    slot.responder = responders[protocol_rng_.below(responders.size())];
  }
  bool slot_garbled = false;
  if (slot.outcome == air::SlotOutcome::kSingleton) {
    slot_garbled = config_.reply_error_rate > 0.0 &&
                   protocol_rng_.bernoulli(config_.reply_error_rate);
    if (!slot_garbled && injector_.link_active())
      slot_garbled = injector_.corrupt_reply();
  }
  if (slot_garbled) {
    // A garbled singleton wastes the slot exactly like a collision.
    slot.decoded = false;
    const double dt = config_.timing.collision_slot_us(config_.info_bits);
    metrics_.time_us += dt;
    add_phase(obs::Phase::kWastedSlot, dt);
    ++metrics_.corrupted;
    ++metrics_.slots_total;
    ++metrics_.slots_wasted;
    if (config_.tracer != nullptr)
      trace_event(obs::EventKind::kCorrupted, dt, 0, 0, 0, 0.0,
                  config_.timing.tag_tx_us(config_.info_bits));
    return slot;
  }
  switch (slot.outcome) {
    case air::SlotOutcome::kEmpty: {
      const double dt = config_.timing.idle_slot_us();
      metrics_.time_us += dt;
      add_phase(obs::Phase::kWastedSlot, dt);
      ++metrics_.slots_total;
      ++metrics_.slots_wasted;
      if (config_.tracer != nullptr)
        trace_event(obs::EventKind::kSlotEmpty, dt, 0, 0, 0, 0.0, 0.0);
      break;
    }
    case air::SlotOutcome::kCollision: {
      const double dt =
          config_.timing.collision_slot_us(config_.info_bits);
      metrics_.time_us += dt;
      add_phase(obs::Phase::kWastedSlot, dt);
      ++metrics_.slots_total;
      ++metrics_.slots_wasted;
      if (config_.tracer != nullptr)
        trace_event(obs::EventKind::kSlotCollision, dt, 0, 0, 0, 0.0, 0.0);
      break;
    }
    case air::SlotOutcome::kSingleton: {
      const double dt = config_.timing.poll_us(0, config_.info_bits);
      const double reader_us =
          config_.timing.reader_tx_us(config_.timing.query_rep_bits);
      const double tag_us = config_.timing.tag_tx_us(config_.info_bits);
      metrics_.time_us += dt;
      add_phase(obs::Phase::kReaderVector, reader_us);
      add_phase(obs::Phase::kTurnaround,
                config_.timing.t1_us + config_.timing.t2_us);
      add_phase(obs::Phase::kTagReply, tag_us);
      metrics_.tag_bits += config_.info_bits;
      ++metrics_.polls;
      ++metrics_.slots_total;
      ++metrics_.slots_useful;
      if (config_.keep_records) {
        records_.push_back(
            CollectedRecord{slot.responder->id(),
                            slot.responder->reply_payload(config_.info_bits)});
      }
      if (config_.tracer != nullptr)
        trace_event(obs::EventKind::kReply, dt, 0, 0, config_.info_bits,
                    reader_us, tag_us);
      break;
    }
  }
  return slot;
}

bool AirLoop::presence_slot(std::span<const tags::Tag* const> responders) {
  const air::SlotResult slot = channel_.arbitrate(responders);
  const bool busy = slot.outcome != air::SlotOutcome::kEmpty;
  // Energy sensing: a busy slot carries one bit of backscatter; an empty
  // slot only the turn-arounds. Noise is irrelevant at this granularity —
  // the reader detects power, not payload.
  const double reader_us =
      config_.timing.reader_tx_us(config_.timing.query_rep_bits);
  const double dt =
      config_.timing.reader_tx_us(config_.timing.query_rep_bits) +
      config_.timing.t1_us + (busy ? config_.timing.tag_tx_us(1) : 0.0) +
      config_.timing.t2_us;
  metrics_.time_us += dt;
  if (busy) {
    add_phase(obs::Phase::kReaderVector, reader_us);
    add_phase(obs::Phase::kTurnaround,
              config_.timing.t1_us + config_.timing.t2_us);
    add_phase(obs::Phase::kTagReply, config_.timing.tag_tx_us(1));
    metrics_.tag_bits += slot.responder_count;
  } else {
    add_phase(obs::Phase::kWastedSlot, dt);
  }
  ++metrics_.slots_total;
  if (config_.tracer != nullptr) {
    if (busy)
      trace_event(obs::EventKind::kReply, dt, 0, 0, slot.responder_count,
                  reader_us, config_.timing.tag_tx_us(1));
    else
      trace_event(obs::EventKind::kSlotEmpty, dt, 0, 0, 0, reader_us, 0.0);
  }
  return busy;
}

}  // namespace rfid::sim
