#include "sim/trace_io.hpp"

#include "common/csv.hpp"
#include "common/table.hpp"
#include "obs/phase_timer.hpp"

namespace rfid::sim {

void write_trace_csv(const RunResult& result, const std::string& path) {
  CsvWriter csv(path);
  // The trailing recovery_us column appears only for runs configured with a
  // fault plan or recovery policy; zero-fault CSVs keep the historical
  // column set byte for byte (kRecovery is guaranteed to be the last phase).
  const std::size_t phase_count =
      result.fault_layer ? obs::kPhaseCount : obs::kPhaseCount - 1;
  std::vector<std::string> header{"round", "polls_so_far",
                                  "vector_bits_so_far", "time_us_so_far"};
  for (std::size_t p = 0; p < phase_count; ++p)
    header.push_back(
        std::string(obs::to_string(static_cast<obs::Phase>(p))) +
        "_us_so_far");
  // A run without a trace still writes the header row (documented contract;
  // downstream plotters rely on the columns existing).
  csv.write_row(header);
  for (const RoundSnapshot& snapshot : result.trace) {
    std::vector<std::string> row{std::to_string(snapshot.round),
                                 std::to_string(snapshot.polls_so_far),
                                 std::to_string(snapshot.vector_bits_so_far),
                                 TablePrinter::num(snapshot.time_us_so_far, 2)};
    for (std::size_t p = 0; p < phase_count; ++p)
      row.push_back(TablePrinter::num(
          snapshot.phases_so_far.get(static_cast<obs::Phase>(p)), 2));
    csv.write_row(row);
  }
}

}  // namespace rfid::sim
