#include "sim/trace_io.hpp"

#include "common/csv.hpp"
#include "common/table.hpp"

namespace rfid::sim {

void write_trace_csv(const RunResult& result, const std::string& path) {
  CsvWriter csv(path);
  csv.write_row({"round", "polls_so_far", "vector_bits_so_far",
                 "time_us_so_far"});
  for (const RoundSnapshot& snapshot : result.trace) {
    csv.write_row({std::to_string(snapshot.round),
                   std::to_string(snapshot.polls_so_far),
                   std::to_string(snapshot.vector_bits_so_far),
                   TablePrinter::num(snapshot.time_us_so_far, 2)});
  }
}

}  // namespace rfid::sim
