// Round-trace export.
//
// A session run with keep_trace produces one RoundSnapshot per round; this
// helper writes the series as CSV so convergence curves (tags read vs time,
// bits vs rounds) can be plotted externally.
#pragma once

#include <string>

#include "sim/session.hpp"

namespace rfid::sim {

/// Writes `result.trace` to `path` with a header row. Throws
/// std::runtime_error when the file cannot be opened; a run without a trace
/// writes only the header.
void write_trace_csv(const RunResult& result, const std::string& path);

}  // namespace rfid::sim
