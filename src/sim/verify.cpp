#include "sim/verify.hpp"

#include <unordered_map>

namespace rfid::sim {

VerifyReport verify_complete_collection(const tags::TagPopulation& population,
                                        const RunResult& result) {
  VerifyReport report;
  const auto fail = [&report](std::string msg) {
    report.ok = false;
    report.message = std::move(msg);
    return report;
  };

  if (result.records.size() != population.size()) {
    return fail("collected " + std::to_string(result.records.size()) +
                " records for " + std::to_string(population.size()) + " tags");
  }

  std::unordered_map<TagId, const tags::Tag*, TagIdHash> by_id;
  by_id.reserve(population.size());
  for (const tags::Tag& tag : population) by_id.emplace(tag.id(), &tag);

  std::unordered_map<TagId, std::size_t, TagIdHash> seen;
  seen.reserve(result.records.size());
  for (const CollectedRecord& record : result.records) {
    const auto it = by_id.find(record.id);
    if (it == by_id.end())
      return fail("collected unknown tag " + record.id.to_hex());
    if (++seen[record.id] > 1)
      return fail("tag " + record.id.to_hex() + " interrogated twice");
    const BitVec expected =
        it->second->reply_payload(record.payload.size());
    if (!(expected == record.payload))
      return fail("payload mismatch for tag " + record.id.to_hex());
  }
  return report;
}

}  // namespace rfid::sim
