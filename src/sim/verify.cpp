#include "sim/verify.hpp"

#include <unordered_map>

namespace rfid::sim {

VerifyReport verify_complete_collection(const tags::TagPopulation& population,
                                        const RunResult& result) {
  VerifyReport report;
  const auto fail = [&report](std::string msg) {
    report.ok = false;
    report.message = std::move(msg);
    return report;
  };

  // Every population tag must be accounted for exactly once: collected,
  // reported missing (absent from the field), or explicitly given up on by
  // the recovery policy (undelivered). A clean-channel run degenerates to
  // the original contract — records only, one per tag.
  const std::size_t accounted = result.records.size() +
                                result.missing_ids.size() +
                                result.undelivered_ids.size();
  if (accounted != population.size()) {
    return fail("accounted for " + std::to_string(accounted) + " tags (" +
                std::to_string(result.records.size()) + " collected, " +
                std::to_string(result.missing_ids.size()) + " missing, " +
                std::to_string(result.undelivered_ids.size()) +
                " undelivered) out of " + std::to_string(population.size()));
  }

  std::unordered_map<TagId, const tags::Tag*, TagIdHash> by_id;
  by_id.reserve(population.size());
  for (const tags::Tag& tag : population) by_id.emplace(tag.id(), &tag);

  std::unordered_map<TagId, std::size_t, TagIdHash> seen;
  seen.reserve(accounted);
  const auto account_once = [&](const TagId& id, const char* what) {
    if (!by_id.contains(id)) return what + (" of unknown tag " + id.to_hex());
    if (++seen[id] > 1)
      return what + (" of tag " + id.to_hex() + " accounted for twice");
    return std::string();
  };

  for (const CollectedRecord& record : result.records) {
    if (auto msg = account_once(record.id, "collection"); !msg.empty())
      return fail(std::move(msg));
    const BitVec expected =
        by_id.at(record.id)->reply_payload(record.payload.size());
    if (!(expected == record.payload))
      return fail("payload mismatch for tag " + record.id.to_hex());
  }
  for (const TagId& id : result.missing_ids)
    if (auto msg = account_once(id, "missing report"); !msg.empty())
      return fail(std::move(msg));
  for (const TagId& id : result.undelivered_ids)
    if (auto msg = account_once(id, "undelivered report"); !msg.empty())
      return fail(std::move(msg));
  return report;
}

}  // namespace rfid::sim
