// Crash-consistent checkpoint/resume for long-running simulations.
//
// The telemetry daemon (tools/simserved) runs inventory epochs for hours; a
// SIGKILL should not cost the accumulated run. A Checkpoint captures, at an
// epoch boundary, everything the warehouse loop needs to continue
// bit-identically:
//
//   * per-reader progress: completed-epoch count, the bit-exact folded
//     Metrics of those epochs, incident counters, and health — the folds
//     are a pure function of (seed, reader, epoch), which is the invariant
//     that makes "kill, resume, compare" byte-identical (epochs in flight
//     at the kill are simply replayed from their epoch boundary);
//   * every named RNG stream the loop owns, as raw xoshiro state words,
//     restored with Xoshiro256ss::set_state;
//   * a caller-computed config fingerprint, so a checkpoint is never
//     resumed against a different protocol/population/fault plan.
//
// Format: a little-endian binary blob — magic, version, CRC-16/CCITT over
// the payload, then the payload — decoded with full bounds checks. Torn
// writes cannot happen: write_checkpoint_atomic writes <path>.tmp, fsyncs,
// and renames over <path>, so the file either holds the previous checkpoint
// or the complete new one. Corruption is detected by the CRC and reported
// loudly (decode throws); a missing file just means "fresh start".
//
// Determinism: nothing here reads a clock — the wall timestamp embedded in
// the header is passed in by the caller (the serving layer, the one place
// wall time is allowed). encode_into reuses the caller's buffer, so
// steady-state snapshots allocate nothing once warm.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "sim/metrics.hpp"

namespace rfid::sim {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One reader's durable state at an epoch boundary.
struct ReaderCheckpoint final {
  std::uint64_t epochs = 0;    ///< completed inventory epochs
  std::uint64_t crashes = 0;   ///< incident counters (reporting continuity;
  std::uint64_t restarts = 0;  ///<  never part of the folded metrics)
  obs::ReaderHealth health = obs::ReaderHealth::kHealthy;
  Metrics completed{};  ///< bit-exact fold of the completed epochs
};

/// Raw state of one named RNG stream (Xoshiro256ss::state()).
struct NamedRngState final {
  std::string name;
  std::array<std::uint64_t, 4> state{};
};

struct Checkpoint final {
  /// Caller-computed digest of everything that shapes the run (protocol,
  /// population, seed, fault plan, epoch target). decode() returns it
  /// verbatim; resumers must compare before trusting the state.
  std::uint64_t config_fingerprint = 0;
  std::uint64_t master_seed = 0;
  /// Wall-clock milliseconds at snapshot time, supplied by the caller —
  /// informational only, excluded from determinism comparisons.
  std::uint64_t wall_unix_ms = 0;
  std::uint64_t epoch_target = 0;  ///< per-reader epoch goal of the run
  std::vector<ReaderCheckpoint> readers;
  std::vector<NamedRngState> rng_streams;
};

/// Chained 64-bit fingerprint step (splitmix64-based): fold each
/// config-shaping value in with h = fingerprint_mix(h, value).
[[nodiscard]] std::uint64_t fingerprint_mix(std::uint64_t h,
                                            std::uint64_t value) noexcept;

/// Serializes into `out` (cleared first). Reusing `out` across snapshots
/// makes the steady state allocation-free once the buffer is warm.
void encode_into(const Checkpoint& checkpoint, std::vector<std::uint8_t>& out);
[[nodiscard]] std::vector<std::uint8_t> encode(const Checkpoint& checkpoint);

/// Parses a blob produced by encode. Throws std::runtime_error on bad
/// magic, unsupported version, CRC mismatch, or truncation — a corrupt
/// checkpoint is refused loudly, never half-restored.
[[nodiscard]] Checkpoint decode(std::span<const std::uint8_t> bytes);

/// Writes `bytes` to <path>.tmp, fsyncs, and renames over <path> (atomic on
/// POSIX). Throws std::runtime_error on any I/O failure.
void write_checkpoint_atomic(const std::string& path,
                             std::span<const std::uint8_t> bytes);

/// Loads and decodes <path>. Returns nullopt when the file does not exist
/// (fresh start); throws like decode() when it exists but is corrupt.
[[nodiscard]] std::optional<Checkpoint> load_checkpoint(
    const std::string& path);

}  // namespace rfid::sim
