#include "sim/report_io.hpp"

#include <ostream>
#include <sstream>

namespace rfid::sim {

namespace {

/// Minimal JSON writer: tracks nesting and comma state; enough for the
/// fixed schema emitted here.
class JsonWriter final {
 public:
  JsonWriter(std::ostream& os, int indent) : os_(os), indent_(indent) {}

  void begin_object() { open('{'); }
  void begin_object(const std::string& key) {
    separator();
    write_key(key);
    os_ << '{';
    first_ = true;
    ++depth_;
  }
  void end_object() { close('}'); }

  void begin_array(const std::string& key) {
    separator();
    write_key(key);
    os_ << '[';
    first_ = true;
    ++depth_;
  }
  void end_array() { close(']'); }

  void key_value(const std::string& key, const std::string& raw) {
    separator();
    write_key(key);
    os_ << raw;
  }
  void key_string(const std::string& key, const std::string& value) {
    key_value(key, '"' + escape(value) + '"');
  }
  void array_string(const std::string& value) {
    separator();
    os_ << '"' << escape(value) << '"';
  }
  void array_object_begin() {
    separator();
    os_ << '{';
    first_ = true;
    ++depth_;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void open(char c) {
    separator();
    os_ << c;
    first_ = true;
    ++depth_;
  }

  void close(char c) {
    --depth_;
    newline();
    os_ << c;
    first_ = false;
  }

  void write_key(const std::string& key) { os_ << '"' << key << "\": "; }

  void separator() {
    if (!first_) os_ << ',';
    first_ = false;
    newline();
  }

  void newline() {
    if (indent_ <= 0) return;
    os_ << '\n'
        << std::string(static_cast<std::size_t>(indent_ * depth_), ' ');
  }

  std::ostream& os_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;
};

std::string num(double value) {
  std::ostringstream oss;
  oss.precision(12);
  oss << value;
  return oss.str();
}

std::string u64(std::uint64_t value) { return std::to_string(value); }

}  // namespace

void write_json(std::ostream& os, const RunResult& result,
                const JsonOptions& options) {
  JsonWriter json(os, options.indent);
  json.begin_object();
  json.key_string("protocol", result.protocol);
  json.key_value("population", u64(result.population));
  json.key_value("avg_vector_bits", num(result.avg_vector_bits()));
  json.key_value("exec_time_s", num(result.exec_time_s()));

  // Fault-layer fields (retries, undelivered, the recovery phase and the
  // undelivered_ids array) are emitted only for runs configured with a
  // fault plan or recovery policy, so zero-fault reports stay byte-identical
  // to builds without the fault layer.
  const Metrics& m = result.metrics;
  json.begin_object("metrics");
  json.key_value("polls", u64(m.polls));
  json.key_value("missing", u64(m.missing));
  json.key_value("corrupted", u64(m.corrupted));
  if (result.fault_layer) {
    json.key_value("retries", u64(m.retries));
    json.key_value("undelivered", u64(m.undelivered));
    json.key_value("downlink_corrupted", u64(m.downlink_corrupted));
    json.key_value("segments_sent", u64(m.segments_sent));
    json.key_value("segments_corrupted", u64(m.segments_corrupted));
    json.key_value("segments_retransmitted", u64(m.segments_retransmitted));
    json.key_value("framing_overhead_bits", u64(m.framing_overhead_bits));
    json.key_value("degradations", u64(m.degradations));
  }
  json.key_value("rounds", u64(m.rounds));
  json.key_value("circles", u64(m.circles));
  json.key_value("slots_total", u64(m.slots_total));
  json.key_value("slots_useful", u64(m.slots_useful));
  json.key_value("slots_wasted", u64(m.slots_wasted));
  json.key_value("vector_bits", u64(m.vector_bits));
  json.key_value("command_bits", u64(m.command_bits));
  json.key_value("tag_bits", u64(m.tag_bits));
  json.key_value("time_us", num(m.time_us));
  static_assert(static_cast<std::size_t>(obs::Phase::kRecovery) ==
                    obs::kPhaseCount - 1,
                "the recovery phase must stay last so it can be elided");
  const std::size_t phase_count =
      result.fault_layer ? obs::kPhaseCount : obs::kPhaseCount - 1;
  json.begin_object("phase_us");
  for (std::size_t p = 0; p < phase_count; ++p) {
    const auto phase = static_cast<obs::Phase>(p);
    json.key_value(std::string(obs::to_string(phase)),
                   num(m.phases.get(phase)));
  }
  json.end_object();
  json.end_object();

  json.begin_object("channel");
  json.key_value("empty_slots", u64(result.channel.empty_slots));
  json.key_value("singleton_slots", u64(result.channel.singleton_slots));
  json.key_value("collision_slots", u64(result.channel.collision_slots));
  json.end_object();

  json.begin_array("missing_ids");
  for (const TagId& id : result.missing_ids) json.array_string(id.to_hex());
  json.end_array();

  if (result.fault_layer) {
    json.begin_array("undelivered_ids");
    for (const TagId& id : result.undelivered_ids)
      json.array_string(id.to_hex());
    json.end_array();
  }

  if (options.include_records) {
    json.begin_array("records");
    for (const CollectedRecord& record : result.records) {
      json.array_object_begin();
      json.key_string("id", record.id.to_hex());
      json.key_string("payload", record.payload.to_string());
      json.end_object();
    }
    json.end_array();
  }

  if (options.include_trace && !result.trace.empty()) {
    json.begin_array("trace");
    for (const RoundSnapshot& snapshot : result.trace) {
      json.array_object_begin();
      json.key_value("round", u64(snapshot.round));
      json.key_value("polls", u64(snapshot.polls_so_far));
      json.key_value("vector_bits", u64(snapshot.vector_bits_so_far));
      json.key_value("time_us", num(snapshot.time_us_so_far));
      for (std::size_t p = 0; p < phase_count; ++p) {
        const auto phase = static_cast<obs::Phase>(p);
        json.key_value(std::string(obs::to_string(phase)) + "_us",
                       num(snapshot.phases_so_far.get(phase)));
      }
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  if (options.indent > 0) os << '\n';
}

std::string to_json(const RunResult& result, const JsonOptions& options) {
  std::ostringstream oss;
  write_json(oss, result, options);
  return oss.str();
}

}  // namespace rfid::sim
