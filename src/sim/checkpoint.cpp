#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <system_error>

#include "common/crc.hpp"
#include "common/rng.hpp"
#include "obs/phase_timer.hpp"

namespace rfid::sim {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'R', 'F', 'I', 'D',
                                                'C', 'K', 'P', 'T'};

// All integers little-endian on the wire, written byte by byte so the
// format is host-endianness-independent.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_metrics(std::vector<std::uint8_t>& out, const Metrics& m) {
  put_u64(out, m.polls);
  put_u64(out, m.missing);
  put_u64(out, m.corrupted);
  put_u64(out, m.retries);
  put_u64(out, m.undelivered);
  put_u64(out, m.rounds);
  put_u64(out, m.circles);
  put_u64(out, m.slots_total);
  put_u64(out, m.slots_useful);
  put_u64(out, m.slots_wasted);
  put_u64(out, m.vector_bits);
  put_u64(out, m.command_bits);
  put_u64(out, m.tag_bits);
  put_u64(out, m.segments_sent);
  put_u64(out, m.segments_corrupted);
  put_u64(out, m.segments_retransmitted);
  put_u64(out, m.downlink_corrupted);
  put_u64(out, m.degradations);
  put_u64(out, m.reader_crashes);
  put_u64(out, m.reader_stalls);
  put_u64(out, m.reader_restarts);
  put_u64(out, m.handoffs);
  put_u64(out, m.framing_overhead_bits);
  put_f64(out, m.time_us);
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p)
    put_f64(out, m.phases.us[p]);
}

/// Bounds-checked little-endian reader over the payload span.
class Cursor final {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string str(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n)
      throw std::runtime_error("checkpoint: truncated payload");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

Metrics read_metrics(Cursor& in) {
  Metrics m;
  m.polls = in.u64();
  m.missing = in.u64();
  m.corrupted = in.u64();
  m.retries = in.u64();
  m.undelivered = in.u64();
  m.rounds = in.u64();
  m.circles = in.u64();
  m.slots_total = in.u64();
  m.slots_useful = in.u64();
  m.slots_wasted = in.u64();
  m.vector_bits = in.u64();
  m.command_bits = in.u64();
  m.tag_bits = in.u64();
  m.segments_sent = in.u64();
  m.segments_corrupted = in.u64();
  m.segments_retransmitted = in.u64();
  m.downlink_corrupted = in.u64();
  m.degradations = in.u64();
  m.reader_crashes = in.u64();
  m.reader_stalls = in.u64();
  m.reader_restarts = in.u64();
  m.handoffs = in.u64();
  m.framing_overhead_bits = in.u64();
  m.time_us = in.f64();
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) m.phases.us[p] = in.f64();
  return m;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what + ": " +
                           std::generic_category().message(errno));
}

}  // namespace

std::uint64_t fingerprint_mix(std::uint64_t h, std::uint64_t value) noexcept {
  std::uint64_t state = h ^ value;
  return splitmix64_next(state);
}

// rfidlint: hotpath(checkpoint-warm-encode)
void encode_into(const Checkpoint& checkpoint, std::vector<std::uint8_t>& out) {
  out.clear();
  // Header: magic, version, CRC placeholder, payload size placeholder.
  // rfidlint: allow(hotpath-alloc) — warm encodes reuse `out` capacity; test_checkpoint pins the zero-alloc warm path
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kCheckpointVersion);
  const std::size_t crc_at = out.size();
  put_u32(out, 0);
  const std::size_t size_at = out.size();
  put_u64(out, 0);
  const std::size_t payload_at = out.size();

  put_u64(out, checkpoint.config_fingerprint);
  put_u64(out, checkpoint.master_seed);
  put_u64(out, checkpoint.wall_unix_ms);
  put_u64(out, checkpoint.epoch_target);
  put_u32(out, static_cast<std::uint32_t>(checkpoint.readers.size()));
  for (const ReaderCheckpoint& reader : checkpoint.readers) {
    put_u64(out, reader.epochs);
    put_u64(out, reader.crashes);
    put_u64(out, reader.restarts);
    put_u8(out, static_cast<std::uint8_t>(reader.health));
    put_metrics(out, reader.completed);
  }
  put_u32(out, static_cast<std::uint32_t>(checkpoint.rng_streams.size()));
  for (const NamedRngState& stream : checkpoint.rng_streams) {
    if (stream.name.size() > 255)
      throw std::runtime_error("checkpoint: RNG stream name too long");
    put_u8(out, static_cast<std::uint8_t>(stream.name.size()));
    // rfidlint: allow(hotpath-alloc) — warm encodes reuse `out` capacity; test_checkpoint pins the zero-alloc warm path
    out.insert(out.end(), stream.name.begin(), stream.name.end());
    for (const std::uint64_t word : stream.state) put_u64(out, word);
  }

  // Backfill CRC and payload size now the payload exists.
  const std::span<const std::uint8_t> payload{out.data() + payload_at,
                                              out.size() - payload_at};
  const std::uint32_t crc = crc16_ccitt(payload);
  for (int i = 0; i < 4; ++i)
    out[crc_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  const std::uint64_t payload_size = payload.size();
  for (int i = 0; i < 8; ++i)
    out[size_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_size >> (8 * i));
}

std::vector<std::uint8_t> encode(const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> out;
  encode_into(checkpoint, out);
  return out;
}

Checkpoint decode(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;
  if (bytes.size() < kHeaderSize)
    throw std::runtime_error("checkpoint: file shorter than header");
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin()))
    throw std::runtime_error("checkpoint: bad magic");
  Cursor header{bytes.subspan(8, 16)};
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion)
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  const std::uint32_t stored_crc = header.u32();
  const std::uint64_t payload_size = header.u64();
  if (bytes.size() - kHeaderSize != payload_size)
    throw std::runtime_error("checkpoint: payload size mismatch");
  const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderSize);
  if (crc16_ccitt(payload) != stored_crc)
    throw std::runtime_error("checkpoint: CRC mismatch (corrupt file)");

  Cursor in{payload};
  Checkpoint checkpoint;
  checkpoint.config_fingerprint = in.u64();
  checkpoint.master_seed = in.u64();
  checkpoint.wall_unix_ms = in.u64();
  checkpoint.epoch_target = in.u64();
  const std::uint32_t reader_count = in.u32();
  checkpoint.readers.reserve(reader_count);
  for (std::uint32_t r = 0; r < reader_count; ++r) {
    ReaderCheckpoint reader;
    reader.epochs = in.u64();
    reader.crashes = in.u64();
    reader.restarts = in.u64();
    const std::uint8_t health = in.u8();
    if (health >= obs::kReaderHealthCount)
      throw std::runtime_error("checkpoint: invalid reader health state");
    reader.health = static_cast<obs::ReaderHealth>(health);
    reader.completed = read_metrics(in);
    checkpoint.readers.push_back(std::move(reader));
  }
  const std::uint32_t stream_count = in.u32();
  checkpoint.rng_streams.reserve(stream_count);
  for (std::uint32_t s = 0; s < stream_count; ++s) {
    NamedRngState stream;
    stream.name = in.str(in.u8());
    for (std::uint64_t& word : stream.state) word = in.u64();
    checkpoint.rng_streams.push_back(std::move(stream));
  }
  if (!in.exhausted())
    throw std::runtime_error("checkpoint: trailing bytes after payload");
  return checkpoint;
}

void write_checkpoint_atomic(const std::string& path,
                             std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never expose a file whose bytes
  // are still in flight, or a crash between them leaves a torn checkpoint
  // under the final name — the exact failure this dance exists to prevent.
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync " + tmp);
  }
  if (::close(fd) != 0) throw_errno("close " + tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("rename " + tmp + " -> " + path);
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return std::nullopt;  // fresh start
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(file),
                                  std::istreambuf_iterator<char>()};
  if (file.bad()) throw std::runtime_error("checkpoint: read failed: " + path);
  return decode(bytes);
}

}  // namespace rfid::sim
