// Value types shared across the session stack: per-run configuration and
// the result bundle a protocol run produces.
//
// Split out of session.hpp so the lower sim layers (sim::AirLoop) and the
// composition root (sim::Session) can both depend on the configuration
// without depending on each other.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "air/channel.hpp"
#include "common/bitvec.hpp"
#include "common/tag_id.hpp"
#include "fault/fault_model.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "phy/c1g2.hpp"
#include "phy/framing.hpp"
#include "sim/metrics.hpp"

namespace rfid::sim {

/// Adaptive protocol-degradation policy (the TPP -> EHPP -> HPP ladder of
/// analysis/degradation.hpp). Evaluated by protocols that opt in (ADAPT)
/// through Session::degradation_tier; pure math on observed corruption
/// statistics, so an enabled policy never perturbs the RNG streams and is a
/// strict no-op at BER 0.
struct DegradationConfig final {
  bool enabled = false;
  /// Downlink corruption observations (framed attempts or unframed BER
  /// draws) required before the estimate is trusted.
  std::uint64_t min_observations = 16;
  /// Cost advantage a lower tier must show before the session downgrades
  /// (guards against estimate noise; see analysis::select_tier).
  double hysteresis = 1.05;
};

/// Per-run configuration shared by all protocols.
struct SessionConfig final {
  std::size_t info_bits = 1;     ///< l: payload bits collected per tag
  std::uint64_t seed = 1;        ///< master seed; identical seeds replay
  phy::C1G2Timing timing{};      ///< air-interface timing model
  bool keep_records = true;      ///< store per-tag collected payloads
  std::size_t max_rounds = 1u << 20;  ///< safety cap against livelock
  /// Tags physically in the interrogation zone; nullptr means all of them.
  /// With a subset, polls addressed to absent tags time out empty and the
  /// tag is reported missing — the paper's anti-theft use case (Section I).
  /// Not owned; must outlive the run.
  const std::unordered_set<TagId, TagIdHash>* present = nullptr;
  /// Probability that a tag's reply is garbled in flight (detected by the
  /// reader's PHY CRC). The airtime is spent but nothing is decoded; under
  /// C1G2 the unacknowledged tag stays awake, so polling protocols simply
  /// catch it in a later round. 0 models the paper's clean channel.
  double reply_error_rate = 0.0;
  /// Capture effect: probability that a collision slot still decodes as
  /// the strongest single reply (a real UHF phenomenon; helps the ALOHA
  /// family, irrelevant to polling which never collides). Applies to
  /// frame_slot_aloha only.
  double capture_probability = 0.0;
  /// Record a per-round snapshot trace in the result (diagnostics/plots).
  bool keep_trace = false;
  /// Event tracer receiving one typed event per air-interface action (see
  /// obs/trace.hpp). Not owned; must outlive the run. Null disables tracing
  /// entirely — the hot-path cost is a single branch on this pointer, and
  /// seeded runs stay byte-identical with or without it.
  obs::Tracer* tracer = nullptr;
  /// Structured fault plan (burst-error link model, tag-churn schedule).
  /// Executed by a fault::FaultInjector on a dedicated RNG stream derived
  /// from `seed`; the default (disabled) plan draws nothing and leaves
  /// seeded runs byte-identical to builds without the fault layer. See
  /// docs/fault_injection.md.
  fault::FaultConfig fault{};
  /// Reader-side recovery policy (bounded re-polls, end-of-round mop-up).
  /// Honoured by the hash-polling family (HPP/EHPP/TPP); retry airtime is
  /// charged to obs::Phase::kRecovery and budget-exhausted tags land in
  /// RunResult::undelivered_ids instead of missing_ids.
  fault::RecoveryConfig recovery{};
  /// CRC-framed segmented broadcast (see phy/framing.hpp). Off by default:
  /// the unframed path is bit-identical to older builds. When enabled,
  /// polling vectors and the TPP tree travel as CRC-16-trailed segments
  /// with bounded retransmission, making downlink corruption detectable
  /// per segment instead of desynchronizing whole rounds.
  phy::FramingConfig framing{};
  /// Adaptive TPP -> EHPP -> HPP degradation policy (see above).
  DegradationConfig degradation{};
};

/// Cumulative snapshot taken at the start of each round/frame.
struct RoundSnapshot final {
  std::uint64_t round = 0;
  std::uint64_t polls_so_far = 0;
  std::uint64_t vector_bits_so_far = 0;
  double time_us_so_far = 0.0;
  /// Per-phase split of time_us_so_far (cumulative, like the other fields).
  obs::PhaseBreakdown phases_so_far{};
};

/// One collected (tag, payload) pair.
struct CollectedRecord final {
  TagId id{};
  BitVec payload{};
};

/// Outcome of a protocol run.
struct RunResult final {
  std::string protocol;
  std::size_t population = 0;
  Metrics metrics{};
  air::ChannelStats channel{};
  std::vector<CollectedRecord> records;
  std::vector<TagId> missing_ids;  ///< expected tags that never replied
  /// Tags the recovery policy gave up on (retry budget exhausted), in the
  /// order they were abandoned. Disjoint from records and missing_ids.
  std::vector<TagId> undelivered_ids;
  std::vector<RoundSnapshot> trace;  ///< filled when keep_trace is set
  /// True when the run was configured with a fault plan or recovery policy;
  /// report/trace writers emit the extra fault columns only in that case,
  /// keeping zero-fault output byte-identical to older builds.
  bool fault_layer = false;

  [[nodiscard]] double avg_vector_bits() const noexcept {
    return metrics.avg_vector_bits();
  }
  [[nodiscard]] double exec_time_s() const noexcept {
    return metrics.exec_time_s();
  }
};

}  // namespace rfid::sim
