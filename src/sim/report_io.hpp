// JSON serialization of run results.
//
// Dashboards and regression tooling want machine-readable run summaries;
// this hand-rolled emitter (no third-party dependency) writes a RunResult
// as a single JSON object: protocol, population, every metric, channel
// stats, missing IDs, and optionally the per-record payloads and the round
// trace.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/session.hpp"

namespace rfid::sim {

struct JsonOptions final {
  bool include_records = false;  ///< per-tag payloads can be large
  bool include_trace = true;
  int indent = 2;  ///< 0 = compact single line
};

/// Serializes `result` as a JSON object.
void write_json(std::ostream& os, const RunResult& result,
                const JsonOptions& options = {});

/// Convenience: serialize to a string.
[[nodiscard]] std::string to_json(const RunResult& result,
                                  const JsonOptions& options = {});

}  // namespace rfid::sim
