// A polling session: one protocol execution against one tag population.
//
// The Session owns the per-run mutable state — RNG stream, channel, metrics,
// collected records — and exposes the reader's physical primitives
// (broadcast, poll, frame slots) with the C1G2 timing model applied. A
// protocol implementation is then a pure algorithm over these primitives.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "air/channel.hpp"
#include "analysis/degradation.hpp"
#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "fault/injector.hpp"
#include "obs/trace.hpp"
#include "phy/c1g2.hpp"
#include "phy/framing.hpp"
#include "sim/metrics.hpp"
#include "tags/population.hpp"

namespace rfid::sim {

/// Why the last poll returned no tag. Protocols branch on this to decide
/// between rescheduling (the tag is awake and reachable), recovery parking,
/// and loud abandonment.
enum class PollFailure : std::uint8_t {
  kNone,               ///< last poll succeeded
  kAbsent,             ///< addressed tag is outside the field (timeout)
  kGarbledReply,       ///< uplink reply corrupted; tag stays awake
  kDownlinkCorrupted,  ///< unframed vector hit by BER; tag never addressed
  kDownlinkExhausted,  ///< framed vector undeliverable within retry budget
};

/// Adaptive protocol-degradation policy (the TPP -> EHPP -> HPP ladder of
/// analysis/degradation.hpp). Evaluated by protocols that opt in (ADAPT)
/// through Session::degradation_tier; pure math on observed corruption
/// statistics, so an enabled policy never perturbs the RNG streams and is a
/// strict no-op at BER 0.
struct DegradationConfig final {
  bool enabled = false;
  /// Downlink corruption observations (framed attempts or unframed BER
  /// draws) required before the estimate is trusted.
  std::uint64_t min_observations = 16;
  /// Cost advantage a lower tier must show before the session downgrades
  /// (guards against estimate noise; see analysis::select_tier).
  double hysteresis = 1.05;
};

/// Per-run configuration shared by all protocols.
struct SessionConfig final {
  std::size_t info_bits = 1;     ///< l: payload bits collected per tag
  std::uint64_t seed = 1;        ///< master seed; identical seeds replay
  phy::C1G2Timing timing{};      ///< air-interface timing model
  bool keep_records = true;      ///< store per-tag collected payloads
  std::size_t max_rounds = 1u << 20;  ///< safety cap against livelock
  /// Tags physically in the interrogation zone; nullptr means all of them.
  /// With a subset, polls addressed to absent tags time out empty and the
  /// tag is reported missing — the paper's anti-theft use case (Section I).
  /// Not owned; must outlive the run.
  const std::unordered_set<TagId, TagIdHash>* present = nullptr;
  /// Probability that a tag's reply is garbled in flight (detected by the
  /// reader's PHY CRC). The airtime is spent but nothing is decoded; under
  /// C1G2 the unacknowledged tag stays awake, so polling protocols simply
  /// catch it in a later round. 0 models the paper's clean channel.
  double reply_error_rate = 0.0;
  /// Capture effect: probability that a collision slot still decodes as
  /// the strongest single reply (a real UHF phenomenon; helps the ALOHA
  /// family, irrelevant to polling which never collides). Applies to
  /// frame_slot_aloha only.
  double capture_probability = 0.0;
  /// Record a per-round snapshot trace in the result (diagnostics/plots).
  bool keep_trace = false;
  /// Event tracer receiving one typed event per air-interface action (see
  /// obs/trace.hpp). Not owned; must outlive the run. Null disables tracing
  /// entirely — the hot-path cost is a single branch on this pointer, and
  /// seeded runs stay byte-identical with or without it.
  obs::Tracer* tracer = nullptr;
  /// Structured fault plan (burst-error link model, tag-churn schedule).
  /// Executed by a fault::FaultInjector on a dedicated RNG stream derived
  /// from `seed`; the default (disabled) plan draws nothing and leaves
  /// seeded runs byte-identical to builds without the fault layer. See
  /// docs/fault_injection.md.
  fault::FaultConfig fault{};
  /// Reader-side recovery policy (bounded re-polls, end-of-round mop-up).
  /// Honoured by the hash-polling family (HPP/EHPP/TPP); retry airtime is
  /// charged to obs::Phase::kRecovery and budget-exhausted tags land in
  /// RunResult::undelivered_ids instead of missing_ids.
  fault::RecoveryConfig recovery{};
  /// CRC-framed segmented broadcast (see phy/framing.hpp). Off by default:
  /// the unframed path is bit-identical to older builds. When enabled,
  /// polling vectors and the TPP tree travel as CRC-16-trailed segments
  /// with bounded retransmission, making downlink corruption detectable
  /// per segment instead of desynchronizing whole rounds.
  phy::FramingConfig framing{};
  /// Adaptive TPP -> EHPP -> HPP degradation policy (see above).
  DegradationConfig degradation{};
};

/// Cumulative snapshot taken at the start of each round/frame.
struct RoundSnapshot final {
  std::uint64_t round = 0;
  std::uint64_t polls_so_far = 0;
  std::uint64_t vector_bits_so_far = 0;
  double time_us_so_far = 0.0;
  /// Per-phase split of time_us_so_far (cumulative, like the other fields).
  obs::PhaseBreakdown phases_so_far{};
};

/// One collected (tag, payload) pair.
struct CollectedRecord final {
  TagId id{};
  BitVec payload{};
};

/// Outcome of a protocol run.
struct RunResult final {
  std::string protocol;
  std::size_t population = 0;
  Metrics metrics{};
  air::ChannelStats channel{};
  std::vector<CollectedRecord> records;
  std::vector<TagId> missing_ids;  ///< expected tags that never replied
  /// Tags the recovery policy gave up on (retry budget exhausted), in the
  /// order they were abandoned. Disjoint from records and missing_ids.
  std::vector<TagId> undelivered_ids;
  std::vector<RoundSnapshot> trace;  ///< filled when keep_trace is set
  /// True when the run was configured with a fault plan or recovery policy;
  /// report/trace writers emit the extra fault columns only in that case,
  /// keeping zero-fault output byte-identical to older builds.
  bool fault_layer = false;

  [[nodiscard]] double avg_vector_bits() const noexcept {
    return metrics.avg_vector_bits();
  }
  [[nodiscard]] double exec_time_s() const noexcept {
    return metrics.exec_time_s();
  }
};

class Session final {
 public:
  Session(const tags::TagPopulation& population, SessionConfig config);

  [[nodiscard]] const tags::TagPopulation& population() const noexcept {
    return *population_;
  }
  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  [[nodiscard]] Xoshiro256ss& rng() noexcept { return rng_; }
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  // --- Reader transmissions -------------------------------------------------

  /// Broadcasts `bits` reader bits that the paper counts into w.
  void broadcast_vector_bits(std::size_t bits);

  /// Broadcasts `bits` reader bits outside the w accounting (round/circle
  /// initialization, framing fields).
  void broadcast_command_bits(std::size_t bits);

  [[nodiscard]] bool framing_enabled() const noexcept {
    return config_.framing.enabled;
  }

  /// Pushes `payload_bits` through the CRC-framed segmented downlink:
  /// splits into segments of at most framing.segment_payload_bits, wraps
  /// each in the 20-bit <seq><crc16> frame, and retransmits corrupted
  /// segments with exponential backoff up to framing.max_retransmissions
  /// times. First-attempt payload bits are counted into vector_bits when
  /// `count_in_w` (else command_bits); all framing overhead and every
  /// retransmission land in command_bits + framing_overhead_bits, with
  /// retransmission airtime charged to obs::Phase::kRecovery. Returns false
  /// when any segment stayed corrupt through its whole attempt budget — the
  /// payload was NOT delivered and the caller must handle the affected tags
  /// loudly (recovery parking or mark_undelivered).
  [[nodiscard]] bool broadcast_framed(std::size_t payload_bits,
                                      bool count_in_w);

  /// A poll the reader issues that no tag can answer (register
  /// desynchronized by an earlier unframed downlink corruption): the
  /// vector, QueryRep and both turn-arounds elapse, nothing decodes. The
  /// vector bits still count into w — the reader transmitted them.
  void poll_unanswered(std::size_t vector_bits);

  // --- Poll interactions ----------------------------------------------------

  /// True unless a `present` filter excludes `id` or the fault plan's churn
  /// schedule currently has it outside the field. Protocols that support
  /// churn re-evaluate this per poll rather than snapshotting it.
  [[nodiscard]] bool is_present(const TagId& id) const noexcept;

  /// One complete poll: QueryRep + `vector_bits` vector, turn-arounds, reply.
  /// `responders` are the tags whose tag-side predicate fired; `expected` is
  /// the reader's precomputed target. Returns the interrogated tag, or
  /// nullptr in two recoverable cases: the expected tag is configured
  /// absent (poll times out; tag recorded missing) or the reply was garbled
  /// by channel noise (airtime spent; tag stays awake — the caller must
  /// keep scheduling it). Protocols distinguish the two via the device's
  /// presence flag. Any other deviation from a singleton reply throws
  /// ProtocolError.
  const tags::Tag* poll(std::span<const tags::Tag* const> responders,
                        const tags::Tag* expected, std::size_t vector_bits);

  /// Why the most recent poll/poll_bare/poll_slot returned nullptr
  /// (kNone after a success). Valid until the next poll.
  [[nodiscard]] PollFailure last_poll_failure() const noexcept {
    return last_failure_;
  }

  /// Conventional-polling variant: bare broadcast without the QueryRep
  /// prefix (see phy::C1G2Timing::poll_bare_us).
  const tags::Tag* poll_bare(std::span<const tags::Tag* const> responders,
                             const tags::Tag* expected,
                             std::size_t vector_bits);

  /// A reply phase with no further reader vector (the vector or frame
  /// position was already transmitted): QueryRep + turn-arounds + reply.
  const tags::Tag* poll_slot(std::span<const tags::Tag* const> responders,
                             const tags::Tag* expected);

  /// A reply phase appended to an already-transmitted reader frame with no
  /// QueryRep of its own (coded polling's second responder).
  const tags::Tag* await_extra_reply(
      std::span<const tags::Tag* const> responders, const tags::Tag* expected);

  // --- Frame slots (ALOHA-family baselines) ---------------------------------

  /// A frame slot the reader expects to be empty (MIC's wasted slots).
  /// Throws ProtocolError if any tag answers. With `full_duration` the
  /// reader waits out the entire fixed-length slot (QueryRep, turn-arounds
  /// and the reply airtime) — the slotted-frame accounting under which the
  /// published MIC numbers reproduce; without it only the QueryRep and
  /// turn-arounds elapse (early empty-slot termination).
  void expect_empty_slot(std::span<const tags::Tag* const> responders,
                         bool full_duration = false);

  /// A frame slot whose outcome is not predetermined (classic framed-slotted
  /// ALOHA): empty, singleton (collected), or collision (airtime wasted).
  air::SlotResult frame_slot_aloha(
      std::span<const tags::Tag* const> responders);

  /// A 1-bit presence slot (missing-tag detection protocols): the reader
  /// only senses whether any energy was backscattered. Returns true when at
  /// least one tag replied; collisions are indistinguishable from single
  /// replies and equally useful. No payload is collected.
  bool presence_slot(std::span<const tags::Tag* const> responders);

  // --- Fault recovery -------------------------------------------------------

  [[nodiscard]] bool recovery_enabled() const noexcept {
    return config_.recovery.enabled;
  }

  /// While a recovery scope is open every phase increment — vector,
  /// turn-around, reply, timeout — is attributed to obs::Phase::kRecovery
  /// and every poll counts as a retry; the clock itself advances exactly as
  /// it would outside the scope. Protocols open one scope around each
  /// mop-up pass. Scopes must not nest.
  class RecoveryScope final {
   public:
    explicit RecoveryScope(Session& session) noexcept : session_(session) {
      session_.in_recovery_ = true;
    }
    ~RecoveryScope() { session_.in_recovery_ = false; }
    RecoveryScope(const RecoveryScope&) = delete;
    RecoveryScope& operator=(const RecoveryScope&) = delete;

   private:
    Session& session_;
  };

  /// Records that the recovery policy abandoned `id` (budget exhausted).
  void mark_undelivered(const TagId& id);

  // --- Adaptive degradation -------------------------------------------------

  /// Evaluates the degradation policy for `active_count` still-unread tags
  /// and returns the tier the protocol should run next. With the policy
  /// disabled (default) or before min_observations corruption samples, the
  /// current tier is returned unchanged. A downgrade bumps
  /// metrics().degradations and emits one obs kDegrade event with
  /// detail = (from_tier << 8) | to_tier. Pure math — no RNG draw — so an
  /// enabled policy at BER 0 never perturbs the run.
  [[nodiscard]] analysis::PollingTier degradation_tier(
      std::size_t active_count);

  /// Downlink BER estimate inverted from the observed per-frame corruption
  /// rate (0 before any observation).
  [[nodiscard]] double estimated_ber() const noexcept;

  // --- Round/circle bookkeeping ---------------------------------------------

  void begin_round();
  void begin_circle();

  /// Throws ProtocolError once rounds exceed config().max_rounds; protocols
  /// call this at round start so a mis-parameterized run fails loudly.
  void check_round_budget() const;

  [[nodiscard]] RunResult finish(std::string protocol_name);

 private:
  const tags::Tag* complete_reply(
      std::span<const tags::Tag* const> responders, const tags::Tag* expected,
      double reader_time_us);

  /// Draws the BER fate of an unframed `vector_bits` downlink (false — and
  /// no draw — when BER is off), folding the observation into the
  /// estimated_ber statistics.
  [[nodiscard]] bool unframed_downlink_corrupts(std::size_t vector_bits);

  /// Accounting for a poll whose unframed vector was corrupted in flight:
  /// the addressed tag never decoded its index, so the reader waits out the
  /// turn-arounds in silence. Sets last_failure_ = kDownlinkCorrupted.
  void downlink_corrupt_timeout(double reader_time_us);

  /// Phase attribution honouring an open recovery scope: inside one, the
  /// whole increment lands in kRecovery regardless of `phase`.
  void add_phase(obs::Phase phase, double delta_us) noexcept {
    metrics_.phases.add(in_recovery_ ? obs::Phase::kRecovery : phase,
                        delta_us);
  }

  /// Builds and emits one trace event stamped with the current clock and
  /// round/circle counters. Callers must have applied the metric updates
  /// first and must guard on config_.tracer themselves (keeps the disabled
  /// path to one branch).
  void trace_event(obs::EventKind kind, double duration_us,
                   std::uint64_t vector_bits, std::uint64_t command_bits,
                   std::uint64_t tag_bits, double reader_us, double tag_us,
                   std::uint64_t detail = 0);

  const tags::TagPopulation* population_;
  SessionConfig config_;
  Xoshiro256ss rng_;
  air::Channel channel_;
  fault::FaultInjector injector_;
  Metrics metrics_{};
  std::vector<CollectedRecord> records_;
  std::vector<TagId> missing_ids_;
  std::vector<TagId> undelivered_ids_;
  std::vector<RoundSnapshot> trace_;
  bool in_recovery_ = false;
  PollFailure last_failure_ = PollFailure::kNone;
  analysis::PollingTier tier_ = analysis::PollingTier::kTpp;
  // Observed downlink corruption statistics feeding estimated_ber().
  std::uint64_t downlink_attempts_ = 0;
  std::uint64_t downlink_attempt_bits_ = 0;
  std::uint64_t downlink_failures_ = 0;
};

}  // namespace rfid::sim
