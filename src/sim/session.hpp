// A polling session: one protocol execution against one tag population.
//
// The Session is the composition root of the simulation stack. It owns the
// per-run mutable state — RNG stream, channel, metrics, collected records —
// and wires together the layered components that do the actual work:
//
//   phy::Downlink   — reader broadcasts, CRC framing, retransmission ladder
//   sim::AirLoop    — poll/reply/turn-around primitives, slot variants
//   (protocols::RoundEngine and fault::RecoveryCoordinator sit above, in
//    their own layers, and reach the session through its narrow surface)
//
// The Session itself keeps only the cross-cutting concerns: run lifecycle
// (rounds/circles/finish), adaptive degradation, and the two interfaces the
// lower/upper layers report through — phy::AirtimeSink (downlink bit and
// airtime accounting) and fault::RecoveryHost (recovery-phase attribution
// and undelivered reporting). A protocol implementation is then a pure
// algorithm over session.air() and session.downlink().
// See docs/architecture.md for the layer diagram and charging rules.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "air/channel.hpp"
#include "analysis/degradation.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "phy/downlink.hpp"
#include "sim/air_loop.hpp"
#include "sim/session_types.hpp"
#include "tags/population.hpp"

namespace rfid::sim {

class Session final : private phy::AirtimeSink, public fault::RecoveryHost {
 public:
  Session(const tags::TagPopulation& population, SessionConfig config);

  [[nodiscard]] const tags::TagPopulation& population() const noexcept {
    return *population_;
  }
  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  [[nodiscard]] Xoshiro256ss& protocol_rng() noexcept { return protocol_rng_; }
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  // --- Layered components ---------------------------------------------------

  /// Poll/reply/turn-around primitives (polls, frame slots, presence slots).
  [[nodiscard]] AirLoop& air() noexcept { return air_; }

  /// Reader-to-tag broadcasts: unframed bit accounting and the CRC-framed
  /// retransmission ladder.
  [[nodiscard]] phy::Downlink& downlink() noexcept { return downlink_; }

  [[nodiscard]] bool framing_enabled() const noexcept {
    return downlink_.framing_enabled();
  }

  /// True unless a `present` filter excludes `id` or the fault plan's churn
  /// schedule currently has it outside the field (see AirLoop::is_present).
  [[nodiscard]] bool is_present(const TagId& id) const noexcept {
    return air_.is_present(id);
  }

  /// True when every singleton poll this session issues is guaranteed to
  /// succeed with fixed per-poll accounting: no framing, no reply noise or
  /// structured link model, no downlink BER, no churn or presence filter,
  /// no per-poll record/trace output, and no open recovery phase. Under
  /// these conditions the round engine may replace the per-poll dispatch
  /// loop with AirLoop::clean_singleton_replies — byte-identical metrics,
  /// a fraction of the work. Recovery merely being *enabled* stays
  /// eligible: with no failures nothing is ever parked for the mop-up.
  [[nodiscard]] bool clean_poll_fast_path() const noexcept {
    return !config_.framing.enabled && config_.reply_error_rate == 0.0 &&
           !config_.keep_records && config_.tracer == nullptr &&
           config_.present == nullptr && !injector_.ber_active() &&
           !injector_.link_active() && !injector_.churn_active() &&
           !air_.in_recovery();
  }

  // --- Fault recovery (fault::RecoveryHost) ---------------------------------

  [[nodiscard]] bool recovery_enabled() const noexcept {
    return config_.recovery.enabled;
  }

  /// Records that the recovery policy abandoned `id` (budget exhausted).
  void mark_undelivered(const TagId& id) override;

  /// Redirects all phase accounting to obs::Phase::kRecovery until the
  /// matching recovery_phase_end. Driven by fault::RecoveryCoordinator::
  /// Scope — protocols never call these directly.
  void recovery_phase_begin() override { air_.set_in_recovery(true); }
  void recovery_phase_end() override { air_.set_in_recovery(false); }

  // --- Adaptive degradation -------------------------------------------------

  /// Evaluates the degradation policy for `active_count` still-unread tags
  /// and returns the tier the protocol should run next. With the policy
  /// disabled (default) or before min_observations corruption samples, the
  /// current tier is returned unchanged. A downgrade bumps
  /// metrics().degradations and emits one obs kDegrade event with
  /// detail = (from_tier << 8) | to_tier. Pure math — no RNG draw — so an
  /// enabled policy at BER 0 never perturbs the run.
  [[nodiscard]] analysis::PollingTier degradation_tier(
      std::size_t active_count);

  // --- Round/circle bookkeeping ---------------------------------------------

  void begin_round();
  void begin_circle();

  /// Throws ProtocolError once rounds exceed config().max_rounds; protocols
  /// call this at round start so a mis-parameterized run fails loudly.
  void check_round_budget() const;

  [[nodiscard]] RunResult finish(std::string protocol_name);

 private:
  // --- phy::AirtimeSink (downlink accounting) -------------------------------
  // Each override mirrors one primitive metric mutation of the pre-split
  // Session, in the same order the Downlink invokes them, so seeded runs
  // stay byte-identical across the decomposition.
  void on_reader_payload_bits(std::uint64_t bits, bool count_in_w) override {
    if (count_in_w)
      metrics_.vector_bits += bits;
    else
      metrics_.command_bits += bits;
  }
  void on_framing_overhead_bits(std::uint64_t bits) override {
    metrics_.command_bits += bits;
    metrics_.framing_overhead_bits += bits;
  }
  void on_segment_sent() override { ++metrics_.segments_sent; }
  void on_segment_retransmitted() override {
    ++metrics_.segments_retransmitted;
  }
  void on_segment_corrupted() override { ++metrics_.segments_corrupted; }
  void on_clock_advance(double dt_us) override { metrics_.time_us += dt_us; }
  void on_phase(obs::Phase phase, double dt_us) override {
    air_.add_phase(phase, dt_us);
  }
  [[nodiscard]] bool tracing() const override {
    return config_.tracer != nullptr;
  }
  void on_trace(obs::EventKind kind, double duration_us,
                std::uint64_t vector_bits, std::uint64_t command_bits,
                std::uint64_t tag_bits, double reader_us, double tag_us,
                std::uint64_t detail) override {
    air_.trace_event(kind, duration_us, vector_bits, command_bits, tag_bits,
                     reader_us, tag_us, detail);
  }

  const tags::TagPopulation* population_;
  SessionConfig config_;
  Xoshiro256ss protocol_rng_;
  air::Channel channel_;
  fault::FaultInjector injector_;
  Metrics metrics_{};
  std::vector<CollectedRecord> records_;
  std::vector<TagId> missing_ids_;
  std::vector<TagId> undelivered_ids_;
  std::vector<RoundSnapshot> trace_;
  analysis::PollingTier tier_ = analysis::PollingTier::kTpp;
  // Layered components; both borrow the members above, so they are
  // declared (and constructed) last.
  phy::Downlink downlink_;
  AirLoop air_;
};

}  // namespace rfid::sim
