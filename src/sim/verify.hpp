// End-of-session verification.
//
// The fast-polling problem (paper Section II-C) is to collect m-bit
// information from *each* tag exactly once. This checker asserts that a run
// achieved it: every tag interrogated once, no stranger tags, and every
// collected payload bit-identical to what the tag stores.
#pragma once

#include <string>

#include "sim/session.hpp"

namespace rfid::sim {

struct VerifyReport final {
  bool ok = true;
  std::string message;  ///< first discrepancy found, empty when ok
};

/// Checks a finished run against the population it was drawn from.
[[nodiscard]] VerifyReport verify_complete_collection(
    const tags::TagPopulation& population, const RunResult& result);

}  // namespace rfid::sim
