#include "parallel/trial_runner.hpp"

#include <exception>
#include <utility>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace rfid::parallel {

namespace {

RunningStats collect(const std::vector<TrialOutcome>& outcomes,
                     double TrialOutcome::* field) {
  RunningStats stats;
  for (const TrialOutcome& outcome : outcomes) stats.add(outcome.*field);
  return stats;
}

/// Everything one trial hands back for aggregation. Registries are merged
/// after the pool drains, in trial order, so the fold is deterministic.
struct TrialSlot final {
  TrialOutcome outcome;
  sim::Metrics metrics;
  obs::MetricsRegistry registry;
};

/// The cross-thread meeting point of a trial series. Pool workers deposit
/// one TrialSlot per trial; after ThreadPool::wait_idle the main thread
/// folds the slots — in trial order, never in completion order — through
/// sim::Metrics::merge and obs::MetricsRegistry::merge. Every slot access
/// is GUARDED_BY the aggregator mutex, so the merge paths carry a
/// compile-checked lock discipline (and a clean TSan run) on top of the
/// byte-identity contract the determinism gate enforces.
class TrialAggregator final {
 public:
  explicit TrialAggregator(std::size_t trials)
      : slots_(trials), errors_(trials) {}

  /// Called once per trial, from whichever thread ran it.
  void deposit(std::size_t trial, TrialSlot&& slot) RFID_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    slots_[trial] = std::move(slot);
  }

  void deposit_error(std::size_t trial, std::exception_ptr error)
      RFID_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    errors_[trial] = std::move(error);
  }

  /// Rethrows the first (by trial index) captured exception, if any.
  void rethrow_first_error() RFID_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    for (const std::exception_ptr& error : errors_)
      if (error) std::rethrow_exception(error);
  }

  /// The deterministic cross-trial fold: outcomes copied and metrics /
  /// registries merged in trial order regardless of how the trials were
  /// scheduled — merge order is what makes the aggregates (sums,
  /// histograms) bit-identical between serial and pooled execution.
  [[nodiscard]] TrialSeries fold(bool collect_registry)
      RFID_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return fold_locked(collect_registry);
  }

 private:
  [[nodiscard]] TrialSeries fold_locked(bool collect_registry)
      RFID_REQUIRES(mutex_) {
    TrialSeries series;
    series.outcomes.resize(slots_.size());
    for (std::size_t t = 0; t < slots_.size(); ++t) {
      series.outcomes[t] = slots_[t].outcome;
      series.totals.merge(slots_[t].metrics);
      if (collect_registry) series.registry.merge(slots_[t].registry);
    }
    return series;
  }

  Mutex mutex_;
  std::vector<TrialSlot> slots_ RFID_GUARDED_BY(mutex_);
  std::vector<std::exception_ptr> errors_ RFID_GUARDED_BY(mutex_);
};

TrialSlot run_one(const protocols::PollingProtocol& protocol,
                  const PopulationFactory& make_population,
                  const TrialPlan& plan, std::size_t trial) {
  // Two independent streams per trial: one for the population's IDs, one for
  // the protocol's seeds. Both derive only from (master_seed, trial), which
  // is what makes the series order- and scheduling-independent.
  Xoshiro256ss pop_rng(derive_seed(plan.master_seed, 2 * trial));
  const tags::TagPopulation population = make_population(pop_rng);

  TrialSlot slot;
  sim::SessionConfig session = plan.session;
  session.seed = derive_seed(plan.master_seed, 2 * trial + 1);
  session.keep_records = false;  // trials aggregate metrics only
  session.tracer = nullptr;      // a caller-shared sink would race the pool

  // Each trial traces into its own registry; cross-trial merging happens
  // serially in run_trials.
  obs::RegistrySink registry_sink(slot.registry);
  obs::Tracer tracer(&registry_sink);
  if (plan.collect_registry) session.tracer = &tracer;

  const sim::RunResult result = protocol.run(population, session);
  slot.metrics = result.metrics;
  slot.outcome.avg_vector_bits = result.avg_vector_bits();
  slot.outcome.exec_time_s = result.exec_time_s();
  slot.outcome.rounds = static_cast<double>(result.metrics.rounds);
  slot.outcome.waste_fraction = result.metrics.waste_fraction();
  slot.outcome.polls = static_cast<double>(result.metrics.polls);
  return slot;
}

}  // namespace

RunningStats TrialSeries::vector_bits() const {
  return collect(outcomes, &TrialOutcome::avg_vector_bits);
}
RunningStats TrialSeries::time_s() const {
  return collect(outcomes, &TrialOutcome::exec_time_s);
}
RunningStats TrialSeries::rounds() const {
  return collect(outcomes, &TrialOutcome::rounds);
}
RunningStats TrialSeries::waste() const {
  return collect(outcomes, &TrialOutcome::waste_fraction);
}

TrialSeries run_trials(const protocols::PollingProtocol& protocol,
                       const PopulationFactory& make_population,
                       const TrialPlan& plan, ThreadPool* pool) {
  TrialAggregator aggregator(plan.trials);

  if (pool == nullptr) {
    for (std::size_t t = 0; t < plan.trials; ++t)
      aggregator.deposit(t, run_one(protocol, make_population, plan, t));
  } else {
    for (std::size_t t = 0; t < plan.trials; ++t) {
      pool->submit([&, t] {
        try {
          aggregator.deposit(t, run_one(protocol, make_population, plan, t));
        } catch (...) {
          aggregator.deposit_error(t, std::current_exception());
        }
      });
    }
    pool->wait_idle();
    aggregator.rethrow_first_error();
  }

  return aggregator.fold(plan.collect_registry);
}

PopulationFactory uniform_population(std::size_t n) {
  return [n](Xoshiro256ss& pop_rng) {
    return tags::TagPopulation::uniform_random(n, pop_rng);
  };
}

}  // namespace rfid::parallel
