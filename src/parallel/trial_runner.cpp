#include "parallel/trial_runner.hpp"

#include <exception>

#include "common/rng.hpp"

namespace rfid::parallel {

namespace {

RunningStats collect(const std::vector<TrialOutcome>& outcomes,
                     double TrialOutcome::* field) {
  RunningStats stats;
  for (const TrialOutcome& outcome : outcomes) stats.add(outcome.*field);
  return stats;
}

/// Everything one trial hands back for aggregation. Registries are merged
/// after the pool drains, in trial order, so the fold is deterministic.
struct TrialSlot final {
  TrialOutcome outcome;
  sim::Metrics metrics;
  obs::MetricsRegistry registry;
};

TrialSlot run_one(const protocols::PollingProtocol& protocol,
                  const PopulationFactory& make_population,
                  const TrialPlan& plan, std::size_t trial) {
  // Two independent streams per trial: one for the population's IDs, one for
  // the protocol's seeds. Both derive only from (master_seed, trial), which
  // is what makes the series order- and scheduling-independent.
  Xoshiro256ss pop_rng(derive_seed(plan.master_seed, 2 * trial));
  const tags::TagPopulation population = make_population(pop_rng);

  TrialSlot slot;
  sim::SessionConfig session = plan.session;
  session.seed = derive_seed(plan.master_seed, 2 * trial + 1);
  session.keep_records = false;  // trials aggregate metrics only
  session.tracer = nullptr;      // a caller-shared sink would race the pool

  // Each trial traces into its own registry; cross-trial merging happens
  // serially in run_trials.
  obs::RegistrySink registry_sink(slot.registry);
  obs::Tracer tracer(&registry_sink);
  if (plan.collect_registry) session.tracer = &tracer;

  const sim::RunResult result = protocol.run(population, session);
  slot.metrics = result.metrics;
  slot.outcome.avg_vector_bits = result.avg_vector_bits();
  slot.outcome.exec_time_s = result.exec_time_s();
  slot.outcome.rounds = static_cast<double>(result.metrics.rounds);
  slot.outcome.waste_fraction = result.metrics.waste_fraction();
  slot.outcome.polls = static_cast<double>(result.metrics.polls);
  return slot;
}

}  // namespace

RunningStats TrialSeries::vector_bits() const {
  return collect(outcomes, &TrialOutcome::avg_vector_bits);
}
RunningStats TrialSeries::time_s() const {
  return collect(outcomes, &TrialOutcome::exec_time_s);
}
RunningStats TrialSeries::rounds() const {
  return collect(outcomes, &TrialOutcome::rounds);
}
RunningStats TrialSeries::waste() const {
  return collect(outcomes, &TrialOutcome::waste_fraction);
}

TrialSeries run_trials(const protocols::PollingProtocol& protocol,
                       const PopulationFactory& make_population,
                       const TrialPlan& plan, ThreadPool* pool) {
  std::vector<TrialSlot> slots(plan.trials);

  if (pool == nullptr) {
    for (std::size_t t = 0; t < plan.trials; ++t)
      slots[t] = run_one(protocol, make_population, plan, t);
  } else {
    std::vector<std::exception_ptr> errors(plan.trials);
    for (std::size_t t = 0; t < plan.trials; ++t) {
      pool->submit([&, t] {
        try {
          slots[t] = run_one(protocol, make_population, plan, t);
        } catch (...) {
          errors[t] = std::current_exception();
        }
      });
    }
    pool->wait_idle();
    for (const std::exception_ptr& error : errors)
      if (error) std::rethrow_exception(error);
  }

  // The cross-trial fold runs serially in trial order regardless of how the
  // trials were scheduled: merge order is what makes the aggregates (sums,
  // histograms) bit-identical between serial and pooled execution.
  TrialSeries series;
  series.outcomes.resize(plan.trials);
  for (std::size_t t = 0; t < plan.trials; ++t) {
    series.outcomes[t] = slots[t].outcome;
    series.totals.merge(slots[t].metrics);
    if (plan.collect_registry) series.registry.merge(slots[t].registry);
  }
  return series;
}

PopulationFactory uniform_population(std::size_t n) {
  return [n](Xoshiro256ss& rng) {
    return tags::TagPopulation::uniform_random(n, rng);
  };
}

}  // namespace rfid::parallel
