#include "parallel/trial_runner.hpp"

#include <exception>

#include "common/rng.hpp"

namespace rfid::parallel {

namespace {

RunningStats collect(const std::vector<TrialOutcome>& outcomes,
                     double TrialOutcome::* field) {
  RunningStats stats;
  for (const TrialOutcome& outcome : outcomes) stats.add(outcome.*field);
  return stats;
}

TrialOutcome run_one(const protocols::PollingProtocol& protocol,
                     const PopulationFactory& make_population,
                     const TrialPlan& plan, std::size_t trial) {
  // Two independent streams per trial: one for the population's IDs, one for
  // the protocol's seeds. Both derive only from (master_seed, trial), which
  // is what makes the series order- and scheduling-independent.
  Xoshiro256ss pop_rng(derive_seed(plan.master_seed, 2 * trial));
  const tags::TagPopulation population = make_population(pop_rng);

  sim::SessionConfig session = plan.session;
  session.seed = derive_seed(plan.master_seed, 2 * trial + 1);
  session.keep_records = false;  // trials aggregate metrics only

  const sim::RunResult result = protocol.run(population, session);
  TrialOutcome outcome;
  outcome.avg_vector_bits = result.avg_vector_bits();
  outcome.exec_time_s = result.exec_time_s();
  outcome.rounds = static_cast<double>(result.metrics.rounds);
  outcome.waste_fraction = result.metrics.waste_fraction();
  outcome.polls = static_cast<double>(result.metrics.polls);
  return outcome;
}

}  // namespace

RunningStats TrialSeries::vector_bits() const {
  return collect(outcomes, &TrialOutcome::avg_vector_bits);
}
RunningStats TrialSeries::time_s() const {
  return collect(outcomes, &TrialOutcome::exec_time_s);
}
RunningStats TrialSeries::rounds() const {
  return collect(outcomes, &TrialOutcome::rounds);
}
RunningStats TrialSeries::waste() const {
  return collect(outcomes, &TrialOutcome::waste_fraction);
}

TrialSeries run_trials(const protocols::PollingProtocol& protocol,
                       const PopulationFactory& make_population,
                       const TrialPlan& plan, ThreadPool* pool) {
  TrialSeries series;
  series.outcomes.resize(plan.trials);

  if (pool == nullptr) {
    for (std::size_t t = 0; t < plan.trials; ++t)
      series.outcomes[t] = run_one(protocol, make_population, plan, t);
    return series;
  }

  std::vector<std::exception_ptr> errors(plan.trials);
  for (std::size_t t = 0; t < plan.trials; ++t) {
    pool->submit([&, t] {
      try {
        series.outcomes[t] = run_one(protocol, make_population, plan, t);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  pool->wait_idle();
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);
  return series;
}

PopulationFactory uniform_population(std::size_t n) {
  return [n](Xoshiro256ss& rng) {
    return tags::TagPopulation::uniform_random(n, rng);
  };
}

}  // namespace rfid::parallel
