#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace rfid::parallel {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) worker.request_stop();
  work_available_.notify_all();
  // std::jthread joins in its destructor.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  const MutexLock lock(mutex_);
  // condition_variable_any waits on the Mutex itself (BasicLockable); the
  // predicate re-asserts the capability because the analysis cannot see
  // the wait's unlock/relock cycle into the lambda.
  idle_.wait(mutex_, [this] {
    mutex_.assert_held();
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      work_available_.wait(mutex_, stop, [this] {
        mutex_.assert_held();
        return !queue_.empty();
      });
      if (queue_.empty()) return;  // stop requested and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const MutexLock lock(mutex_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

}  // namespace rfid::parallel
