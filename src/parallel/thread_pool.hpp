// A small fixed-size thread pool for Monte-Carlo trial fan-out.
//
// Design notes (following the C++ Core Guidelines concurrency rules):
//   * RAII lifetime — the destructor joins all workers (std::jthread);
//   * no detached threads, no shared mutable state outside the queue;
//   * tasks are std::move_only_function-style thunks; results travel via
//     caller-owned slots, keeping the pool itself allocation-light.
// Determinism of the simulation is unaffected by scheduling because every
// trial owns its seed-derived RNG stream.
//
// The queue state is annotated for the Clang thread-safety analysis
// (common/thread_annotations.hpp): every member below is GUARDED_BY(mutex_)
// and a build with -Wthread-safety fails if an access slips outside the
// lock. The TSan CI job checks the same discipline dynamically.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace rfid::parallel {

class ThreadPool final {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Joins all workers; outstanding tasks complete first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task. Tasks must not throw; wrap fallible work and capture
  /// errors into caller-owned slots.
  void submit(std::function<void()> task) RFID_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and all running tasks have finished.
  void wait_idle() RFID_EXCLUDES(mutex_);

 private:
  void worker_loop(const std::stop_token& stop) RFID_EXCLUDES(mutex_);

  Mutex mutex_;
  std::condition_variable_any work_available_;
  std::condition_variable_any idle_;
  std::deque<std::function<void()>> queue_ RFID_GUARDED_BY(mutex_);
  std::size_t in_flight_ RFID_GUARDED_BY(mutex_) = 0;
  std::vector<std::jthread> workers_;
};

}  // namespace rfid::parallel
