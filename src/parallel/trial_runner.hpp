// Monte-Carlo trial fan-out.
//
// Every number the paper reports is the mean of repeated simulation runs
// (100 in the paper). The trial runner executes `trials` independent runs —
// each with its own seed-derived population and session seed, so results are
// bit-identical whether trials run serially or across a pool — and returns
// the per-trial outcomes in trial order plus summary statistics.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/protocol.hpp"

namespace rfid::parallel {

/// The scalar outcomes retained per trial.
struct TrialOutcome final {
  double avg_vector_bits = 0.0;
  double exec_time_s = 0.0;
  double rounds = 0.0;
  double waste_fraction = 0.0;
  double polls = 0.0;
};

struct TrialPlan final {
  std::size_t trials = 25;
  std::uint64_t master_seed = 42;
  sim::SessionConfig session{};  ///< per-trial seed is derived, field ignored
  /// When set, each trial runs with a private obs::RegistrySink and the
  /// per-trial registries are merged — in trial order, after all trials
  /// completed — into TrialSeries::registry. Aggregate distributions are
  /// therefore bit-identical serial vs pooled, the same contract
  /// sim::Metrics::merge gives the scalar totals. Any tracer set on
  /// `session` is ignored (a shared sink across pool threads would race).
  bool collect_registry = false;
};

/// Builds the population for one trial from a seed-derived RNG stream.
using PopulationFactory = std::function<tags::TagPopulation(Xoshiro256ss&)>;

/// Summary of a full trial series.
struct TrialSeries final {
  std::vector<TrialOutcome> outcomes;  ///< indexed by trial

  /// Metrics summed over all trials via sim::Metrics::merge (trial order,
  /// so serial and pooled runs agree bitwise).
  sim::Metrics totals{};

  /// Merged event-derived distributions; populated only when
  /// TrialPlan::collect_registry is set.
  obs::MetricsRegistry registry;

  [[nodiscard]] RunningStats vector_bits() const;
  [[nodiscard]] RunningStats time_s() const;
  [[nodiscard]] RunningStats rounds() const;
  [[nodiscard]] RunningStats waste() const;
};

/// Runs the series. A null `pool` executes serially; with a pool, trials are
/// distributed but per-trial results are identical to the serial run.
/// Populations are regenerated per trial (fresh random IDs), matching the
/// paper's averaging methodology. Exceptions from any trial are rethrown.
[[nodiscard]] TrialSeries run_trials(const protocols::PollingProtocol& protocol,
                                     const PopulationFactory& make_population,
                                     const TrialPlan& plan,
                                     ThreadPool* pool = nullptr);

/// Convenience factory: n uniformly random tags.
[[nodiscard]] PopulationFactory uniform_population(std::size_t n);

}  // namespace rfid::parallel
