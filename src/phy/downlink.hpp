// Reader-to-tag downlink: broadcast accounting, BER fate draws, and the
// CRC-framed retransmission ladder.
//
// The Downlink owns everything about getting reader bits onto the air — the
// unframed fast path, the segmented CRC-16 framing with bounded exponential
// backoff (see phy/framing.hpp), and the corruption statistics behind
// estimated_ber(). It knows nothing about polls, tags, or protocol rounds:
// corruption fate comes from the fault::FaultInjector it consumes, and every
// bit and microsecond it spends is reported through the narrow AirtimeSink
// interface the owning session implements. That keeps the accounting
// discipline in exactly one place (the sink) while the transmission policy —
// what travels framed, how retransmissions back off, when a payload is
// declared undeliverable — lives here.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fault/injector.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "phy/c1g2.hpp"
#include "phy/framing.hpp"

namespace rfid::phy {

/// Accounting surface the Downlink reports through. Implemented by
/// sim::Session; each method mirrors one primitive metric mutation so the
/// downlink's sequence of updates is byte-identical to the pre-split code.
/// Phase attribution goes through the sink because only the session knows
/// whether a recovery scope is open (which redirects phases to kRecovery).
class AirtimeSink {
 public:
  /// Reader payload bits: counted into the paper's w when `count_in_w`,
  /// else into the command bucket.
  virtual void on_reader_payload_bits(std::uint64_t bits, bool count_in_w) = 0;
  /// Framing bits beyond the raw payload (segment headers/CRCs and whole
  /// retransmitted frames): command bucket + framing-overhead accounting.
  virtual void on_framing_overhead_bits(std::uint64_t bits) = 0;
  virtual void on_segment_sent() = 0;
  virtual void on_segment_retransmitted() = 0;
  virtual void on_segment_corrupted() = 0;
  /// Advances the session clock by `dt_us` (no phase attribution).
  virtual void on_clock_advance(double dt_us) = 0;
  /// Attributes `dt_us` to `phase`, honouring an open recovery scope.
  virtual void on_phase(obs::Phase phase, double dt_us) = 0;
  /// True when a tracer is attached (keeps the disabled path to one branch).
  [[nodiscard]] virtual bool tracing() const = 0;
  /// Emits one trace event stamped by the sink with clock/round counters.
  virtual void on_trace(obs::EventKind kind, double duration_us,
                        std::uint64_t vector_bits, std::uint64_t command_bits,
                        std::uint64_t tag_bits, double reader_us,
                        double tag_us, std::uint64_t detail) = 0;

 protected:
  ~AirtimeSink() = default;
};

class Downlink final {
 public:
  /// All references are borrowed and must outlive the Downlink; the session
  /// composition root owns them all.
  Downlink(const C1G2Timing& timing, const FramingConfig& framing,
           fault::FaultInjector& injector, AirtimeSink& sink) noexcept
      : timing_(timing), framing_(framing), injector_(injector), sink_(sink) {}

  [[nodiscard]] bool framing_enabled() const noexcept {
    return framing_.enabled;
  }

  /// Broadcasts `bits` reader bits that the paper counts into w.
  void broadcast_vector_bits(std::size_t bits);

  /// Broadcasts `bits` reader bits outside the w accounting (round/circle
  /// initialization, framing fields).
  void broadcast_command_bits(std::size_t bits);

  /// Pushes `payload_bits` through the CRC-framed segmented downlink:
  /// splits into segments of at most framing.segment_payload_bits, wraps
  /// each in the 20-bit <seq><crc16> frame, and retransmits corrupted
  /// segments with exponential backoff up to framing.max_retransmissions
  /// times. First-attempt payload bits are counted into vector_bits when
  /// `count_in_w` (else command_bits); all framing overhead and every
  /// retransmission land in command_bits + framing_overhead_bits, with
  /// retransmission airtime charged to obs::Phase::kRecovery. Returns false
  /// when any segment stayed corrupt through its whole attempt budget — the
  /// payload was NOT delivered and the caller must handle the affected tags
  /// loudly (recovery parking or mark_undelivered).
  [[nodiscard]] bool broadcast_framed(std::size_t payload_bits,
                                      bool count_in_w);

  /// Draws the BER fate of an unframed `vector_bits` downlink (false — and
  /// no draw — when BER is off), folding the observation into the
  /// estimated_ber statistics.
  [[nodiscard]] bool unframed_corrupts(std::size_t vector_bits);

  /// Downlink BER estimate inverted from the observed per-frame corruption
  /// rate (0 before any observation).
  [[nodiscard]] double estimated_ber() const noexcept;

  /// Downlink transmission attempts observed so far (framed attempts plus
  /// unframed BER draws); the degradation policy's sample-count gate.
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

 private:
  const C1G2Timing& timing_;
  const FramingConfig& framing_;
  fault::FaultInjector& injector_;
  AirtimeSink& sink_;
  // Observed downlink corruption statistics feeding estimated_ber().
  std::uint64_t attempts_ = 0;
  std::uint64_t attempt_bits_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace rfid::phy
