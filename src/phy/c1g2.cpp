#include "phy/c1g2.hpp"

// Header-only arithmetic; this translation unit exists so the library has a
// stable object to link and a place for future rate tables (Miller encodings,
// Tari sweeps) without touching the public header.
namespace rfid::phy {}
