#include "phy/framing.hpp"

#include <algorithm>
#include <vector>

#include "common/crc.hpp"
#include "common/error.hpp"

namespace rfid::phy {

double FramingConfig::backoff_us(unsigned attempt) const noexcept {
  RFID_EXPECTS(attempt >= 1);
  double delay = backoff_base_us;
  for (unsigned k = 1; k < attempt && delay < backoff_cap_us; ++k)
    delay *= 2.0;
  return std::min(delay, backoff_cap_us);
}

std::uint16_t crc16_over_bits(const BitVec& bits, std::size_t nbits) {
  RFID_EXPECTS(nbits <= bits.size());
  std::vector<std::uint8_t> bytes((nbits + 7) / 8, 0);
  for (std::size_t pos = 0; pos < nbits; ++pos)
    if (bits.bit(pos))
      bytes[pos / 8] |= static_cast<std::uint8_t>(0x80u >> (pos % 8));
  return crc16_ccitt(bytes);
}

BitVec SegmentFrame::encode() const {
  RFID_EXPECTS(seq < (1u << kSegmentSeqBits));
  BitVec frame;
  frame.append_bits(seq, kSegmentSeqBits);
  frame.append(payload);
  frame.append_bits(crc16_over_bits(frame, frame.size()), kSegmentCrcBits);
  return frame;
}

std::optional<SegmentFrame> SegmentFrame::decode(const BitVec& frame) {
  if (frame.size() < kSegmentOverheadBits) return std::nullopt;
  const std::size_t covered = frame.size() - kSegmentCrcBits;
  const auto received = static_cast<std::uint16_t>(
      frame.read_bits(covered, kSegmentCrcBits));
  if (crc16_over_bits(frame, covered) != received) return std::nullopt;
  SegmentFrame out;
  out.seq = static_cast<unsigned>(frame.read_bits(0, kSegmentSeqBits));
  for (std::size_t pos = kSegmentSeqBits; pos < covered; ++pos)
    out.payload.push_back(frame.bit(pos));
  return out;
}

}  // namespace rfid::phy
