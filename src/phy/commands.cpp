#include "phy/commands.hpp"

#include "common/crc.hpp"
#include "common/error.hpp"

namespace rfid::phy {

namespace {

/// CRC-5 over the first `payload_bits` bits of a frame.
std::uint8_t frame_crc5(const BitVec& frame, std::size_t payload_bits) {
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < payload_bits; ++i)
    value = (value << 1) | frame.bit(i);
  return crc5_c1g2(value, static_cast<unsigned>(payload_bits));
}

/// CRC-16 over the first `payload_bits` bits, byte-padded with zeros.
std::uint16_t frame_crc16(const BitVec& frame, std::size_t payload_bits) {
  std::vector<std::uint8_t> bytes((payload_bits + 7) / 8, 0);
  for (std::size_t i = 0; i < payload_bits; ++i)
    if (frame.bit(i)) bytes[i / 8] |= std::uint8_t(0x80 >> (i % 8));
  return crc16_ccitt(bytes);
}

}  // namespace

BitVec QueryRoundCommand::encode() const {
  BitVec frame;
  encode_into(frame);
  return frame;
}

void QueryRoundCommand::encode_into(BitVec& frame) const {
  RFID_EXPECTS(index_length < 32);
  frame.clear();
  frame.append_bits(kOpQueryRound, kOpcodeBits);
  frame.append_bits(index_length, 5);
  frame.append_bits(seed & 0x3FFFFu, 18);
  frame.append_bits(frame_crc5(frame, 27), 5);
  RFID_ENSURES(frame.size() == kBits);
}

std::optional<QueryRoundCommand> QueryRoundCommand::decode(
    const BitVec& frame) {
  if (frame.size() != kBits) return std::nullopt;
  if (frame.read_bits(0, kOpcodeBits) != kOpQueryRound) return std::nullopt;
  if (frame.read_bits(27, 5) != frame_crc5(frame, 27)) return std::nullopt;
  QueryRoundCommand command;
  command.index_length = static_cast<unsigned>(frame.read_bits(4, 5));
  command.seed = static_cast<std::uint32_t>(frame.read_bits(9, 18));
  return command;
}

BitVec CircleCommand::encode() const {
  BitVec frame;
  frame.append_bits(kOpCircle, kOpcodeBits);
  frame.append_bits(threshold & 0x3FFFFFFFu, 30);
  frame.append_bits(modulus & 0x3FFFFFFFu, 30);
  frame.append_bits(seed & 0xFFFFFFFFFFFFull, 48);
  frame.append_bits(frame_crc16(frame, 112), 16);
  RFID_ENSURES(frame.size() == kBits);
  return frame;
}

std::optional<CircleCommand> CircleCommand::decode(const BitVec& frame) {
  if (frame.size() != kBits) return std::nullopt;
  if (frame.read_bits(0, kOpcodeBits) != kOpCircle) return std::nullopt;
  if (frame.read_bits(112, 16) != frame_crc16(frame, 112))
    return std::nullopt;
  CircleCommand command;
  command.threshold = static_cast<std::uint32_t>(frame.read_bits(4, 30));
  command.modulus = static_cast<std::uint32_t>(frame.read_bits(34, 30));
  command.seed = frame.read_bits(64, 48);
  return command;
}

BitVec SelectCommand::encode() const {
  RFID_EXPECTS(prefix_length <= kTagIdBits);
  BitVec frame;
  frame.append_bits(kOpSelect, kOpcodeBits);
  frame.append_bits(static_cast<std::uint64_t>(prefix_length), 7);
  frame.append_bits(frame_crc5(frame, 11), 5);
  for (std::size_t b = 0; b < prefix_length; ++b)
    frame.push_back(prefix.bit(b));
  RFID_ENSURES(frame.size() == bits());
  return frame;
}

std::optional<SelectCommand> SelectCommand::decode(const BitVec& frame) {
  if (frame.size() < 16) return std::nullopt;
  if (frame.read_bits(0, kOpcodeBits) != kOpSelect) return std::nullopt;
  if (frame.read_bits(11, 5) != frame_crc5(frame, 11)) return std::nullopt;
  SelectCommand command;
  command.prefix_length = static_cast<std::size_t>(frame.read_bits(4, 7));
  if (command.prefix_length > kTagIdBits ||
      frame.size() != 16 + command.prefix_length)
    return std::nullopt;
  for (std::size_t b = 0; b < command.prefix_length; ++b)
    command.prefix.set_bit(b, frame.bit(16 + b));
  return command;
}

bool SelectCommand::matches(const TagId& id) const noexcept {
  return id.common_prefix_length(prefix) >= prefix_length;
}

}  // namespace rfid::phy
