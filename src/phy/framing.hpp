// CRC-framed segmented broadcast (corruption-resilient downlink).
//
// TPP's pre-order tree stream is differential: every segment's meaning
// depends on the register state left by the previous one, so a single
// flipped downlink bit silently mis-addresses every tag after the flip
// point. The framing layer restores per-segment error *detection*: a long
// broadcast payload is split into fixed-size segments, each wrapped as
//
//   SegmentFrame  <seq:4><payload:<=S><crc16:16>     = payload + 20 bits
//
// with CRC-16/CCITT computed over the packed <seq><payload> bits (MSB
// first, zero-padded to bytes). Tags discard a segment whose CRC fails and
// re-listen; the reader retransmits with bounded exponential backoff,
// charging the repeat airtime to obs::Phase::kRecovery. The 4-bit sequence
// number (mod 16) lets tags drop duplicate retransmissions of a segment
// they already accepted.
//
// The layer is OFF by default: with `enabled == false` no frame is ever
// built and broadcast accounting is bit-identical to the unframed path.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bitvec.hpp"

namespace rfid::phy {

/// Bits of the <seq> header of every segment frame.
inline constexpr unsigned kSegmentSeqBits = 4;
/// Bits of the CRC-16 trailer of every segment frame.
inline constexpr unsigned kSegmentCrcBits = 16;
/// Total per-segment framing overhead in bits.
inline constexpr unsigned kSegmentOverheadBits =
    kSegmentSeqBits + kSegmentCrcBits;

/// Declarative framing policy for one session. Value type, copied with the
/// SessionConfig so parallel trials replay identically.
struct FramingConfig final {
  bool enabled = false;
  /// Maximum payload bits per segment (the last segment of a broadcast may
  /// be shorter). Smaller segments localize corruption but pay the 20-bit
  /// overhead more often.
  unsigned segment_payload_bits = 32;
  /// Retransmissions allowed per segment beyond the first attempt. A
  /// segment that is still corrupt after 1 + max_retransmissions attempts
  /// is undeliverable; the session reports the affected tags loudly.
  unsigned max_retransmissions = 8;
  /// Exponential backoff before retransmission k (1-based):
  /// min(backoff_base_us * 2^(k-1), backoff_cap_us).
  double backoff_base_us = 100.0;
  double backoff_cap_us = 3200.0;

  /// Number of segments a `payload_bits`-bit broadcast splits into.
  [[nodiscard]] std::size_t segment_count(
      std::size_t payload_bits) const noexcept {
    if (payload_bits == 0) return 0;
    return (payload_bits + segment_payload_bits - 1) / segment_payload_bits;
  }

  /// Framing overhead (header + CRC bits) for a `payload_bits` broadcast,
  /// first attempts only.
  [[nodiscard]] std::size_t overhead_bits(
      std::size_t payload_bits) const noexcept {
    return segment_count(payload_bits) * kSegmentOverheadBits;
  }

  /// Total first-attempt downlink bits for a `payload_bits` broadcast.
  [[nodiscard]] std::size_t framed_bits(
      std::size_t payload_bits) const noexcept {
    return payload_bits + overhead_bits(payload_bits);
  }

  /// Backoff delay before retransmission `attempt` (1-based).
  [[nodiscard]] double backoff_us(unsigned attempt) const noexcept;
};

/// One on-air segment: sequence number, payload slice, CRC-16 trailer.
struct SegmentFrame final {
  unsigned seq = 0;  ///< 4-bit sequence number, mod 16 within a broadcast
  BitVec payload;

  /// On-air length of this frame in bits.
  [[nodiscard]] std::size_t bits() const noexcept {
    return kSegmentOverheadBits + payload.size();
  }

  [[nodiscard]] BitVec encode() const;

  /// Validates the CRC trailer; nullopt on any mismatch (corruption).
  [[nodiscard]] static std::optional<SegmentFrame> decode(const BitVec& frame);
};

/// CRC-16/CCITT over the first `nbits` bits of `bits`, packed MSB-first
/// into bytes with the final byte zero-padded. Shared by encode/decode.
[[nodiscard]] std::uint16_t crc16_over_bits(const BitVec& bits,
                                            std::size_t nbits);

}  // namespace rfid::phy
