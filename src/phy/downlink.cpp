#include "phy/downlink.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rfid::phy {

void Downlink::broadcast_vector_bits(std::size_t bits) {
  const double dt = timing_.reader_tx_us(bits);
  sink_.on_reader_payload_bits(bits, /*count_in_w=*/true);
  sink_.on_clock_advance(dt);
  sink_.on_phase(obs::Phase::kReaderVector, dt);
  if (sink_.tracing())
    sink_.on_trace(obs::EventKind::kReaderBroadcast, dt, bits, 0, 0, dt, 0.0,
                   0);
}

void Downlink::broadcast_command_bits(std::size_t bits) {
  const double dt = timing_.reader_tx_us(bits);
  sink_.on_reader_payload_bits(bits, /*count_in_w=*/false);
  sink_.on_clock_advance(dt);
  sink_.on_phase(obs::Phase::kCommand, dt);
  if (sink_.tracing())
    sink_.on_trace(obs::EventKind::kReaderBroadcast, dt, 0, bits, 0, dt, 0.0,
                   0);
}

bool Downlink::unframed_corrupts(std::size_t vector_bits) {
  if (vector_bits == 0 || !injector_.ber_active()) return false;
  ++attempts_;
  attempt_bits_ += vector_bits;
  if (!injector_.corrupt_downlink(vector_bits)) return false;
  ++failures_;
  return true;
}

bool Downlink::broadcast_framed(std::size_t payload_bits, bool count_in_w) {
  RFID_EXPECTS(framing_.enabled);
  RFID_EXPECTS(framing_.segment_payload_bits >= 1);
  const unsigned max_attempts = 1 + framing_.max_retransmissions;
  std::size_t remaining = payload_bits;
  std::uint64_t seq = 0;
  while (remaining > 0) {
    const std::size_t seg =
        std::min<std::size_t>(remaining, framing_.segment_payload_bits);
    const std::size_t frame_bits = seg + kSegmentOverheadBits;
    bool delivered = false;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt == 1) {
        // First attempt: payload accounted as the unframed broadcast would
        // have been, the <seq><crc16> wrapper as command overhead.
        const double dt = timing_.reader_tx_us(frame_bits);
        const double payload_us = timing_.reader_tx_us(seg);
        sink_.on_reader_payload_bits(seg, count_in_w);
        sink_.on_framing_overhead_bits(kSegmentOverheadBits);
        sink_.on_segment_sent();
        sink_.on_clock_advance(dt);
        sink_.on_phase(
            count_in_w ? obs::Phase::kReaderVector : obs::Phase::kCommand,
            payload_us);
        sink_.on_phase(obs::Phase::kCommand, dt - payload_us);
        if (sink_.tracing())
          sink_.on_trace(obs::EventKind::kReaderBroadcast, dt,
                         count_in_w ? seg : 0,
                         (count_in_w ? 0 : seg) + kSegmentOverheadBits, 0, dt,
                         0.0, seq);
      } else {
        // Retransmission: exponential backoff, then the whole frame again.
        // Everything here is corruption-recovery cost — bits land in
        // command/framing overhead, time in obs::Phase::kRecovery.
        const double tx_us = timing_.reader_tx_us(frame_bits);
        const double dt = framing_.backoff_us(attempt - 1) + tx_us;
        sink_.on_framing_overhead_bits(frame_bits);
        sink_.on_segment_retransmitted();
        sink_.on_clock_advance(dt);
        sink_.on_phase(obs::Phase::kRecovery, dt);
        if (sink_.tracing())
          sink_.on_trace(obs::EventKind::kReaderBroadcast, dt, 0, frame_bits,
                         0, tx_us, 0.0, seq);
      }
      ++attempts_;
      attempt_bits_ += frame_bits;
      if (!injector_.corrupt_downlink(frame_bits)) {
        delivered = true;
        break;
      }
      ++failures_;
      sink_.on_segment_corrupted();
      // The reader learns of the CRC failure from the tags' NACK burst in
      // the T1 listen window that follows every segment of a corrupted
      // frame; recovery cost, like the retransmission it triggers.
      const double listen_us = timing_.t1_us;
      sink_.on_clock_advance(listen_us);
      sink_.on_phase(obs::Phase::kRecovery, listen_us);
      if (sink_.tracing())
        sink_.on_trace(obs::EventKind::kSegmentCorrupted, listen_us, 0, 0, 0,
                       0.0, 0.0, seq);
    }
    if (!delivered) return false;
    remaining -= seg;
    seq = (seq + 1) & 0xF;
  }
  return true;
}

double Downlink::estimated_ber() const noexcept {
  if (attempts_ == 0 || failures_ == 0) return 0.0;
  const double p_corrupt =
      static_cast<double>(failures_) / static_cast<double>(attempts_);
  const double avg_bits =
      static_cast<double>(attempt_bits_) / static_cast<double>(attempts_);
  if (p_corrupt >= 1.0) return 1.0;
  // Invert P(frame corrupt) = 1 - (1 - ber)^bits at the mean frame length.
  return 1.0 - std::pow(1.0 - p_corrupt, 1.0 / avg_bits);
}

}  // namespace rfid::phy
