// EPC C1G2 air-interface timing model (paper Section V-A).
//
// The paper's evaluation converts transmitted bit counts into wall-clock
// time using the C1G2 link parameters:
//   * T1 = 100 us  — transmit-to-receive turn-around (reader -> tag)
//   * T2 = 50 us   — receive-to-transmit turn-around (tag -> reader)
//   * reader -> tag: 26.7 kbps lower bound, i.e. 37.45 us per bit
//   * tag -> reader: 40 kbps lower bound (FM0), i.e. 25 us per bit
//   * every poll is prefixed by a 4-bit QueryRep command
// so collecting l bits from a tag with a w-bit polling vector costs
//   37.45 * (4 + w) + T1 + 25 * l + T2   microseconds.           (Sec. V-A)
// The conventional-polling baseline broadcasts the bare 96-bit ID without
// the QueryRep prefix (that is the only accounting under which the paper's
// Table I CPP row, 37.70 s at n = 10^4, reproduces).
#pragma once

#include <cstddef>

namespace rfid::phy {

/// C1G2 timing parameters; defaults follow the paper's simulation setting.
struct C1G2Timing final {
  double t1_us = 100.0;              ///< reader->tag turn-around before a reply
  double t2_us = 50.0;               ///< tag->reader turn-around after a reply
  double reader_us_per_bit = 37.45;  ///< 26.7 kbps reader->tag data rate
  double tag_us_per_bit = 25.0;      ///< 40 kbps tag->reader data rate
  unsigned query_rep_bits = 4;       ///< per-poll QueryRep command length

  /// Time for the reader to transmit `bits` bits.
  [[nodiscard]] double reader_tx_us(std::size_t bits) const noexcept {
    return reader_us_per_bit * static_cast<double>(bits);
  }

  /// Time for a tag to transmit `bits` bits.
  [[nodiscard]] double tag_tx_us(std::size_t bits) const noexcept {
    return tag_us_per_bit * static_cast<double>(bits);
  }

  /// Full poll interaction: QueryRep + w-bit vector, turn-arounds, l-bit
  /// reply. This is the paper's per-tag cost formula.
  [[nodiscard]] double poll_us(std::size_t vector_bits,
                               std::size_t reply_bits) const noexcept {
    return reader_tx_us(query_rep_bits + vector_bits) + t1_us +
           tag_tx_us(reply_bits) + t2_us;
  }

  /// Conventional-polling interaction: bare ID broadcast, no QueryRep.
  [[nodiscard]] double poll_bare_us(std::size_t vector_bits,
                                    std::size_t reply_bits) const noexcept {
    return reader_tx_us(vector_bits) + t1_us + tag_tx_us(reply_bits) + t2_us;
  }

  /// A frame slot nobody answers: QueryRep, then both turn-arounds elapse
  /// with no reply (used by the ALOHA-family baselines).
  [[nodiscard]] double idle_slot_us() const noexcept {
    return reader_tx_us(query_rep_bits) + t1_us + t2_us;
  }

  /// A frame slot whose reply is garbled by collision: the reply airtime is
  /// spent but nothing is decoded.
  [[nodiscard]] double collision_slot_us(
      std::size_t reply_bits) const noexcept {
    return poll_us(0, reply_bits);
  }

  /// The paper's lower bound for any C1G2 information-collection protocol:
  /// n * (QueryRep + T1 + 25 l + T2); equals (299.8 + 25 l) n us.
  [[nodiscard]] double lower_bound_us(std::size_t n,
                                      std::size_t reply_bits) const noexcept {
    return static_cast<double>(n) * poll_us(0, reply_bits);
  }
};

}  // namespace rfid::phy
