// C1G2 bit encodings — where the timing model's µs/bit figures come from.
//
// Forward link (reader → tag) uses pulse-interval encoding (PIE): a data-0
// lasts one Tari, a data-1 between 1.5 and 2 Tari, so the average bit time
// depends on Tari and the data-1 length. The paper's 26.7 kbps lower bound
// corresponds to Tari = 25 µs with 2-Tari data-1 symbols.
//
// Return link (tag → reader) uses FM0 or Miller-modulated subcarrier
// baseband: FM0 signals one symbol per backscatter-link-frequency (BLF)
// cycle (40 kbps at BLF 40 kHz — the paper's 25 µs/bit), Miller-m divides
// the rate by m. This module implements the actual level sequences (used
// by the encoding tests and available to PHY-level extensions) and the
// rate arithmetic that grounds phy::C1G2Timing.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/bitvec.hpp"
#include "phy/c1g2.hpp"

namespace rfid::phy {

// --- FM0 (bi-phase space) ---------------------------------------------------

/// Encodes bits as FM0 half-symbol levels (2 per bit). The phase always
/// inverts at a symbol boundary; a data-0 additionally inverts mid-symbol.
/// `start_high` sets the level entering the first symbol.
[[nodiscard]] std::vector<bool> fm0_encode(const BitVec& bits,
                                           bool start_high = true);

/// Decodes an FM0 level sequence (as produced by fm0_encode); returns
/// nullopt when the sequence violates FM0 (odd length or missing boundary
/// inversion).
[[nodiscard]] std::optional<BitVec> fm0_decode(
    const std::vector<bool>& levels);

// --- Miller-modulated subcarrier ---------------------------------------------

/// Encodes bits as Miller baseband multiplied by an m-cycle-per-symbol
/// square subcarrier (m in {2, 4, 8}); 2*m levels per bit. Baseband rule:
/// data-1 inverts mid-symbol; consecutive data-0s invert at the boundary.
[[nodiscard]] std::vector<bool> miller_encode(const BitVec& bits, unsigned m,
                                              bool start_high = true);

/// Decodes a Miller-m level sequence produced by miller_encode; returns
/// nullopt when the length is not a multiple of 2*m or the subcarrier is
/// inconsistent within a half-symbol.
[[nodiscard]] std::optional<BitVec> miller_decode(
    const std::vector<bool>& levels, unsigned m);

// --- Rate arithmetic --------------------------------------------------------

/// Average PIE forward-link bit time for a balanced bit mix:
/// (Tari + data1_taris * Tari) / 2.
[[nodiscard]] double pie_avg_us_per_bit(double tari_us,
                                        double data1_taris = 2.0) noexcept;

/// Return-link bit time: FM0 signals one bit per BLF cycle; Miller-m one
/// bit per m cycles.
[[nodiscard]] double backscatter_us_per_bit(double blf_khz,
                                            unsigned miller_m = 1) noexcept;

/// Builds a timing model from link parameters. The paper's setting is
/// recovered by link_timing(25.0, 40.0): ~37.5 µs/bit down (26.7 kbps) and
/// 25 µs/bit up (40 kbps FM0).
[[nodiscard]] C1G2Timing link_timing(double tari_us, double blf_khz,
                                     unsigned miller_m = 1,
                                     double data1_taris = 2.0) noexcept;

}  // namespace rfid::phy
