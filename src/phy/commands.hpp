// Bit-level reader command codec.
//
// The protocols account reader overhead in bits (32-bit round init, 128-bit
// circle command, ~52-bit Select); this module grounds those numbers in
// concrete frame layouts in the spirit of C1G2 signalling, with opcodes and
// CRC protection, and provides encode/decode round trips the tests verify.
// Layouts (MSB first):
//   QueryRound  <opcode:4><h:5><seed:18><crc5:5>                =  32 bits
//   CircleCmd   <opcode:4><f:30><F:30><seed:48><crc16:16>       = 128 bits
//   Select      <opcode:4><prefix_len:7><crc5:5> + prefix bits  =  16+len
//   QueryRep    <opcode:4>                                      =   4 bits
// The seed fields carry truncated session seeds — tags only need them to
// agree with the reader, not to be globally unique.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bitvec.hpp"
#include "common/tag_id.hpp"

namespace rfid::phy {

inline constexpr unsigned kOpcodeBits = 4;
inline constexpr std::uint8_t kOpQueryRep = 0x0;
inline constexpr std::uint8_t kOpQueryRound = 0x8;
inline constexpr std::uint8_t kOpCircle = 0x9;
inline constexpr std::uint8_t kOpSelect = 0xA;

/// <h, r>: starts an HPP/TPP inventory round. Encodes to exactly 32 bits —
/// the init overhead the paper's simulation setting assumes.
struct QueryRoundCommand final {
  unsigned index_length = 0;   ///< h, 0..31 (5 bits)
  std::uint32_t seed = 0;      ///< 18-bit truncated round seed

  static constexpr std::size_t kBits = 32;

  [[nodiscard]] BitVec encode() const;

  /// Encodes into `frame` (cleared first). Reusing one BitVec across rounds
  /// keeps the per-round encode/decode round-trip allocation-free.
  void encode_into(BitVec& frame) const;

  [[nodiscard]] static std::optional<QueryRoundCommand> decode(
      const BitVec& frame);
};

/// <f, F, r>: starts an EHPP circle. Encodes to exactly 128 bits — the l_c
/// of the paper's Section V-B setting.
struct CircleCommand final {
  std::uint32_t threshold = 0;   ///< f (30 bits)
  std::uint32_t modulus = 0;     ///< F (30 bits)
  std::uint64_t seed = 0;        ///< 48-bit truncated circle seed

  static constexpr std::size_t kBits = 128;

  [[nodiscard]] BitVec encode() const;
  [[nodiscard]] static std::optional<CircleCommand> decode(
      const BitVec& frame);
};

/// Select: masks the tag subset sharing an ID prefix (Prefix-CPP). Frame
/// length is 16 + prefix_length bits.
struct SelectCommand final {
  TagId prefix{};               ///< only the first prefix_length bits matter
  std::size_t prefix_length = 0;  ///< 0..96 (7 bits on air)

  [[nodiscard]] std::size_t bits() const noexcept {
    return 16 + prefix_length;
  }

  [[nodiscard]] BitVec encode() const;
  [[nodiscard]] static std::optional<SelectCommand> decode(
      const BitVec& frame);

  /// Tag-side predicate: does `id` match the broadcast mask?
  [[nodiscard]] bool matches(const TagId& id) const noexcept;
};

}  // namespace rfid::phy
