#include "phy/encoding.hpp"

#include "common/error.hpp"

namespace rfid::phy {

std::vector<bool> fm0_encode(const BitVec& bits, bool start_high) {
  std::vector<bool> levels;
  levels.reserve(bits.size() * 2);
  bool level = start_high;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Phase inversion entering every symbol.
    level = !level;
    levels.push_back(level);
    // A data-0 inverts again mid-symbol; a data-1 holds.
    if (!bits.bit(i)) level = !level;
    levels.push_back(level);
  }
  return levels;
}

std::optional<BitVec> fm0_decode(const std::vector<bool>& levels) {
  if (levels.size() % 2 != 0) return std::nullopt;
  BitVec bits;
  // Reconstruct the level entering the first symbol from the FM0 rule:
  // the first half-symbol is the inversion of the idle level, which we do
  // not know — but the boundary-inversion rule lets us validate from the
  // second symbol on and infer each bit from the intra-symbol transition.
  for (std::size_t symbol = 0; symbol * 2 < levels.size(); ++symbol) {
    const bool first = levels[symbol * 2];
    const bool second = levels[symbol * 2 + 1];
    if (symbol > 0) {
      // FM0 requires an inversion at every symbol boundary.
      const bool prev_last = levels[symbol * 2 - 1];
      if (first == prev_last) return std::nullopt;
    }
    bits.push_back(first == second);  // no mid-symbol inversion => data-1
  }
  return bits;
}

std::vector<bool> miller_encode(const BitVec& bits, unsigned m,
                                bool start_high) {
  RFID_EXPECTS(m == 2 || m == 4 || m == 8);
  // Miller baseband at half-symbol resolution, then XOR with an m-cycle
  // subcarrier (one subcarrier cycle = 2 chips).
  std::vector<bool> baseband;
  baseband.reserve(bits.size() * 2);
  bool phase = start_high;
  bool prev_bit = true;  // sentinel: no boundary inversion before first bit
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool bit = bits.bit(i);
    if (!bit && !prev_bit && i > 0) phase = !phase;  // 0 after 0: boundary flip
    baseband.push_back(phase);
    if (bit) phase = !phase;  // data-1: mid-symbol inversion
    baseband.push_back(phase);
    prev_bit = bit;
  }

  std::vector<bool> levels;
  levels.reserve(bits.size() * 2 * m);
  for (std::size_t half = 0; half < baseband.size(); ++half) {
    // Each half-symbol carries m/2 subcarrier cycles = m chips.
    for (unsigned chip = 0; chip < m; ++chip)
      levels.push_back(baseband[half] ^ (chip % 2 == 1));
  }
  return levels;
}

std::optional<BitVec> miller_decode(const std::vector<bool>& levels,
                                    unsigned m) {
  if (m != 2 && m != 4 && m != 8) return std::nullopt;
  if (levels.size() % (2 * m) != 0) return std::nullopt;
  // Recover the baseband phase of each half-symbol by undoing the
  // subcarrier, validating chip consistency as we go.
  std::vector<bool> baseband;
  baseband.reserve(levels.size() / m);
  for (std::size_t half = 0; half * m < levels.size(); ++half) {
    const bool phase = levels[half * m];  // chip 0 carries the raw phase
    for (unsigned chip = 0; chip < m; ++chip) {
      const bool expected = phase ^ (chip % 2 == 1);
      if (levels[half * m + chip] != expected) return std::nullopt;
    }
    baseband.push_back(phase);
  }
  // A data-1 inverts mid-symbol; a data-0 holds.
  BitVec bits;
  for (std::size_t symbol = 0; symbol * 2 < baseband.size(); ++symbol)
    bits.push_back(baseband[symbol * 2] != baseband[symbol * 2 + 1]);
  return bits;
}

double pie_avg_us_per_bit(double tari_us, double data1_taris) noexcept {
  return tari_us * (1.0 + data1_taris) / 2.0;
}

double backscatter_us_per_bit(double blf_khz, unsigned miller_m) noexcept {
  if (blf_khz <= 0.0) return 0.0;
  const double cycle_us = 1000.0 / blf_khz;
  return cycle_us * static_cast<double>(miller_m == 0 ? 1 : miller_m);
}

C1G2Timing link_timing(double tari_us, double blf_khz, unsigned miller_m,
                       double data1_taris) noexcept {
  C1G2Timing timing;
  timing.reader_us_per_bit = pie_avg_us_per_bit(tari_us, data1_taris);
  timing.tag_us_per_bit = backscatter_us_per_bit(blf_khz, miller_m);
  return timing;
}

}  // namespace rfid::phy
