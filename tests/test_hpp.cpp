// Tests for the Hash Polling Protocol (paper Section III).
#include <gtest/gtest.h>

#include "analysis/hpp_model.hpp"
#include "common/math_util.hpp"
#include "protocols/hash_polling.hpp"
#include "sim/verify.hpp"

namespace rfid::protocols {
namespace {

sim::RunResult run_hpp(std::size_t n, std::uint64_t seed,
                       std::size_t info_bits = 1) {
  Xoshiro256ss rng(seed);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.info_bits = info_bits;
  config.seed = seed * 77 + 1;
  return Hpp().run(pop, config);
}

TEST(Hpp, EmptyPopulationIsNoop) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(0, rng);
  const auto result = Hpp().run(pop, sim::SessionConfig{});
  EXPECT_EQ(result.metrics.polls, 0u);
  EXPECT_EQ(result.metrics.rounds, 0u);
}

TEST(Hpp, SingleTagPolledWithZeroBits) {
  const auto result = run_hpp(1, 2);
  EXPECT_EQ(result.metrics.polls, 1u);
  EXPECT_EQ(result.metrics.vector_bits, 0u);  // h = 0 for one tag
}

TEST(Hpp, TwoTagsComplete) {
  const auto result = run_hpp(2, 3);
  EXPECT_EQ(result.metrics.polls, 2u);
}

TEST(Hpp, EveryPollIsSingleton) {
  const auto result = run_hpp(500, 4);
  EXPECT_EQ(result.channel.collision_slots, 0u);
  EXPECT_EQ(result.channel.empty_slots, 0u);
  EXPECT_EQ(result.channel.singleton_slots, result.metrics.polls);
}

TEST(Hpp, PollCountEqualsPopulation) {
  // "The total number of polling is the same with the number of tags,
  // completely avoiding slot waste." (Section III-B)
  for (const std::size_t n : {10u, 100u, 1000u}) {
    const auto result = run_hpp(n, n);
    EXPECT_EQ(result.metrics.polls, n);
    EXPECT_EQ(result.metrics.slots_wasted, 0u);
  }
}

TEST(Hpp, CollectionIsCompleteAndCorrect) {
  Xoshiro256ss rng(5);
  const auto pop = tags::TagPopulation::uniform_random(800, rng)
                       .with_random_payloads(16, rng);
  sim::SessionConfig config;
  config.info_bits = 16;
  const auto result = Hpp().run(pop, config);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Hpp, VectorLengthRespectsLogUpperBound) {
  // Eq. (5): w <= ceil(log2 n).
  for (const std::size_t n : {64u, 500u, 3000u, 20000u}) {
    const auto result = run_hpp(n, n + 13);
    EXPECT_LE(result.avg_vector_bits(),
              double(analysis::hpp_vector_upper_bound(n)) + 1e-9);
  }
}

TEST(Hpp, VectorLengthGrowsWithPopulation) {
  // Fig. 3 / Fig. 10: w grows roughly logarithmically with n.
  const double w_small = run_hpp(1000, 6).avg_vector_bits();
  const double w_large = run_hpp(30000, 7).avg_vector_bits();
  EXPECT_GT(w_large, w_small + 2.0);
}

TEST(Hpp, MatchesAnalyticalPrediction) {
  // Eq. (4) recursion vs simulation, within a few percent at n = 5000.
  const auto predicted = analysis::hpp_predict(5000);
  double simulated = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s)
    simulated += run_hpp(5000, 100 + s).avg_vector_bits();
  simulated /= 5.0;
  EXPECT_LT(relative_difference(simulated, predicted.avg_vector_bits), 0.06)
      << "sim " << simulated << " vs model " << predicted.avg_vector_bits;
}

TEST(Hpp, ReadFractionPerRoundInPaperBand) {
  // Section III-B: 36.8%..60.7% of unread tags are read per round; check
  // round 1 via the round counter and remaining polls.
  const auto result = run_hpp(10000, 8);
  // Expected rounds for n = 1e4 is ~13..25 given geometric decay in band.
  EXPECT_GE(result.metrics.rounds, 8u);
  EXPECT_LE(result.metrics.rounds, 40u);
}

TEST(Hpp, DeterministicReplay) {
  const auto a = run_hpp(1200, 9);
  const auto b = run_hpp(1200, 9);
  EXPECT_EQ(a.metrics.vector_bits, b.metrics.vector_bits);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_DOUBLE_EQ(a.metrics.time_us, b.metrics.time_us);
}

TEST(Hpp, DifferentSeedsDifferentSchedules) {
  const auto a = run_hpp(1200, 10);
  Xoshiro256ss rng(10);
  const auto pop = tags::TagPopulation::uniform_random(1200, rng);
  sim::SessionConfig config;
  config.seed = 999;
  const auto b = Hpp().run(pop, config);
  EXPECT_NE(a.metrics.vector_bits, b.metrics.vector_bits);
}

TEST(Hpp, RoundInitCountedAsCommandNotVector) {
  const auto result = run_hpp(300, 11);
  EXPECT_EQ(result.metrics.command_bits, result.metrics.rounds * 32u);
}

TEST(Hpp, CountInitInWChangesAccounting) {
  Xoshiro256ss rng(12);
  const auto pop = tags::TagPopulation::uniform_random(300, rng);
  sim::SessionConfig config;
  config.seed = 1;
  const auto base = Hpp().run(pop, config);
  const auto counted =
      Hpp(HppRoundConfig{32, /*count_init_in_w=*/true}).run(pop, config);
  EXPECT_EQ(counted.metrics.vector_bits,
            base.metrics.vector_bits + 32u * base.metrics.rounds);
  EXPECT_EQ(counted.metrics.command_bits, 0u);
  EXPECT_DOUBLE_EQ(counted.metrics.time_us, base.metrics.time_us);
}

TEST(Hpp, WorksOnSequentialIds) {
  // No assumption on ID distribution (Section II-B): adversarially regular
  // IDs must behave like random ones thanks to the hash.
  const auto pop = tags::TagPopulation::sequential(2048, 0);
  sim::SessionConfig config;
  config.seed = 5;
  const auto result = Hpp().run(pop, config);
  EXPECT_EQ(result.metrics.polls, 2048u);
  EXPECT_LE(result.avg_vector_bits(), 11.0 + 1e-9);
}

TEST(Hpp, SixteenBitPayloadTiming) {
  const auto result = run_hpp(100, 13, 16);
  // Each poll carries 16 tag bits: tag_bits must equal 16 n.
  EXPECT_EQ(result.metrics.tag_bits, 1600u);
}

class HppPopulationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HppPopulationSweep, CompleteAndWasteFree) {
  const std::size_t n = GetParam();
  const auto result = run_hpp(n, 31 * n + 7);
  EXPECT_EQ(result.metrics.polls, n);
  EXPECT_EQ(result.channel.collision_slots, 0u);
  EXPECT_EQ(result.channel.empty_slots, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HppPopulationSweep,
                         ::testing::Values(1, 2, 3, 5, 17, 64, 65, 255, 256,
                                           257, 1000, 4096, 10000));

}  // namespace
}  // namespace rfid::protocols
