// Tests for the C1G2-style reader command codec.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phy/commands.hpp"

namespace rfid::phy {
namespace {

TEST(QueryRoundCommand, EncodesToPaperInitLength) {
  // The paper's Section V-B charges 32 bits per HPP/TPP round init.
  const QueryRoundCommand command{13, 0x2ABCD};
  EXPECT_EQ(command.encode().size(), 32u);
  EXPECT_EQ(QueryRoundCommand::kBits, 32u);
}

TEST(QueryRoundCommand, RoundTrips) {
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    QueryRoundCommand command;
    command.index_length = unsigned(rng.below(32));
    command.seed = std::uint32_t(rng.below(1u << 18));
    const auto decoded = QueryRoundCommand::decode(command.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->index_length, command.index_length);
    EXPECT_EQ(decoded->seed, command.seed);
  }
}

TEST(QueryRoundCommand, CrcCatchesBitErrors) {
  const QueryRoundCommand command{7, 0x1234};
  const BitVec frame = command.encode();
  int undetected = 0;
  for (std::size_t bit = 0; bit < frame.size(); ++bit) {
    BitVec corrupted;
    for (std::size_t i = 0; i < frame.size(); ++i)
      corrupted.push_back(i == bit ? !frame.bit(i) : frame.bit(i));
    const auto decoded = QueryRoundCommand::decode(corrupted);
    // A flip in the opcode field changes the opcode (rejected); elsewhere
    // the CRC-5 must catch every single-bit error.
    undetected += decoded.has_value();
  }
  EXPECT_EQ(undetected, 0);
}

TEST(QueryRoundCommand, WrongLengthRejected) {
  BitVec frame = QueryRoundCommand{3, 9}.encode();
  frame.push_back(false);
  EXPECT_FALSE(QueryRoundCommand::decode(frame).has_value());
}

TEST(CircleCommand, EncodesToPaperCircleLength) {
  // The paper's Section V-B sets l_c = 128 bits for EHPP.
  const CircleCommand command{1000, 1u << 20, 0xDEADBEEF};
  EXPECT_EQ(command.encode().size(), 128u);
}

TEST(CircleCommand, RoundTrips) {
  Xoshiro256ss rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    CircleCommand command;
    command.threshold = std::uint32_t(rng.below(1u << 30));
    command.modulus = std::uint32_t(rng.below(1u << 30));
    command.seed = rng() & 0xFFFFFFFFFFFFull;
    const auto decoded = CircleCommand::decode(command.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->threshold, command.threshold);
    EXPECT_EQ(decoded->modulus, command.modulus);
    EXPECT_EQ(decoded->seed, command.seed);
  }
}

TEST(CircleCommand, Crc16CatchesBitErrors) {
  const CircleCommand command{55, 1u << 16, 0xCAFE};
  const BitVec frame = command.encode();
  for (const std::size_t bit : {0u, 5u, 40u, 70u, 111u, 120u, 127u}) {
    BitVec corrupted;
    for (std::size_t i = 0; i < frame.size(); ++i)
      corrupted.push_back(i == bit ? !frame.bit(i) : frame.bit(i));
    EXPECT_FALSE(CircleCommand::decode(corrupted).has_value()) << bit;
  }
}

TEST(SelectCommand, LengthIsSixteenPlusPrefix) {
  SelectCommand command;
  command.prefix_length = 32;
  EXPECT_EQ(command.bits(), 48u);
  EXPECT_EQ(command.encode().size(), 48u);
}

TEST(SelectCommand, RoundTripsWithPrefixPayload) {
  Xoshiro256ss rng(3);
  for (const std::size_t len : {0u, 1u, 7u, 32u, 48u, 96u}) {
    SelectCommand command;
    command.prefix_length = len;
    for (auto& w : command.prefix.words) w = std::uint32_t(rng());
    // Bits past the prefix length are ignored on air; zero them for
    // comparison.
    for (std::size_t b = len; b < kTagIdBits; ++b)
      command.prefix.set_bit(b, false);
    const auto decoded = SelectCommand::decode(command.encode());
    ASSERT_TRUE(decoded.has_value()) << len;
    EXPECT_EQ(decoded->prefix_length, len);
    EXPECT_EQ(decoded->prefix, command.prefix);
  }
}

TEST(SelectCommand, MatchesChecksPrefixOnly) {
  SelectCommand command;
  command.prefix = TagId::from_hex("deadbeef0000000000000000");
  command.prefix_length = 32;
  EXPECT_TRUE(command.matches(TagId::from_hex("deadbeef1234567890abcdef")));
  EXPECT_FALSE(command.matches(TagId::from_hex("deadbef01234567890abcdef")));
  command.prefix_length = 0;  // empty mask matches everything
  EXPECT_TRUE(command.matches(TagId::from_hex("000000000000000000000001")));
}

TEST(SelectCommand, TruncatedFrameRejected) {
  SelectCommand command;
  command.prefix_length = 16;
  BitVec frame = command.encode();
  BitVec shorter;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i)
    shorter.push_back(frame.bit(i));
  EXPECT_FALSE(SelectCommand::decode(shorter).has_value());
}

TEST(Commands, RandomFramesRejectedByCrc) {
  // Fuzz: random 32- and 128-bit frames (even with a forced valid opcode)
  // decode only when their CRC happens to validate — which for CRC-5 over
  // random payloads is 1/32 and must never mis-assign fields silently.
  Xoshiro256ss rng(9);
  int accepted32 = 0;
  for (int trial = 0; trial < 640; ++trial) {
    BitVec frame;
    frame.append_bits(kOpQueryRound, kOpcodeBits);
    frame.append_bits(rng(), 28);
    const auto decoded = QueryRoundCommand::decode(frame);
    if (decoded) {
      ++accepted32;
      // Accepted frames must round-trip to the identical bit pattern.
      EXPECT_TRUE(decoded->encode() == frame);
    }
  }
  // Expected ~640/32 = 20 accidental CRC matches.
  EXPECT_GT(accepted32, 5);
  EXPECT_LT(accepted32, 50);

  int accepted128 = 0;
  for (int trial = 0; trial < 300; ++trial) {
    BitVec frame;
    frame.append_bits(kOpCircle, kOpcodeBits);
    for (int w = 0; w < 2; ++w) frame.append_bits(rng(), 54);
    frame.append_bits(rng(), 16);
    accepted128 += CircleCommand::decode(frame).has_value();
  }
  // CRC-16: accidental acceptance ~ 300/65536, i.e. almost never.
  EXPECT_LE(accepted128, 1);
}

TEST(Commands, OpcodesAreDistinct) {
  const BitVec query = QueryRoundCommand{1, 2}.encode();
  const BitVec circle = CircleCommand{1, 2, 3}.encode();
  EXPECT_FALSE(CircleCommand::decode(query).has_value());
  EXPECT_FALSE(QueryRoundCommand::decode(circle).has_value());
}

}  // namespace
}  // namespace rfid::phy
