// Process-wide heap-allocation counter for allocation-free-steady-state
// gates (promoted from bench/bench_round_engine.cpp so the invariant is
// enforced in the main test suite, not just reported by the bench).
//
// Including this header REPLACES the global operator new/delete for the
// whole binary, so include it in exactly ONE translation unit per
// executable — the replacement operators are deliberately non-inline, and
// a second including TU fails to link (which is the guard against
// accidental double inclusion, not a bug).
//
// Usage:
//   const rfid::alloc_guard::Probe probe;
//   ... code under test ...
//   EXPECT_EQ(probe.delta(), 0u);
//
// Counting is a relaxed atomic increment per operator-new call: cheap,
// thread-safe, and precise enough for "must be exactly zero" assertions on
// single-threaded hot loops (the only supported use — a concurrent section
// can only be gated as an aggregate).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace rfid::alloc_guard {

namespace detail {
inline std::atomic<std::uint64_t> g_allocations{0};
}  // namespace detail

/// Total operator-new calls in this process so far.
inline std::uint64_t allocation_count() {
  return detail::g_allocations.load(std::memory_order_relaxed);
}

/// Snapshot of the counter; delta() is the allocations since construction.
class Probe final {
 public:
  Probe() : start_(allocation_count()) {}
  [[nodiscard]] std::uint64_t delta() const {
    return allocation_count() - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace rfid::alloc_guard

// --- Global operator new/delete replacement ---------------------------------

void* operator new(std::size_t size) {
  rfid::alloc_guard::detail::g_allocations.fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  rfid::alloc_guard::detail::g_allocations.fetch_add(
      1, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t al =
      (static_cast<std::size_t>(align) < sizeof(void*))
          ? sizeof(void*)
          : static_cast<std::size_t>(align);
  if (posix_memalign(&p, al, size == 0 ? 1 : size) != 0)
    throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
