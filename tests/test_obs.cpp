// Tests for the observability subsystem: event tracing (sinks, metric
// identities), histograms and streaming quantiles, the metrics registry,
// phase accounting, trial-runner aggregation, and the strict numeric
// argument parser.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/env.hpp"
#include "core/polling.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "parallel/trial_runner.hpp"
#include "protocols/tree_polling.hpp"

namespace rfid {
namespace {

sim::RunResult traced_run(core::ProtocolKind kind, std::size_t n,
                          obs::Tracer& tracer, std::uint64_t seed = 7,
                          double noise = 0.0) {
  Xoshiro256ss rng(2026);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.seed = seed;
  config.keep_records = false;
  config.reply_error_rate = noise;
  config.tracer = &tracer;
  return protocols::make_protocol(kind)->run(pop, config);
}

// --- Event stream vs metrics: the lossless-decomposition contract ----------

TEST(Trace, TppEventsSumExactlyToMetrics) {
  // The acceptance bar: a TPP run over n = 2000 through the JSONL sink must
  // decompose the metrics exactly — summed vector bits, tag bits, and the
  // duration fold all equal the Metrics totals, and the vector-bits
  // histogram mean equals avg_vector_bits() to 1e-9.
  std::ostringstream jsonl;
  obs::JsonlSink jsonl_sink(jsonl);
  obs::RingBufferSink ring(1u << 16);
  obs::MetricsRegistry registry;
  obs::RegistrySink registry_sink(registry);
  obs::Tracer tracer;
  tracer.add_sink(&jsonl_sink);
  tracer.add_sink(&ring);
  tracer.add_sink(&registry_sink);

  const auto result = traced_run(core::ProtocolKind::kTpp, 2000, tracer);
  ASSERT_EQ(ring.dropped(), 0u);

  EXPECT_EQ(ring.sum_vector_bits(), result.metrics.vector_bits);
  EXPECT_EQ(ring.sum_command_bits(), result.metrics.command_bits);
  EXPECT_EQ(ring.sum_tag_bits(), result.metrics.tag_bits);
  // Durations are the very doubles the session clock added, folded in the
  // same order — bit-exact equality, not approximate.
  EXPECT_EQ(ring.sum_duration_us(), result.metrics.time_us);

  const auto events = ring.snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().time_us, result.metrics.time_us);
  EXPECT_EQ(events.back().round, result.metrics.rounds);

  // JSONL: one meta line + one line per event, all parseable back into the
  // same totals (precision-17 doubles round-trip).
  std::istringstream lines(jsonl.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"schema\":\"rfid-trace\""), std::string::npos);
  std::uint64_t event_lines = 0, vector_bits = 0, tag_bits = 0;
  double clock = 0.0;
  const auto num_field = [](const std::string& text, const char* key) {
    const std::string needle = '"' + std::string(key) + "\":";
    const auto pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos) << key << " in " << text;
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
  };
  while (std::getline(lines, line)) {
    ++event_lines;
    vector_bits += static_cast<std::uint64_t>(num_field(line, "vector_bits"));
    tag_bits += static_cast<std::uint64_t>(num_field(line, "tag_bits"));
    clock += num_field(line, "duration_us");
  }
  EXPECT_EQ(event_lines, ring.total_events());
  EXPECT_EQ(vector_bits, result.metrics.vector_bits);
  EXPECT_EQ(tag_bits, result.metrics.tag_bits);
  EXPECT_EQ(clock, result.metrics.time_us);

  // Registry-side distribution: mean polling-vector length.
  const obs::Histogram* h = registry.find_histogram("vector_bits_per_poll");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), result.metrics.polls);
  EXPECT_NEAR(h->mean(), result.avg_vector_bits(), 1e-9);
  EXPECT_EQ(registry.counter_value("events.reply"), result.metrics.polls);
}

TEST(Trace, EventDecompositionHoldsAcrossProtocolFamilies) {
  for (const auto kind :
       {core::ProtocolKind::kHpp, core::ProtocolKind::kEhpp,
        core::ProtocolKind::kCpp, core::ProtocolKind::kMic,
        core::ProtocolKind::kDfsa}) {
    obs::RingBufferSink ring(1u << 18);
    obs::Tracer tracer(&ring);
    const auto result = traced_run(kind, 500, tracer);
    ASSERT_EQ(ring.dropped(), 0u) << result.protocol;
    EXPECT_EQ(ring.sum_vector_bits(), result.metrics.vector_bits)
        << result.protocol;
    EXPECT_EQ(ring.sum_command_bits(), result.metrics.command_bits)
        << result.protocol;
    EXPECT_EQ(ring.sum_tag_bits(), result.metrics.tag_bits)
        << result.protocol;
    EXPECT_EQ(ring.sum_duration_us(), result.metrics.time_us)
        << result.protocol;
  }
}

TEST(Trace, NoiseAndCirclesShowUpAsEvents) {
  obs::MetricsRegistry registry;
  obs::RegistrySink sink(registry);
  obs::Tracer tracer(&sink);
  const auto result =
      traced_run(core::ProtocolKind::kEhpp, 800, tracer, 11, 0.15);
  EXPECT_EQ(registry.counter_value("events.circle_begin"),
            result.metrics.circles);
  EXPECT_EQ(registry.counter_value("events.corrupted"),
            result.metrics.corrupted);
  EXPECT_EQ(registry.counter_value("events.round_begin"),
            result.metrics.rounds);
  EXPECT_GT(result.metrics.corrupted, 0u);
  EXPECT_GT(result.metrics.circles, 0u);
}

TEST(Trace, DisabledTracerIsByteIdentical) {
  obs::RingBufferSink ring(8);
  obs::Tracer tracer(&ring);
  const auto with = traced_run(core::ProtocolKind::kTpp, 600, tracer);
  Xoshiro256ss rng(2026);
  const auto pop = tags::TagPopulation::uniform_random(600, rng);
  sim::SessionConfig config;
  config.seed = 7;
  config.keep_records = false;
  const auto without =
      protocols::make_protocol(core::ProtocolKind::kTpp)->run(pop, config);
  EXPECT_EQ(with.metrics.time_us, without.metrics.time_us);  // bitwise
  EXPECT_EQ(with.metrics.vector_bits, without.metrics.vector_bits);
  EXPECT_EQ(with.metrics.polls, without.metrics.polls);
  EXPECT_EQ(with.metrics.rounds, without.metrics.rounds);
}

TEST(Trace, RingBufferKeepsNewestAndCountsDropped) {
  obs::RingBufferSink ring(4);
  obs::Event event;
  for (int i = 0; i < 10; ++i) {
    event.round = static_cast<std::uint64_t>(i);
    event.duration_us = 1.0;
    ring.on_event(event);
  }
  EXPECT_EQ(ring.total_events(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().round, 6u);
  EXPECT_EQ(kept.back().round, 9u);
  EXPECT_DOUBLE_EQ(ring.sum_duration_us(), 10.0);  // totals span all events
}

TEST(Trace, EventKindNamesRoundTrip) {
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    obs::EventKind parsed;
    ASSERT_TRUE(obs::parse_event_kind(to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  obs::EventKind parsed;
  EXPECT_FALSE(obs::parse_event_kind("quux", parsed));
}

// --- Phase accounting -------------------------------------------------------

TEST(Phases, PartitionTheClockAcrossProtocols) {
  for (const auto kind :
       {core::ProtocolKind::kTpp, core::ProtocolKind::kHpp,
        core::ProtocolKind::kEhpp, core::ProtocolKind::kCpp,
        core::ProtocolKind::kMic, core::ProtocolKind::kDfsa}) {
    Xoshiro256ss rng(5);
    const auto pop = tags::TagPopulation::uniform_random(400, rng);
    sim::SessionConfig config;
    config.seed = 3;
    const auto result = protocols::make_protocol(kind)->run(pop, config);
    EXPECT_NEAR(result.metrics.phases.total_us(), result.metrics.time_us,
                1e-9 * result.metrics.time_us)
        << result.protocol;
  }
}

TEST(Phases, CleanPollingWastesNothingAlohaWastesSomething) {
  Xoshiro256ss rng(6);
  const auto pop = tags::TagPopulation::uniform_random(300, rng);
  sim::SessionConfig config;
  config.seed = 4;
  const auto tpp =
      protocols::make_protocol(core::ProtocolKind::kTpp)->run(pop, config);
  EXPECT_EQ(tpp.metrics.phases.get(obs::Phase::kWastedSlot), 0.0);
  EXPECT_GT(tpp.metrics.phases.get(obs::Phase::kReaderVector), 0.0);
  EXPECT_GT(tpp.metrics.phases.get(obs::Phase::kTurnaround), 0.0);
  EXPECT_GT(tpp.metrics.phases.get(obs::Phase::kTagReply), 0.0);
  const auto dfsa =
      protocols::make_protocol(core::ProtocolKind::kDfsa)->run(pop, config);
  EXPECT_GT(dfsa.metrics.phases.get(obs::Phase::kWastedSlot), 0.0);
}

// --- Metrics::merge (all fields) -------------------------------------------

TEST(MetricsMerge, AccumulatesEveryField) {
  sim::Metrics a, b;
  a.polls = 1;
  a.missing = 2;
  a.corrupted = 3;
  a.rounds = 4;
  a.circles = 5;
  a.slots_total = 6;
  a.slots_useful = 7;
  a.slots_wasted = 8;
  a.vector_bits = 9;
  a.command_bits = 10;
  a.tag_bits = 11;
  a.time_us = 12.5;
  a.phases.add(obs::Phase::kReaderVector, 1.5);
  a.phases.add(obs::Phase::kWastedSlot, 11.0);
  b.polls = 100;
  b.missing = 200;
  b.corrupted = 300;
  b.rounds = 400;
  b.circles = 500;
  b.slots_total = 600;
  b.slots_useful = 700;
  b.slots_wasted = 800;
  b.vector_bits = 900;
  b.command_bits = 1000;
  b.tag_bits = 1100;
  b.time_us = 1200.25;
  b.phases.add(obs::Phase::kCommand, 1200.25);
  a.merge(b);
  EXPECT_EQ(a.polls, 101u);
  EXPECT_EQ(a.missing, 202u);
  EXPECT_EQ(a.corrupted, 303u);
  EXPECT_EQ(a.rounds, 404u);
  EXPECT_EQ(a.circles, 505u);
  EXPECT_EQ(a.slots_total, 606u);
  EXPECT_EQ(a.slots_useful, 707u);
  EXPECT_EQ(a.slots_wasted, 808u);
  EXPECT_EQ(a.vector_bits, 909u);
  EXPECT_EQ(a.command_bits, 1010u);
  EXPECT_EQ(a.tag_bits, 1111u);
  EXPECT_DOUBLE_EQ(a.time_us, 1212.75);
  EXPECT_DOUBLE_EQ(a.phases.get(obs::Phase::kReaderVector), 1.5);
  EXPECT_DOUBLE_EQ(a.phases.get(obs::Phase::kCommand), 1200.25);
  EXPECT_DOUBLE_EQ(a.phases.get(obs::Phase::kWastedSlot), 11.0);
  EXPECT_DOUBLE_EQ(a.phases.total_us(), a.time_us);
}

TEST(MetricsMerge, MergeWithDefaultIsIdentity) {
  sim::Metrics a;
  a.polls = 7;
  a.time_us = 3.25;
  a.circles = 2;
  a.corrupted = 1;
  const sim::Metrics before = a;
  a.merge(sim::Metrics{});
  EXPECT_EQ(a.polls, before.polls);
  EXPECT_EQ(a.circles, before.circles);
  EXPECT_EQ(a.corrupted, before.corrupted);
  EXPECT_DOUBLE_EQ(a.time_us, before.time_us);
}

// --- Histograms -------------------------------------------------------------

TEST(Histogram, RecordsAndInterpolatesQuantiles) {
  auto h = obs::Histogram::linear(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 99.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, UnderflowAndOverflowAreBucketed) {
  auto h = obs::Histogram::linear(0.0, 10.0, 10);
  h.record(-5.0);
  h.record(50.0);
  h.record(5.0);
  EXPECT_EQ(h.counts().front(), 1u);  // underflow
  EXPECT_EQ(h.counts().back(), 1u);   // overflow
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(Histogram, MergeIsExactAndAssociative) {
  auto make = [](std::uint64_t seed, int count) {
    auto h = obs::Histogram::linear(0.0, 1000.0, 50);
    Xoshiro256ss rng(seed);
    for (int i = 0; i < count; ++i)
      h.record(static_cast<double>(rng.below(1200)));
    return h;
  };
  const auto a = make(1, 100), b = make(2, 200), c = make(3, 300);
  auto ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  auto bc = b;
  bc.merge(c);
  auto a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.count(), 600u);
  EXPECT_EQ(ab_c.counts(), a_bc.counts());
  EXPECT_DOUBLE_EQ(ab_c.min(), a_bc.min());
  EXPECT_DOUBLE_EQ(ab_c.max(), a_bc.max());
  // sum is a double fold; association differs, so compare with tolerance.
  EXPECT_NEAR(ab_c.sum(), a_bc.sum(), 1e-9 * ab_c.sum());
}

TEST(Histogram, MergeRejectsForeignLayouts) {
  auto a = obs::Histogram::linear(0.0, 10.0, 10);
  auto b = obs::Histogram::linear(0.0, 20.0, 10);
  b.record(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  // Merging into a default-constructed histogram adopts the layout.
  obs::Histogram empty;
  empty.merge(b);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_TRUE(empty.same_layout(b));
}

TEST(Histogram, ExponentialEdgesGrowGeometrically) {
  const auto h = obs::Histogram::exponential(100.0, 2.0, 4);
  const auto& edges = h.edges();
  ASSERT_EQ(edges.size(), 5u);
  EXPECT_DOUBLE_EQ(edges[0], 100.0);
  EXPECT_DOUBLE_EQ(edges[4], 1600.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(obs::Histogram({1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram::linear(5.0, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(obs::Histogram::exponential(0.0, 2.0, 4),
               std::invalid_argument);
}

TEST(P2Quantile, TracksUniformMedianAndTail) {
  obs::P2Quantile p50(0.5), p95(0.95);
  Xoshiro256ss rng(42);
  for (int i = 0; i < 20000; ++i) {
    const double x = static_cast<double>(rng.below(10000));
    p50.record(x);
    p95.record(x);
  }
  EXPECT_NEAR(p50.value(), 5000.0, 250.0);
  EXPECT_NEAR(p95.value(), 9500.0, 250.0);
}

TEST(P2Quantile, SmallSamplesAreExact) {
  obs::P2Quantile p50(0.5);
  EXPECT_DOUBLE_EQ(p50.value(), 0.0);
  p50.record(7.0);
  EXPECT_DOUBLE_EQ(p50.value(), 7.0);
  p50.record(1.0);
  p50.record(9.0);
  EXPECT_DOUBLE_EQ(p50.value(), 7.0);  // middle of {1, 7, 9}
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, CountersAndMergeAdoptNames) {
  obs::MetricsRegistry a, b;
  ++a.counter("x");
  b.counter("x") += 4;
  ++b.counter("y");
  b.histogram("h", obs::Histogram::linear(0, 10, 5)).record(3.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("x"), 5u);
  EXPECT_EQ(a.counter_value("y"), 1u);
  EXPECT_EQ(a.counter_value("never"), 0u);
  ASSERT_NE(a.find_histogram("h"), nullptr);
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
}

TEST(Registry, JsonIsBalancedAndDeterministic) {
  obs::MetricsRegistry registry;
  obs::RegistrySink sink(registry);
  obs::Tracer tracer(&sink);
  (void)traced_run(core::ProtocolKind::kTpp, 200, tracer);
  std::ostringstream a, b;
  registry.write_json(a);
  registry.write_json(b, 0);
  EXPECT_EQ(a.str().empty(), false);
  EXPECT_EQ(b.str().find('\n'), std::string::npos);
  std::ptrdiff_t braces = 0, brackets = 0;
  for (const char c : a.str()) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Registry, PollsPerRoundCoversEveryRound) {
  obs::MetricsRegistry registry;
  obs::RegistrySink sink(registry);
  obs::Tracer tracer(&sink);
  const auto result = traced_run(core::ProtocolKind::kHpp, 500, tracer);
  const obs::Histogram* h = registry.find_histogram("polls_per_round");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), result.metrics.rounds);
  EXPECT_DOUBLE_EQ(h->sum(), static_cast<double>(result.metrics.polls));
}

// --- Trial-runner aggregation ----------------------------------------------

TEST(TrialRunner, RegistryMergeMatchesSerialVsPooled) {
  // Histogram merging is associative and run_trials folds per-trial
  // registries in trial order, so the pooled aggregate must equal the
  // serial one exactly — counts bitwise, sums to double-fold identity.
  protocols::Tpp tpp;
  parallel::TrialPlan plan;
  plan.trials = 8;
  plan.master_seed = 77;
  plan.collect_registry = true;
  const auto serial = run_trials(tpp, parallel::uniform_population(300), plan);
  parallel::ThreadPool pool(4);
  const auto pooled =
      run_trials(tpp, parallel::uniform_population(300), plan, &pool);

  const auto* hs = serial.registry.find_histogram("vector_bits_per_poll");
  const auto* hp = pooled.registry.find_histogram("vector_bits_per_poll");
  ASSERT_NE(hs, nullptr);
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hs->count(), 8u * 300u);
  EXPECT_EQ(hs->counts(), hp->counts());
  EXPECT_DOUBLE_EQ(hs->sum(), hp->sum());
  EXPECT_DOUBLE_EQ(hs->mean(), hp->mean());
  EXPECT_EQ(serial.registry.counter_value("events.reply"),
            pooled.registry.counter_value("events.reply"));

  // Scalar totals aggregate through Metrics::merge under the same contract.
  EXPECT_EQ(serial.totals.polls, pooled.totals.polls);
  EXPECT_EQ(serial.totals.vector_bits, pooled.totals.vector_bits);
  EXPECT_DOUBLE_EQ(serial.totals.time_us, pooled.totals.time_us);
  EXPECT_EQ(serial.totals.polls, 8u * 300u);
  // The merged histogram mean is the population-weighted avg_vector_bits.
  EXPECT_NEAR(hs->mean(),
              static_cast<double>(serial.totals.vector_bits) /
                  static_cast<double>(serial.totals.polls),
              1e-9);
}

TEST(TrialRunner, RegistryOffByDefault) {
  protocols::Tpp tpp;
  parallel::TrialPlan plan;
  plan.trials = 2;
  const auto series = run_trials(tpp, parallel::uniform_population(50), plan);
  EXPECT_EQ(series.registry.histograms().size(), 0u);
  EXPECT_EQ(series.totals.polls, 100u);  // totals always aggregate
}

// --- Strict numeric parsing (shared by the examples) ------------------------

// --- RingBufferSink wraparound and snapshot interleaving --------------------

TEST(Trace, RingBufferWraparoundIsExactAtTheBoundary) {
  obs::RingBufferSink ring(4);
  obs::Event event;
  // Exactly at capacity: nothing dropped, order preserved.
  for (int i = 0; i < 4; ++i) {
    event.round = static_cast<std::uint64_t>(i);
    ring.on_event(event);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().round, 0u);
  EXPECT_EQ(kept.back().round, 3u);
  // One past capacity: exactly the oldest event leaves.
  event.round = 4;
  ring.on_event(event);
  EXPECT_EQ(ring.dropped(), 1u);
  kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().round, 1u);
  EXPECT_EQ(kept.back().round, 4u);
}

TEST(Trace, RingBufferSnapshotInterleavingDisturbsNothing) {
  // snapshot() mid-stream is a pure read: alternating on_event/snapshot
  // must leave totals and retention identical to an uninterrupted run.
  obs::RingBufferSink interleaved(3);
  obs::RingBufferSink straight(3);
  obs::Event event;
  for (int i = 0; i < 11; ++i) {
    event.round = static_cast<std::uint64_t>(i);
    event.duration_us = 0.5 * i;
    event.vector_bits = static_cast<std::uint64_t>(i);
    interleaved.on_event(event);
    straight.on_event(event);
    const auto mid = interleaved.snapshot();  // interleaved read each write
    ASSERT_FALSE(mid.empty());
    EXPECT_EQ(mid.back().round, static_cast<std::uint64_t>(i));
    EXPECT_LE(mid.size(), 3u);
  }
  EXPECT_EQ(interleaved.total_events(), straight.total_events());
  EXPECT_EQ(interleaved.dropped(), straight.dropped());
  EXPECT_EQ(interleaved.sum_vector_bits(), straight.sum_vector_bits());
  EXPECT_DOUBLE_EQ(interleaved.sum_duration_us(),
                   straight.sum_duration_us());
  const auto a = interleaved.snapshot();
  const auto b = straight.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].round, b[i].round);
}

// --- MetricsSnapshot JSON: byte-stability across execution modes ------------

TEST(Stream, SnapshotJsonIsByteStableSerialVsPooled) {
  // The determinism gate pins serial and RFID_THREADS=4 pooled folds
  // byte-identical; the streaming snapshot JSON on top of them must
  // inherit that: same totals in, same bytes out.
  protocols::Tpp tpp;
  parallel::TrialPlan plan;
  plan.trials = 8;
  plan.master_seed = 77;
  const auto serial = run_trials(tpp, parallel::uniform_population(300), plan);
  parallel::ThreadPool pool(4);
  const auto pooled =
      run_trials(tpp, parallel::uniform_population(300), plan, &pool);

  const auto snapshot_json = [](const sim::Metrics& totals) {
    obs::StreamingAggregator aggregator(2);
    aggregator.update_reader(0, totals, 1.25e-4);
    aggregator.complete_epoch(1, totals);
    aggregator.set_retry_budget(1, 8);
    return obs::to_json(*aggregator.publish(0.5));
  };
  const std::string from_serial = snapshot_json(serial.totals);
  const std::string from_pooled = snapshot_json(pooled.totals);
  EXPECT_EQ(from_serial, from_pooled);  // byte-for-byte

  // And the JSON is structurally what /metrics.json serves.
  EXPECT_NE(from_serial.find(R"("type":"snapshot")"), std::string::npos);
  EXPECT_NE(from_serial.find(R"("sequence":1)"), std::string::npos);
  EXPECT_NE(from_serial.find(R"("readers":[)"), std::string::npos);
  EXPECT_NE(from_serial.find(R"("phases":{)"), std::string::npos);
}

TEST(ParseArgs, ParseU64AcceptsOnlyCleanDigits) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12x"));      // trailing garbage
  EXPECT_FALSE(parse_u64(" 12"));      // leading space
  EXPECT_FALSE(parse_u64("-3"));       // sign
  EXPECT_FALSE(parse_u64("+3"));
  EXPECT_FALSE(parse_u64("1e4"));      // no scientific notation
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64("99999999999999999999999"));
}

TEST(ParseArgs, ParseSizeArgRejectsZeroByDefault) {
  EXPECT_EQ(parse_size_arg("2000"), 2000u);
  EXPECT_FALSE(parse_size_arg("0"));
  EXPECT_EQ(parse_size_arg("0", /*allow_zero=*/true), 0u);
  EXPECT_FALSE(parse_size_arg("10 "));
  EXPECT_FALSE(parse_size_arg("ten"));
}

}  // namespace
}  // namespace rfid
