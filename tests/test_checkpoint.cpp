// Crash-consistent checkpoint/resume: the binary codec (roundtrip, CRC
// rejection, truncation, atomic write), and the end-to-end warehouse
// invariant — killing a run at an arbitrary point and resuming from the
// last epoch-boundary checkpoint converges on byte-identical final
// metrics, with and without injected reader crashes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/warehouse.hpp"
#include "obs/stream.hpp"
#include "sim/checkpoint.hpp"

namespace rfid {
namespace {

/// A unique temp path per test; removed on destruction.
struct TempPath final {
  std::string path;
  explicit TempPath(const std::string& stem)
      : path("/tmp/rfid_ckpt_test_" + std::to_string(::getpid()) + "_" +
             stem) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  ~TempPath() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

sim::Checkpoint sample_checkpoint() {
  sim::Checkpoint checkpoint;
  checkpoint.config_fingerprint = 0xFEEDFACEull;
  checkpoint.master_seed = 42;
  checkpoint.wall_unix_ms = 1754700000000ull;
  checkpoint.epoch_target = 9;
  checkpoint.readers.resize(2);
  checkpoint.readers[0].epochs = 3;
  checkpoint.readers[0].crashes = 1;
  checkpoint.readers[0].restarts = 1;
  checkpoint.readers[0].health = obs::ReaderHealth::kRecovering;
  checkpoint.readers[0].completed.rounds = 77;
  checkpoint.readers[0].completed.time_us = 123.456;
  checkpoint.readers[0].completed.phases.add(obs::Phase::kRecovery, 9.5);
  checkpoint.readers[1].epochs = 4;
  checkpoint.readers[1].completed.polls = 1234;
  checkpoint.rng_streams.push_back(
      {"churn_rng", {0x1111, 0x2222, 0x3333, 0x4444}});
  return checkpoint;
}

TEST(CheckpointCodec, EncodeDecodeRoundtrip) {
  const sim::Checkpoint original = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = sim::encode(original);
  const sim::Checkpoint decoded = sim::decode(bytes);

  EXPECT_EQ(decoded.config_fingerprint, original.config_fingerprint);
  EXPECT_EQ(decoded.master_seed, original.master_seed);
  EXPECT_EQ(decoded.wall_unix_ms, original.wall_unix_ms);
  EXPECT_EQ(decoded.epoch_target, original.epoch_target);
  ASSERT_EQ(decoded.readers.size(), 2u);
  EXPECT_EQ(decoded.readers[0].epochs, 3u);
  EXPECT_EQ(decoded.readers[0].crashes, 1u);
  EXPECT_EQ(decoded.readers[0].restarts, 1u);
  EXPECT_EQ(decoded.readers[0].health, obs::ReaderHealth::kRecovering);
  EXPECT_EQ(decoded.readers[0].completed.rounds, 77u);
  EXPECT_EQ(decoded.readers[0].completed.time_us, 123.456);
  EXPECT_EQ(decoded.readers[0].completed.phases.get(obs::Phase::kRecovery),
            9.5);
  EXPECT_EQ(decoded.readers[1].completed.polls, 1234u);
  ASSERT_EQ(decoded.rng_streams.size(), 1u);
  EXPECT_EQ(decoded.rng_streams[0].name, "churn_rng");
  EXPECT_EQ(decoded.rng_streams[0].state[3], 0x4444u);

  // Re-encoding the decoded struct reproduces the exact bytes: the codec
  // loses nothing and has one canonical form.
  EXPECT_EQ(sim::encode(decoded), bytes);
}

TEST(CheckpointCodec, EncodeIntoReusesBufferAndMatchesEncode) {
  const sim::Checkpoint checkpoint = sample_checkpoint();
  std::vector<std::uint8_t> buffer;
  sim::encode_into(checkpoint, buffer);
  EXPECT_EQ(buffer, sim::encode(checkpoint));
  // Second fill into the warm buffer: same bytes, no stale suffix.
  sim::encode_into(checkpoint, buffer);
  EXPECT_EQ(buffer, sim::encode(checkpoint));
}

TEST(CheckpointCodec, CorruptionIsRefusedLoudly) {
  std::vector<std::uint8_t> bytes = sim::encode(sample_checkpoint());

  {  // Payload bit flip: CRC catches it.
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt.back() ^= 0x01;
    EXPECT_THROW((void)sim::decode(corrupt), std::runtime_error);
  }
  {  // Bad magic.
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[0] ^= 0xFF;
    EXPECT_THROW((void)sim::decode(corrupt), std::runtime_error);
  }
  {  // Unsupported version.
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[8] = 0xEE;
    EXPECT_THROW((void)sim::decode(corrupt), std::runtime_error);
  }
  // Truncation at every boundary: never a crash, never a half-restore.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    const std::vector<std::uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)sim::decode(truncated), std::runtime_error)
        << "truncated to " << len;
  }
}

TEST(CheckpointCodec, AtomicWriteThenLoadRoundtrips) {
  const TempPath temp("atomic");
  const sim::Checkpoint checkpoint = sample_checkpoint();
  sim::write_checkpoint_atomic(temp.path, sim::encode(checkpoint));

  const auto loaded = sim::load_checkpoint(temp.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->config_fingerprint, checkpoint.config_fingerprint);
  EXPECT_EQ(loaded->readers.size(), 2u);
  // No .tmp file left behind after the rename.
  std::ifstream tmp(temp.path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
}

TEST(CheckpointCodec, MissingFileIsAFreshStartCorruptFileIsNot) {
  const TempPath temp("missing");
  EXPECT_FALSE(sim::load_checkpoint(temp.path).has_value());

  std::ofstream out(temp.path, std::ios::binary);
  out << "definitely not a checkpoint";
  out.close();
  EXPECT_THROW((void)sim::load_checkpoint(temp.path), std::runtime_error);
}

// --- Warehouse kill/resume byte-identity ------------------------------------

/// Runs a warehouse to its per-reader epoch target and returns the final
/// metrics JSON. With `kill_after_epochs` nonzero, the run is abandoned
/// once that many total epochs completed (its state captured in
/// `checkpoint` exactly as simserved's periodic snapshot would), and the
/// caller resumes a fresh instance from it.
std::string run_to_target(const core::WarehouseConfig& config,
                          std::uint64_t kill_after_epochs,
                          sim::Checkpoint* checkpoint_out,
                          const sim::Checkpoint* resume_from) {
  obs::StreamingAggregator aggregator(config.readers);
  core::WarehouseSim warehouse(config, aggregator);
  if (resume_from != nullptr) warehouse.restore(*resume_from);
  while (!warehouse.target_reached()) {
    (void)warehouse.step();
    if (kill_after_epochs != 0 &&
        warehouse.total_epochs() >= kill_after_epochs) {
      // "SIGKILL": capture the durable state and walk away mid-run.
      if (checkpoint_out != nullptr)
        warehouse.fill_checkpoint(*checkpoint_out, /*wall_unix_ms=*/0);
      return {};
    }
  }
  std::ostringstream os;
  warehouse.write_final_metrics(os);
  return os.str();
}

TEST(CheckpointResume, KillAndResumeIsByteIdentical) {
  core::WarehouseConfig config;
  config.readers = 2;
  config.tags = 48;
  config.seed = 20260809;
  config.epoch_target = 3;

  const std::string uninterrupted = run_to_target(config, 0, nullptr, nullptr);
  ASSERT_FALSE(uninterrupted.empty());

  // Kill after 2 total epochs (mid-run: neither reader is at its target),
  // then resume a fresh process-equivalent from the checkpoint.
  sim::Checkpoint checkpoint;
  ASSERT_TRUE(run_to_target(config, 2, &checkpoint, nullptr).empty());
  EXPECT_LT(checkpoint.readers[0].epochs + checkpoint.readers[1].epochs,
            2u * config.epoch_target);
  const std::string resumed = run_to_target(config, 0, nullptr, &checkpoint);

  EXPECT_EQ(resumed, uninterrupted);
}

TEST(CheckpointResume, CrashInjectionDoesNotPerturbCompletedFolds) {
  // The whole design hinges on this: epoch session seeds exclude the
  // attempt counter, so a run whose readers crash and replay epochs folds
  // the exact same completed metrics as a crash-free run.
  core::WarehouseConfig clean;
  clean.readers = 2;
  clean.tags = 48;
  clean.seed = 7;
  clean.epoch_target = 4;

  core::WarehouseConfig crashy = clean;
  crashy.crash_every_epochs = 2;  // crashes are frequent, not rare

  const std::string clean_run = run_to_target(clean, 0, nullptr, nullptr);
  const std::string crashy_run = run_to_target(crashy, 0, nullptr, nullptr);
  EXPECT_EQ(crashy_run, clean_run);
}

TEST(CheckpointResume, KillAndResumeWithCrashesIsByteIdentical) {
  core::WarehouseConfig config;
  config.readers = 3;
  config.tags = 32;
  config.seed = 99;
  config.epoch_target = 3;
  config.crash_every_epochs = 2;

  const std::string uninterrupted = run_to_target(config, 0, nullptr, nullptr);
  sim::Checkpoint checkpoint;
  ASSERT_TRUE(run_to_target(config, 4, &checkpoint, nullptr).empty());
  const std::string resumed = run_to_target(config, 0, nullptr, &checkpoint);
  EXPECT_EQ(resumed, uninterrupted);
}

TEST(CheckpointResume, MismatchedConfigIsRefused) {
  core::WarehouseConfig config;
  config.readers = 2;
  config.tags = 32;
  config.seed = 5;
  config.epoch_target = 1;

  sim::Checkpoint checkpoint;
  {
    obs::StreamingAggregator aggregator(config.readers);
    core::WarehouseSim warehouse(config, aggregator);
    warehouse.fill_checkpoint(checkpoint, 0);
  }

  // Different seed -> different fingerprint -> refused.
  core::WarehouseConfig other = config;
  other.seed = 6;
  obs::StreamingAggregator aggregator(other.readers);
  core::WarehouseSim warehouse(other, aggregator);
  EXPECT_THROW(warehouse.restore(checkpoint), std::runtime_error);

  // Same config but a different epoch target is fine: the fingerprint
  // covers what shapes the folds, not the stopping condition.
  core::WarehouseConfig extended = config;
  extended.epoch_target = 3;
  obs::StreamingAggregator aggregator2(extended.readers);
  core::WarehouseSim warehouse2(extended, aggregator2);
  EXPECT_NO_THROW(warehouse2.restore(checkpoint));
}

TEST(CheckpointResume, RestorePushesStateIntoTheAggregator) {
  core::WarehouseConfig config;
  config.readers = 2;
  config.tags = 32;
  config.seed = 3;
  config.epoch_target = 2;

  sim::Checkpoint checkpoint;
  {
    obs::StreamingAggregator aggregator(config.readers);
    core::WarehouseSim warehouse(config, aggregator);
    while (!warehouse.target_reached()) (void)warehouse.step();
    warehouse.fill_checkpoint(checkpoint, 0);
  }

  obs::StreamingAggregator aggregator(config.readers);
  core::WarehouseSim warehouse(config, aggregator);
  warehouse.restore(checkpoint);
  const auto snapshot = aggregator.publish(0.1);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->readers[0].epochs, 2u);
  EXPECT_EQ(snapshot->readers[1].epochs, 2u);
  EXPECT_EQ(snapshot->totals.rounds,
            checkpoint.readers[0].completed.rounds +
                checkpoint.readers[1].completed.rounds);
}

}  // namespace
}  // namespace rfid
