// Tests for the MIC / SIC information-collection baselines.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "protocols/mic.hpp"
#include "sim/verify.hpp"

namespace rfid::protocols {
namespace {

sim::RunResult run_mic(std::size_t n, std::uint64_t seed,
                       Mic::Config config = Mic::Config()) {
  Xoshiro256ss rng(seed);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig session;
  session.seed = seed * 7 + 3;
  return Mic(config).run(pop, session);
}

TEST(Mic, CompleteCollection) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(2000, rng)
                       .with_random_payloads(16, rng);
  sim::SessionConfig session;
  session.info_bits = 16;
  const auto result = Mic().run(pop, session);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Mic, EveryMarkedSlotIsAnswered) {
  // The layered assignment guarantees marked slots are singleton: useful
  // slots equal polls and no collisions ever reach the channel.
  const auto result = run_mic(3000, 2);
  EXPECT_EQ(result.metrics.polls, 3000u);
  EXPECT_EQ(result.channel.collision_slots, 0u);
  EXPECT_EQ(result.metrics.slots_useful, 3000u);
}

TEST(Mic, WasteNearPublishedFigure) {
  // MIC's authors report 13.9% wasted slots at k = 7, f = n; the layered
  // fixed point 1 - 0.861 lands there.
  const auto result = run_mic(20000, 3);
  EXPECT_NEAR(result.metrics.waste_fraction(), 0.139, 0.025);
}

TEST(Mic, SicWasteNearAlohaFigure) {
  // k = 1 degenerates to single-hash assignment: ~63.2% waste (the ALOHA
  // number the paper quotes when motivating MIC).
  Xoshiro256ss rng(4);
  const auto pop = tags::TagPopulation::uniform_random(20000, rng);
  sim::SessionConfig session;
  session.seed = 5;
  const auto result = make_sic().run(pop, session);
  EXPECT_NEAR(result.metrics.waste_fraction(), 0.632, 0.03);
}

TEST(Mic, MoreHashesLessWaste) {
  // The related-work dilemma: waste falls monotonically with k...
  const double w1 = run_mic(10000, 6, Mic::Config{.num_hashes = 1})
                        .metrics.waste_fraction();
  const double w3 = run_mic(10000, 6, Mic::Config{.num_hashes = 3})
                        .metrics.waste_fraction();
  const double w7 = run_mic(10000, 6, Mic::Config{.num_hashes = 7})
                        .metrics.waste_fraction();
  EXPECT_GT(w1, w3);
  EXPECT_GT(w3, w7);
}

TEST(Mic, MoreHashesBiggerIndicatorVector) {
  // ...but the indicator vector grows with ceil(log2(k+1)) bits per slot —
  // the storage/overhead dilemma of Section VI. Compare per-slot cost
  // (totals are dominated by k=1 needing far more slots overall).
  const auto r7 = run_mic(5000, 7, Mic::Config{.num_hashes = 7});
  const auto r1 = run_mic(5000, 7, Mic::Config{.num_hashes = 1});
  const double per_slot_7 = double(r7.metrics.vector_bits) /
                            double(r7.metrics.slots_total);
  const double per_slot_1 = double(r1.metrics.vector_bits) /
                            double(r1.metrics.slots_total);
  EXPECT_DOUBLE_EQ(per_slot_7, 3.0);
  EXPECT_DOUBLE_EQ(per_slot_1, 1.0);
}

TEST(Mic, IndicatorVectorBitsMatchFrameSizes) {
  const auto result = run_mic(1000, 8);
  // Every frame contributes 3 bits per slot with k = 7.
  EXPECT_EQ(result.metrics.vector_bits, result.metrics.slots_total * 3u);
}

TEST(Mic, SingleTagResolvedImmediately) {
  const auto result = run_mic(1, 9);
  EXPECT_EQ(result.metrics.polls, 1u);
  EXPECT_EQ(result.metrics.rounds, 1u);
}

TEST(Mic, DeterministicReplay) {
  const auto a = run_mic(1500, 10);
  const auto b = run_mic(1500, 10);
  EXPECT_EQ(a.metrics.slots_total, b.metrics.slots_total);
  EXPECT_DOUBLE_EQ(a.metrics.time_us, b.metrics.time_us);
}

TEST(Mic, InvalidConfigRejected) {
  Xoshiro256ss rng(11);
  const auto pop = tags::TagPopulation::uniform_random(10, rng);
  EXPECT_THROW((void)Mic(Mic::Config{.num_hashes = 0}).run(pop, {}),
               ContractViolation);
  EXPECT_THROW((void)Mic(Mic::Config{.frame_factor = 0.0}).run(pop, {}),
               ContractViolation);
}

TEST(Mic, FrameFactorScalesFrames) {
  const auto tight = run_mic(4000, 12, Mic::Config{.frame_factor = 0.5});
  const auto loose = run_mic(4000, 12, Mic::Config{.frame_factor = 2.0});
  EXPECT_EQ(tight.metrics.polls, 4000u);
  EXPECT_EQ(loose.metrics.polls, 4000u);
  EXPECT_GT(loose.metrics.waste_fraction(), tight.metrics.waste_fraction());
}

class MicSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MicSweep, Complete) {
  const std::size_t n = GetParam();
  const auto result = run_mic(n, 19 * n + 5);
  EXPECT_EQ(result.metrics.polls, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MicSweep,
                         ::testing::Values(1, 2, 5, 50, 333, 1000, 8000));

}  // namespace
}  // namespace rfid::protocols
