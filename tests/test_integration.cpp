// Integration tests: single runs at the paper's n = 10^4 operating point
// must land on the shapes of Tables I-III and Fig. 10.
#include <gtest/gtest.h>

#include "analysis/timing_model.hpp"
#include "core/polling.hpp"

namespace rfid {
namespace {

using core::ProtocolKind;

struct PaperPoint final {
  sim::RunResult cpp, hpp, ehpp, mic, tpp;
};

const PaperPoint& paper_point(std::size_t info_bits) {
  // One shared 10k-tag run per payload size (construction is expensive on
  // the test machine; results are deterministic anyway).
  static std::map<std::size_t, PaperPoint> cache;
  auto it = cache.find(info_bits);
  if (it == cache.end()) {
    Xoshiro256ss rng(2016);
    const auto pop = tags::TagPopulation::uniform_random(10000, rng);
    sim::SessionConfig config;
    config.info_bits = info_bits;
    config.seed = 7;
    config.keep_records = false;
    PaperPoint point;
    point.cpp = protocols::make_protocol(ProtocolKind::kCpp)->run(pop, config);
    point.hpp = protocols::make_protocol(ProtocolKind::kHpp)->run(pop, config);
    point.ehpp =
        protocols::make_protocol(ProtocolKind::kEhpp)->run(pop, config);
    point.mic = protocols::make_protocol(ProtocolKind::kMic)->run(pop, config);
    point.tpp = protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
    it = cache.emplace(info_bits, std::move(point)).first;
  }
  return it->second;
}

TEST(TableOne, CppRowExact) {
  EXPECT_NEAR(paper_point(1).cpp.exec_time_s(), 37.70, 0.01);
}

TEST(TableOne, HppRowNearPaper) {
  EXPECT_NEAR(paper_point(1).hpp.exec_time_s(), 8.12, 0.35);
}

TEST(TableOne, EhppRowNearPaper) {
  EXPECT_NEAR(paper_point(1).ehpp.exec_time_s(), 6.63, 0.35);
}

TEST(TableOne, MicRowNearPaper) {
  EXPECT_NEAR(paper_point(1).mic.exec_time_s(), 5.15, 0.45);
}

TEST(TableOne, TppRowNearPaper) {
  EXPECT_NEAR(paper_point(1).tpp.exec_time_s(), 4.39, 0.25);
}

TEST(TableOne, OrderingMatchesPaper) {
  const auto& p = paper_point(1);
  EXPECT_LT(p.tpp.exec_time_s(), p.mic.exec_time_s());
  EXPECT_LT(p.mic.exec_time_s(), p.ehpp.exec_time_s());
  EXPECT_LT(p.ehpp.exec_time_s(), p.hpp.exec_time_s());
  EXPECT_LT(p.hpp.exec_time_s(), p.cpp.exec_time_s());
}

TEST(TableOne, TppWithinSmallFactorOfLowerBound) {
  // Paper: TPP is ~1.35x the lower bound at l = 1.
  const double bound = analysis::lower_bound_time_s(10000, 1);
  const double ratio = paper_point(1).tpp.exec_time_s() / bound;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 1.5);
}

TEST(TableOne, TppReducesMicByDoubleDigitPercent) {
  // Paper: 14.8% reduction vs MIC when collecting 1 bit.
  const auto& p = paper_point(1);
  const double reduction =
      1.0 - p.tpp.exec_time_s() / p.mic.exec_time_s();
  EXPECT_GT(reduction, 0.08);
  EXPECT_LT(reduction, 0.22);
}

TEST(TableTwo, SixteenBitRatiosNearPaper) {
  // Paper: at l = 16, TPP is 85.7% of MIC, 78.3% of EHPP, 68.6% of HPP,
  // 19.6% of CPP.
  const auto& p = paper_point(16);
  const double tpp = p.tpp.exec_time_s();
  EXPECT_NEAR(tpp / p.mic.exec_time_s(), 0.857, 0.05);
  EXPECT_NEAR(tpp / p.ehpp.exec_time_s(), 0.783, 0.05);
  EXPECT_NEAR(tpp / p.hpp.exec_time_s(), 0.686, 0.05);
  EXPECT_NEAR(tpp / p.cpp.exec_time_s(), 0.196, 0.02);
}

TEST(TableThree, ThirtyTwoBitLowerBoundMultiples) {
  // Paper: at l = 32 and n = 10^4 — TPP 1.10x, MIC 1.28x, EHPP 1.31x,
  // HPP 1.45x, CPP 4.14x the lower bound.
  const double bound = analysis::lower_bound_time_s(10000, 32);
  const auto& p = paper_point(32);
  EXPECT_NEAR(p.tpp.exec_time_s() / bound, 1.10, 0.05);
  EXPECT_NEAR(p.mic.exec_time_s() / bound, 1.28, 0.08);
  EXPECT_NEAR(p.ehpp.exec_time_s() / bound, 1.31, 0.08);
  EXPECT_NEAR(p.hpp.exec_time_s() / bound, 1.45, 0.08);
  EXPECT_NEAR(p.cpp.exec_time_s() / bound, 4.14, 0.10);
}

TEST(FigureTen, VectorLengthsNearPaperAtTenThousand) {
  const auto& p = paper_point(1);
  EXPECT_NEAR(p.hpp.avg_vector_bits(), 13.0, 1.0);   // log-growth point
  EXPECT_NEAR(p.ehpp.avg_vector_bits(), 9.0, 0.8);   // flat at ~9
  EXPECT_NEAR(p.tpp.avg_vector_bits(), 3.06, 0.25);  // flat at ~3.06
}

TEST(FigureTen, CompressionFactorsVsCpp) {
  // Section V-B: EHPP and TPP shorten the vector ~10x and ~31x vs CPP.
  const auto& p = paper_point(1);
  EXPECT_NEAR(96.0 / p.ehpp.avg_vector_bits(), 10.0, 1.5);
  EXPECT_NEAR(96.0 / p.tpp.avg_vector_bits(), 31.0, 3.5);
}

TEST(Integration, HppVectorGrowsButTppStays) {
  Xoshiro256ss rng(3);
  const auto pop_small = tags::TagPopulation::uniform_random(1000, rng);
  const auto pop_large = tags::TagPopulation::uniform_random(50000, rng);
  sim::SessionConfig config;
  config.keep_records = false;
  config.seed = 5;
  const auto hpp = protocols::make_protocol(ProtocolKind::kHpp);
  const auto tpp = protocols::make_protocol(ProtocolKind::kTpp);
  const double hpp_growth = hpp->run(pop_large, config).avg_vector_bits() -
                            hpp->run(pop_small, config).avg_vector_bits();
  const double tpp_growth = tpp->run(pop_large, config).avg_vector_bits() -
                            tpp->run(pop_small, config).avg_vector_bits();
  EXPECT_GT(hpp_growth, 4.0);
  EXPECT_LT(std::abs(tpp_growth), 0.4);
}

}  // namespace
}  // namespace rfid
