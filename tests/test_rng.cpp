// Unit tests for the deterministic PRNG substrate.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace rfid {
namespace {

TEST(Splitmix64, KnownSequenceIsStable) {
  // Reference values from the canonical splitmix64 with seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256ss a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, ZeroSeedProducesNonDegenerateStream) {
  Xoshiro256ss rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Xoshiro, ReseedRestartsStream) {
  Xoshiro256ss rng(7);
  const std::uint64_t first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256ss rng(99);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256ss rng(4242);
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kSamples = 64000;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  const double expected = double(kSamples) / double(kBuckets);
  for (const std::size_t c : counts) {
    EXPECT_NEAR(double(c), expected, expected * 0.10);
  }
}

TEST(Xoshiro, Uniform01InHalfOpenUnitInterval) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, BernoulliEdgeProbabilities) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256ss rng(8);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(double(hits) / kSamples, 0.3, 0.02);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256ss a(55);
  Xoshiro256ss b(55);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  std::size_t overlap = 0;
  for (int i = 0; i < 1000; ++i) overlap += from_a.count(b());
  EXPECT_EQ(overlap, 0u);
}

TEST(DeriveSeed, DistinctIndicesDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
  EXPECT_NE(derive_seed(7, 3), derive_seed(8, 3));
  EXPECT_NE(derive_seed(7, 3), derive_seed(7, 4));
}

}  // namespace
}  // namespace rfid
