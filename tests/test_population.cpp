// Unit tests for tag and population generation.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.hpp"
#include "tags/population.hpp"

namespace rfid::tags {
namespace {

TEST(Tag, ReplyPayloadUsesStoredPrefix) {
  Tag tag(TagId::from_hex("000000000000000000000001"), BitVec("10110"));
  EXPECT_EQ(tag.reply_payload(3).to_string(), "101");
  EXPECT_EQ(tag.reply_payload(5).to_string(), "10110");
}

TEST(Tag, ReplyPayloadDerivedWhenStoredTooShort) {
  const TagId id = TagId::from_hex("000000000000000000000002");
  Tag tag(id, BitVec("1"));
  EXPECT_EQ(tag.reply_payload(16), derived_payload(id, 16));
}

TEST(Tag, DerivedPayloadDeterministicAndIdDependent) {
  const TagId a = TagId::from_hex("000000000000000000000003");
  const TagId b = TagId::from_hex("000000000000000000000004");
  EXPECT_EQ(derived_payload(a, 32), derived_payload(a, 32));
  EXPECT_FALSE(derived_payload(a, 32) == derived_payload(b, 32));
}

TEST(Tag, DerivedPayloadPrefixConsistent) {
  // Asking for fewer bits must yield a prefix of the longer derivation.
  const TagId id = TagId::from_hex("00000000000000000000000a");
  const BitVec long_payload = derived_payload(id, 100);
  const BitVec short_payload = derived_payload(id, 40);
  for (std::size_t i = 0; i < 40; ++i)
    EXPECT_EQ(short_payload.bit(i), long_payload.bit(i));
}

TEST(Population, UniformRandomHasRequestedSizeAndUniqueIds) {
  Xoshiro256ss rng(1);
  const auto pop = TagPopulation::uniform_random(5000, rng);
  EXPECT_EQ(pop.size(), 5000u);
  std::unordered_set<TagId, TagIdHash> ids;
  for (const Tag& tag : pop) ids.insert(tag.id());
  EXPECT_EQ(ids.size(), 5000u);
}

TEST(Population, UniformRandomIsSeedDeterministic) {
  Xoshiro256ss rng1(42), rng2(42);
  const auto a = TagPopulation::uniform_random(100, rng1);
  const auto b = TagPopulation::uniform_random(100, rng2);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i].id(), b[i].id());
}

TEST(Population, EmptyPopulationAllowed) {
  Xoshiro256ss rng(1);
  EXPECT_EQ(TagPopulation::uniform_random(0, rng).size(), 0u);
  EXPECT_TRUE(TagPopulation::sequential(0).empty());
}

TEST(Population, SequentialIdsIncrement) {
  const auto pop = TagPopulation::sequential(10, 5);
  EXPECT_EQ(pop[0].id().to_hex(), "000000000000000000000005");
  EXPECT_EQ(pop[9].id().to_hex(), "00000000000000000000000e");
}

TEST(Population, SequentialCrossesWordBoundary) {
  const auto pop = TagPopulation::sequential(2, 0xFFFFFFFFULL);
  EXPECT_EQ(pop[0].id().to_hex(), "0000000000000000ffffffff");
  EXPECT_EQ(pop[1].id().to_hex(), "000000000000000100000000");
}

TEST(Population, DuplicateIdsRejected) {
  std::vector<Tag> tags;
  tags.emplace_back(TagId::from_hex("000000000000000000000001"));
  tags.emplace_back(TagId::from_hex("000000000000000000000001"));
  EXPECT_THROW(TagPopulation{std::move(tags)}, ContractViolation);
}

TEST(Population, PrefixClusteredSharesCategoryPrefix) {
  Xoshiro256ss rng(3);
  constexpr std::size_t kPrefixBits = 32;
  const auto pop = TagPopulation::prefix_clustered(400, 4, kPrefixBits, rng);
  ASSERT_EQ(pop.size(), 400u);
  // Collect distinct prefixes; must be exactly the category count.
  std::unordered_set<std::uint32_t> prefixes;
  for (const Tag& tag : pop) prefixes.insert(tag.id().words[0]);
  EXPECT_EQ(prefixes.size(), 4u);
}

TEST(Population, PrefixClusteredIdsStillUnique) {
  Xoshiro256ss rng(4);
  const auto pop = TagPopulation::prefix_clustered(1000, 2, 48, rng);
  std::unordered_set<TagId, TagIdHash> ids;
  for (const Tag& tag : pop) ids.insert(tag.id());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(Population, WithRandomPayloadsAttachesCorrectLength) {
  Xoshiro256ss rng(5);
  const auto base = TagPopulation::uniform_random(50, rng);
  const auto with = base.with_random_payloads(16, rng);
  ASSERT_EQ(with.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(with[i].id(), base[i].id());
    EXPECT_EQ(with[i].stored_payload().size(), 16u);
  }
}

TEST(Population, PayloadBitsAreBalanced) {
  Xoshiro256ss rng(6);
  const auto pop =
      TagPopulation::uniform_random(500, rng).with_random_payloads(32, rng);
  std::size_t ones = 0;
  for (const Tag& tag : pop)
    for (std::size_t b = 0; b < 32; ++b) ones += tag.stored_payload().bit(b);
  EXPECT_NEAR(double(ones) / (500.0 * 32.0), 0.5, 0.03);
}

}  // namespace
}  // namespace rfid::tags
