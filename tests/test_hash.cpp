// Unit tests for the shared reader/tag hash H(r, id).
#include <gtest/gtest.h>

#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "tags/population.hpp"

namespace rfid {
namespace {

TagId make_id(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  TagId id;
  id.words = {a, b, c};
  return id;
}

TEST(TagHash, DeterministicAcrossCalls) {
  const TagId id = make_id(1, 2, 3);
  EXPECT_EQ(tag_hash(42, id), tag_hash(42, id));
}

TEST(TagHash, SeedChangesValue) {
  const TagId id = make_id(1, 2, 3);
  EXPECT_NE(tag_hash(42, id), tag_hash(43, id));
}

TEST(TagHash, AllIdWordsMatter) {
  const TagId base = make_id(1, 2, 3);
  EXPECT_NE(tag_hash(1, base), tag_hash(1, make_id(9, 2, 3)));
  EXPECT_NE(tag_hash(1, base), tag_hash(1, make_id(1, 9, 3)));
  EXPECT_NE(tag_hash(1, base), tag_hash(1, make_id(1, 2, 9)));
}

TEST(TagHash, SingleBitFlipAvalanches) {
  // Flipping one ID bit should flip roughly half the output bits.
  const TagId base = make_id(0x12345678, 0x9abcdef0, 0x0f1e2d3c);
  const std::uint64_t h0 = tag_hash(7, base);
  for (const std::size_t pos : {0u, 31u, 32u, 63u, 64u, 95u}) {
    TagId flipped = base;
    flipped.set_bit(pos, !flipped.bit(pos));
    const int flips = __builtin_popcountll(h0 ^ tag_hash(7, flipped));
    EXPECT_GT(flips, 16) << "bit " << pos;
    EXPECT_LT(flips, 48) << "bit " << pos;
  }
}

TEST(TagIndexPow2, ZeroLengthIndexIsZero) {
  EXPECT_EQ(tag_index_pow2(99, make_id(4, 5, 6), 0), 0u);
}

TEST(TagIndexPow2, StaysBelowRange) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(500, rng);
  for (unsigned h = 1; h <= 16; ++h) {
    for (const tags::Tag& tag : pop)
      EXPECT_LT(tag_index_pow2(77, tag.id(), h), 1u << h);
  }
}

TEST(TagIndexPow2, UniformAcrossIndices) {
  // Chi-square at 99%: a systematic bias in index selection would break
  // the singleton-probability analysis of every protocol.
  Xoshiro256ss rng(2);
  const auto pop = tags::TagPopulation::uniform_random(32000, rng);
  constexpr unsigned h = 6;  // 64 buckets, ~500 expected each
  std::vector<std::size_t> counts(1u << h, 0);
  for (const tags::Tag& tag : pop) ++counts[tag_index_pow2(5, tag.id(), h)];
  EXPECT_LT(chi_square_uniform(counts),
            chi_square_critical_99(counts.size() - 1));
}

TEST(TagIndexPow2, SeedsDecorrelate) {
  // The same population must land on fresh indices each round; otherwise
  // collision sets would persist and HPP/TPP would never converge.
  Xoshiro256ss rng(3);
  const auto pop = tags::TagPopulation::uniform_random(2000, rng);
  std::size_t same = 0;
  for (const tags::Tag& tag : pop)
    same += tag_index_pow2(1, tag.id(), 10) == tag_index_pow2(2, tag.id(), 10);
  // Expected collisions by chance: 2000 / 1024 ~ 2.
  EXPECT_LT(same, 12u);
}

TEST(TagIndexMod, RespectsModulus) {
  Xoshiro256ss rng(4);
  const auto pop = tags::TagPopulation::uniform_random(300, rng);
  for (const std::uint64_t modulus : {1ULL, 7ULL, 100ULL, 65536ULL}) {
    for (const tags::Tag& tag : pop)
      EXPECT_LT(tag_index_mod(9, tag.id(), modulus), modulus);
  }
}

TEST(TagIndexMod, ThresholdSelectionHasExpectedRate) {
  // EHPP's circle membership: P(H mod F < f) should be f/F.
  Xoshiro256ss rng(5);
  const auto pop = tags::TagPopulation::uniform_random(20000, rng);
  const std::uint64_t modulus = 1u << 20;
  const std::uint64_t threshold = modulus / 4;
  std::size_t joined = 0;
  for (const tags::Tag& tag : pop)
    joined += tag_index_mod(123, tag.id(), modulus) < threshold;
  EXPECT_NEAR(double(joined) / double(pop.size()), 0.25, 0.02);
}

TEST(TagHashFamily, MembersAreIndependent) {
  Xoshiro256ss rng(6);
  const auto pop = tags::TagPopulation::uniform_random(4000, rng);
  // Two different family members agreeing mod 256 should happen ~1/256.
  std::size_t agree = 0;
  for (const tags::Tag& tag : pop)
    agree += (tag_hash_family(1, 0, tag.id()) % 256) ==
             (tag_hash_family(1, 1, tag.id()) % 256);
  EXPECT_LT(agree, 40u);
  EXPECT_GT(agree, 2u);
}

TEST(TagHashFamily, MemberZeroDiffersFromPlainHash) {
  const TagId id = make_id(10, 20, 30);
  EXPECT_NE(tag_hash_family(42, 0, id), tag_hash(42, id));
}

TEST(Mix64, BijectivityOnSample) {
  // mix64 is a bijection; no two distinct inputs from a sample may collide.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i * 0x9e37));
  EXPECT_EQ(outputs.size(), 10000u);
}

}  // namespace
}  // namespace rfid
