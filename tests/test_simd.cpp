// The SIMD wrapper's determinism contract (common/simd.hpp), gated in the
// main suite (ctest label `static`).
//
// The lane→tag rule says every kernel output depends only on the per-tag
// inputs, never on the backend or its vector width — so the scalar
// reference and the best compiled-in backend must agree bit-for-bit, and
// the clean-round fast path built on the kernels must be invisible in the
// simulation metrics. The population sizes pin the lane-tail edge cases:
// 0, 1, width-1 (pure tail), width (pure vector), width+1 (vector + tail).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fault/recovery.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/round_engine.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid {
namespace {

std::vector<std::size_t> lane_tail_sizes() {
  const std::size_t w = simd::lanes();
  std::vector<std::size_t> sizes{0, 1};
  if (w > 1) {
    sizes.push_back(w - 1);
    sizes.push_back(w);
    sizes.push_back(w + 1);
  }
  sizes.push_back(4 * w + 3);  // several full vectors plus a ragged tail
  sizes.push_back(1000);
  return sizes;
}

TEST(SimdKernels, BestBackendIsCompiledInAndNamed) {
  const simd::Backend best = simd::best_backend();
  EXPECT_GE(simd::lanes(), 1u);
  EXPECT_STRNE(simd::backend_name(best), "");
}

TEST(SimdKernels, HashIndicesMatchScalarAtLaneTails) {
  Xoshiro256ss rng(20260809);
  for (const std::size_t n : lane_tail_sizes()) {
    std::vector<std::uint64_t> id_hi(n);
    std::vector<std::uint64_t> id_lo(n);
    for (std::size_t i = 0; i < n; ++i) {
      id_hi[i] = rng();
      id_lo[i] = rng();
    }
    for (const unsigned h : {0u, 1u, 5u, 12u, 30u}) {
      const std::uint64_t seed = rng();
      std::vector<std::uint32_t> scalar(n, 0xDEADBEEF);
      std::vector<std::uint32_t> vec(n, 0xFEEDFACE);
      simd::hash_indices(seed, id_hi.data(), id_lo.data(), scalar.data(), n,
                         h, simd::Backend::kScalar);
      simd::hash_indices(seed, id_hi.data(), id_lo.data(), vec.data(), n, h,
                         simd::best_backend());
      EXPECT_EQ(scalar, vec) << "n=" << n << " h=" << h;
      for (const std::uint32_t idx : scalar)
        EXPECT_LT(idx, 1ull << h) << "n=" << n << " h=" << h;
    }
  }
}

TEST(SimdKernels, CountSingletonsMatchesScalar) {
  Xoshiro256ss rng(424242);
  for (const std::size_t f :
       {std::size_t{0}, std::size_t{1}, std::size_t{15}, std::size_t{16},
        std::size_t{17}, std::size_t{1024}}) {
    std::vector<std::uint32_t> counts(f);
    for (auto& c : counts) c = static_cast<std::uint32_t>(rng() % 4);
    EXPECT_EQ(simd::count_singletons(counts.data(), f, simd::Backend::kScalar),
              simd::count_singletons(counts.data(), f, simd::best_backend()))
        << "f=" << f;
  }
}

TEST(SimdKernels, CompactNonsingletonsMatchesScalarAndKeepsOrder) {
  Xoshiro256ss rng(777);
  for (const std::size_t n : lane_tail_sizes()) {
    const std::size_t f = 16;
    std::vector<std::uint32_t> slot(n);
    std::vector<std::uint32_t> counts(f, 0);
    std::vector<std::uint64_t> a(n);
    std::vector<std::uint64_t> b(n);
    std::vector<std::uint64_t> c(n);
    for (std::size_t i = 0; i < n; ++i) {
      slot[i] = static_cast<std::uint32_t>(rng() % f);
      ++counts[slot[i]];
      a[i] = i;  // ascending payloads make order violations visible
      b[i] = rng();
      c[i] = rng();
    }
    auto a2 = a;
    auto b2 = b;
    auto c2 = c;
    const std::size_t kept_scalar =
        simd::compact_nonsingletons(counts.data(), slot.data(), a.data(),
                                    b.data(), c.data(), n,
                                    simd::Backend::kScalar);
    const std::size_t kept_vec =
        simd::compact_nonsingletons(counts.data(), slot.data(), a2.data(),
                                    b2.data(), c2.data(), n,
                                    simd::best_backend());
    ASSERT_EQ(kept_scalar, kept_vec) << "n=" << n;
    for (std::size_t i = 0; i < kept_scalar; ++i) {
      EXPECT_EQ(a[i], a2[i]) << "n=" << n << " i=" << i;
      EXPECT_EQ(b[i], b2[i]) << "n=" << n << " i=" << i;
      EXPECT_EQ(c[i], c2[i]) << "n=" << n << " i=" << i;
    }
    for (std::size_t i = 1; i < kept_scalar; ++i)
      EXPECT_LT(a[i - 1], a[i]) << "order not preserved at n=" << n;
  }
}

/// Drains a fresh HPP session and returns its metrics, pinning the kernel
/// backend the engine uses.
sim::Metrics drain_hpp(std::size_t n, std::uint64_t seed,
                       simd::Backend backend, bool keep_records) {
  Xoshiro256ss rng(seed);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.seed = seed ^ 0x9E3779B97F4A7C15ull;
  config.keep_records = keep_records;
  sim::Session session(pop, config);
  tags::TagSoA active = protocols::make_devices(session);
  fault::RecoveryCoordinator recovery(config.recovery);
  protocols::RoundEngine engine(session, recovery);
  engine.set_hash_backend(backend);
  protocols::HppRoundPolicy policy{protocols::HppRoundConfig{}};
  engine.run_rounds(active, policy);
  return session.metrics();
}

void expect_identical(const sim::Metrics& x, const sim::Metrics& y) {
  EXPECT_EQ(x.polls, y.polls);
  EXPECT_EQ(x.rounds, y.rounds);
  EXPECT_EQ(x.vector_bits, y.vector_bits);
  EXPECT_EQ(x.command_bits, y.command_bits);
  EXPECT_EQ(x.tag_bits, y.tag_bits);
  EXPECT_EQ(x.slots_wasted, y.slots_wasted);
  // Bit-exact, not approximately equal: the batched fast path must replay
  // the per-poll floating-point accumulation in the same order.
  EXPECT_EQ(x.time_us, y.time_us);
}

TEST(SimdEngine, BackendIsInvisibleInMetricsAtLaneTails) {
  for (const std::size_t n : lane_tail_sizes()) {
    const auto scalar =
        drain_hpp(n, 31337 + n, simd::Backend::kScalar, false);
    const auto vec = drain_hpp(n, 31337 + n, simd::best_backend(), false);
    expect_identical(scalar, vec);
  }
}

TEST(SimdEngine, CleanFastPathIsInvisibleInMetrics) {
  // keep_records=true forces the per-poll dispatch (records need per-poll
  // output); keep_records=false takes the batched clean-round fast path.
  // Everything the two paths account — polls, bits, wall-clock — must be
  // bit-identical.
  for (const std::size_t n : lane_tail_sizes()) {
    const auto slow = drain_hpp(n, 90210 + n, simd::best_backend(), true);
    const auto fast = drain_hpp(n, 90210 + n, simd::best_backend(), false);
    expect_identical(slow, fast);
  }
}

}  // namespace
}  // namespace rfid
