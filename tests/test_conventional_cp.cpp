// Tests for the conventional baselines: CPP, Prefix-CPP and Coded Polling.
#include <gtest/gtest.h>

#include "protocols/coded_polling.hpp"
#include "protocols/conventional.hpp"
#include "sim/verify.hpp"

namespace rfid::protocols {
namespace {

tags::TagPopulation uniform(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return tags::TagPopulation::uniform_random(n, rng);
}

TEST(Cpp, VectorIsAlwaysNinetySix) {
  const auto result = Cpp().run(uniform(500, 1), sim::SessionConfig{});
  EXPECT_DOUBLE_EQ(result.avg_vector_bits(), 96.0);
  EXPECT_EQ(result.metrics.polls, 500u);
}

TEST(Cpp, TimeMatchesClosedForm) {
  // n * (37.45 * 96 + T1 + 25 l + T2); Table I row at any n.
  sim::SessionConfig config;
  config.info_bits = 1;
  const auto result = Cpp().run(uniform(1000, 2), config);
  EXPECT_NEAR(result.exec_time_s(), 1000 * (37.45 * 96 + 175) * 1e-6, 1e-9);
}

TEST(Cpp, NoRoundsNoWaste) {
  const auto result = Cpp().run(uniform(100, 3), sim::SessionConfig{});
  EXPECT_EQ(result.metrics.rounds, 0u);
  EXPECT_EQ(result.metrics.slots_wasted, 0u);
  EXPECT_EQ(result.metrics.command_bits, 0u);
}

TEST(Cpp, CompleteCollection) {
  Xoshiro256ss rng(4);
  const auto pop = uniform(300, 4).with_random_payloads(32, rng);
  sim::SessionConfig config;
  config.info_bits = 32;
  const auto result = Cpp().run(pop, config);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(PrefixCpp, SuffixVectorOnClusteredIds) {
  // One shared 32-bit category: every poll carries only 64 suffix bits.
  Xoshiro256ss rng(5);
  const auto pop = tags::TagPopulation::prefix_clustered(200, 1, 32, rng);
  const auto result = PrefixCpp().run(pop, sim::SessionConfig{});
  EXPECT_DOUBLE_EQ(result.avg_vector_bits(), 64.0);
  EXPECT_EQ(result.metrics.polls, 200u);
  // Exactly one Select command: 16-bit frame header + mask bits
  // (phy::SelectCommand layout).
  EXPECT_EQ(result.metrics.command_bits, 16u + 32u);
}

TEST(PrefixCpp, MultipleCategoriesMultipleSelects) {
  Xoshiro256ss rng(6);
  const auto pop = tags::TagPopulation::prefix_clustered(400, 8, 32, rng);
  const auto result = PrefixCpp().run(pop, sim::SessionConfig{});
  EXPECT_EQ(result.metrics.command_bits, 8u * 48u);
  EXPECT_EQ(result.metrics.polls, 400u);
}

TEST(PrefixCpp, RandomIdsDegradeTowardCpp) {
  // With random IDs nearly every tag is its own "category": the Select
  // overhead makes PrefixCpp pay more reader bits than CPP overall even
  // though each polling vector is shorter (Section II-B's point that the
  // trick relies on the ID distribution).
  const auto pop = uniform(300, 7);
  const auto prefix = PrefixCpp().run(pop, sim::SessionConfig{});
  const auto plain = Cpp().run(pop, sim::SessionConfig{});
  const auto total_reader_bits = [](const sim::RunResult& r) {
    return r.metrics.vector_bits + r.metrics.command_bits;
  };
  EXPECT_GT(total_reader_bits(prefix), total_reader_bits(plain));
}

TEST(PrefixCpp, BeatsCppOnClusteredInventory) {
  Xoshiro256ss rng(8);
  const auto pop = tags::TagPopulation::prefix_clustered(1000, 4, 32, rng);
  const auto prefix = PrefixCpp().run(pop, sim::SessionConfig{});
  const auto plain = Cpp().run(pop, sim::SessionConfig{});
  EXPECT_LT(prefix.exec_time_s(), plain.exec_time_s());
}

TEST(PrefixCpp, CompleteCollection) {
  Xoshiro256ss rng(9);
  const auto pop = tags::TagPopulation::prefix_clustered(500, 5, 48, rng);
  const auto result = PrefixCpp(PrefixCpp::Config{.prefix_bits = 48})
                          .run(pop, sim::SessionConfig{});
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(CodedPolling, HalvesThePollingVector) {
  // The cited CP property: 48 bits per tag for an even population.
  const auto result = CodedPolling().run(uniform(1000, 10),
                                         sim::SessionConfig{});
  EXPECT_NEAR(result.avg_vector_bits(), 48.0, 0.5);
  EXPECT_EQ(result.metrics.polls, 1000u);
}

TEST(CodedPolling, OddPopulationLastTagConventional) {
  const auto result = CodedPolling().run(uniform(11, 11),
                                         sim::SessionConfig{});
  EXPECT_EQ(result.metrics.polls, 11u);
  // 5 coded pairs (96 bits each) + 1 bare 96-bit poll.
  EXPECT_EQ(result.metrics.vector_bits, 5u * 96u + 96u);
}

TEST(CodedPolling, ValidatorFieldsAreFramingOverhead) {
  const auto result = CodedPolling().run(uniform(100, 12),
                                         sim::SessionConfig{});
  // 50 coded pairs, 32 validator bits each (allowing rare fallbacks).
  EXPECT_LE(result.metrics.command_bits, 50u * 32u);
  EXPECT_GT(result.metrics.command_bits, 40u * 32u);
}

TEST(CodedPolling, FasterThanCppSlowerThanHashFamily) {
  const auto pop = uniform(2000, 13);
  sim::SessionConfig config;
  const auto cp = CodedPolling().run(pop, config);
  const auto cpp = Cpp().run(pop, config);
  EXPECT_LT(cp.exec_time_s(), cpp.exec_time_s());
  EXPECT_GT(cp.exec_time_s(), 0.45 * cpp.exec_time_s());
}

TEST(CodedPolling, CompleteCollection) {
  Xoshiro256ss rng(14);
  const auto pop = uniform(501, 14).with_random_payloads(8, rng);
  sim::SessionConfig config;
  config.info_bits = 8;
  const auto result = CodedPolling().run(pop, config);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(CodedPolling, SingleTagPopulation) {
  const auto result = CodedPolling().run(uniform(1, 15), sim::SessionConfig{});
  EXPECT_EQ(result.metrics.polls, 1u);
  EXPECT_EQ(result.metrics.vector_bits, 96u);
}

class BaselineSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineSweep, AllBaselinesComplete) {
  const std::size_t n = GetParam();
  const auto pop = uniform(n, 100 + n);
  sim::SessionConfig config;
  EXPECT_EQ(Cpp().run(pop, config).metrics.polls, n);
  EXPECT_EQ(CodedPolling().run(pop, config).metrics.polls, n);
  EXPECT_EQ(PrefixCpp().run(pop, config).metrics.polls, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineSweep,
                         ::testing::Values(1, 2, 3, 10, 101, 1024));

}  // namespace
}  // namespace rfid::protocols
