// Golden characterization tests for the polling family.
//
// Each case pins the complete externally observable outcome of one seeded
// run — every Metrics counter, the exact time_us and per-phase doubles
// (hexfloat, so the comparison is bit-exact), the collected-record count and
// the ordered missing/undelivered id lists — for fixed seeds across
// {HPP, EHPP, TPP, ADAPT} x {clean channel, BER + framing + recovery}.
//
// These goldens were generated BEFORE the Downlink/AirLoop/
// RecoveryCoordinator/RoundEngine decomposition and must never be edited to
// make a refactor pass: a mismatch means the refactor changed the seeded
// behaviour, which is the one thing it must not do. To regenerate after an
// *intentional* behaviour change, run with RFID_GOLDEN_REGEN=1 — the test
// then prints each case's actual block in copy-pasteable form instead of
// asserting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "protocols/registry.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid {
namespace {

tags::TagPopulation golden_population() {
  Xoshiro256ss rng(77);
  return tags::TagPopulation::uniform_random(300, rng);
}

sim::SessionConfig clean_config() {
  sim::SessionConfig config;
  config.seed = 9001;
  return config;
}

/// Framed fault scenario: burst reply loss + downlink BER through the CRC
/// framing ladder + recovery, with churn so the undelivered set is
/// non-empty (every 30th tag departs at round 1; one of them returns).
sim::SessionConfig faulted_config(const tags::TagPopulation& population) {
  sim::SessionConfig config;
  config.seed = 9002;
  config.info_bits = 8;
  config.fault.link = fault::LinkModel::kGilbertElliott;
  config.fault.downlink_ber = 3e-4;
  for (std::size_t i = 0; i < population.size(); i += 30) {
    config.fault.churn.push_back(
        {1, population[i].id(), fault::ChurnEvent::Kind::kDepart});
  }
  config.fault.churn.push_back(
      {4, population[0].id(), fault::ChurnEvent::Kind::kArrive});
  config.framing.enabled = true;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 6;
  config.recovery.mop_up_passes = 2;
  return config;
}

/// Unframed BER scenario: raw downlink corruption with recovery but no
/// framing, exercising the kDownlinkCorrupted timeout and TPP's
/// register-desync / poll_unanswered path.
sim::SessionConfig unframed_ber_config() {
  sim::SessionConfig config;
  config.seed = 9003;
  config.fault.downlink_ber = 2e-3;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 20;
  config.recovery.mop_up_passes = 2;
  return config;
}

/// Canonical textual fingerprint of a run. Integers in decimal, doubles in
/// hexfloat (lossless), id lists in declaration order.
std::string describe(const sim::RunResult& result) {
  std::ostringstream os;
  const sim::Metrics& m = result.metrics;
  os << "protocol=" << result.protocol
     << " population=" << result.population << "\n";
  os << "polls=" << m.polls << " missing=" << m.missing
     << " corrupted=" << m.corrupted << " retries=" << m.retries
     << " undelivered=" << m.undelivered << "\n";
  os << "rounds=" << m.rounds << " circles=" << m.circles
     << " slots_total=" << m.slots_total << " slots_useful=" << m.slots_useful
     << " slots_wasted=" << m.slots_wasted << "\n";
  os << "vector_bits=" << m.vector_bits << " command_bits=" << m.command_bits
     << " tag_bits=" << m.tag_bits << "\n";
  os << "segments_sent=" << m.segments_sent
     << " segments_corrupted=" << m.segments_corrupted
     << " segments_retransmitted=" << m.segments_retransmitted
     << " downlink_corrupted=" << m.downlink_corrupted
     << " degradations=" << m.degradations
     << " framing_overhead_bits=" << m.framing_overhead_bits << "\n";
  os << std::hexfloat;
  os << "time_us=" << m.time_us << "\n";
  os << "phases=";
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p)
    os << (p == 0 ? "" : ",") << m.phases.get(static_cast<obs::Phase>(p));
  os << "\n";
  os << "records=" << result.records.size() << "\n";
  os << "missing_ids=";
  for (std::size_t i = 0; i < result.missing_ids.size(); ++i)
    os << (i == 0 ? "" : ",") << result.missing_ids[i].to_hex();
  os << "\n";
  os << "undelivered_ids=";
  for (std::size_t i = 0; i < result.undelivered_ids.size(); ++i)
    os << (i == 0 ? "" : ",") << result.undelivered_ids[i].to_hex();
  os << "\n";
  os << "fault_layer=" << (result.fault_layer ? 1 : 0) << "\n";
  return os.str();
}

enum class Scenario { kClean, kFaulted, kUnframedBer };

struct GoldenCase final {
  const char* name;
  protocols::ProtocolKind kind;
  Scenario scenario;
  const char* expected;
};

sim::SessionConfig config_for(Scenario scenario,
                              const tags::TagPopulation& population) {
  switch (scenario) {
    case Scenario::kClean: return clean_config();
    case Scenario::kFaulted: return faulted_config(population);
    case Scenario::kUnframedBer: return unframed_ber_config();
  }
  return clean_config();
}

void run_case(const GoldenCase& test_case) {
  const tags::TagPopulation population = golden_population();
  const sim::SessionConfig config =
      config_for(test_case.scenario, population);
  const auto protocol = protocols::make_protocol(test_case.kind);
  const std::string actual = describe(protocol->run(population, config));
  if (std::getenv("RFID_GOLDEN_REGEN") != nullptr) {
    std::cout << "=== GOLDEN " << test_case.name << " ===\n"
              << actual << "=== END " << test_case.name << " ===\n";
    GTEST_SKIP() << "regeneration mode: printed actual block, not asserting";
  }
  EXPECT_EQ(actual, test_case.expected) << test_case.name;
}

// --- Pinned goldens (pre-refactor main; DO NOT EDIT to make tests pass) ----

constexpr GoldenCase kHppClean{
    "hpp_clean", protocols::ProtocolKind::kHpp, Scenario::kClean,
    "protocol=HPP population=300\n"
    "polls=300 missing=0 corrupted=0 retries=0 undelivered=0\n"
    "rounds=10 circles=0 slots_total=300 slots_useful=300 slots_wasted=0\n"
    "vector_bits=2448 command_bits=320 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=0 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.88c6cccccccc2p+17\n"
    "phases=0x1.0ad4cccccccbcp+17,0x1.767ffffffffffp+13,0x1.5f9p+15,0x1.d4cp+12,0x0p+0,0x0p+0\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=0\n"};

constexpr GoldenCase kEhppClean{
    "ehpp_clean", protocols::ProtocolKind::kEhpp, Scenario::kClean,
    "protocol=EHPP population=300\n"
    "polls=300 missing=0 corrupted=0 retries=0 undelivered=0\n"
    "rounds=14 circles=1 slots_total=300 slots_useful=300 slots_wasted=0\n"
    "vector_bits=2613 command_bits=0 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=0 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.7d706ccccccdap+17\n"
    "phases=0x1.16e66ccccccc3p+17,0x0p+0,0x1.5f9p+15,0x1.d4cp+12,0x0p+0,0x0p+0\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=0\n"};

constexpr GoldenCase kTppClean{
    "tpp_clean", protocols::ProtocolKind::kTpp, Scenario::kClean,
    "protocol=TPP population=300\n"
    "polls=300 missing=0 corrupted=0 retries=0 undelivered=0\n"
    "rounds=9 circles=0 slots_total=300 slots_useful=300 slots_wasted=0\n"
    "vector_bits=923 command_bits=288 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=0 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.16e3f99999995p+17\n"
    "phases=0x1.3692599999995p+16,0x1.510ccccccccccp+13,0x1.5f9p+15,0x1.d4cp+12,0x0p+0,0x0p+0\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=0\n"};

constexpr GoldenCase kAdaptClean{
    "adapt_clean", protocols::ProtocolKind::kAdaptive, Scenario::kClean,
    "protocol=ADAPT population=300\n"
    "polls=300 missing=0 corrupted=0 retries=0 undelivered=0\n"
    "rounds=9 circles=0 slots_total=300 slots_useful=300 slots_wasted=0\n"
    "vector_bits=923 command_bits=288 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=0 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.16e3f99999995p+17\n"
    "phases=0x1.3692599999995p+16,0x1.510ccccccccccp+13,0x1.5f9p+15,0x1.d4cp+12,0x0p+0,0x0p+0\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=0\n"};

constexpr GoldenCase kHppFaulted{
    "hpp_faulted", protocols::ProtocolKind::kHpp, Scenario::kFaulted,
    "protocol=HPP population=300\n"
    "polls=291 missing=87 corrupted=38 retries=96 undelivered=9\n"
    "rounds=9 circles=0 slots_total=416 slots_useful=291 slots_wasted=125\n"
    "vector_bits=3219 command_bits=8835 tag_bits=2328\n"
    "segments_sent=422 segments_corrupted=3 segments_retransmitted=3 downlink_corrupted=0 degradations=0 framing_overhead_bits=8547\n"
    "time_us=0x1.39bd633333321p+19\n"
    "phases=0x1.05db80000001ap+17,0x1.f4e4cccccccccp+17,0x1.2d2cp+15,0x1.919p+15,0x1.915d999999991p+14,0x1.0a5a8cccccccbp+17\n"
    "records=291\n"
    "missing_ids=\n"
    "undelivered_ids=edfddff7fe5482d2ba2f18ed,fbfc472c0aa857486f546d15,e7a6aabee3c9ec4d5998ccd6,99cfb7ddd11923a1cd34ff5b,28393ab3228360bbcb91e0ea,b239b5a833d473061ee7e29d,fb582809a2650f24b261e72f,06493709716f34eb8824dbe1,4bc0f22be7642745f8753609\n"
    "fault_layer=1\n"};

constexpr GoldenCase kEhppFaulted{
    "ehpp_faulted", protocols::ProtocolKind::kEhpp, Scenario::kFaulted,
    "protocol=EHPP population=300\n"
    "polls=291 missing=84 corrupted=19 retries=75 undelivered=9\n"
    "rounds=17 circles=1 slots_total=394 slots_useful=291 slots_wasted=103\n"
    "vector_bits=3245 command_bits=8260 tag_bits=2328\n"
    "segments_sent=409 segments_corrupted=3 segments_retransmitted=3 downlink_corrupted=0 degradations=0 framing_overhead_bits=8260\n"
    "time_us=0x1.2a9fee6666675p+19\n"
    "phases=0x1.1d56399999988p+17,0x1.ee75p+17,0x1.3ecp+15,0x1.a9p+15,0x1.178a666666662p+14,0x1.83a666666667p+16\n"
    "records=291\n"
    "missing_ids=\n"
    "undelivered_ids=b239b5a833d473061ee7e29d,99cfb7ddd11923a1cd34ff5b,fbfc472c0aa857486f546d15,e7a6aabee3c9ec4d5998ccd6,28393ab3228360bbcb91e0ea,06493709716f34eb8824dbe1,4bc0f22be7642745f8753609,edfddff7fe5482d2ba2f18ed,fb582809a2650f24b261e72f\n"
    "fault_layer=1\n"};

constexpr GoldenCase kTppFaulted{
    "tpp_faulted", protocols::ProtocolKind::kTpp, Scenario::kFaulted,
    "protocol=TPP population=300\n"
    "polls=291 missing=84 corrupted=25 retries=81 undelivered=9\n"
    "rounds=13 circles=0 slots_total=400 slots_useful=291 slots_wasted=109\n"
    "vector_bits=1522 command_bits=3108 tag_bits=2328\n"
    "segments_sent=132 segments_corrupted=1 segments_retransmitted=1 downlink_corrupted=0 degradations=0 framing_overhead_bits=2692\n"
    "time_us=0x1.5c5a5ffffffdfp+18\n"
    "phases=0x1.35b1a66666682p+16,0x1.afd8666666668p+15,0x1.3d94p+15,0x1.a77p+15,0x1.1f59999999994p+14,0x1.a973400000007p+16\n"
    "records=291\n"
    "missing_ids=\n"
    "undelivered_ids=06493709716f34eb8824dbe1,fbfc472c0aa857486f546d15,28393ab3228360bbcb91e0ea,4bc0f22be7642745f8753609,99cfb7ddd11923a1cd34ff5b,e7a6aabee3c9ec4d5998ccd6,edfddff7fe5482d2ba2f18ed,fb582809a2650f24b261e72f,b239b5a833d473061ee7e29d\n"
    "fault_layer=1\n"};

constexpr GoldenCase kAdaptFaulted{
    "adapt_faulted", protocols::ProtocolKind::kAdaptive, Scenario::kFaulted,
    "protocol=ADAPT population=300\n"
    "polls=291 missing=84 corrupted=25 retries=81 undelivered=9\n"
    "rounds=13 circles=0 slots_total=400 slots_useful=291 slots_wasted=109\n"
    "vector_bits=1522 command_bits=3108 tag_bits=2328\n"
    "segments_sent=132 segments_corrupted=1 segments_retransmitted=1 downlink_corrupted=0 degradations=0 framing_overhead_bits=2692\n"
    "time_us=0x1.5c5a5ffffffdfp+18\n"
    "phases=0x1.35b1a66666682p+16,0x1.afd8666666668p+15,0x1.3d94p+15,0x1.a77p+15,0x1.1f59999999994p+14,0x1.a973400000007p+16\n"
    "records=291\n"
    "missing_ids=\n"
    "undelivered_ids=06493709716f34eb8824dbe1,fbfc472c0aa857486f546d15,28393ab3228360bbcb91e0ea,4bc0f22be7642745f8753609,99cfb7ddd11923a1cd34ff5b,e7a6aabee3c9ec4d5998ccd6,edfddff7fe5482d2ba2f18ed,fb582809a2650f24b261e72f,b239b5a833d473061ee7e29d\n"
    "fault_layer=1\n"};

constexpr GoldenCase kHppUnframedBer{
    "hpp_unframed_ber", protocols::ProtocolKind::kHpp, Scenario::kUnframedBer,
    "protocol=HPP population=300\n"
    "polls=300 missing=0 corrupted=0 retries=3 undelivered=0\n"
    "rounds=9 circles=0 slots_total=303 slots_useful=300 slots_wasted=3\n"
    "vector_bits=2472 command_bits=288 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=3 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.89f2b33333328p+17\n"
    "phases=0x1.07e7cccccccbdp+17,0x1.510ccccccccccp+13,0x1.5c0cp+15,0x1.d01p+12,0x1.d446666666667p+10,0x1.e706666666667p+10\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=1\n"};

constexpr GoldenCase kEhppUnframedBer{
    "ehpp_unframed_ber", protocols::ProtocolKind::kEhpp,
    Scenario::kUnframedBer, "protocol=EHPP population=300\n"
    "polls=300 missing=0 corrupted=0 retries=2 undelivered=0\n"
    "rounds=15 circles=1 slots_total=302 slots_useful=300 slots_wasted=2\n"
    "vector_bits=2664 command_bits=0 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=2 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.825733333333dp+17\n"
    "phases=0x1.17d9d9999998dp+17,0x0p+0,0x1.5d38p+15,0x1.d1ap+12,0x1.2256666666667p+10,0x1.2ed6666666667p+10\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=1\n"};

constexpr GoldenCase kTppUnframedBer{
    "tpp_unframed_ber", protocols::ProtocolKind::kTpp, Scenario::kUnframedBer,
    "protocol=TPP population=300\n"
    "polls=300 missing=0 corrupted=0 retries=0 undelivered=0\n"
    "rounds=10 circles=0 slots_total=300 slots_useful=300 slots_wasted=0\n"
    "vector_bits=876 command_bits=320 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=0 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.15cb199999995p+17\n"
    "phases=0x1.2fb233333332ep+16,0x1.767ffffffffffp+13,0x1.5f9p+15,0x1.d4cp+12,0x0p+0,0x0p+0\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=1\n"};

constexpr GoldenCase kAdaptUnframedBer{
    "adapt_unframed_ber", protocols::ProtocolKind::kAdaptive,
    Scenario::kUnframedBer, "protocol=ADAPT population=300\n"
    "polls=300 missing=0 corrupted=0 retries=0 undelivered=0\n"
    "rounds=10 circles=0 slots_total=300 slots_useful=300 slots_wasted=0\n"
    "vector_bits=876 command_bits=320 tag_bits=300\n"
    "segments_sent=0 segments_corrupted=0 segments_retransmitted=0 downlink_corrupted=0 degradations=0 framing_overhead_bits=0\n"
    "time_us=0x1.15cb199999995p+17\n"
    "phases=0x1.2fb233333332ep+16,0x1.767ffffffffffp+13,0x1.5f9p+15,0x1.d4cp+12,0x0p+0,0x0p+0\n"
    "records=300\n"
    "missing_ids=\n"
    "undelivered_ids=\n"
    "fault_layer=1\n"};

TEST(GoldenRuns, HppClean) { run_case(kHppClean); }
TEST(GoldenRuns, EhppClean) { run_case(kEhppClean); }
TEST(GoldenRuns, TppClean) { run_case(kTppClean); }
TEST(GoldenRuns, AdaptClean) { run_case(kAdaptClean); }
TEST(GoldenRuns, HppFaulted) { run_case(kHppFaulted); }
TEST(GoldenRuns, EhppFaulted) { run_case(kEhppFaulted); }
TEST(GoldenRuns, TppFaulted) { run_case(kTppFaulted); }
TEST(GoldenRuns, AdaptFaulted) { run_case(kAdaptFaulted); }
TEST(GoldenRuns, HppUnframedBer) { run_case(kHppUnframedBer); }
TEST(GoldenRuns, EhppUnframedBer) { run_case(kEhppUnframedBer); }
TEST(GoldenRuns, TppUnframedBer) { run_case(kTppUnframedBer); }
TEST(GoldenRuns, AdaptUnframedBer) { run_case(kAdaptUnframedBer); }

}  // namespace
}  // namespace rfid
