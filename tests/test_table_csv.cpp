// Unit tests for the table and CSV emitters used by the bench harnesses.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace rfid {
namespace {

TEST(TablePrinter, RendersHeadersAndRows) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TablePrinter, TitleAppearsFirst) {
  TablePrinter table({"x"});
  table.set_title("My Title");
  std::ostringstream oss;
  table.print(oss);
  EXPECT_EQ(oss.str().rfind("My Title", 0), 0u);
}

TEST(TablePrinter, ColumnsAlignToWidestCell) {
  TablePrinter table({"a", "b"});
  table.add_row({"looooooong", "1"});
  std::ostringstream oss;
  table.print(oss);
  // Every rendered line between rules must have the same length.
  std::istringstream iss(oss.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(iss, line)) {
    if (line.empty()) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinter, RowArityEnforced) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(TablePrinter, EmptyHeadersRejected) {
  EXPECT_THROW(TablePrinter({}), ContractViolation);
}

TEST(TablePrinter, NumFormatsFixedDigits) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::num(1.005e3, 1), "1005.0");
}

TEST(CsvWriter, WritesRowsAndEscapes) {
  const std::string path = testing::TempDir() + "rfid_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c", "d\"e"});
    csv.write_row({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1,2,3");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace rfid
