// Tests for the closed-form models (paper Eqs. (1)-(16), Theorems 1-2).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ehpp_model.hpp"
#include "analysis/hpp_model.hpp"
#include "analysis/tpp_model.hpp"
#include "common/math_util.hpp"

namespace rfid::analysis {
namespace {

TEST(HppModel, SingletonProbabilityEquationOne) {
  // p = (n/f) e^{-(n-1)/f}; at n = f the value is ~ 1/e for large n.
  EXPECT_NEAR(hpp_singleton_probability(1024, 1024), std::exp(-1023.0 / 1024),
              1e-12);
  EXPECT_DOUBLE_EQ(hpp_singleton_probability(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(hpp_singleton_probability(8, 0), 0.0);
}

TEST(HppModel, PoissonApproximationTracksExactBinomial) {
  // The paper's e^{-(n-1)/f} approximation vs the exact binomial: the
  // relative error is ~(n-1)/(2 f^2) ~ 1/(2f), i.e. under 0.5% for the
  // frame sizes the protocols actually use and shrinking with n.
  for (const std::size_t n : {128u, 1000u, 4096u, 100000u}) {
    const double f = double(pow2(ceil_log2(n)));
    const double approx = hpp_singleton_probability(double(n), f);
    const double exact = hpp_singleton_probability_exact(n, f);
    EXPECT_LT(relative_difference(approx, exact), 1.0 / f) << n;
  }
  EXPECT_DOUBLE_EQ(hpp_singleton_probability_exact(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(hpp_singleton_probability_exact(1, 1), 1.0);
}

TEST(HppModel, SingletonProbabilityInPaperBand) {
  // Section III-B: 36.8%..60.7% of unread tags are read per round. The
  // per-tag read probability is e^{-(n-1)/f} with 2^{h-1} < n <= 2^h.
  for (std::uint64_t n = 2; n <= 4096; n *= 2) {
    const double f = double(pow2(ceil_log2(n)));
    const double read_fraction = std::exp(-(double(n) - 1) / f);
    EXPECT_GE(read_fraction, 0.367) << n;
    EXPECT_LE(read_fraction, 0.607 + 1e-9) << n;
  }
}

TEST(HppModel, PredictionMatchesPaperFigure3) {
  // Fig. 3: w ~= 10 at n = 1000 and ~15..16 at n = 100,000.
  EXPECT_NEAR(hpp_predict(1000).avg_vector_bits, 10.0, 0.7);
  EXPECT_NEAR(hpp_predict(100000).avg_vector_bits, 15.5, 1.0);
}

TEST(HppModel, PredictionMonotoneInN) {
  double prev = 0.0;
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    const double w = hpp_predict(n).avg_vector_bits;
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(HppModel, UpperBoundEquationFive) {
  for (const std::size_t n : {2u, 10u, 1000u, 100000u}) {
    EXPECT_LE(hpp_predict(n).avg_vector_bits,
              double(hpp_vector_upper_bound(n)));
  }
}

TEST(HppModel, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(hpp_predict(0).avg_vector_bits, 0.0);
  EXPECT_DOUBLE_EQ(hpp_predict(1).avg_vector_bits, 0.0);  // h = 0
  EXPECT_GT(hpp_predict(2).avg_vector_bits, 0.0);
}

TEST(EhppModel, TheoremOneBoundsHoldUnderItsOwnModel) {
  // Theorem 1 is proved for the approximation h(n')/n' = mu log2(n') with
  // mu in [1/e, 1]; under that cost model the optimum l_c ln2 / mu lies in
  // [l_c ln2, e l_c ln2] for every admissible mu.
  for (const double lc : {50.0, 100.0, 128.0, 200.0, 400.0}) {
    for (const double mu : {1.0 / kE, 0.5, 0.75, 1.0}) {
      const double star = lc * kLn2 / mu;
      EXPECT_GE(star, ehpp_subset_lower_bound(lc) - 1e-9);
      EXPECT_LE(star, ehpp_subset_upper_bound(lc) + 1e-9);
    }
  }
}

TEST(EhppModel, ExactOptimumNearTheoremInterval) {
  // The exact Eq.-(4) recursion is cheaper per tag than the mu log2
  // approximation (the first round reads >1/e of tags below log2 n' bits),
  // so its optimum sits somewhat below l_c ln2; it must still be of the
  // same magnitude and under the Theorem-1 upper bound.
  for (const double lc : {50.0, 100.0, 128.0, 200.0, 400.0}) {
    const std::size_t star = ehpp_optimal_subset_size(lc, 0.0);
    EXPECT_GE(double(star), ehpp_subset_lower_bound(lc) * 0.5) << lc;
    EXPECT_LE(double(star), ehpp_subset_upper_bound(lc) * 1.1) << lc;
  }
}

TEST(EhppModel, BoundsFormulas) {
  EXPECT_NEAR(ehpp_subset_lower_bound(100), 69.3, 0.1);
  EXPECT_NEAR(ehpp_subset_upper_bound(100), 188.4, 0.3);
}

TEST(EhppModel, BiggerCommandBiggerSubset) {
  // Fig. 4: n* grows with l_c.
  EXPECT_LT(ehpp_optimal_subset_size(100.0), ehpp_optimal_subset_size(400.0));
}

TEST(EhppModel, OptimalCostBeatsNeighbours) {
  const double lc = 128.0;
  const std::size_t star = ehpp_optimal_subset_size(lc);
  const double at_star = ehpp_circle_cost(star, lc);
  EXPECT_LE(at_star, ehpp_circle_cost(star / 2, lc));
  EXPECT_LE(at_star, ehpp_circle_cost(star * 2, lc));
}

TEST(EhppModel, PredictedWStableInN) {
  // Fig. 5: for fixed l_c the predicted w is flat in n.
  const double w1 = ehpp_predict_w(10000, 200.0);
  const double w2 = ehpp_predict_w(100000, 200.0);
  EXPECT_NEAR(w1, w2, 0.25);
}

TEST(EhppModel, PaperFigureFiveValue) {
  // Fig. 5: ~7.94 bits at n = 1e5 with l_c = 200 (no init overhead).
  EXPECT_NEAR(ehpp_predict_w(100000, 200.0), 7.94, 0.6);
}

TEST(EhppModel, SmallPopulationFallsBackToHpp) {
  const double w = ehpp_predict_w(50, 128.0);
  EXPECT_NEAR(w, hpp_predict(50).avg_vector_bits, 1e-9);
}

TEST(TppModel, MuPeaksAtLambdaOne) {
  // Fig. 8: mu = lambda e^{-lambda} peaks at 1/e when lambda = 1.
  EXPECT_NEAR(tpp_mu(1.0), 1.0 / kE, 1e-12);
  EXPECT_GT(tpp_mu(1.0), tpp_mu(0.5));
  EXPECT_GT(tpp_mu(1.0), tpp_mu(2.0));
  EXPECT_DOUBLE_EQ(tpp_mu(0.0), 0.0);
}

TEST(TppModel, BalancedLoadEquationThirteen) {
  // lambda1 = ln2 satisfies mu(lambda1) = mu(2 lambda1).
  EXPECT_NEAR(tpp_mu(kLn2), tpp_mu(2 * kLn2), 1e-12);
}

TEST(TppModel, OptimalIndexLengthEquationFifteen) {
  for (const std::size_t n : {2u, 3u, 10u, 100u, 1024u, 99999u}) {
    const unsigned h = tpp_optimal_index_length(n);
    const double lambda = double(n) / double(pow2(h));
    EXPECT_GE(lambda, kLn2 - 1e-12) << n;
    EXPECT_LT(lambda, 2 * kLn2 + 1e-12) << n;
  }
  EXPECT_EQ(tpp_optimal_index_length(0), 0u);
  EXPECT_EQ(tpp_optimal_index_length(1), 0u);
}

TEST(TppModel, UniversalBoundEquationSixteen) {
  // Eq. (16): 3.44 bits.
  EXPECT_NEAR(tpp_universal_upper_bound(), 3.44, 0.01);
}

TEST(TppModel, RoundBoundBelowUniversalBound) {
  for (const std::size_t n : {10u, 100u, 5000u, 100000u}) {
    EXPECT_LE(tpp_round_w_upper(n), tpp_universal_upper_bound() + 0.05) << n;
  }
}

TEST(TppModel, PredictionMatchesPaperFigure9) {
  // Fig. 9: w stable around 3.38 for n in [1e3, 1e5].
  for (const std::size_t n : {1000u, 10000u, 100000u}) {
    EXPECT_NEAR(tpp_predict_w(n), 3.38, 0.15) << n;
  }
}

TEST(TppModel, TwentyEightFoldReductionOverCpp) {
  // Abstract: "28 times less than 96-bit tag IDs".
  EXPECT_GT(96.0 / tpp_universal_upper_bound(), 27.5);
}

}  // namespace
}  // namespace rfid::analysis
