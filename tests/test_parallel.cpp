// Tests for the thread pool and the Monte-Carlo trial runner.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"
#include "protocols/tree_polling.hpp"

namespace rfid::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      ++counter;
      pool.submit([&counter] { ++counter; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(TrialRunner, SerialProducesRequestedTrials) {
  protocols::Tpp tpp;
  TrialPlan plan;
  plan.trials = 8;
  const auto series = run_trials(tpp, uniform_population(200), plan);
  EXPECT_EQ(series.outcomes.size(), 8u);
  for (const TrialOutcome& outcome : series.outcomes) {
    EXPECT_EQ(outcome.polls, 200.0);
    EXPECT_GT(outcome.exec_time_s, 0.0);
  }
}

TEST(TrialRunner, ParallelMatchesSerialExactly) {
  // The determinism contract: per-trial outcomes are bit-identical whether
  // trials run on the caller's thread or across a pool.
  protocols::Tpp tpp;
  TrialPlan plan;
  plan.trials = 12;
  plan.master_seed = 99;
  const auto serial = run_trials(tpp, uniform_population(300), plan);
  ThreadPool pool(4);
  const auto parallel = run_trials(tpp, uniform_population(300), plan, &pool);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t t = 0; t < serial.outcomes.size(); ++t) {
    EXPECT_DOUBLE_EQ(serial.outcomes[t].exec_time_s,
                     parallel.outcomes[t].exec_time_s);
    EXPECT_DOUBLE_EQ(serial.outcomes[t].avg_vector_bits,
                     parallel.outcomes[t].avg_vector_bits);
  }
}

TEST(TrialRunner, DifferentMasterSeedsDifferentSeries) {
  protocols::Tpp tpp;
  TrialPlan a, b;
  a.trials = b.trials = 3;
  a.master_seed = 1;
  b.master_seed = 2;
  const auto sa = run_trials(tpp, uniform_population(300), a);
  const auto sb = run_trials(tpp, uniform_population(300), b);
  EXPECT_NE(sa.outcomes[0].exec_time_s, sb.outcomes[0].exec_time_s);
}

TEST(TrialRunner, StatsAggregateOutcomes) {
  protocols::Tpp tpp;
  TrialPlan plan;
  plan.trials = 6;
  const auto series = run_trials(tpp, uniform_population(500), plan);
  const auto w = series.vector_bits();
  EXPECT_EQ(w.count(), 6u);
  EXPECT_GT(w.mean(), 2.0);
  EXPECT_LT(w.mean(), 4.0);
  EXPECT_GE(w.max(), w.mean());
  EXPECT_LE(w.min(), w.mean());
}

TEST(TrialRunner, ExceptionsPropagateFromPool) {
  struct Exploding final : protocols::PollingProtocol {
    [[nodiscard]] std::string_view name() const noexcept override {
      return "boom";
    }
    [[nodiscard]] sim::RunResult run(const tags::TagPopulation&,
                                     const sim::SessionConfig&) const override {
      throw std::runtime_error("boom");
    }
  };
  Exploding proto;
  TrialPlan plan;
  plan.trials = 4;
  ThreadPool pool(2);
  EXPECT_THROW((void)run_trials(proto, uniform_population(10), plan, &pool),
               std::runtime_error);
  EXPECT_THROW((void)run_trials(proto, uniform_population(10), plan),
               std::runtime_error);
}

}  // namespace
}  // namespace rfid::parallel
