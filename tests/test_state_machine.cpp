// Tests for the C1G2 tag inventory state machine.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "tags/state_machine.hpp"

namespace rfid::tags {
namespace {

TEST(StateMachine, PowersUpReady) {
  TagStateMachine tag;
  EXPECT_EQ(tag.state(), TagState::kReady);
  EXPECT_EQ(tag.inventoried(), SessionFlag::kA);
  EXPECT_EQ(tag.illegal_commands(), 0u);
}

TEST(StateMachine, HappyPathInventory) {
  TagStateMachine tag;
  EXPECT_TRUE(tag.on_query(SessionFlag::kA, 2));
  EXPECT_EQ(tag.state(), TagState::kArbitrate);
  EXPECT_TRUE(tag.on_query_rep());
  EXPECT_EQ(tag.state(), TagState::kArbitrate);
  EXPECT_TRUE(tag.on_query_rep());
  EXPECT_EQ(tag.state(), TagState::kReply);
  EXPECT_TRUE(tag.on_ack());
  EXPECT_EQ(tag.state(), TagState::kAcknowledged);
  EXPECT_TRUE(tag.on_inventory_complete());
  EXPECT_EQ(tag.state(), TagState::kReady);
  EXPECT_EQ(tag.inventoried(), SessionFlag::kB);  // flag flipped
  EXPECT_EQ(tag.illegal_commands(), 0u);
}

TEST(StateMachine, SlotZeroRepliesImmediately) {
  TagStateMachine tag;
  EXPECT_TRUE(tag.on_query(SessionFlag::kA, 0));
  EXPECT_EQ(tag.state(), TagState::kReply);
}

TEST(StateMachine, WrongSessionTargetSitsOut) {
  TagStateMachine tag;
  EXPECT_TRUE(tag.on_query(SessionFlag::kB, 0));  // legal no-op
  EXPECT_EQ(tag.state(), TagState::kReady);
  EXPECT_EQ(tag.illegal_commands(), 0u);
}

TEST(StateMachine, FlippedFlagJoinsOppositeTarget) {
  TagStateMachine tag;
  (void)tag.on_query(SessionFlag::kA, 0);
  (void)tag.on_ack();
  (void)tag.on_inventory_complete();
  // Now flag is B: A-target queries are ignored, B-target joins.
  EXPECT_TRUE(tag.on_query(SessionFlag::kA, 0));
  EXPECT_EQ(tag.state(), TagState::kReady);
  EXPECT_TRUE(tag.on_query(SessionFlag::kB, 0));
  EXPECT_EQ(tag.state(), TagState::kReply);
}

TEST(StateMachine, IllegalCommandsCountedAndIgnored) {
  TagStateMachine tag;
  EXPECT_FALSE(tag.on_ack());        // Ready cannot be ACKed
  EXPECT_FALSE(tag.on_query_rep());  // not in a round
  EXPECT_FALSE(tag.on_req_rn());
  EXPECT_EQ(tag.state(), TagState::kReady);
  EXPECT_EQ(tag.illegal_commands(), 3u);
}

TEST(StateMachine, NakFallsBackToArbitrate) {
  TagStateMachine tag;
  (void)tag.on_query(SessionFlag::kA, 0);
  (void)tag.on_ack();
  EXPECT_TRUE(tag.on_nak());
  EXPECT_EQ(tag.state(), TagState::kArbitrate);
  EXPECT_EQ(tag.slot_counter(), 0xFFFF);
}

TEST(StateMachine, AccessChain) {
  TagStateMachine tag;
  (void)tag.on_query(SessionFlag::kA, 0);
  (void)tag.on_ack();
  EXPECT_TRUE(tag.on_req_rn());
  EXPECT_EQ(tag.state(), TagState::kOpen);
  EXPECT_TRUE(tag.on_access_granted());
  EXPECT_EQ(tag.state(), TagState::kSecured);
  EXPECT_TRUE(tag.on_inventory_complete());
  EXPECT_EQ(tag.state(), TagState::kReady);
}

TEST(StateMachine, KillIsAbsorbing) {
  TagStateMachine tag;
  (void)tag.on_query(SessionFlag::kA, 0);
  (void)tag.on_ack();
  (void)tag.on_req_rn();
  EXPECT_TRUE(tag.on_kill());
  EXPECT_EQ(tag.state(), TagState::kKilled);
  EXPECT_FALSE(tag.power_cycle());
  EXPECT_FALSE(tag.on_query(SessionFlag::kA, 0));
  EXPECT_FALSE(tag.on_ack());
  EXPECT_EQ(tag.state(), TagState::kKilled);
}

TEST(StateMachine, KillRequiresOpenOrSecured) {
  TagStateMachine tag;
  EXPECT_FALSE(tag.on_kill());
  (void)tag.on_query(SessionFlag::kA, 0);
  EXPECT_FALSE(tag.on_kill());  // Reply state: illegal
  EXPECT_EQ(tag.state(), TagState::kReply);
}

TEST(StateMachine, PowerCycleResetsButKeepsFlag) {
  TagStateMachine tag;
  (void)tag.on_query(SessionFlag::kA, 0);
  (void)tag.on_ack();
  (void)tag.on_inventory_complete();
  ASSERT_EQ(tag.inventoried(), SessionFlag::kB);
  (void)tag.on_query(SessionFlag::kB, 5);
  EXPECT_TRUE(tag.power_cycle());
  EXPECT_EQ(tag.state(), TagState::kReady);
  EXPECT_EQ(tag.inventoried(), SessionFlag::kB);  // NVM-backed flag persists
}

TEST(StateMachine, FullFrameSimulationInventoriesEveryone) {
  // Drive a population of machines through a classic slotted round and
  // check that ACK'ed singletons account for every tag over a few rounds.
  Xoshiro256ss rng(1);
  constexpr std::size_t kTags = 200;
  std::vector<TagStateMachine> tags(kTags);
  std::size_t inventoried = 0;
  for (int round = 0; round < 64 && inventoried < kTags; ++round) {
    const std::size_t frame = kTags - inventoried;
    std::vector<std::uint16_t> slots(kTags);
    for (std::size_t i = 0; i < kTags; ++i) {
      slots[i] = static_cast<std::uint16_t>(rng.below(frame));
      (void)tags[i].on_query(SessionFlag::kA, slots[i]);
    }
    for (std::size_t s = 0; s < frame; ++s) {
      // Who is in Reply right now?
      std::vector<std::size_t> replying;
      for (std::size_t i = 0; i < kTags; ++i)
        if (tags[i].state() == TagState::kReply) replying.push_back(i);
      if (replying.size() == 1) {
        (void)tags[replying.front()].on_ack();
        (void)tags[replying.front()].on_inventory_complete();
        ++inventoried;
      } else {
        for (const std::size_t i : replying) (void)tags[i].on_nak();
      }
      for (std::size_t i = 0; i < kTags; ++i)
        if (tags[i].state() == TagState::kArbitrate &&
            tags[i].slot_counter() != 0xFFFF)
          (void)tags[i].on_query_rep();
    }
    // Round over: survivors power-cycle back to Ready for the next Query.
    for (auto& tag : tags)
      if (tag.state() != TagState::kReady) (void)tag.power_cycle();
  }
  EXPECT_EQ(inventoried, kTags);
}

}  // namespace
}  // namespace rfid::tags
