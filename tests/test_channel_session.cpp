// Unit tests for the air channel and the session accounting primitives.
#include <gtest/gtest.h>

#include <array>

#include "air/channel.hpp"
#include "common/error.hpp"
#include "sim/session.hpp"
#include "sim/verify.hpp"

namespace rfid {
namespace {

using sim::Session;
using sim::SessionConfig;
using tags::Tag;
using tags::TagPopulation;

TagPopulation two_tags() {
  std::vector<Tag> tags;
  tags.emplace_back(TagId::from_hex("000000000000000000000001"));
  tags.emplace_back(TagId::from_hex("000000000000000000000002"));
  return TagPopulation(std::move(tags));
}

TEST(Channel, ClassifiesOutcomes) {
  air::Channel channel;
  const auto pop = two_tags();
  const Tag* one = &pop[0];
  const std::array<const Tag*, 2> both{&pop[0], &pop[1]};

  EXPECT_EQ(channel.arbitrate({}).outcome, air::SlotOutcome::kEmpty);
  const auto single = channel.arbitrate({&one, 1});
  EXPECT_EQ(single.outcome, air::SlotOutcome::kSingleton);
  EXPECT_EQ(single.responder, one);
  EXPECT_EQ(channel.arbitrate(both).outcome, air::SlotOutcome::kCollision);

  EXPECT_EQ(channel.stats().empty_slots, 1u);
  EXPECT_EQ(channel.stats().singleton_slots, 1u);
  EXPECT_EQ(channel.stats().collision_slots, 1u);
  EXPECT_EQ(channel.stats().total(), 3u);
}

TEST(Session, PollAccountsBitsAndTime) {
  const auto pop = two_tags();
  SessionConfig config;
  config.info_bits = 1;
  Session session(pop, config);
  const Tag* responder = &pop[0];
  const Tag* polled = session.air().poll({&responder, 1}, &pop[0], 10);
  ASSERT_NE(polled, nullptr);
  EXPECT_EQ(polled, &pop[0]);
  EXPECT_EQ(session.metrics().polls, 1u);
  EXPECT_EQ(session.metrics().vector_bits, 10u);
  EXPECT_EQ(session.metrics().tag_bits, 1u);
  EXPECT_NEAR(session.metrics().time_us, 37.45 * 14 + 175, 1e-9);
}

TEST(Session, PollBareSkipsQueryRep) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  const Tag* responder = &pop[0];
  (void)session.air().poll_bare({&responder, 1}, &pop[0], 96);
  EXPECT_NEAR(session.metrics().time_us, 37.45 * 96 + 175, 1e-9);
}

TEST(Session, PollEmptyWithoutAbsenceThrows) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  EXPECT_THROW((void)session.air().poll({}, &pop[0], 4), ProtocolError);
}

TEST(Session, PollCollisionThrows) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  const std::array<const Tag*, 2> both{&pop[0], &pop[1]};
  EXPECT_THROW((void)session.air().poll(both, &pop[0], 4), ProtocolError);
}

TEST(Session, WrongResponderThrows) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  const Tag* responder = &pop[1];
  EXPECT_THROW((void)session.air().poll({&responder, 1}, &pop[0], 4),
               ProtocolError);
}

TEST(Session, AbsentExpectedTagBecomesMissing) {
  const auto pop = two_tags();
  std::unordered_set<TagId, TagIdHash> present{pop[1].id()};
  SessionConfig config;
  config.present = &present;
  Session session(pop, config);
  const Tag* polled = session.air().poll({}, &pop[0], 4);
  EXPECT_EQ(polled, nullptr);
  EXPECT_EQ(session.metrics().missing, 1u);
  EXPECT_EQ(session.metrics().polls, 0u);
  const auto result = session.finish("x");
  ASSERT_EQ(result.missing_ids.size(), 1u);
  EXPECT_EQ(result.missing_ids[0], pop[0].id());
}

TEST(Session, PresentFilterNullMeansAllPresent) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  EXPECT_TRUE(session.is_present(pop[0].id()));
  EXPECT_TRUE(session.is_present(pop[1].id()));
}

TEST(Session, CommandBitsSeparateFromVectorBits) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  session.downlink().broadcast_command_bits(32);
  session.downlink().broadcast_vector_bits(128);
  EXPECT_EQ(session.metrics().command_bits, 32u);
  EXPECT_EQ(session.metrics().vector_bits, 128u);
  EXPECT_NEAR(session.metrics().time_us, 160 * 37.45, 1e-9);
}

TEST(Session, ExpectEmptySlotThrowsOnResponder) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  const Tag* responder = &pop[0];
  EXPECT_THROW(session.air().expect_empty_slot({&responder, 1}), ProtocolError);
}

TEST(Session, ExpectEmptySlotAccountsWaste) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  session.air().expect_empty_slot({});
  EXPECT_EQ(session.metrics().slots_wasted, 1u);
  EXPECT_NEAR(session.metrics().time_us, 4 * 37.45 + 150, 1e-9);
}

TEST(Session, FrameSlotAlohaHandlesAllOutcomes) {
  const auto pop = two_tags();
  SessionConfig config;
  config.info_bits = 4;
  Session session(pop, config);
  const Tag* one = &pop[0];
  const std::array<const Tag*, 2> both{&pop[0], &pop[1]};

  EXPECT_EQ(session.air().frame_slot_aloha({}).outcome, air::SlotOutcome::kEmpty);
  EXPECT_EQ(session.air().frame_slot_aloha({&one, 1}).outcome,
            air::SlotOutcome::kSingleton);
  EXPECT_EQ(session.air().frame_slot_aloha(both).outcome,
            air::SlotOutcome::kCollision);
  EXPECT_EQ(session.metrics().slots_total, 3u);
  EXPECT_EQ(session.metrics().slots_wasted, 2u);
  EXPECT_EQ(session.metrics().slots_useful, 1u);
  EXPECT_EQ(session.metrics().polls, 1u);
}

TEST(Session, RoundBudgetEnforced) {
  const auto pop = two_tags();
  SessionConfig config;
  config.max_rounds = 3;
  Session session(pop, config);
  for (int i = 0; i < 3; ++i) session.begin_round();
  EXPECT_NO_THROW(session.check_round_budget());
  session.begin_round();
  EXPECT_THROW(session.check_round_budget(), ProtocolError);
}

TEST(Session, FinishCarriesRecords) {
  const auto pop = two_tags();
  SessionConfig config;
  config.info_bits = 8;
  Session session(pop, config);
  for (const Tag& tag : pop) {
    const Tag* responder = &tag;
    (void)session.air().poll({&responder, 1}, &tag, 2);
  }
  const auto result = session.finish("demo");
  EXPECT_EQ(result.protocol, "demo");
  EXPECT_EQ(result.population, 2u);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].payload.size(), 8u);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Session, KeepRecordsFalseSkipsStorage) {
  const auto pop = two_tags();
  SessionConfig config;
  config.keep_records = false;
  Session session(pop, config);
  const Tag* responder = &pop[0];
  (void)session.air().poll({&responder, 1}, &pop[0], 2);
  EXPECT_TRUE(session.finish("x").records.empty());
}

TEST(Verify, DetectsMissingRecord) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  const Tag* responder = &pop[0];
  (void)session.air().poll({&responder, 1}, &pop[0], 2);
  const auto result = session.finish("x");
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_FALSE(verify.ok);
}

TEST(Verify, DetectsDuplicateInterrogation) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  const Tag* responder = &pop[0];
  (void)session.air().poll({&responder, 1}, &pop[0], 2);
  (void)session.air().poll({&responder, 1}, &pop[0], 2);
  const auto result = session.finish("x");
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_FALSE(verify.ok);
  EXPECT_NE(verify.message.find("twice"), std::string::npos);
}

TEST(Verify, DetectsPayloadCorruption) {
  const auto pop = two_tags();
  Session session(pop, SessionConfig{});
  for (const Tag& tag : pop) {
    const Tag* responder = &tag;
    (void)session.air().poll({&responder, 1}, &tag, 2);
  }
  auto result = session.finish("x");
  result.records[0].payload = BitVec("0");
  // Flip the payload bit so it cannot match the derived value.
  if (pop[0].reply_payload(1) == result.records[0].payload)
    result.records[0].payload = BitVec("1");
  // Re-find the record for tag 0 (records are in poll order).
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_FALSE(verify.ok);
}

}  // namespace
}  // namespace rfid
