// Tests for the Tree-based Polling Protocol (paper Section IV).
#include <gtest/gtest.h>

#include "analysis/tpp_model.hpp"
#include "common/math_util.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/tree_polling.hpp"
#include "sim/verify.hpp"

namespace rfid::protocols {
namespace {

sim::RunResult run_tpp(std::size_t n, std::uint64_t seed,
                       Tpp::Config config = Tpp::Config()) {
  Xoshiro256ss rng(seed);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig session;
  session.seed = seed * 13 + 11;
  return Tpp(config).run(pop, session);
}

TEST(Tpp, CompleteCollectionWithTreeCrossCheck) {
  // cross_check_tree verifies every round that the trie construction, the
  // sorted-index encoding, the register-update rule and the reader's leaf
  // expectations all agree — the protocol's full internal consistency.
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(4000, rng)
                       .with_random_payloads(4, rng);
  sim::SessionConfig session;
  session.info_bits = 4;
  const auto result =
      Tpp(Tpp::Config{.cross_check_tree = true}).run(pop, session);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Tpp, NoSlotWaste) {
  const auto result = run_tpp(3000, 2);
  EXPECT_EQ(result.metrics.polls, 3000u);
  EXPECT_EQ(result.channel.collision_slots, 0u);
  EXPECT_EQ(result.channel.empty_slots, 0u);
}

TEST(Tpp, VectorNearPaperHeadline) {
  // Fig. 10: TPP levels off at about 3.06 bits.
  for (const std::size_t n : {5000u, 20000u}) {
    const double w = run_tpp(n, n).avg_vector_bits();
    EXPECT_GT(w, 2.5) << n;
    EXPECT_LT(w, 3.5) << n;
  }
}

TEST(Tpp, VectorStableAcrossPopulations) {
  const double w_small = run_tpp(2000, 3).avg_vector_bits();
  const double w_large = run_tpp(50000, 4).avg_vector_bits();
  EXPECT_NEAR(w_small, w_large, 0.4);
}

TEST(Tpp, RespectsUniversalUpperBound) {
  // Eq. (16): w <= 3.44 in expectation; allow small sampling slack.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const double w = run_tpp(8000, 100 + seed).avg_vector_bits();
    EXPECT_LT(w, analysis::tpp_universal_upper_bound() + 0.25);
  }
}

TEST(Tpp, BeatsHppByLargeFactor) {
  Xoshiro256ss rng(5);
  const auto pop = tags::TagPopulation::uniform_random(10000, rng);
  sim::SessionConfig session;
  session.seed = 6;
  const double w_hpp = Hpp().run(pop, session).avg_vector_bits();
  const double w_tpp = Tpp().run(pop, session).avg_vector_bits();
  EXPECT_LT(w_tpp * 3.0, w_hpp);
}

TEST(Tpp, OptimalIndexLengthBeatsOffsets) {
  // Eq. (15) ablation: shifting h away from the optimum must cost bits.
  const double w_opt = run_tpp(10000, 7).avg_vector_bits();
  const double w_minus =
      run_tpp(10000, 7, Tpp::Config{.index_length_offset = -2})
          .avg_vector_bits();
  const double w_plus =
      run_tpp(10000, 7, Tpp::Config{.index_length_offset = 2})
          .avg_vector_bits();
  EXPECT_LT(w_opt, w_minus);
  EXPECT_LT(w_opt, w_plus);
}

TEST(Tpp, SingleTagPolledWithZeroBits) {
  const auto result = run_tpp(1, 8);
  EXPECT_EQ(result.metrics.polls, 1u);
  EXPECT_EQ(result.metrics.vector_bits, 0u);
}

TEST(Tpp, RoundInitOutsideW) {
  const auto result = run_tpp(400, 9);
  EXPECT_EQ(result.metrics.command_bits, result.metrics.rounds * 32u);
}

TEST(Tpp, DeterministicReplay) {
  const auto a = run_tpp(2500, 10);
  const auto b = run_tpp(2500, 10);
  EXPECT_EQ(a.metrics.vector_bits, b.metrics.vector_bits);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_DOUBLE_EQ(a.metrics.time_us, b.metrics.time_us);
}

TEST(Tpp, WorksOnSequentialAndClusteredIds) {
  sim::SessionConfig session;
  session.seed = 21;
  const auto seq = tags::TagPopulation::sequential(3000, 1000);
  const auto r1 = Tpp(Tpp::Config{.cross_check_tree = true}).run(seq, session);
  EXPECT_EQ(r1.metrics.polls, 3000u);

  Xoshiro256ss rng(11);
  const auto clustered =
      tags::TagPopulation::prefix_clustered(3000, 3, 32, rng);
  const auto r2 = Tpp().run(clustered, session);
  EXPECT_EQ(r2.metrics.polls, 3000u);
  // ID clustering must not affect the hashed polling vector materially.
  EXPECT_NEAR(r1.avg_vector_bits(), r2.avg_vector_bits(), 0.5);
}

TEST(Tpp, LoadFactorStaysInOptimalBand) {
  // Eq. (14): every round's h satisfies ln2 <= n_i / 2^h < 2 ln2; check
  // round 1 of several populations via the model helper.
  for (const std::size_t n : {100u, 1000u, 9999u, 65536u}) {
    const unsigned h = analysis::tpp_optimal_index_length(n);
    const double lambda = double(n) / double(std::size_t{1} << h);
    EXPECT_GE(lambda, kLn2 - 1e-12) << n;
    EXPECT_LT(lambda, 2 * kLn2 + 1e-12) << n;
  }
}

class TppPopulationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TppPopulationSweep, CompleteWithCrossCheck) {
  const std::size_t n = GetParam();
  const auto result =
      run_tpp(n, 23 * n + 1, Tpp::Config{.cross_check_tree = true});
  EXPECT_EQ(result.metrics.polls, n);
  EXPECT_EQ(result.channel.collision_slots, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TppPopulationSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 33, 128, 129, 777,
                                           2048, 10000));

}  // namespace
}  // namespace rfid::protocols
