// Allocation-free steady state, gated in the main suite (ctest label
// `static`). bench/bench_round_engine measures and *reports* the same
// invariant; this test *fails* when it regresses.
//
// The contract (established by the RoundEngine refactor): one engine
// instance spans a protocol run, all round-scoped scratch lives in the
// engine and the round policies, so after the first round of a drain —
// which grows every buffer to its high-water capacity — each further round
// performs ZERO heap allocations. The gate covers the steady-state round
// shape of all four polling protocols:
//   HPP    — HppRoundPolicy, init bits outside w;
//   EHPP   — the HPP rounds inside a circle (init bits folded into w; the
//            per-circle setup (circle frame encode, subset split) is
//            paid per circle, not per round, and is gated separately as
//            "bounded by circles, not rounds");
//   TPP    — TppRoundPolicy with the differential tree dispatch;
//   ADAPT  — TPP rounds with the degradation monitor enabled (the clean-
//            channel tier ADAPT actually runs).
//
// This TU is the binary's single inclusion of alloc_guard.hpp (it replaces
// global operator new/delete).
#include "alloc_guard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "fault/recovery.hpp"
#include "fault/supervisor.hpp"
#include "protocols/enhanced_hash_polling.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/round_engine.hpp"
#include "protocols/tree_polling.hpp"
#include "sim/checkpoint.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace rfid {
namespace {

constexpr std::size_t kPopulation = 512;
constexpr std::uint64_t kSeed = 20260806;

/// Drains `policy` rounds over a fresh population and returns the total
/// allocations in rounds 2..N (the steady state). `degradation` switches
/// on ADAPT's monitor so its round shape is measured, not plain TPP's.
template <typename Policy, typename PolicyConfig>
std::uint64_t steady_allocs(const PolicyConfig& policy_config,
                            bool degradation = false) {
  Xoshiro256ss id_rng(kSeed);
  const tags::TagPopulation population =
      tags::TagPopulation::uniform_random(kPopulation, id_rng);
  sim::SessionConfig config;
  config.seed = kSeed ^ 0x9E3779B97F4A7C15ull;
  config.keep_records = false;  // record storage is output data, not scratch
  config.degradation.enabled = degradation;
  sim::Session session(population, config);
  tags::TagSoA active = protocols::make_devices(session);
  fault::RecoveryCoordinator recovery(config.recovery);
  protocols::RoundEngine engine(session, recovery);
  Policy policy(policy_config);

  std::uint64_t rounds = 0;
  std::uint64_t steady = 0;
  while (!active.empty()) {
    const alloc_guard::Probe probe;
    engine.run_round(active, policy);
    if (rounds > 0) steady += probe.delta();
    ++rounds;
  }
  // A drain of 512 tags takes several rounds; if it somehow finished in
  // one, the "steady state" below would be vacuous.
  EXPECT_GE(rounds, 3u);
  return steady;
}

TEST(AllocGuard, ProbeCountsAllocations) {
  const alloc_guard::Probe probe;
  EXPECT_EQ(probe.delta(), 0u);
  {
    std::vector<int> v(1024);
    EXPECT_GE(probe.delta(), 1u);
  }
}

TEST(AllocGuard, HppSteadyStateRoundsAllocationFree) {
  EXPECT_EQ(steady_allocs<protocols::HppRoundPolicy>(
                protocols::HppRoundConfig{}),
            0u);
}

TEST(AllocGuard, EhppInnerRoundsAllocationFree) {
  // The round shape EHPP runs inside every circle (run_ehpp_circle):
  // HPP rounds with the init frame counted into w.
  const protocols::Ehpp::Config ehpp;
  EXPECT_EQ(steady_allocs<protocols::HppRoundPolicy>(protocols::HppRoundConfig{
                ehpp.round_init_bits, /*count_init_in_w=*/true}),
            0u);
}

TEST(AllocGuard, TppSteadyStateRoundsAllocationFree) {
  EXPECT_EQ(steady_allocs<protocols::TppRoundPolicy>(protocols::Tpp::Config{}),
            0u);
}

TEST(AllocGuard, AdaptSteadyStateRoundsAllocationFree) {
  // Clean channel: ADAPT's degradation monitor never fires and every round
  // is a TPP round with the monitor's bookkeeping active.
  EXPECT_EQ(steady_allocs<protocols::TppRoundPolicy>(protocols::Tpp::Config{},
                                                     /*degradation=*/true),
            0u);
}

TEST(AllocGuard, SupervisorFaultFreeTicksAllocationFree) {
  // The supervisor rides the fleet's per-tick hot path: with no faults
  // firing, progress notes and the deadline sweep must allocate nothing
  // (transition storage is reserved at construction).
  fault::ReaderSupervisor supervisor(8, fault::SupervisorConfig{});
  const alloc_guard::Probe probe;
  for (std::uint64_t tick = 0; tick < 1000; ++tick) {
    for (std::size_t r = 0; r < 8; ++r)
      supervisor.note_round_complete(r, tick);
    supervisor.advance(tick);
  }
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(AllocGuard, SupervisorBoundedTransitionsStayWithinReserve) {
  // A bounded burst of health churn (each reader: crash -> restart ->
  // recover) fits the constructor's reserve, so even fault-laden ticks do
  // not grow the log's storage.
  fault::SupervisorConfig config;
  config.backoff_initial_ticks = 1;
  fault::ReaderSupervisor supervisor(4, config);
  for (std::size_t r = 0; r < 4; ++r) supervisor.note_round_complete(r, 0);

  const alloc_guard::Probe probe;
  for (std::size_t r = 0; r < 4; ++r) {
    supervisor.note_crash(r, 1);           // -> kDown
    supervisor.begin_restart(r, 2);        // -> kRecovering
    supervisor.note_round_complete(r, 3);  // -> kHealthy
  }
  supervisor.advance(3);
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(AllocGuard, DeploymentFaultFreeTicksAllocationFree) {
  // The deployment simulator's serial scheduling tick (no faults, no
  // churn, overlap on so ownership resolution ran at placement): after one
  // full channel rotation has given every reader its buffer-growing first
  // round, each further tick — schedule recompute, round, channel fold,
  // supervisor sweep — must allocate nothing.
  Xoshiro256ss id_rng(kSeed + 2);
  const tags::TagPopulation population =
      tags::TagPopulation::uniform_random(kPopulation, id_rng);
  core::DeploymentConfig config;
  config.readers = 4;
  config.channels = 2;  // rotation of 2: co-channel readers alternate
  config.session.seed = kSeed;
  config.session.keep_records = false;
  config.zone_overlap = 0.2;
  core::Deployment deployment(population, config);

  const std::uint64_t rotation = 2;
  std::uint64_t warmup = 2 * rotation;  // every reader: one cold round
  while (warmup > 0 && deployment.tick()) --warmup;
  ASSERT_EQ(warmup, 0u) << "population drained before the warm-up ended";

  std::uint64_t steady_ticks = 0;
  std::uint64_t steady = 0;
  for (;;) {
    const alloc_guard::Probe probe;
    const bool more = deployment.tick();
    steady += probe.delta();
    ++steady_ticks;
    if (!more) break;
  }
  EXPECT_GE(steady_ticks, 3u);  // the gate must have measured something
  EXPECT_EQ(steady, 0u);
  EXPECT_TRUE(deployment.finish().verified);
}

TEST(AllocGuard, CheckpointEncodeIntoWarmBufferAllocationFree) {
  // simserved snapshots on every epoch boundary; once the byte buffer has
  // grown to its high-water size, re-encoding must allocate nothing.
  sim::Checkpoint checkpoint;
  checkpoint.master_seed = 7;
  checkpoint.readers.resize(8);
  for (std::size_t r = 0; r < checkpoint.readers.size(); ++r) {
    checkpoint.readers[r].epochs = r;
    checkpoint.readers[r].completed.rounds = 100 + r;
  }

  std::vector<std::uint8_t> buffer;
  sim::encode_into(checkpoint, buffer);  // cold: grows the buffer
  const alloc_guard::Probe probe;
  for (int i = 0; i < 100; ++i) sim::encode_into(checkpoint, buffer);
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(AllocGuard, EhppCircleSetupBoundedByCircles) {
  // Per-circle setup (circle frame encode + subset split) may allocate,
  // but the cost must stay per *circle*, not per round: a full EHPP drain
  // allocates O(circles) times, far below one allocation per round.
  Xoshiro256ss id_rng(kSeed + 1);
  const tags::TagPopulation population =
      tags::TagPopulation::uniform_random(kPopulation, id_rng);
  sim::SessionConfig config;
  config.seed = kSeed;
  config.keep_records = false;
  sim::Session session(population, config);
  tags::TagSoA active = protocols::make_devices(session);
  fault::RecoveryCoordinator recovery(config.recovery);
  protocols::RoundEngine engine(session, recovery);
  const protocols::Ehpp ehpp_protocol;
  const std::size_t subset_target = ehpp_protocol.effective_subset_size();

  std::uint64_t circles = 0;
  std::uint64_t steady = 0;
  const protocols::Ehpp::Config ehpp_config;
  while (!active.empty()) {
    const alloc_guard::Probe probe;
    ASSERT_TRUE(protocols::run_ehpp_circle(session, engine, active,
                                           ehpp_config, subset_target));
    if (circles > 0) steady += probe.delta();
    ++circles;
  }
  EXPECT_GE(circles, 2u);
  // Generous per-circle budget: frame encode, subset vector, engine growth
  // for a subset larger than any predecessor. What it must never be is
  // per-poll or per-round-scratch reallocation (hundreds per circle).
  EXPECT_LE(steady, circles * 32);
}

}  // namespace
}  // namespace rfid
