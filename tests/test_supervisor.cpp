// ReaderSupervisor state machine: deadline-driven degradation and
// escalation, crash handling, bounded exponential-backoff restarts,
// permanent-down after the restart budget, and the ordered transition log.
// The supervisor is pure tick-driven state — no clock, no RNG — so every
// scenario here is replayed exactly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/supervisor.hpp"

namespace rfid {
namespace {

using fault::ReaderSupervisor;
using fault::SupervisorConfig;
using obs::ReaderHealth;

SupervisorConfig tight_config() {
  SupervisorConfig config;
  config.degraded_after_ticks = 2;
  config.down_after_ticks = 4;
  config.backoff_initial_ticks = 1;
  config.backoff_multiplier = 2;
  config.backoff_max_ticks = 8;
  config.max_restarts = 3;
  return config;
}

TEST(Supervisor, ZeroReadersIsRefused) {
  EXPECT_THROW(ReaderSupervisor(0, SupervisorConfig{}), std::invalid_argument);
}

TEST(Supervisor, ProgressKeepsAReaderHealthy) {
  ReaderSupervisor supervisor(2, tight_config());
  for (std::uint64_t tick = 0; tick < 20; ++tick) {
    supervisor.note_round_complete(0, tick);
    supervisor.note_round_complete(1, tick);
    supervisor.advance(tick);
  }
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kHealthy);
  EXPECT_EQ(supervisor.health(1), ReaderHealth::kHealthy);
  EXPECT_TRUE(supervisor.transitions().empty());
}

TEST(Supervisor, SilenceDegradesThenEscalatesToDown) {
  ReaderSupervisor supervisor(1, tight_config());
  supervisor.note_round_complete(0, 0);

  // Silent from tick 1 on: degraded at silence >= 2, down at >= 4.
  supervisor.advance(1);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kHealthy);
  supervisor.advance(2);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kDegraded);
  supervisor.advance(3);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kDegraded);
  supervisor.advance(4);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kDown);
  EXPECT_TRUE(supervisor.restart_due(0, 4 + 1));  // initial backoff = 1

  ASSERT_EQ(supervisor.transitions().size(), 2u);
  EXPECT_EQ(supervisor.transitions()[0].to, ReaderHealth::kDegraded);
  EXPECT_EQ(supervisor.transitions()[0].tick, 2u);
  EXPECT_EQ(supervisor.transitions()[1].to, ReaderHealth::kDown);
  EXPECT_EQ(supervisor.transitions()[1].tick, 4u);
}

TEST(Supervisor, ARoundHealsADegradedReader) {
  ReaderSupervisor supervisor(1, tight_config());
  supervisor.note_round_complete(0, 0);
  supervisor.advance(2);
  ASSERT_EQ(supervisor.health(0), ReaderHealth::kDegraded);

  supervisor.note_round_complete(0, 3);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kHealthy);
  supervisor.advance(3);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kHealthy);
}

TEST(Supervisor, CrashRestartRecoveryCycle) {
  ReaderSupervisor supervisor(1, tight_config());
  supervisor.note_round_complete(0, 0);
  supervisor.note_crash(0, 1);

  EXPECT_EQ(supervisor.health(0), ReaderHealth::kDown);
  EXPECT_EQ(supervisor.crashes(0), 1u);
  EXPECT_FALSE(supervisor.restart_due(0, 1));  // backoff not elapsed
  EXPECT_TRUE(supervisor.restart_due(0, 2));   // 1 + initial backoff 1

  supervisor.begin_restart(0, 2);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kRecovering);
  EXPECT_EQ(supervisor.restarts(0), 1u);
  EXPECT_FALSE(supervisor.restart_due(0, 100));  // no restart pending

  // A completed round confirms the recovery and resets the backoff.
  supervisor.note_round_complete(0, 3);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kHealthy);

  // Next crash: backoff is the initial value again, not the doubled one.
  supervisor.note_crash(0, 10);
  EXPECT_TRUE(supervisor.restart_due(0, 11));
}

TEST(Supervisor, BackoffDoublesWhileRecoveryKeepsFailing) {
  ReaderSupervisor supervisor(1, tight_config());
  supervisor.note_round_complete(0, 0);

  // Crash at 1; restart due at 2 (backoff 1 -> next 2).
  supervisor.note_crash(0, 1);
  ASSERT_TRUE(supervisor.restart_due(0, 2));
  supervisor.begin_restart(0, 2);

  // The recovering reader stays silent; the deadline sweep re-downs it and
  // schedules the next restart a doubled backoff later.
  std::uint64_t tick = 2;
  while (supervisor.health(0) == ReaderHealth::kRecovering) {
    ++tick;
    supervisor.advance(tick);
  }
  ASSERT_EQ(supervisor.health(0), ReaderHealth::kDown);
  const std::uint64_t down_tick = tick;
  EXPECT_FALSE(supervisor.restart_due(0, down_tick + 1));  // backoff now 2
  EXPECT_TRUE(supervisor.restart_due(0, down_tick + 2));
}

TEST(Supervisor, RestartBudgetExhaustionIsPermanent) {
  ReaderSupervisor supervisor(1, tight_config());  // max_restarts = 3
  std::uint64_t tick = 0;
  supervisor.note_round_complete(0, tick);

  for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
    supervisor.note_crash(0, ++tick);
    ASSERT_EQ(supervisor.health(0), ReaderHealth::kDown);
    ASSERT_FALSE(supervisor.permanently_down(0));
    while (!supervisor.restart_due(0, tick)) ++tick;
    supervisor.begin_restart(0, tick);
  }

  // Budget spent: the next failure is final — no restart is ever due again.
  supervisor.note_crash(0, ++tick);
  EXPECT_TRUE(supervisor.permanently_down(0));
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kDown);
  EXPECT_FALSE(supervisor.restart_due(0, tick + 1000000));
}

TEST(Supervisor, SpontaneousRestartCountsAgainstTheBudget) {
  SupervisorConfig config = tight_config();
  config.max_restarts = 1;
  ReaderSupervisor supervisor(1, config);
  supervisor.note_round_complete(0, 0);

  supervisor.note_spontaneous_restart(0, 1);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kRecovering);
  EXPECT_EQ(supervisor.restarts(0), 1u);

  // Budget (1) is spent: the next crash is permanent.
  supervisor.note_round_complete(0, 2);
  supervisor.note_crash(0, 3);
  EXPECT_TRUE(supervisor.permanently_down(0));
}

TEST(Supervisor, StallsAreCountedAndLeadToDeadlineEscalation) {
  ReaderSupervisor supervisor(1, tight_config());
  supervisor.note_round_complete(0, 0);
  supervisor.note_stall(0);
  supervisor.note_stall(0);
  EXPECT_EQ(supervisor.stalls(0), 2u);
  // A stall is not a transition by itself...
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kHealthy);
  // ...the silence it causes is what the deadline sweep escalates.
  supervisor.advance(4);
  EXPECT_EQ(supervisor.health(0), ReaderHealth::kDown);
}

TEST(Supervisor, TransitionLogIsOrderedAndDrainable) {
  ReaderSupervisor supervisor(2, tight_config());
  supervisor.note_round_complete(0, 0);
  supervisor.note_round_complete(1, 0);
  supervisor.note_crash(1, 1);
  supervisor.advance(2);  // reader 0 degrades (silent since 0)

  const auto& transitions = supervisor.transitions();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].reader, 1u);
  EXPECT_EQ(transitions[0].to, ReaderHealth::kDown);
  EXPECT_EQ(transitions[1].reader, 0u);
  EXPECT_EQ(transitions[1].to, ReaderHealth::kDegraded);

  supervisor.clear_transitions();
  EXPECT_TRUE(supervisor.transitions().empty());
  // State survives the drain; only the log is cleared.
  EXPECT_EQ(supervisor.health(1), ReaderHealth::kDown);
}

}  // namespace
}  // namespace rfid
