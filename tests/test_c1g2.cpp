// Unit tests for the C1G2 timing model: the numbers here are the paper's
// Section V-A constants, so regressions would silently skew every table.
#include <gtest/gtest.h>

#include "analysis/timing_model.hpp"
#include "phy/c1g2.hpp"

namespace rfid::phy {
namespace {

TEST(C1G2Timing, DefaultsMatchPaperSettings) {
  const C1G2Timing t;
  EXPECT_DOUBLE_EQ(t.t1_us, 100.0);
  EXPECT_DOUBLE_EQ(t.t2_us, 50.0);
  EXPECT_DOUBLE_EQ(t.reader_us_per_bit, 37.45);
  EXPECT_DOUBLE_EQ(t.tag_us_per_bit, 25.0);
  EXPECT_EQ(t.query_rep_bits, 4u);
}

TEST(C1G2Timing, PollFormulaMatchesPaper) {
  // 37.45 * (4 + w) + T1 + 25 l + T2 for w = 3, l = 1.
  const C1G2Timing t;
  EXPECT_NEAR(t.poll_us(3, 1), 37.45 * 7 + 100 + 25 + 50, 1e-9);
}

TEST(C1G2Timing, ZeroVectorPollIsLowerBoundUnit) {
  const C1G2Timing t;
  EXPECT_NEAR(t.poll_us(0, 1), 324.8, 1e-9);  // (299.8 + 25 l), l = 1
  EXPECT_NEAR(t.poll_us(0, 16), 299.8 + 400, 1e-9);
  EXPECT_NEAR(t.poll_us(0, 32), 299.8 + 800, 1e-9);
}

TEST(C1G2Timing, BarePollDropsQueryRep) {
  const C1G2Timing t;
  EXPECT_NEAR(t.poll_bare_us(96, 1), 37.45 * 96 + 175, 1e-9);
  // Table I's CPP row: 3770.2 us per tag at l = 1.
  EXPECT_NEAR(t.poll_bare_us(96, 1) * 1e4 * 1e-6, 37.70, 0.01);
}

TEST(C1G2Timing, LowerBoundMatchesPaperTableI) {
  const C1G2Timing t;
  // Table I LowerBound row at n = 10^4, l = 1: 3.248 s.
  EXPECT_NEAR(t.lower_bound_us(10000, 1) * 1e-6, 3.248, 0.001);
}

TEST(C1G2Timing, IdleSlotShorterThanPoll) {
  const C1G2Timing t;
  EXPECT_LT(t.idle_slot_us(), t.poll_us(0, 1));
  EXPECT_NEAR(t.idle_slot_us(), 4 * 37.45 + 150, 1e-9);
}

TEST(C1G2Timing, CollisionSlotCostsReplyAirtime) {
  const C1G2Timing t;
  EXPECT_DOUBLE_EQ(t.collision_slot_us(16), t.poll_us(0, 16));
}

TEST(C1G2Timing, ReaderAndTagRatesScaleLinearly) {
  const C1G2Timing t;
  EXPECT_DOUBLE_EQ(t.reader_tx_us(100), 3745.0);
  EXPECT_DOUBLE_EQ(t.tag_tx_us(40), 1000.0);
  EXPECT_DOUBLE_EQ(t.reader_tx_us(0), 0.0);
}

TEST(TimingModel, ProjectedTimeMatchesPaperExamples) {
  // Paper Section V-C: TPP with w ~= 3.06 at n = 10^4, l = 1 gives ~4.39 s.
  EXPECT_NEAR(analysis::projected_time_s(10000, 3.06, 1), 4.39, 0.02);
  // HPP with w ~= 13 at the same point gives ~8.12 s.
  EXPECT_NEAR(analysis::projected_time_s(10000, 12.95, 1), 8.12, 0.05);
}

TEST(TimingModel, BareProjectionMatchesCpp) {
  EXPECT_NEAR(analysis::projected_time_s(10000, 96, 1, {}, false), 37.70,
              0.01);
}

TEST(TimingModel, LowerBoundHelper) {
  EXPECT_NEAR(analysis::lower_bound_time_s(10000, 1), 3.248, 0.001);
  EXPECT_NEAR(analysis::lower_bound_time_s(10000, 32), 10.998, 0.001);
}

TEST(C1G2Timing, ExecutionTimeLinearInVectorLength) {
  // Fig. 1 of the paper: execution time is proportional to w.
  const C1G2Timing t;
  const double t0 = t.poll_us(0, 1);
  const double t50 = t.poll_us(50, 1);
  const double t100 = t.poll_us(100, 1);
  EXPECT_NEAR(t100 - t50, t50 - t0, 1e-9);
  EXPECT_NEAR(t50 - t0, 50 * 37.45, 1e-9);
}

}  // namespace
}  // namespace rfid::phy
