// Cross-cutting randomized property tests.
//
// These check identities that must hold for every protocol, population and
// seed: exact-once collection, the accounting identity (time decomposes
// into reader airtime plus per-interaction constants), waste-freeness of
// the polling family, round-trace monotonicity, and fuzzed round trips for
// the bit-level substrate.
#include <gtest/gtest.h>

#include "common/env.hpp"
#include "core/polling.hpp"
#include "sim/verify.hpp"

namespace rfid {
namespace {

using core::ProtocolKind;

struct RandomCase final {
  ProtocolKind kind;
  std::uint64_t seed;
};

class RandomizedRuns : public ::testing::TestWithParam<RandomCase> {};

sim::RunResult run_random(const RandomCase& c, std::size_t& n_out,
                          std::size_t& l_out,
                          const tags::TagPopulation** pop_out,
                          bool keep_trace = false) {
  static std::vector<tags::TagPopulation> stash;  // keep populations alive
  Xoshiro256ss rng(c.seed);
  const std::size_t n = 50 + rng.below(2000);
  const std::size_t l = 1 + rng.below(32);
  stash.push_back(tags::TagPopulation::uniform_random(n, rng)
                      .with_random_payloads(l, rng));
  const tags::TagPopulation& pop = stash.back();
  sim::SessionConfig config;
  config.info_bits = l;
  config.seed = c.seed * 2654435761u + 17;
  config.keep_trace = keep_trace;
  n_out = n;
  l_out = l;
  *pop_out = &pop;
  return protocols::make_protocol(c.kind)->run(pop, config);
}

TEST_P(RandomizedRuns, ExactOnceCollection) {
  std::size_t n = 0, l = 0;
  const tags::TagPopulation* pop = nullptr;
  const auto result = run_random(GetParam(), n, l, &pop);
  EXPECT_EQ(result.metrics.polls, n);
  const auto verify = sim::verify_complete_collection(*pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST_P(RandomizedRuns, AccountingIdentityForPollingFamily) {
  // For waste-free polling protocols (not MIC/SIC/DFSA, which walk frame
  // slots): total time = reader airtime of every transmitted bit + one
  // (T1 + reply + T2) block per poll. CPP/CP skip the QueryRep prefix.
  const auto kind = GetParam().kind;
  const bool slotted = kind == ProtocolKind::kMic ||
                       kind == ProtocolKind::kSic ||
                       kind == ProtocolKind::kDfsa;
  if (slotted) GTEST_SKIP() << "frame-slotted protocol";
  std::size_t n = 0, l = 0;
  const tags::TagPopulation* pop = nullptr;
  const auto result = run_random(GetParam(), n, l, &pop);
  const phy::C1G2Timing timing;
  const bool bare = kind == ProtocolKind::kCpp ||
                    kind == ProtocolKind::kPrefixCpp ||
                    kind == ProtocolKind::kCodedPolling;
  const double query_rep_bits =
      bare ? 0.0
           : double(result.metrics.polls) * timing.query_rep_bits;
  const double reader_us = timing.reader_us_per_bit *
                           (double(result.metrics.vector_bits) +
                            double(result.metrics.command_bits) +
                            query_rep_bits);
  const double reply_us =
      double(result.metrics.polls) *
      (timing.t1_us + timing.tag_tx_us(l) + timing.t2_us);
  EXPECT_NEAR(result.metrics.time_us, reader_us + reply_us,
              1e-6 * result.metrics.time_us)
      << protocols::to_string(kind);
}

TEST_P(RandomizedRuns, PollingFamilyHasNoWaste) {
  const auto kind = GetParam().kind;
  if (kind == ProtocolKind::kMic || kind == ProtocolKind::kSic ||
      kind == ProtocolKind::kDfsa)
    GTEST_SKIP() << "frame-slotted protocol wastes by design";
  std::size_t n = 0, l = 0;
  const tags::TagPopulation* pop = nullptr;
  const auto result = run_random(GetParam(), n, l, &pop);
  EXPECT_EQ(result.metrics.slots_wasted, 0u);
  EXPECT_EQ(result.channel.collision_slots, 0u);
  EXPECT_EQ(result.channel.empty_slots, 0u);
}

TEST_P(RandomizedRuns, TraceIsMonotoneAndMatchesRounds) {
  std::size_t n = 0, l = 0;
  const tags::TagPopulation* pop = nullptr;
  const auto result = run_random(GetParam(), n, l, &pop, /*keep_trace=*/true);
  EXPECT_EQ(result.trace.size(), result.metrics.rounds);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].time_us_so_far,
              result.trace[i - 1].time_us_so_far);
    EXPECT_GE(result.trace[i].polls_so_far, result.trace[i - 1].polls_so_far);
    EXPECT_EQ(result.trace[i].round, result.trace[i - 1].round + 1);
  }
}

std::vector<RandomCase> random_cases() {
  std::vector<RandomCase> cases;
  std::uint64_t seed = 1;
  for (const ProtocolKind kind : protocols::all_protocols())
    for (int rep = 0; rep < 3; ++rep)
      cases.push_back(RandomCase{kind, 1000 + 37 * seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomizedRuns, ::testing::ValuesIn(random_cases()),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param.kind)) + "_s" +
             std::to_string(param_info.param.seed);
    });

TEST(Properties, BitVecAppendReadFuzz) {
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec v;
    std::vector<std::pair<std::uint64_t, unsigned>> chunks;
    for (int c = 0; c < 20; ++c) {
      const unsigned width = 1 + unsigned(rng.below(48));
      const std::uint64_t value =
          rng() & ((width == 64) ? ~0ULL : ((1ULL << width) - 1));
      chunks.emplace_back(value, width);
      v.append_bits(value, width);
    }
    std::size_t pos = 0;
    for (const auto& [value, width] : chunks) {
      EXPECT_EQ(v.read_bits(pos, width), value);
      pos += width;
    }
    EXPECT_EQ(pos, v.size());
    // String round trip as an independent check.
    EXPECT_TRUE(BitVec(v.to_string()) == v);
  }
}

TEST(Properties, TagIdHexFuzzRoundTrip) {
  Xoshiro256ss rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    TagId id;
    for (auto& w : id.words) w = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(TagId::from_hex(id.to_hex()), id);
  }
}

TEST(Properties, CommonPrefixSymmetricAndConsistentWithXor) {
  Xoshiro256ss rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    TagId a, b;
    for (auto& w : a.words) w = static_cast<std::uint32_t>(rng());
    b = a;
    const std::size_t flip = rng.below(kTagIdBits);
    b.set_bit(flip, !b.bit(flip));
    // Flipping bit `flip` bounds the common prefix at exactly flip.
    EXPECT_EQ(a.common_prefix_length(b), flip);
    EXPECT_EQ(b.common_prefix_length(a), flip);
  }
}

TEST(Properties, EnvU64ParsesAndFallsBack) {
  EXPECT_EQ(env_u64("RFID_SURELY_UNSET_VARIABLE", 7), 7u);
  ::setenv("RFID_TEST_ENV_U64", "123", 1);
  EXPECT_EQ(env_u64("RFID_TEST_ENV_U64", 7), 123u);
  ::setenv("RFID_TEST_ENV_U64", "not-a-number", 1);
  EXPECT_EQ(env_u64("RFID_TEST_ENV_U64", 7), 7u);
  ::setenv("RFID_TEST_ENV_U64", "", 1);
  EXPECT_EQ(env_u64("RFID_TEST_ENV_U64", 9), 9u);
  ::unsetenv("RFID_TEST_ENV_U64");
}

}  // namespace
}  // namespace rfid
