// Unit tests for numeric helpers and streaming statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace rfid {
namespace {

TEST(CeilLog2, PaperIndexLengthConvention) {
  // HPP requires 2^{h-1} < n <= 2^h, i.e. h = ceil_log2(n).
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(CeilLog2, SatisfiesDefiningInequality) {
  for (std::uint64_t n = 2; n < 5000; ++n) {
    const unsigned h = ceil_log2(n);
    EXPECT_LT(pow2(h - 1), n);
    EXPECT_LE(n, pow2(h));
  }
}

TEST(FloorLog2, Basics) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
}

TEST(IsPow2, Basics) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(RelativeDifference, Symmetric) {
  EXPECT_DOUBLE_EQ(relative_difference(10.0, 11.0),
                   relative_difference(11.0, 10.0));
  EXPECT_NEAR(relative_difference(10.0, 11.0), 1.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256ss rng(10);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform01() * 10.0;
    whole.add(x);
    (i < 250 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Xoshiro256ss rng(11);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(ChiSquare, UniformCountsScoreLow) {
  std::vector<std::size_t> counts(20, 100);
  EXPECT_DOUBLE_EQ(chi_square_uniform(counts), 0.0);
}

TEST(ChiSquare, SkewedCountsScoreHigh) {
  std::vector<std::size_t> counts(20, 100);
  counts[0] = 500;
  counts[1] = 0;
  EXPECT_GT(chi_square_uniform(counts), chi_square_critical_99(19));
}

TEST(ChiSquareCritical, MatchesTableValues) {
  // Reference values: chi2_{0.99}(k) for k = 10, 30, 100.
  EXPECT_NEAR(chi_square_critical_99(10), 23.21, 0.4);
  EXPECT_NEAR(chi_square_critical_99(30), 50.89, 0.5);
  EXPECT_NEAR(chi_square_critical_99(100), 135.81, 1.0);
}

}  // namespace
}  // namespace rfid
