// Tests for JSON export, the round-trace CSV, and the analytical MIC model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/mic_model.hpp"
#include "core/polling.hpp"
#include "protocols/mic.hpp"
#include "sim/report_io.hpp"
#include "sim/trace_io.hpp"

namespace rfid {
namespace {

sim::RunResult small_run(bool trace = false) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(20, rng);
  sim::SessionConfig config;
  config.seed = 2;
  config.keep_trace = trace;
  return protocols::make_protocol(core::ProtocolKind::kTpp)->run(pop, config);
}

TEST(ReportJson, ContainsCoreFields) {
  const std::string json = sim::to_json(small_run());
  EXPECT_NE(json.find("\"protocol\": \"TPP\""), std::string::npos);
  EXPECT_NE(json.find("\"population\": 20"), std::string::npos);
  EXPECT_NE(json.find("\"polls\": 20"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"channel\""), std::string::npos);
  EXPECT_EQ(json.find("\"records\""), std::string::npos);  // off by default
}

TEST(ReportJson, BalancedBracesAndQuotes) {
  for (const int indent : {0, 2, 4}) {
    sim::JsonOptions options;
    options.indent = indent;
    options.include_records = true;
    const std::string json = sim::to_json(small_run(true), options);
    std::ptrdiff_t braces = 0, brackets = 0;
    std::size_t quotes = 0;
    for (const char c : json) {
      braces += (c == '{') - (c == '}');
      brackets += (c == '[') - (c == ']');
      quotes += (c == '"');
    }
    EXPECT_EQ(braces, 0) << indent;
    EXPECT_EQ(brackets, 0) << indent;
    EXPECT_EQ(quotes % 2, 0u) << indent;
  }
}

TEST(ReportJson, CompactModeSingleLine) {
  sim::JsonOptions options;
  options.indent = 0;
  const std::string json = sim::to_json(small_run(), options);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ReportJson, RecordsIncludePayloads) {
  sim::JsonOptions options;
  options.include_records = true;
  const std::string json = sim::to_json(small_run(), options);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
  EXPECT_NE(json.find("\"payload\""), std::string::npos);
}

TEST(ReportJson, TraceIncludedWhenPresent) {
  const std::string with = sim::to_json(small_run(true));
  EXPECT_NE(with.find("\"trace\""), std::string::npos);
  const std::string without = sim::to_json(small_run(false));
  EXPECT_EQ(without.find("\"trace\""), std::string::npos);
}

TEST(ReportJson, MissingIdsSerialized) {
  Xoshiro256ss rng(3);
  const auto pop = tags::TagPopulation::uniform_random(30, rng);
  std::unordered_set<TagId, TagIdHash> present;
  for (std::size_t i = 1; i < pop.size(); ++i) present.insert(pop[i].id());
  const auto report =
      core::find_missing_tags(core::ProtocolKind::kHpp, pop, present, {});
  const std::string json = sim::to_json(report.result);
  EXPECT_NE(json.find(pop[0].id().to_hex()), std::string::npos);
}

std::vector<std::string> csv_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TraceCsv, EmptyTraceWritesHeaderOnly) {
  // Documented contract: a run without keep_trace still writes the header
  // row — including the per-phase columns — and nothing else.
  const std::string path = "trace_csv_empty.csv";
  sim::write_trace_csv(small_run(false), path);
  const auto lines = csv_lines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "round,polls_so_far,vector_bits_so_far,time_us_so_far,"
            "reader_vector_us_so_far,command_us_so_far,turnaround_us_so_far,"
            "tag_reply_us_so_far,wasted_slot_us_so_far");
}

TEST(TraceCsv, RowsCarryPhaseColumnsPerRound) {
  const std::string path = "trace_csv_rows.csv";
  const auto result = small_run(true);
  sim::write_trace_csv(result, path);
  const auto lines = csv_lines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), result.trace.size() + 1);
  const auto columns = [](const std::string& line) {
    return 1 + std::count(line.begin(), line.end(), ',');
  };
  const auto expected = columns(lines[0]);
  for (std::size_t i = 1; i < lines.size(); ++i)
    EXPECT_EQ(columns(lines[i]), expected) << lines[i];
  // Phase columns are cumulative, so the last row's phase total must match
  // the run's final clock.
  std::stringstream last(lines.back());
  std::vector<double> cells;
  std::string cell;
  while (std::getline(last, cell, ',')) cells.push_back(std::stod(cell));
  ASSERT_EQ(cells.size(), 9u);
  const double phase_total = cells[4] + cells[5] + cells[6] + cells[7] +
                             cells[8];
  // Cells are printed with 2 decimals; allow rounding slack per column.
  EXPECT_NEAR(phase_total, cells[3], 0.05);
}

TEST(MicModel, FixedPointMatchesPublishedFigures) {
  // k = 7 -> 13.9% wasted slots; k = 1 -> 63.2% (the numbers both MIC's
  // authors and the paper's related-work section quote).
  EXPECT_NEAR(analysis::mic_expected_waste(7), 0.139, 0.002);
  EXPECT_NEAR(analysis::mic_expected_waste(1), 0.632, 0.001);
}

TEST(MicModel, WasteDecreasesInK) {
  for (unsigned k = 1; k < 10; ++k)
    EXPECT_GT(analysis::mic_expected_waste(k),
              analysis::mic_expected_waste(k + 1));
}

TEST(MicModel, ResolvedComplementsUnassigned) {
  for (unsigned k = 1; k <= 8; ++k) {
    const double resolved = analysis::mic_expected_resolved(k);
    EXPECT_GT(resolved, 0.0);
    EXPECT_LT(resolved, 1.0);
  }
  // At factor 1 the unassigned-tag and unmarked-slot fractions coincide.
  EXPECT_NEAR(analysis::mic_expected_resolved(7),
              1.0 - analysis::mic_expected_waste(7), 1e-12);
}

TEST(MicModel, ModelTracksSimulationAcrossK) {
  Xoshiro256ss rng(4);
  const auto pop = tags::TagPopulation::uniform_random(20000, rng);
  sim::SessionConfig config;
  config.seed = 5;
  config.keep_records = false;
  for (const unsigned k : {1u, 3u, 5u, 7u}) {
    const auto result =
        protocols::Mic(protocols::Mic::Config{.num_hashes = k})
            .run(pop, config);
    // Session waste aggregates later (smaller) frames too; first-frame
    // dominance keeps it within a couple of points of the fixed point.
    EXPECT_NEAR(result.metrics.waste_fraction(),
                analysis::mic_expected_waste(k), 0.02)
        << k;
  }
}

TEST(MicModel, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(analysis::mic_expected_waste(0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::mic_expected_waste(7, 0.0), 1.0);
}

}  // namespace
}  // namespace rfid
