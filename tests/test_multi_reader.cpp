// Multi-reader scheduling tests (core/multi_reader.hpp): the collision-free
// partitioned sweep and the supervised, fault-tolerant fleet schedule.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/deployment.hpp"
#include "core/multi_reader.hpp"
#include "obs/stream.hpp"

namespace rfid::core {
namespace {

tags::TagPopulation uniform(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return tags::TagPopulation::uniform_random(n, rng);
}

TEST(ReaderOf, PartitionIsBalanced) {
  const auto pop = uniform(8000, 1);
  std::vector<std::size_t> counts(4, 0);
  for (const tags::Tag& tag : pop) ++counts[reader_of(tag.id(), 4, 99)];
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 1800u);
    EXPECT_LT(c, 2200u);
  }
}

TEST(ReaderOf, DeterministicAndSeedDependent) {
  const auto pop = uniform(100, 2);
  std::size_t moved = 0;
  for (const tags::Tag& tag : pop) {
    EXPECT_EQ(reader_of(tag.id(), 3, 7), reader_of(tag.id(), 3, 7));
    moved += reader_of(tag.id(), 3, 7) != reader_of(tag.id(), 3, 8);
  }
  EXPECT_GT(moved, 30u);  // a new partition seed reshuffles zones
}

TEST(MultiReader, CoversInventoryExactlyOnce) {
  const auto pop = uniform(3000, 3);
  MultiReaderConfig config;
  config.readers = 3;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 3000u);
  EXPECT_EQ(report.per_reader.size(), 3u);
}

TEST(MultiReader, SingleReaderDegeneratesToPlainRun) {
  const auto pop = uniform(500, 4);
  MultiReaderConfig config;
  config.readers = 1;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_DOUBLE_EQ(report.makespan_s, report.total_busy_s);
  EXPECT_EQ(report.per_reader.front().metrics.polls, 500u);
}

TEST(MultiReader, TimeDivisionMakespanIsSum) {
  const auto pop = uniform(2000, 5);
  MultiReaderConfig config;
  config.readers = 4;
  config.schedule = ReaderSchedule::kTimeDivision;
  const auto report = run_multi_reader(pop, config);
  double sum = 0.0;
  for (const auto& r : report.per_reader) sum += r.exec_time_s();
  EXPECT_NEAR(report.makespan_s, sum, 1e-9);
}

TEST(MultiReader, SpatialParallelMakespanIsMax) {
  const auto pop = uniform(2000, 6);
  MultiReaderConfig config;
  config.readers = 4;
  config.schedule = ReaderSchedule::kSpatialParallel;
  const auto report = run_multi_reader(pop, config);
  double max_t = 0.0;
  for (const auto& r : report.per_reader)
    max_t = std::max(max_t, r.exec_time_s());
  EXPECT_NEAR(report.makespan_s, max_t, 1e-9);
  EXPECT_LT(report.makespan_s, report.total_busy_s);
}

TEST(MultiReader, SpatialParallelismScalesSweeps) {
  // Four isolated zones should sweep ~4x faster than one reader; TPP's flat
  // vector length means near-ideal scaling (only round-granularity loss).
  const auto pop = uniform(8000, 7);
  MultiReaderConfig one;
  one.readers = 1;
  MultiReaderConfig four;
  four.readers = 4;
  four.schedule = ReaderSchedule::kSpatialParallel;
  const double t1 = run_multi_reader(pop, one).makespan_s;
  const double t4 = run_multi_reader(pop, four).makespan_s;
  EXPECT_LT(t4, t1 / 3.0);
  EXPECT_GT(t4, t1 / 5.0);
}

TEST(MultiReader, WorksForEveryProtocol) {
  const auto pop = uniform(900, 8);
  for (const auto kind : protocols::all_protocols()) {
    MultiReaderConfig config;
    config.readers = 3;
    config.kind = kind;
    const auto report = run_multi_reader(pop, config);
    EXPECT_TRUE(report.verified) << protocols::to_string(kind);
  }
}

TEST(MultiReader, NoisyChannelStillCoversExactly) {
  const auto pop = uniform(1500, 21);
  MultiReaderConfig config;
  config.readers = 3;
  config.session.reply_error_rate = 0.2;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 1500u);
}

TEST(MultiReader, MoreReadersThanTags) {
  const auto pop = uniform(3, 9);
  MultiReaderConfig config;
  config.readers = 8;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 3u);
}

TEST(MultiReader, EmptyInventory) {
  const tags::TagPopulation empty;
  MultiReaderConfig config;
  config.readers = 2;
  const auto report = run_multi_reader(empty, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 0u);
  EXPECT_DOUBLE_EQ(report.makespan_s, 0.0);
}

TEST(MultiReader, InvalidReaderCountRejected) {
  const auto pop = uniform(10, 10);
  MultiReaderConfig config;
  config.readers = 0;
  EXPECT_THROW((void)run_multi_reader(pop, config), ContractViolation);
}

// --- Supervised fleet (run_fleet) -------------------------------------------

/// Byte-stable digest of a fleet report for determinism comparisons.
std::string fleet_digest(const FleetReport& report) {
  std::ostringstream os;
  obs::write_json(os, report.totals);
  os << '|' << report.records.size() << '|' << report.ticks << '|'
     << report.handoffs << '|' << report.transitions.size();
  for (const TagId& id : report.undelivered_ids) os << '|' << id.to_hex();
  return os.str();
}

TEST(Fleet, ZeroFaultSweepCollectsEverythingWithoutFaultMachinery) {
  const auto pop = uniform(600, 31);
  FleetConfig config;
  config.readers = 4;
  const FleetReport report = run_fleet(pop, config);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.records.size(), 600u);
  EXPECT_TRUE(report.undelivered_ids.empty());
  EXPECT_EQ(report.handoffs, 0u);
  EXPECT_TRUE(report.transitions.empty());
  for (const FleetReaderReport& reader : report.per_reader) {
    EXPECT_EQ(reader.incarnations, 1u);
    EXPECT_EQ(reader.crashes, 0u);
    EXPECT_EQ(reader.stalls, 0u);
    EXPECT_EQ(reader.restarts, 0u);
    EXPECT_EQ(reader.final_health, obs::ReaderHealth::kHealthy);
  }
  EXPECT_EQ(report.totals.reader_crashes, 0u);
  EXPECT_EQ(report.totals.handoffs, 0u);

  // Determinism: the identical config replays the identical sweep.
  EXPECT_EQ(fleet_digest(run_fleet(pop, config)), fleet_digest(report));
}

TEST(Fleet, CrashesHandOffTagsAndAccountingStaysExact) {
  const auto pop = uniform(800, 32);
  FleetConfig config;
  config.readers = 4;
  config.session.seed = 12;
  // High rates: the sweep only lasts a dozen-odd ticks, and the test needs
  // actual incidents (deterministic in the seed, so not flaky) to exercise
  // handoff and supervision, not just survive them.
  config.reader_faults.crash_per_tick = 0.15;
  config.reader_faults.stall_per_tick = 0.20;
  const FleetReport report = run_fleet(pop, config);

  EXPECT_TRUE(report.verified);
  // Exact delivered-or-listed accounting, the fleet's core promise.
  EXPECT_EQ(report.records.size() + report.missing_ids.size() +
                report.undelivered_ids.size(),
            800u);
  // This fault plan reliably produces incidents at these rates; if it ever
  // stopped doing so the test would be vacuous, so assert it loudly.
  std::uint64_t crashes = 0, stalls = 0;
  for (const FleetReaderReport& reader : report.per_reader) {
    crashes += reader.crashes;
    stalls += reader.stalls;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(stalls, 0u);
  EXPECT_GT(report.handoffs, 0u);
  EXPECT_FALSE(report.transitions.empty());
  EXPECT_EQ(report.totals.reader_crashes, crashes);
  EXPECT_EQ(report.totals.handoffs, report.handoffs);

  // Deterministic replay, faults and all.
  EXPECT_EQ(fleet_digest(run_fleet(pop, config)), fleet_digest(report));
}

TEST(Fleet, RelentlessCrashesStillDeliverOrListEveryTag) {
  // A hostile fault plan: crashes every few ticks, tiny restart budget, so
  // readers go permanently down and handoff budgets run dry. Whatever
  // happens, no tag may vanish.
  const auto pop = uniform(400, 33);
  FleetConfig config;
  config.readers = 3;
  config.session.seed = 5;
  config.reader_faults.crash_per_tick = 0.30;
  config.supervisor.max_restarts = 2;
  config.handoff_budget = 2;
  config.max_ticks = 4096;
  const FleetReport report = run_fleet(pop, config);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.records.size() + report.missing_ids.size() +
                report.undelivered_ids.size(),
            400u);
}

TEST(Fleet, StallsDelayButDoNotLoseTags) {
  const auto pop = uniform(500, 34);
  FleetConfig zero_faults;
  zero_faults.readers = 2;
  FleetConfig stalling = zero_faults;
  stalling.reader_faults.stall_per_tick = 0.2;
  stalling.reader_faults.stall_ticks_min = 2;
  stalling.reader_faults.stall_ticks_max = 4;

  const FleetReport clean = run_fleet(pop, zero_faults);
  const FleetReport stalled = run_fleet(pop, stalling);
  EXPECT_TRUE(stalled.verified);
  EXPECT_EQ(stalled.records.size(), clean.records.size());
  EXPECT_GT(stalled.ticks, clean.ticks);  // stalls cost ticks, not tags
  std::uint64_t stalls = 0;
  for (const FleetReaderReport& reader : stalled.per_reader) {
    stalls += reader.stalls;
  }
  EXPECT_GT(stalls, 0u);
}

TEST(Fleet, InvalidConfigsRejected) {
  const auto pop = uniform(10, 35);
  FleetConfig config;
  config.readers = 0;
  EXPECT_THROW((void)run_fleet(pop, config), ContractViolation);
}

// --- The fleet atop the deployment layer ------------------------------------

/// run_fleet is a wrapper over core::Deployment; mirror its config so the
/// shard knob (which FleetConfig does not expose) can be varied directly.
DeploymentConfig fleet_as_deployment(const FleetConfig& config) {
  DeploymentConfig deployment;
  deployment.readers = config.readers;
  deployment.channels = config.readers;
  deployment.kind = config.kind;
  deployment.session = config.session;
  deployment.partition_seed = config.partition_seed;
  deployment.reader_faults = config.reader_faults;
  deployment.supervisor = config.supervisor;
  deployment.handoff_budget = config.handoff_budget;
  deployment.max_ticks = config.max_ticks;
  return deployment;
}

std::string deployment_digest(const DeploymentReport& report) {
  std::ostringstream os;
  obs::write_json(os, report.totals);
  os << '|' << report.delivered << '|' << report.ticks << '|'
     << report.handoffs << '|' << report.transitions.size();
  for (const TagId& id : report.missing_ids) os << '|' << id.to_hex();
  for (const TagId& id : report.undelivered_ids) os << '|' << id.to_hex();
  return os.str();
}

TEST(Fleet, ReportIsByteIdenticalAcrossShardCounts) {
  // The fleet workload (faults on, so handoffs and restarts fire) run at
  // 1, 2 and 7 execution shards must fold to the same bytes — the shard
  // knob is execution grain, never semantics.
  const auto pop = uniform(1000, 36);
  FleetConfig fleet;
  fleet.readers = 7;
  fleet.session.seed = 23;
  fleet.reader_faults.crash_per_tick = 0.05;
  fleet.reader_faults.stall_per_tick = 0.05;
  DeploymentConfig config = fleet_as_deployment(fleet);
  config.shards = 1;
  const std::string baseline = deployment_digest(run_deployment(pop, config));
  for (const std::size_t shards : {2u, 7u}) {
    config.shards = shards;
    EXPECT_EQ(deployment_digest(run_deployment(pop, config)), baseline)
        << "shards=" << shards;
  }
  // And the wrapper reproduces the same sweep outcome.
  const FleetReport wrapped = run_fleet(pop, fleet);
  const DeploymentReport direct = run_deployment(pop, config);
  EXPECT_EQ(wrapped.records.size(), direct.delivered);
  EXPECT_EQ(wrapped.ticks, direct.ticks);
  EXPECT_EQ(wrapped.handoffs, direct.handoffs);
}

TEST(Fleet, OverlapZoneTagsDeliveredOrListedExactlyOnce) {
  // Heavy overlap + crashes: boundary tags are reachable by two readers
  // and get rehomed on faults, the classic double-count trap. Every tag
  // must land in exactly one of records / missing / undelivered.
  const auto pop = uniform(1200, 37);
  DeploymentConfig config;
  config.readers = 5;
  config.channels = 5;
  config.session.seed = 29;
  config.session.keep_records = true;
  config.zone_overlap = 0.6;
  config.reader_faults.crash_per_tick = 0.10;
  const DeploymentReport report = run_deployment(pop, config);
  EXPECT_TRUE(report.verified);

  std::unordered_set<TagId, TagIdHash> seen;
  for (const sim::CollectedRecord& record : report.records)
    EXPECT_TRUE(seen.insert(record.id).second) << record.id.to_hex();
  for (const TagId& id : report.missing_ids)
    EXPECT_TRUE(seen.insert(id).second) << id.to_hex();
  for (const TagId& id : report.undelivered_ids)
    EXPECT_TRUE(seen.insert(id).second) << id.to_hex();
  EXPECT_EQ(seen.size(), 1200u);
  for (const tags::Tag& tag : pop) EXPECT_EQ(seen.count(tag.id()), 1u);
}

}  // namespace
}  // namespace rfid::core
