// Multi-reader scheduling tests (core/multi_reader.hpp).
#include <gtest/gtest.h>

#include "core/multi_reader.hpp"

namespace rfid::core {
namespace {

tags::TagPopulation uniform(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return tags::TagPopulation::uniform_random(n, rng);
}

TEST(ReaderOf, PartitionIsBalanced) {
  const auto pop = uniform(8000, 1);
  std::vector<std::size_t> counts(4, 0);
  for (const tags::Tag& tag : pop) ++counts[reader_of(tag.id(), 4, 99)];
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 1800u);
    EXPECT_LT(c, 2200u);
  }
}

TEST(ReaderOf, DeterministicAndSeedDependent) {
  const auto pop = uniform(100, 2);
  std::size_t moved = 0;
  for (const tags::Tag& tag : pop) {
    EXPECT_EQ(reader_of(tag.id(), 3, 7), reader_of(tag.id(), 3, 7));
    moved += reader_of(tag.id(), 3, 7) != reader_of(tag.id(), 3, 8);
  }
  EXPECT_GT(moved, 30u);  // a new partition seed reshuffles zones
}

TEST(MultiReader, CoversInventoryExactlyOnce) {
  const auto pop = uniform(3000, 3);
  MultiReaderConfig config;
  config.readers = 3;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 3000u);
  EXPECT_EQ(report.per_reader.size(), 3u);
}

TEST(MultiReader, SingleReaderDegeneratesToPlainRun) {
  const auto pop = uniform(500, 4);
  MultiReaderConfig config;
  config.readers = 1;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_DOUBLE_EQ(report.makespan_s, report.total_busy_s);
  EXPECT_EQ(report.per_reader.front().metrics.polls, 500u);
}

TEST(MultiReader, TimeDivisionMakespanIsSum) {
  const auto pop = uniform(2000, 5);
  MultiReaderConfig config;
  config.readers = 4;
  config.schedule = ReaderSchedule::kTimeDivision;
  const auto report = run_multi_reader(pop, config);
  double sum = 0.0;
  for (const auto& r : report.per_reader) sum += r.exec_time_s();
  EXPECT_NEAR(report.makespan_s, sum, 1e-9);
}

TEST(MultiReader, SpatialParallelMakespanIsMax) {
  const auto pop = uniform(2000, 6);
  MultiReaderConfig config;
  config.readers = 4;
  config.schedule = ReaderSchedule::kSpatialParallel;
  const auto report = run_multi_reader(pop, config);
  double max_t = 0.0;
  for (const auto& r : report.per_reader)
    max_t = std::max(max_t, r.exec_time_s());
  EXPECT_NEAR(report.makespan_s, max_t, 1e-9);
  EXPECT_LT(report.makespan_s, report.total_busy_s);
}

TEST(MultiReader, SpatialParallelismScalesSweeps) {
  // Four isolated zones should sweep ~4x faster than one reader; TPP's flat
  // vector length means near-ideal scaling (only round-granularity loss).
  const auto pop = uniform(8000, 7);
  MultiReaderConfig one;
  one.readers = 1;
  MultiReaderConfig four;
  four.readers = 4;
  four.schedule = ReaderSchedule::kSpatialParallel;
  const double t1 = run_multi_reader(pop, one).makespan_s;
  const double t4 = run_multi_reader(pop, four).makespan_s;
  EXPECT_LT(t4, t1 / 3.0);
  EXPECT_GT(t4, t1 / 5.0);
}

TEST(MultiReader, WorksForEveryProtocol) {
  const auto pop = uniform(900, 8);
  for (const auto kind : protocols::all_protocols()) {
    MultiReaderConfig config;
    config.readers = 3;
    config.kind = kind;
    const auto report = run_multi_reader(pop, config);
    EXPECT_TRUE(report.verified) << protocols::to_string(kind);
  }
}

TEST(MultiReader, NoisyChannelStillCoversExactly) {
  const auto pop = uniform(1500, 21);
  MultiReaderConfig config;
  config.readers = 3;
  config.session.reply_error_rate = 0.2;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 1500u);
}

TEST(MultiReader, MoreReadersThanTags) {
  const auto pop = uniform(3, 9);
  MultiReaderConfig config;
  config.readers = 8;
  const auto report = run_multi_reader(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 3u);
}

TEST(MultiReader, EmptyInventory) {
  const tags::TagPopulation empty;
  MultiReaderConfig config;
  config.readers = 2;
  const auto report = run_multi_reader(empty, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.collected, 0u);
  EXPECT_DOUBLE_EQ(report.makespan_s, 0.0);
}

TEST(MultiReader, InvalidReaderCountRejected) {
  const auto pop = uniform(10, 10);
  MultiReaderConfig config;
  config.readers = 0;
  EXPECT_THROW((void)run_multi_reader(pop, config), ContractViolation);
}

}  // namespace
}  // namespace rfid::core
