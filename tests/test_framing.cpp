// CRC-framed segmented broadcast and adaptive degradation tests.
//
// Contracts, in order: the segment frame codec detects every single-bit
// corruption; framed runs under BER account for every tag (collected,
// missing, or loudly undelivered — never a silently wrong payload); a
// saturated channel (BER 1) undelivers the whole population exactly instead
// of hanging; framing with a clean channel changes accounting overhead but
// not the collection itself; ADAPT is byte-equivalent to TPP on a clean
// channel and degrades (with a typed event) on a corrupt one; and the whole
// corruption path replays deterministically, serial or pooled.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/degradation.hpp"
#include "common/rng.hpp"
#include "core/polling.hpp"
#include "obs/phase_timer.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"
#include "phy/framing.hpp"
#include "sim/report_io.hpp"
#include "sim/verify.hpp"

namespace rfid {
namespace {

using core::ProtocolKind;

tags::TagPopulation make_population(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return tags::TagPopulation::uniform_random(n, rng);
}

// --- Segment frame codec ----------------------------------------------------

TEST(SegmentFrame, EncodeDecodeRoundTrip) {
  Xoshiro256ss rng(5);
  for (unsigned payload_bits = 1; payload_bits <= 64; ++payload_bits) {
    phy::SegmentFrame frame;
    frame.seq = static_cast<unsigned>(rng.below(16));
    for (unsigned b = 0; b < payload_bits; ++b)
      frame.payload.push_back((rng() & 1u) != 0);
    const BitVec wire = frame.encode();
    EXPECT_EQ(wire.size(), payload_bits + phy::kSegmentOverheadBits);
    const auto decoded = phy::SegmentFrame::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "payload_bits " << payload_bits;
    EXPECT_EQ(decoded->seq, frame.seq);
    EXPECT_TRUE(decoded->payload == frame.payload);
  }
}

TEST(SegmentFrame, DetectsEverySingleBitFlip) {
  // CRC-16/CCITT detects all single-bit errors; here that guarantee is
  // exercised on the wire image, header and trailer included.
  Xoshiro256ss rng(6);
  phy::SegmentFrame frame;
  frame.seq = 9;
  for (unsigned b = 0; b < 48; ++b) frame.payload.push_back((rng() & 1u) != 0);
  const BitVec wire = frame.encode();
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    BitVec corrupted;
    for (std::size_t i = 0; i < wire.size(); ++i)
      corrupted.push_back(i == pos ? !wire.bit(i) : wire.bit(i));
    EXPECT_FALSE(phy::SegmentFrame::decode(corrupted).has_value())
        << "flip at bit " << pos << " went undetected";
  }
}

TEST(FramingConfig, SegmentArithmetic) {
  phy::FramingConfig framing;
  framing.segment_payload_bits = 32;
  EXPECT_EQ(framing.segment_count(0), 0u);
  EXPECT_EQ(framing.segment_count(1), 1u);
  EXPECT_EQ(framing.segment_count(32), 1u);
  EXPECT_EQ(framing.segment_count(33), 2u);
  EXPECT_EQ(framing.segment_count(128), 4u);
  EXPECT_EQ(framing.overhead_bits(128), 4u * phy::kSegmentOverheadBits);
  EXPECT_EQ(framing.framed_bits(40), 40u + 2u * phy::kSegmentOverheadBits);
}

TEST(FramingConfig, BackoffDoublesUntilCap) {
  phy::FramingConfig framing;
  framing.backoff_base_us = 100.0;
  framing.backoff_cap_us = 3200.0;
  EXPECT_DOUBLE_EQ(framing.backoff_us(1), 100.0);
  EXPECT_DOUBLE_EQ(framing.backoff_us(2), 200.0);
  EXPECT_DOUBLE_EQ(framing.backoff_us(5), 1600.0);
  EXPECT_DOUBLE_EQ(framing.backoff_us(6), 3200.0);
  EXPECT_DOUBLE_EQ(framing.backoff_us(12), 3200.0);
}

// --- End-to-end corruption resilience ---------------------------------------

struct FramingCase final {
  ProtocolKind kind;
};

class FramedSweep : public ::testing::TestWithParam<FramingCase> {};

sim::SessionConfig framed_config(std::uint64_t seed, double ber) {
  sim::SessionConfig config;
  config.seed = seed;
  config.fault.downlink_ber = ber;
  config.framing.enabled = true;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 12;
  return config;
}

TEST_P(FramedSweep, EveryTagDeliveredOrListedUnderBer) {
  // The tentpole acceptance contract: with BER > 0 and framing on, every
  // trial either delivers each tag's data (payload checked against ground
  // truth — no silent mis-delivery) or lists the exact shortfall in
  // undelivered_ids.
  for (const std::uint64_t seed : {7ull, 8ull}) {
    for (const double ber : {0.001, 0.01}) {
      const auto pop = make_population(400, seed);
      const auto result = protocols::make_protocol(GetParam().kind)
                              ->run(pop, framed_config(seed, ber));
      const auto verify = sim::verify_complete_collection(pop, result);
      EXPECT_TRUE(verify.ok)
          << "seed " << seed << " ber " << ber << ": " << verify.message;
      EXPECT_TRUE(result.fault_layer);
      EXPECT_TRUE(result.missing_ids.empty());
      EXPECT_EQ(result.records.size() + result.undelivered_ids.size(),
                pop.size());
    }
  }
}

TEST_P(FramedSweep, ModerateBerIsSurvivedCompletely) {
  // At BER 1e-3 a 12-deep retransmission ladder makes segment loss
  // essentially impossible: the run must deliver everything, and the
  // corruption it did see must be visible in the new counters.
  const auto pop = make_population(500, 11);
  const auto result = protocols::make_protocol(GetParam().kind)
                          ->run(pop, framed_config(11, 1e-3));
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
  EXPECT_EQ(result.records.size(), pop.size());
  EXPECT_TRUE(result.undelivered_ids.empty());
  EXPECT_GT(result.metrics.segments_sent, 0u);
  EXPECT_GT(result.metrics.framing_overhead_bits, 0u);
  if (result.metrics.segments_corrupted > 0) {
    EXPECT_GT(result.metrics.segments_retransmitted, 0u);
    EXPECT_GT(result.metrics.phases.get(obs::Phase::kRecovery), 0.0);
  }
  // The phase split still partitions the clock exactly.
  double phase_sum = 0.0;
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p)
    phase_sum += result.metrics.phases.get(static_cast<obs::Phase>(p));
  EXPECT_NEAR(phase_sum, result.metrics.time_us,
              1e-9 * result.metrics.time_us);
}

TEST_P(FramedSweep, SaturatedChannelUndeliversWholePopulationExactly) {
  // BER 1 corrupts every frame: nothing can ever be delivered. The run must
  // terminate (bounded retransmission + bounded round retries) and report
  // the entire population undelivered — exactly, loudly, no hang.
  const auto pop = make_population(64, 13);
  auto config = framed_config(13, 1.0);
  config.recovery.enabled = false;  // pure framing-layer give-up path
  const auto result =
      protocols::make_protocol(GetParam().kind)->run(pop, config);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
  EXPECT_TRUE(result.records.empty());
  std::set<TagId> undelivered(result.undelivered_ids.begin(),
                              result.undelivered_ids.end());
  EXPECT_EQ(undelivered.size(), pop.size());
  for (const tags::Tag& tag : pop) EXPECT_TRUE(undelivered.contains(tag.id()));
}

TEST_P(FramedSweep, CleanChannelFramingOnlyAddsOverhead) {
  // With BER 0, framing must not change which tags are read or in which
  // order (it draws nothing from the fault stream); it only adds the
  // per-segment header/CRC bits to the command accounting.
  const auto pop = make_population(300, 17);
  sim::SessionConfig unframed;
  unframed.seed = 17;
  sim::SessionConfig framed = unframed;
  framed.framing.enabled = true;

  const auto protocol = protocols::make_protocol(GetParam().kind);
  const auto plain = protocol->run(pop, unframed);
  const auto wrapped = protocol->run(pop, framed);

  ASSERT_EQ(plain.records.size(), wrapped.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i)
    EXPECT_EQ(plain.records[i].id, wrapped.records[i].id) << "record " << i;
  EXPECT_EQ(wrapped.metrics.segments_corrupted, 0u);
  EXPECT_EQ(wrapped.metrics.segments_retransmitted, 0u);
  EXPECT_EQ(wrapped.metrics.framing_overhead_bits,
            wrapped.metrics.segments_sent *
                std::uint64_t{phy::kSegmentOverheadBits});
  EXPECT_EQ(wrapped.metrics.command_bits,
            plain.metrics.command_bits + wrapped.metrics.framing_overhead_bits);
}

TEST_P(FramedSweep, CorruptionPathReplaysByteIdentically) {
  const auto pop = make_population(350, 19);
  const auto config = framed_config(19, 0.02);
  const auto protocol = protocols::make_protocol(GetParam().kind);
  const auto a = protocol->run(pop, config);
  const auto b = protocol->run(pop, config);
  EXPECT_EQ(sim::to_json(a, {true, true, 2}), sim::to_json(b, {true, true, 2}));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, FramedSweep,
    ::testing::Values(FramingCase{ProtocolKind::kHpp},
                      FramingCase{ProtocolKind::kEhpp},
                      FramingCase{ProtocolKind::kTpp},
                      FramingCase{ProtocolKind::kAdaptive}),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param.kind));
    });

// --- Adaptive degradation ---------------------------------------------------

TEST(Adaptive, MatchesTppExactlyOnCleanChannel) {
  // The degradation monitor is pure arithmetic on observed corruption: with
  // BER 0 it never fires, no extra RNG draw happens, and ADAPT's rounds are
  // the same TPP rounds — identical metrics and identical collection order.
  const auto pop = make_population(700, 23);
  sim::SessionConfig config;
  config.seed = 23;
  const auto tpp =
      protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
  const auto adapt =
      protocols::make_protocol(ProtocolKind::kAdaptive)->run(pop, config);

  EXPECT_EQ(adapt.metrics.degradations, 0u);
  EXPECT_EQ(adapt.metrics.polls, tpp.metrics.polls);
  EXPECT_EQ(adapt.metrics.rounds, tpp.metrics.rounds);
  EXPECT_EQ(adapt.metrics.vector_bits, tpp.metrics.vector_bits);
  EXPECT_EQ(adapt.metrics.command_bits, tpp.metrics.command_bits);
  EXPECT_EQ(adapt.metrics.tag_bits, tpp.metrics.tag_bits);
  EXPECT_DOUBLE_EQ(adapt.metrics.time_us, tpp.metrics.time_us);
  ASSERT_EQ(adapt.records.size(), tpp.records.size());
  for (std::size_t i = 0; i < adapt.records.size(); ++i)
    EXPECT_EQ(adapt.records[i].id, tpp.records[i].id) << "record " << i;
}

TEST(Adaptive, DegradesAwayFromTppOnHeavilyCorruptedChannel) {
  // Past BER ~0.06 a 52-bit TPP chunk frame fails so much more often than
  // HPP's shorter per-tag frames that the amortization advantage flips:
  // the cost model must trigger at least one downgrade, recorded in the
  // typed counter — and the run must still account for every tag. (The
  // deeper retransmission ladder keeps the 52-bit round-init deliverable at
  // this BER; the ablation bench sweeps the same regime for air time.)
  const auto pop = make_population(600, 29);
  auto config = framed_config(29, 0.07);
  config.framing.max_retransmissions = 16;
  const auto result =
      protocols::make_protocol(ProtocolKind::kAdaptive)->run(pop, config);
  EXPECT_GE(result.metrics.degradations, 1u);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
  EXPECT_EQ(result.records.size(), pop.size());
}

TEST(Adaptive, TierCostModelCrossesOver) {
  // Unit-level sanity on the analysis model the session consults: on a
  // clean channel TPP is the cheapest tier; on a badly corrupted one it is
  // not, and select_tier walks down the ladder.
  analysis::ChannelModel clean{0.0, 32, 9};
  analysis::ChannelModel dirty{0.1, 32, 9};
  const std::size_t n = 1000;
  EXPECT_LT(analysis::tier_cost_per_tag(analysis::PollingTier::kTpp, n, clean),
            analysis::tier_cost_per_tag(analysis::PollingTier::kHpp, n, clean));
  EXPECT_GT(analysis::tier_cost_per_tag(analysis::PollingTier::kTpp, n, dirty),
            analysis::tier_cost_per_tag(analysis::PollingTier::kHpp, n, dirty));
  EXPECT_EQ(analysis::select_tier(analysis::PollingTier::kTpp, n, clean),
            analysis::PollingTier::kTpp);
  EXPECT_NE(analysis::select_tier(analysis::PollingTier::kTpp, n, dirty),
            analysis::PollingTier::kTpp);
  // Downgrade-only ladder: from HPP there is nowhere further down.
  EXPECT_EQ(analysis::select_tier(analysis::PollingTier::kHpp, n, dirty),
            analysis::PollingTier::kHpp);
}

// --- Parallel determinism ---------------------------------------------------

TEST(FramingDeterminism, SerialAndPooledTrialsAgreeUnderBer) {
  parallel::TrialPlan plan;
  plan.trials = 10;
  plan.master_seed = 31;
  plan.session.fault.downlink_ber = 0.01;
  plan.session.framing.enabled = true;
  plan.session.recovery.enabled = true;
  plan.session.recovery.retry_budget = 10;
  const auto protocol = protocols::make_protocol(ProtocolKind::kAdaptive);
  const auto factory = parallel::uniform_population(250);

  const auto serial = parallel::run_trials(*protocol, factory, plan, nullptr);
  parallel::ThreadPool pool(4);
  const auto pooled = parallel::run_trials(*protocol, factory, plan, &pool);

  EXPECT_EQ(serial.totals.polls, pooled.totals.polls);
  EXPECT_EQ(serial.totals.downlink_corrupted, pooled.totals.downlink_corrupted);
  EXPECT_EQ(serial.totals.segments_sent, pooled.totals.segments_sent);
  EXPECT_EQ(serial.totals.segments_retransmitted,
            pooled.totals.segments_retransmitted);
  EXPECT_EQ(serial.totals.undelivered, pooled.totals.undelivered);
  EXPECT_EQ(serial.totals.degradations, pooled.totals.degradations);
  EXPECT_DOUBLE_EQ(serial.totals.time_us, pooled.totals.time_us);
  ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.outcomes[i].exec_time_s,
                     pooled.outcomes[i].exec_time_s);
}

}  // namespace
}  // namespace rfid
