// Closed-form time projections vs the simulator: each validates the other.
#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "core/polling.hpp"
#include "core/projection.hpp"

namespace rfid::core {
namespace {

double simulated_time_s(ProtocolKind kind, std::size_t n, std::size_t l,
                        std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.info_bits = l;
  config.seed = seed + 1;
  config.keep_records = false;
  return protocols::make_protocol(kind)->run(pop, config).exec_time_s();
}

struct ProjectionCase final {
  ProtocolKind kind;
  std::size_t n;
  std::size_t l;
  double tolerance;  ///< relative
};

class ProjectionSweep : public ::testing::TestWithParam<ProjectionCase> {};

TEST_P(ProjectionSweep, ModelTracksSimulation) {
  const auto [kind, n, l, tolerance] = GetParam();
  const auto projected = projected_protocol_time_s(kind, n, l);
  ASSERT_TRUE(projected.has_value());
  const double simulated = simulated_time_s(kind, n, l, 1234 + n);
  EXPECT_LT(relative_difference(*projected, simulated), tolerance)
      << protocols::to_string(kind) << " projected " << *projected
      << " vs simulated " << simulated;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProjectionSweep,
    ::testing::Values(
        ProjectionCase{ProtocolKind::kCpp, 1000, 1, 1e-9},    // exact
        ProjectionCase{ProtocolKind::kCpp, 5000, 32, 1e-9},
        ProjectionCase{ProtocolKind::kCodedPolling, 1000, 1, 0.01},
        ProjectionCase{ProtocolKind::kHpp, 5000, 1, 0.03},
        ProjectionCase{ProtocolKind::kHpp, 20000, 16, 0.03},
        ProjectionCase{ProtocolKind::kEhpp, 10000, 1, 0.05},
        ProjectionCase{ProtocolKind::kTpp, 10000, 1, 0.05},
        ProjectionCase{ProtocolKind::kTpp, 30000, 32, 0.05}),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param.kind)) + "_n" +
             std::to_string(param_info.param.n) + "_l" +
             std::to_string(param_info.param.l);
    });

TEST(Projection, UnmodeledProtocolsReturnNullopt) {
  EXPECT_FALSE(projected_protocol_time_s(ProtocolKind::kMic, 100, 1));
  EXPECT_FALSE(projected_protocol_time_s(ProtocolKind::kSic, 100, 1));
  EXPECT_FALSE(projected_protocol_time_s(ProtocolKind::kDfsa, 100, 1));
  EXPECT_FALSE(projected_protocol_time_s(ProtocolKind::kPrefixCpp, 100, 1));
}

TEST(Projection, OrderingMatchesPaper) {
  const std::size_t n = 10000;
  const double cpp = *projected_protocol_time_s(ProtocolKind::kCpp, n, 1);
  const double cp =
      *projected_protocol_time_s(ProtocolKind::kCodedPolling, n, 1);
  const double hpp = *projected_protocol_time_s(ProtocolKind::kHpp, n, 1);
  const double ehpp = *projected_protocol_time_s(ProtocolKind::kEhpp, n, 1);
  const double tpp = *projected_protocol_time_s(ProtocolKind::kTpp, n, 1);
  EXPECT_LT(tpp, ehpp);
  EXPECT_LT(ehpp, hpp);
  EXPECT_LT(hpp, cp);
  EXPECT_LT(cp, cpp);
}

}  // namespace
}  // namespace rfid::core
