// Unit and property tests for the TPP polling tree (paper Section IV-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "common/bitvec.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "protocols/polling_tree.hpp"

namespace rfid::protocols {
namespace {

std::vector<std::uint32_t> paper_example_indices() {
  // Fig. 6 of the paper: five singleton indices with h = 3 picked by tags
  // A..E: 000, 010, 011, 101, 111.
  return {0b000, 0b010, 0b011, 0b101, 0b111};
}

std::vector<std::uint32_t> random_indices(unsigned h, double density,
                                          Xoshiro256ss& rng) {
  const std::size_t space = std::size_t{1} << h;
  std::set<std::uint32_t> chosen;
  const auto target = static_cast<std::size_t>(
      std::max(1.0, density * static_cast<double>(space)));
  while (chosen.size() < std::min(target, space))
    chosen.insert(static_cast<std::uint32_t>(rng.below(space)));
  return {chosen.begin(), chosen.end()};
}

TEST(PollingTree, PaperExampleNodeCount) {
  // Fig. 7: the reader transmits 11 bits in total instead of 5 * 3 = 15.
  const auto indices = paper_example_indices();
  const PollingTree tree(indices, 3);
  EXPECT_EQ(tree.node_count(), 11u);
  EXPECT_EQ(tree.leaf_count(), 5u);
  EXPECT_EQ(tree.height(), 3u);
}

TEST(PollingTree, PaperExampleSegments) {
  // Fig. 7 broadcast sequence: "000", "10", "1", "101", "11".
  const auto indices = paper_example_indices();
  const auto segments = PollingTree(indices, 3).segments();
  ASSERT_EQ(segments.size(), 5u);
  const std::vector<std::pair<std::uint32_t, unsigned>> expected = {
      {0b000, 3}, {0b10, 2}, {0b1, 1}, {0b101, 3}, {0b11, 2}};
  const std::vector<std::uint32_t> completed = {0b000, 0b010, 0b011, 0b101,
                                                0b111};
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(segments[j].bits, expected[j].first) << "segment " << j;
    EXPECT_EQ(segments[j].length, expected[j].second) << "segment " << j;
    EXPECT_EQ(segments[j].completed_index, completed[j]) << "segment " << j;
  }
}

TEST(PollingTree, SegmentsFromIndicesMatchesPaperExample) {
  const auto indices = paper_example_indices();
  const auto segments = PollingTree::segments_from_indices(indices, 3);
  ASSERT_EQ(segments.size(), 5u);
  EXPECT_EQ(segments[0].length, 3u);
  EXPECT_EQ(segments[1].length, 2u);
  EXPECT_EQ(segments[2].length, 1u);
  EXPECT_EQ(segments[3].length, 3u);
  EXPECT_EQ(segments[4].length, 2u);
}

TEST(PollingTree, SingleLeafCostsFullHeight) {
  const std::vector<std::uint32_t> one = {0b1010};
  const PollingTree tree(one, 4);
  EXPECT_EQ(tree.node_count(), 4u);
  const auto segments = tree.segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].length, 4u);
  EXPECT_EQ(segments[0].bits, 0b1010u);
}

TEST(PollingTree, FullTreeSharesEverything) {
  // All 2^h indices: node count = 2^{h+1} - 2 (complete binary tree).
  std::vector<std::uint32_t> all(16);
  std::iota(all.begin(), all.end(), 0);
  const PollingTree tree(all, 4);
  EXPECT_EQ(tree.node_count(), 30u);
  EXPECT_EQ(tree.leaf_count(), 16u);
  // Average bits per leaf in a full tree: (2^{h+1} - 2) / 2^h < 2.
  EXPECT_LT(double(tree.node_count()) / double(tree.leaf_count()), 2.0);
}

TEST(PollingTree, HeightZeroDegenerateCase) {
  const std::vector<std::uint32_t> lone = {0};
  const PollingTree tree(lone, 0);
  EXPECT_EQ(tree.node_count(), 0u);
  const auto segments = tree.segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].length, 0u);
}

TEST(PollingTree, DuplicateIndicesRejected) {
  const std::vector<std::uint32_t> dup = {3, 3};
  EXPECT_THROW(PollingTree(dup, 2), ContractViolation);
  EXPECT_THROW(PollingTree::segments_from_indices(dup, 2), ContractViolation);
}

TEST(PollingTree, IndexOutOfRangeRejected) {
  const std::vector<std::uint32_t> bad = {4};
  EXPECT_THROW(PollingTree(bad, 2), ContractViolation);
}

TEST(PollingTree, SegmentsVisitLeavesInAscendingOrder) {
  const std::vector<std::uint32_t> indices = {6, 1, 4, 0, 7};
  const auto segments = PollingTree(indices, 3).segments();
  for (std::size_t j = 1; j < segments.size(); ++j)
    EXPECT_LT(segments[j - 1].completed_index, segments[j].completed_index);
}

TEST(PollingTree, MaxNodeCountEquationSeven) {
  // Eq. (7) spot checks: m = 2, h = 3 -> 6; m = 5, h = 3 -> 11; m=1 -> h.
  EXPECT_EQ(PollingTree::max_node_count(1, 7), 7u);
  EXPECT_EQ(PollingTree::max_node_count(2, 3), 6u);
  EXPECT_EQ(PollingTree::max_node_count(5, 3), 2u * 4u - 2u + 5u * 1u);
  EXPECT_EQ(PollingTree::max_node_count(0, 5), 0u);
}

// ---------------------------------------------------------------------------
// Tag-side stream decoding and the unframed-corruption regression.

BitVec stream_of(const std::vector<TreeSegment>& segments) {
  BitVec stream;
  for (const TreeSegment& seg : segments)
    stream.append_bits(seg.bits, seg.length);
  return stream;
}

std::vector<unsigned> lengths_of(const std::vector<TreeSegment>& segments) {
  std::vector<unsigned> lengths;
  for (const TreeSegment& seg : segments) lengths.push_back(seg.length);
  return lengths;
}

BitVec flip_bit(const BitVec& stream, std::size_t pos) {
  BitVec out;
  for (std::size_t i = 0; i < stream.size(); ++i)
    out.push_back(i == pos ? !stream.bit(i) : stream.bit(i));
  return out;
}

TEST(DecodeSegmentStream, ReconstructsPaperExample) {
  const auto indices = paper_example_indices();
  const auto segments = PollingTree::segments_from_indices(indices, 3);
  const auto decoded = PollingTree::decode_segment_stream(
      stream_of(segments), lengths_of(segments), 3);
  EXPECT_EQ(decoded, indices);  // already sorted
}

TEST(DecodeSegmentStream, RejectsLengthMismatch) {
  const auto indices = paper_example_indices();
  const auto segments = PollingTree::segments_from_indices(indices, 3);
  BitVec truncated = stream_of(segments);
  std::vector<unsigned> lengths = lengths_of(segments);
  lengths.push_back(2);  // claims more bits than the stream holds
  EXPECT_THROW(PollingTree::decode_segment_stream(truncated, lengths, 3),
               ContractViolation);
}

// The regression the framing layer exists to prevent: the pre-order stream
// is differential, so one un-framed bit flip silently mis-addresses every
// tag at and after the flip point. With all singleton indices below
// 2^(h-1), the register's most significant bit is written exactly once (by
// the first, full-length segment) — flip it on the air and no later
// segment ever rewrites it, so *every* decoded index lands in the empty
// upper half of the index space: no tag is addressed, and the whole round's
// tags are stranded without any tag (or the reader) noticing.
TEST(DecodeSegmentStream, SingleBitFlipStrandsEveryTagAfterFlipPoint) {
  const std::vector<std::uint32_t> indices = {0b0001, 0b0010, 0b0101,
                                              0b0110, 0b0111};  // all < 2^3
  const unsigned h = 4;
  const auto segments = PollingTree::segments_from_indices(indices, h);
  const BitVec clean = stream_of(segments);
  const auto lengths = lengths_of(segments);
  ASSERT_EQ(PollingTree::decode_segment_stream(clean, lengths, h), indices);

  const auto corrupted = PollingTree::decode_segment_stream(
      flip_bit(clean, 0), lengths, h);  // bit 0 is the round's only MSB write
  const std::set<std::uint32_t> singleton_set(indices.begin(), indices.end());
  ASSERT_EQ(corrupted.size(), indices.size());
  for (std::size_t j = 0; j < corrupted.size(); ++j) {
    EXPECT_NE(corrupted[j], indices[j]) << "segment " << j;
    EXPECT_FALSE(singleton_set.contains(corrupted[j]))
        << "segment " << j << " still addresses a real tag";
  }
}

TEST(DecodeSegmentStream, EveryFlipCorruptsItsOwnSegment) {
  // Weaker but exhaustive: whichever bit flips, the segment containing it
  // decodes to the wrong index — the tag that segment was meant to poll
  // never replies. (Later segments may or may not heal, depending on
  // whether they overwrite the flipped position.)
  Xoshiro256ss rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const auto indices = random_indices(6, 0.3, rng);
    const auto segments = PollingTree::segments_from_indices(indices, 6);
    const BitVec clean = stream_of(segments);
    const auto lengths = lengths_of(segments);
    const auto truth = PollingTree::decode_segment_stream(clean, lengths, 6);
    for (std::size_t pos = 0; pos < clean.size(); ++pos) {
      const auto decoded = PollingTree::decode_segment_stream(
          flip_bit(clean, pos), lengths, 6);
      std::size_t seg = 0;
      std::size_t consumed = 0;
      while (consumed + lengths[seg] <= pos) consumed += lengths[seg++];
      EXPECT_NE(decoded[seg], truth[seg]) << "flip at bit " << pos;
    }
  }
}

// ---------------------------------------------------------------------------
// Property tests: randomized index sets, swept over (h, density).

struct TreeCase final {
  unsigned h;
  double density;  ///< fraction of the 2^h index space used
};

class PollingTreeProperty : public ::testing::TestWithParam<TreeCase> {};

TEST_P(PollingTreeProperty, TrieAndSortedEncodingsAgree) {
  const auto [h, density] = GetParam();
  Xoshiro256ss rng(1000 + h);
  for (int trial = 0; trial < 20; ++trial) {
    const auto indices = random_indices(h, density, rng);
    const PollingTree tree(indices, h);
    const auto from_tree = tree.segments();
    const auto from_sort = PollingTree::segments_from_indices(indices, h);
    ASSERT_EQ(from_tree.size(), from_sort.size());
    for (std::size_t j = 0; j < from_tree.size(); ++j) {
      EXPECT_EQ(from_tree[j].bits, from_sort[j].bits);
      EXPECT_EQ(from_tree[j].length, from_sort[j].length);
      EXPECT_EQ(from_tree[j].completed_index, from_sort[j].completed_index);
    }
  }
}

TEST_P(PollingTreeProperty, TotalBitsEqualNodeCount) {
  const auto [h, density] = GetParam();
  Xoshiro256ss rng(2000 + h);
  for (int trial = 0; trial < 20; ++trial) {
    const auto indices = random_indices(h, density, rng);
    const PollingTree tree(indices, h);
    std::size_t bits = 0;
    for (const TreeSegment& seg : tree.segments()) bits += seg.length;
    EXPECT_EQ(bits, tree.node_count());
  }
}

TEST_P(PollingTreeProperty, NodeCountWithinEquationSevenBound) {
  const auto [h, density] = GetParam();
  Xoshiro256ss rng(3000 + h);
  for (int trial = 0; trial < 20; ++trial) {
    const auto indices = random_indices(h, density, rng);
    const PollingTree tree(indices, h);
    EXPECT_LE(tree.node_count(),
              PollingTree::max_node_count(indices.size(), h));
    // Lower bound: every leaf contributes at least one fresh node, and the
    // deepest path costs h.
    EXPECT_GE(tree.node_count() + 1, indices.size() + (h > 0 ? 1 : 0));
  }
}

TEST_P(PollingTreeProperty, SegmentsReconstructIndices) {
  // Replaying the register-update rule over the segments must reproduce
  // exactly the sorted index set — this is the tag-side decoding contract.
  const auto [h, density] = GetParam();
  Xoshiro256ss rng(4000 + h);
  for (int trial = 0; trial < 20; ++trial) {
    auto indices = random_indices(h, density, rng);
    const auto segments = PollingTree::segments_from_indices(indices, h);
    std::sort(indices.begin(), indices.end());
    std::uint32_t reg = 0;
    const std::uint32_t space_mask =
        h >= 32 ? ~0u : static_cast<std::uint32_t>((1ull << h) - 1);
    ASSERT_EQ(segments.size(), indices.size());
    for (std::size_t j = 0; j < segments.size(); ++j) {
      const unsigned k = segments[j].length;
      const std::uint32_t keep = (k >= 32) ? 0u : (~0u << k);
      reg = (reg & keep & space_mask) | segments[j].bits;
      EXPECT_EQ(reg, indices[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PollingTreeProperty,
    ::testing::Values(TreeCase{1, 0.5}, TreeCase{2, 0.5}, TreeCase{3, 0.3},
                      TreeCase{4, 0.35}, TreeCase{6, 0.35}, TreeCase{8, 0.35},
                      TreeCase{10, 0.35}, TreeCase{12, 0.2},
                      TreeCase{14, 0.05}, TreeCase{16, 0.01}),
    [](const auto& param_info) {
      return "h" + std::to_string(param_info.param.h) + "_d" +
             std::to_string(int(param_info.param.density * 100));
    });

}  // namespace
}  // namespace rfid::protocols
