// Tests for the Enhanced Hash Polling Protocol (paper Section III-D).
#include <gtest/gtest.h>

#include "analysis/ehpp_model.hpp"
#include "common/math_util.hpp"
#include "protocols/enhanced_hash_polling.hpp"
#include "protocols/hash_polling.hpp"
#include "sim/verify.hpp"

namespace rfid::protocols {
namespace {

sim::RunResult run_ehpp(std::size_t n, std::uint64_t seed,
                        Ehpp::Config config = Ehpp::Config()) {
  Xoshiro256ss rng(seed);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig session;
  session.seed = seed * 31 + 5;
  return Ehpp(config).run(pop, session);
}

TEST(Ehpp, CompleteCollection) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(3000, rng)
                       .with_random_payloads(8, rng);
  sim::SessionConfig session;
  session.info_bits = 8;
  const auto result = Ehpp().run(pop, session);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Ehpp, NoSlotWaste) {
  const auto result = run_ehpp(2000, 2);
  EXPECT_EQ(result.metrics.polls, 2000u);
  EXPECT_EQ(result.channel.collision_slots, 0u);
  EXPECT_EQ(result.channel.empty_slots, 0u);
}

TEST(Ehpp, SmallPopulationEqualsHpp) {
  // The paper's tables show EHPP == HPP at n = 100: below the optimal
  // subset size no circle command is issued. Times must agree exactly
  // (HPP counts its init as command bits, EHPP as vector bits, so compare
  // total time and poll count rather than the w split).
  Xoshiro256ss rng(3);
  const auto pop = tags::TagPopulation::uniform_random(100, rng);
  sim::SessionConfig session;
  session.seed = 77;
  const auto ehpp = Ehpp().run(pop, session);
  const auto hpp = Hpp().run(pop, session);
  EXPECT_DOUBLE_EQ(ehpp.metrics.time_us, hpp.metrics.time_us);
  EXPECT_EQ(ehpp.metrics.circles, 0u);
  EXPECT_EQ(ehpp.metrics.vector_bits,
            hpp.metrics.vector_bits + hpp.metrics.command_bits);
}

TEST(Ehpp, VectorLengthStableAcrossPopulations) {
  // Fig. 10: EHPP's w stays ~9 bits regardless of n (l_c = 128).
  const double w_small = run_ehpp(5000, 4).avg_vector_bits();
  const double w_large = run_ehpp(40000, 5).avg_vector_bits();
  EXPECT_NEAR(w_small, w_large, 0.8);
  EXPECT_NEAR(w_small, 9.0, 1.0);
}

TEST(Ehpp, BeatsHppAtScale) {
  Xoshiro256ss rng(6);
  const auto pop = tags::TagPopulation::uniform_random(20000, rng);
  sim::SessionConfig session;
  session.seed = 99;
  const double w_hpp = Hpp().run(pop, session).avg_vector_bits();
  const double w_ehpp = Ehpp().run(pop, session).avg_vector_bits();
  EXPECT_LT(w_ehpp, w_hpp - 3.0);
}

TEST(Ehpp, LongerCircleCommandRaisesVector) {
  // Fig. 5: w increases with l_c.
  const double w_100 =
      run_ehpp(20000, 7, Ehpp::Config{.circle_command_bits = 100})
          .avg_vector_bits();
  const double w_400 =
      run_ehpp(20000, 8, Ehpp::Config{.circle_command_bits = 400})
          .avg_vector_bits();
  EXPECT_LT(w_100, w_400);
}

TEST(Ehpp, UsesMultipleCirclesAtScale) {
  const auto result = run_ehpp(10000, 9);
  EXPECT_GT(result.metrics.circles, 10u);
}

TEST(Ehpp, EffectiveSubsetSizeFollowsOptimizer) {
  const Ehpp defaulted;
  EXPECT_EQ(defaulted.effective_subset_size(),
            analysis::ehpp_optimal_subset_size(128.0, 32.0));
  const Ehpp pinned(Ehpp::Config{.subset_size = 500});
  EXPECT_EQ(pinned.effective_subset_size(), 500u);
}

TEST(Ehpp, MisconfiguredSubsetSizeStillCompletes) {
  // Robustness: a pathological subset size must degrade, not break.
  const auto tiny = run_ehpp(3000, 10, Ehpp::Config{.subset_size = 5});
  EXPECT_EQ(tiny.metrics.polls, 3000u);
  const auto huge = run_ehpp(3000, 11, Ehpp::Config{.subset_size = 100000});
  EXPECT_EQ(huge.metrics.polls, 3000u);
}

TEST(Ehpp, OptimalSubsetBeatsNeighbours) {
  // Ablation in miniature: the optimizer's n* should beat 4x-off settings.
  const std::size_t star = Ehpp().effective_subset_size();
  const double w_star = run_ehpp(20000, 12).avg_vector_bits();
  const double w_small =
      run_ehpp(20000, 12, Ehpp::Config{.subset_size = star / 4})
          .avg_vector_bits();
  const double w_big =
      run_ehpp(20000, 12, Ehpp::Config{.subset_size = star * 4})
          .avg_vector_bits();
  EXPECT_LT(w_star, w_small);
  EXPECT_LT(w_star, w_big);
}

TEST(Ehpp, DeterministicReplay) {
  const auto a = run_ehpp(2500, 13);
  const auto b = run_ehpp(2500, 13);
  EXPECT_EQ(a.metrics.vector_bits, b.metrics.vector_bits);
  EXPECT_EQ(a.metrics.circles, b.metrics.circles);
  EXPECT_DOUBLE_EQ(a.metrics.time_us, b.metrics.time_us);
}

class EhppPopulationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EhppPopulationSweep, CompleteAndWasteFree) {
  const std::size_t n = GetParam();
  const auto result = run_ehpp(n, 17 * n + 3);
  EXPECT_EQ(result.metrics.polls, n);
  EXPECT_EQ(result.channel.collision_slots, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EhppPopulationSweep,
                         ::testing::Values(1, 2, 10, 100, 150, 500, 1000,
                                           5000, 12000));

}  // namespace
}  // namespace rfid::protocols
