// Tests for the missing-tag detection/identification protocols and the
// energy model.
#include <gtest/gtest.h>

#include "analysis/energy_model.hpp"
#include "protocols/presence.hpp"
#include "protocols/tree_polling.hpp"

namespace rfid::protocols {
namespace {

struct Scenario final {
  tags::TagPopulation expected;
  std::unordered_set<TagId, TagIdHash> present;
  std::vector<TagId> truly_missing;
};

Scenario make_scenario(std::size_t n, std::size_t missing_every,
                       std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  Scenario scenario;
  scenario.expected = tags::TagPopulation::uniform_random(n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    if (missing_every != 0 && i % missing_every == 0)
      scenario.truly_missing.push_back(scenario.expected[i].id());
    else
      scenario.present.insert(scenario.expected[i].id());
  }
  std::sort(scenario.truly_missing.begin(), scenario.truly_missing.end());
  return scenario;
}

TEST(TrustedReaderDetection, PlannedFramesGrowWithConfidence) {
  TrustedReaderDetection loose(
      TrustedReaderDetection::Config{.confidence = 0.9});
  TrustedReaderDetection tight(
      TrustedReaderDetection::Config{.confidence = 0.999});
  EXPECT_LT(loose.planned_frames(), tight.planned_frames());
}

TEST(TrustedReaderDetection, NoFalsePositiveWhenAllPresent) {
  auto scenario = make_scenario(1000, 0, 1);
  sim::SessionConfig config;
  config.seed = 2;
  config.present = &scenario.present;
  const auto report =
      TrustedReaderDetection().detect(scenario.expected, config);
  EXPECT_FALSE(report.missing_detected);
  EXPECT_EQ(report.frames_run, TrustedReaderDetection().planned_frames());
}

TEST(TrustedReaderDetection, DetectsSingleMissingTag) {
  // One missing tag out of 1000 at 99% confidence: run several independent
  // scenarios; nearly all must detect.
  std::size_t detected = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto scenario = make_scenario(1000, 1000, 10 + seed);
    ASSERT_EQ(scenario.truly_missing.size(), 1u);
    sim::SessionConfig config;
    config.seed = seed;
    config.present = &scenario.present;
    detected +=
        TrustedReaderDetection().detect(scenario.expected, config)
            .missing_detected;
  }
  EXPECT_GE(detected, 9u);
}

TEST(TrustedReaderDetection, ManyMissingDetectedFast) {
  auto scenario = make_scenario(1000, 10, 3);
  sim::SessionConfig config;
  config.seed = 4;
  config.present = &scenario.present;
  const auto report =
      TrustedReaderDetection().detect(scenario.expected, config);
  EXPECT_TRUE(report.missing_detected);
  EXPECT_LE(report.frames_run, 2u);
}

TEST(TrustedReaderDetection, DetectionIsCheaperThanIdentification) {
  // The point of TRP: a yes/no answer costs far less air time than a full
  // missing-set identification.
  auto scenario = make_scenario(2000, 40, 5);
  sim::SessionConfig config;
  config.seed = 6;
  config.present = &scenario.present;
  const auto trp = TrustedReaderDetection().detect(scenario.expected, config);
  const auto bitmap =
      BitmapMissingIdentification().identify(scenario.expected, config);
  EXPECT_TRUE(trp.missing_detected);
  EXPECT_LT(trp.result.exec_time_s(), bitmap.result.exec_time_s());
}

TEST(TrustedReaderDetection, EmptyPopulation) {
  const tags::TagPopulation empty;
  const auto report = TrustedReaderDetection().detect(empty, {});
  EXPECT_FALSE(report.missing_detected);
  EXPECT_EQ(report.frames_run, 0u);
}

TEST(BitmapIdentification, FindsExactMissingSet) {
  for (const std::size_t every : {3u, 17u, 100u}) {
    auto scenario = make_scenario(1500, every, 20 + every);
    sim::SessionConfig config;
    config.seed = every;
    config.present = &scenario.present;
    const auto report =
        BitmapMissingIdentification().identify(scenario.expected, config);
    EXPECT_EQ(report.missing, scenario.truly_missing) << every;
    EXPECT_EQ(report.verified.size() + report.missing.size(), 1500u);
  }
}

TEST(BitmapIdentification, AllPresentVerifiesEveryone) {
  auto scenario = make_scenario(800, 0, 7);
  sim::SessionConfig config;
  config.seed = 8;
  config.present = &scenario.present;
  const auto report =
      BitmapMissingIdentification().identify(scenario.expected, config);
  EXPECT_TRUE(report.missing.empty());
  EXPECT_EQ(report.verified.size(), 800u);
}

TEST(BitmapIdentification, PollingBeatsBitmapIdentification) {
  // Both identify the same missing set, but the bitmap scheme clocks
  // through every empty and collision slot of its ALOHA frames — exactly
  // the waste the paper's Section I argues polling eliminates — so TPP
  // finishes the identical task faster (and collects payloads on top).
  auto scenario = make_scenario(3000, 50, 9);
  sim::SessionConfig config;
  config.seed = 10;
  config.present = &scenario.present;
  const auto bitmap =
      BitmapMissingIdentification().identify(scenario.expected, config);
  const auto tpp = Tpp().run(scenario.expected, config);
  std::vector<TagId> tpp_missing = tpp.missing_ids;
  std::sort(tpp_missing.begin(), tpp_missing.end());
  EXPECT_EQ(bitmap.missing, tpp_missing);
  EXPECT_GT(bitmap.result.exec_time_s(), tpp.exec_time_s());
  EXPECT_LT(bitmap.result.exec_time_s(), tpp.exec_time_s() * 3.0);
}

TEST(BitmapIdentification, DeterministicReplay) {
  auto scenario = make_scenario(500, 9, 11);
  sim::SessionConfig config;
  config.seed = 12;
  config.present = &scenario.present;
  const auto a =
      BitmapMissingIdentification().identify(scenario.expected, config);
  const auto b =
      BitmapMissingIdentification().identify(scenario.expected, config);
  EXPECT_EQ(a.missing, b.missing);
  EXPECT_DOUBLE_EQ(a.result.metrics.time_us, b.result.metrics.time_us);
}

TEST(PollingAssisted, FindsExactMissingSet) {
  for (const std::size_t every : {4u, 25u}) {
    auto scenario = make_scenario(1200, every, 40 + every);
    sim::SessionConfig config;
    config.seed = every + 1;
    config.present = &scenario.present;
    const auto report =
        PollingAssistedIdentification().identify(scenario.expected, config);
    EXPECT_EQ(report.missing, scenario.truly_missing) << every;
  }
}

TEST(PollingAssisted, SingleFrameOnly) {
  // The assist replaces follow-up frames with direct polls: exactly one
  // bitmap round regardless of collisions.
  auto scenario = make_scenario(2000, 0, 50);
  sim::SessionConfig config;
  config.seed = 51;
  config.present = &scenario.present;
  const auto report =
      PollingAssistedIdentification().identify(scenario.expected, config);
  EXPECT_EQ(report.result.metrics.rounds, 1u);
  EXPECT_TRUE(report.missing.empty());
}

TEST(PollingAssisted, SlowerThanShortVectorPolling) {
  // The related-work critique: the assist polls with tedious 96-bit IDs,
  // so TPP still wins the same task.
  auto scenario = make_scenario(2000, 40, 52);
  sim::SessionConfig config;
  config.seed = 53;
  config.present = &scenario.present;
  const auto assisted =
      PollingAssistedIdentification().identify(scenario.expected, config);
  const auto tpp = Tpp().run(scenario.expected, config);
  EXPECT_GT(assisted.result.exec_time_s(), tpp.exec_time_s());
}

TEST(PollingAssisted, WorksUnderNoise) {
  auto scenario = make_scenario(800, 10, 54);
  sim::SessionConfig config;
  config.seed = 55;
  config.present = &scenario.present;
  config.reply_error_rate = 0.2;
  const auto report =
      PollingAssistedIdentification().identify(scenario.expected, config);
  EXPECT_EQ(report.missing, scenario.truly_missing);
}

TEST(EnergyModel, ZeroTagsZeroEnergy) {
  const auto report = analysis::estimate_energy({}, 0);
  EXPECT_DOUBLE_EQ(report.reader_mj, 0.0);
  EXPECT_DOUBLE_EQ(report.tag_total_uj(), 0.0);
}

TEST(EnergyModel, ScalesWithReaderBits) {
  sim::Metrics small, big;
  small.vector_bits = 1000;
  big.vector_bits = 10000;
  const auto e_small = analysis::estimate_energy(small, 100);
  const auto e_big = analysis::estimate_energy(big, 100);
  EXPECT_NEAR(e_big.reader_mj / e_small.reader_mj, 10.0, 1e-9);
  EXPECT_NEAR(e_big.tag_listen_uj / e_small.tag_listen_uj, 10.0, 1e-9);
}

TEST(EnergyModel, ShortVectorsSaveTagListenEnergy) {
  // The CP/TPP energy argument: fewer reader bits means less tag listening.
  Xoshiro256ss rng(13);
  const auto pop = tags::TagPopulation::uniform_random(2000, rng);
  sim::SessionConfig config;
  config.seed = 14;
  const auto tpp = Tpp().run(pop, config);
  sim::Metrics cpp_metrics;  // CPP: 96 bits per poll, no commands
  cpp_metrics.vector_bits = 96 * 2000;
  cpp_metrics.tag_bits = 2000;
  cpp_metrics.slots_total = 2000;
  const auto e_tpp = analysis::estimate_energy(tpp.metrics, 2000);
  const auto e_cpp = analysis::estimate_energy(cpp_metrics, 2000);
  EXPECT_LT(e_tpp.tag_listen_uj * 5, e_cpp.tag_listen_uj);
}

}  // namespace
}  // namespace rfid::protocols
