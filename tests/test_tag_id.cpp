// Unit tests for the 96-bit EPC identifier type.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/tag_id.hpp"

namespace rfid {
namespace {

TEST(TagId, DefaultIsZero) {
  TagId id;
  EXPECT_EQ(id.to_hex(), "000000000000000000000000");
}

TEST(TagId, HexRoundTrip) {
  const std::string hex = "deadbeefcafe0123456789ab";
  EXPECT_EQ(TagId::from_hex(hex).to_hex(), hex);
}

TEST(TagId, FromHexAcceptsUppercase) {
  EXPECT_EQ(TagId::from_hex("DEADBEEFCAFE0123456789AB").to_hex(),
            "deadbeefcafe0123456789ab");
}

TEST(TagId, FromHexRejectsBadLength) {
  EXPECT_THROW((void)TagId::from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)TagId::from_hex(std::string(25, '0')),
               std::invalid_argument);
}

TEST(TagId, FromHexRejectsNonHex) {
  EXPECT_THROW((void)TagId::from_hex("zzzzzzzzzzzzzzzzzzzzzzzz"),
               std::invalid_argument);
}

TEST(TagId, BitNumberingIsMsbFirst) {
  TagId id = TagId::from_hex("800000000000000000000001");
  EXPECT_TRUE(id.bit(0));
  EXPECT_FALSE(id.bit(1));
  EXPECT_FALSE(id.bit(94));
  EXPECT_TRUE(id.bit(95));
}

TEST(TagId, SetBitRoundTrips) {
  TagId id;
  for (const std::size_t pos : {0u, 13u, 31u, 32u, 63u, 64u, 95u}) {
    id.set_bit(pos, true);
    EXPECT_TRUE(id.bit(pos));
    id.set_bit(pos, false);
    EXPECT_FALSE(id.bit(pos));
  }
}

TEST(TagId, XorIsBitwise) {
  const TagId a = TagId::from_hex("ffff0000ffff0000ffff0000");
  const TagId b = TagId::from_hex("0f0f0f0f0f0f0f0f0f0f0f0f");
  EXPECT_EQ((a ^ b).to_hex(), "f0f00f0ff0f00f0ff0f00f0f");
}

TEST(TagId, XorSelfIsZero) {
  const TagId a = TagId::from_hex("123456789abcdef011223344");
  EXPECT_EQ((a ^ a), TagId{});
}

TEST(TagId, CommonPrefixLengthFullMatch) {
  const TagId a = TagId::from_hex("abcdefabcdefabcdefabcdef");
  EXPECT_EQ(a.common_prefix_length(a), kTagIdBits);
}

TEST(TagId, CommonPrefixLengthFirstBitDiffers) {
  const TagId a = TagId::from_hex("800000000000000000000000");
  const TagId b;
  EXPECT_EQ(a.common_prefix_length(b), 0u);
}

TEST(TagId, CommonPrefixLengthMidWord) {
  TagId a, b;
  b.set_bit(40, true);  // differ exactly at bit 40
  EXPECT_EQ(a.common_prefix_length(b), 40u);
}

TEST(TagId, OrderingIsLexicographicOnWords) {
  const TagId small = TagId::from_hex("000000000000000000000001");
  const TagId big = TagId::from_hex("000000010000000000000000");
  EXPECT_LT(small, big);
}

TEST(TagId, Fold64DistinguishesWords) {
  TagId a = TagId::from_hex("000000000000000000000001");
  TagId b = TagId::from_hex("000000000000000100000000");
  EXPECT_NE(a.fold64(), b.fold64());
}

TEST(TagIdHash, UsableInUnorderedContainers) {
  std::unordered_set<TagId, TagIdHash> set;
  set.insert(TagId::from_hex("000000000000000000000001"));
  set.insert(TagId::from_hex("000000000000000000000002"));
  set.insert(TagId::from_hex("000000000000000000000001"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace rfid
