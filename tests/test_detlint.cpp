// tools/detlint fixture tests: exact rule IDs and line numbers per
// violation fixture, clean passes for the passing and allowlist fixtures,
// and direct lint_source cases for the tokenizer edge cases (comments,
// strings, raw strings, preprocessor lines).
#include "detlint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace {

std::string fixture(const std::string& name) {
  return std::string(DETLINT_FIXTURE_DIR) + "/" + name;
}

/// (rule, line) pairs of a fixture's findings, in report order.
std::vector<std::pair<std::string, std::size_t>> findings_of(
    const std::string& name) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const detlint::Finding& finding : detlint::lint_file(fixture(name)))
    out.emplace_back(finding.rule, finding.line);
  return out;
}

using Expected = std::vector<std::pair<std::string, std::size_t>>;

TEST(Detlint, CleanFixturePasses) {
  EXPECT_EQ(findings_of("clean.cpp"), Expected{});
}

TEST(Detlint, WallClockFixture) {
  EXPECT_EQ(findings_of("wall_clock.cpp"),
            (Expected{{"wall-clock", 8}, {"wall-clock", 12}}));
}

TEST(Detlint, BannedRngFixture) {
  EXPECT_EQ(findings_of("banned_rng.cpp"),
            (Expected{{"banned-rng", 8},
                      {"banned-rng", 9},
                      {"banned-rng", 13}}));
}

TEST(Detlint, UnorderedIterationFixture) {
  EXPECT_EQ(findings_of("unordered_iteration.cpp"),
            (Expected{{"unordered-iteration", 15},
                      {"unordered-iteration", 17}}));
}

TEST(Detlint, UnnamedRngStreamFixture) {
  EXPECT_EQ(findings_of("unnamed_rng_stream.cpp"),
            (Expected{{"unnamed-rng-stream", 16},
                      {"unnamed-rng-stream", 17}}));
}

TEST(Detlint, AllowPragmaSuppresses) {
  EXPECT_EQ(findings_of("allow_pragma.cpp"), Expected{});
}

TEST(Detlint, MalformedPragmasAreFindingsAndDoNotSuppress) {
  EXPECT_EQ(findings_of("bad_pragma.cpp"), (Expected{{"bad-pragma", 9},
                                                     {"banned-rng", 9},
                                                     {"bad-pragma", 13},
                                                     {"banned-rng", 13},
                                                     {"bad-pragma", 17},
                                                     {"banned-rng", 17}}));
}

// --- lint_source edge cases -------------------------------------------------

TEST(Detlint, CommentsAndStringsAreInvisible) {
  const auto findings = detlint::lint_source(
      "t.cpp",
      "// std::rand() in a comment\n"
      "/* system_clock in a block\n   comment spanning lines */\n"
      "const char* s = \"random_device\";\n"
      "const char* r = R\"(for (x : some_unordered_set.begin()))\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Detlint, PreprocessorLinesAreSkipped) {
  const auto findings = detlint::lint_source(
      "t.cpp",
      "#include <unordered_map>\n"
      "#include <ctime>\n"
      "#define DRAW() rng()\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Detlint, MultiLineRangeForIsStillCaught) {
  // The declared name and the `:` land on the same physical line even when
  // the for-header wraps — the token-level check keys on that.
  const auto findings = detlint::lint_source(
      "t.cpp",
      "std::unordered_map<int, long> table;\n"
      "for (const auto& [k, v]\n"
      "     : table)\n"
      "  use(k, v);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(Detlint, StandalonePragmaCoversOnlyNextCodeLine) {
  const auto findings = detlint::lint_source(
      "t.cpp",
      "// detlint: allow(banned-rng) — first call audited\n"
      "int a = std::rand();\n"
      "int b = std::rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "banned-rng");
}

TEST(Detlint, PragmaForOneRuleDoesNotSuppressAnother) {
  const auto findings = detlint::lint_source(
      "t.cpp",
      "int a = std::rand();  // detlint: allow(wall-clock) — wrong rule\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-rng");
}

TEST(Detlint, RuleIdsAreStable) {
  const std::vector<std::string> expected{"wall-clock", "banned-rng",
                                          "unordered-iteration",
                                          "unnamed-rng-stream", "bad-pragma"};
  EXPECT_EQ(detlint::rule_ids(), expected);
}

TEST(Detlint, UnreadableFileIsAnIoError) {
  const auto findings = detlint::lint_file(fixture("does_not_exist.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(Detlint, CollectSourcesIsSortedAndComplete) {
  const auto files = detlint::collect_sources(DETLINT_FIXTURE_DIR);
  ASSERT_EQ(files.size(), 7u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
}

}  // namespace
